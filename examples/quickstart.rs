//! Quickstart: define jobs, run every scheduler, compare spans against the
//! optimal-span bracket.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fjs::prelude::*;

fn main() {
    // Six flexible jobs: (arrival, starting deadline, processing length).
    // A job must *start* inside [arrival, deadline] and then runs its full
    // length without interruption; the objective is to minimize the span —
    // the total time during which at least one job is running.
    let inst = Instance::new(vec![
        Job::adp(0.0, 4.0, 2.0),
        Job::adp(0.5, 6.0, 1.0),
        Job::adp(1.0, 1.0, 1.5), // rigid: zero laxity
        Job::adp(3.0, 10.0, 4.0),
        Job::adp(8.0, 14.0, 1.0),
        Job::adp(9.0, 12.0, 2.0),
    ]);

    println!(
        "instance: {} jobs, μ = {:.2}",
        inst.len(),
        inst.mu().unwrap()
    );

    // Bracket the offline optimum.
    let lb = fjs::opt::best_lower_bound(&inst);
    let ub = fjs::opt::upper_bound_span(&inst, 50);
    println!("optimal span ∈ [{lb}, {}]\n", ub.span);

    println!("{:<18} {:>8} {:>12}", "scheduler", "span", "span/OPT-LB");
    for kind in SchedulerKind::full_set() {
        let out = kind.run_on(&inst);
        assert!(out.is_feasible(), "every scheduler must start jobs in time");
        println!(
            "{:<18} {:>8.3} {:>12.3}",
            kind.label(),
            out.span.get(),
            out.span.get() / lb.get()
        );
    }

    // Inspect one schedule in detail.
    let out = SchedulerKind::BatchPlus.run_on(&inst);
    println!("\nBatch+ schedule:");
    for (id, job) in out.instance.iter() {
        let s = out.schedule.start(id).unwrap();
        println!(
            "  {id}: window [{}, {}], p = {} → runs {}",
            job.arrival(),
            job.deadline(),
            job.length(),
            job.active_interval_at(s)
        );
    }
    println!("busy set: {}", out.schedule.busy_set(&out.instance));
}
