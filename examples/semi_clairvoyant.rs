//! How much clairvoyance does span scheduling need? This example walks the
//! information ladder (experiment E14) on one workload:
//!
//! * **none** — the scheduler never sees `p(J)` (Section 3 of the paper);
//! * **class only** — only `⌈log₂ p⌉` is revealed
//!   (`Clairvoyance::ClassOnly`, an extension of this crate);
//! * **full** — `p(J)` revealed at arrival (Section 4).
//!
//! ```sh
//! cargo run --release --example semi_clairvoyant
//! ```

use fjs::prelude::*;
use fjs::schedulers::{BatchPlus, ClassifyByDuration, Profit, SemiCdb};
use fjs::workloads::{ArrivalProcess, LaxityModel, LengthLaw, WorkloadSpec};

fn main() {
    // A workload where length information matters: bimodal 1-vs-32 lengths.
    let spec = WorkloadSpec {
        n: 600,
        arrivals: ArrivalProcess::Poisson { rate: 1.0 },
        lengths: LengthLaw::Bimodal {
            short: 1.0,
            long: 32.0,
            p_long: 0.3,
        },
        laxity: LaxityModel::Proportional { factor: 2.0 },
    };
    let inst = spec.generate(2026);
    let lb = fjs::opt::best_lower_bound(&inst).get();
    println!(
        "600 jobs, μ = {:.0}, OPT span ≥ {lb:.1}\n",
        inst.mu().unwrap()
    );

    println!(
        "{:<14} {:<18} {:>10} {:>10}",
        "information", "scheduler", "span", "vs LB"
    );

    // Rung 1: no length information at all.
    let out = run_static(&inst, Clairvoyance::NonClairvoyant, BatchPlus::new());
    report("none", "Batch+", &out, lb);

    // Rung 2: only the geometric length class ⌈log₂ p⌉.
    let out = run_static(&inst, Clairvoyance::ClassOnly, SemiCdb::new());
    report("class only", "SemiCDB", &out, lb);

    // Rung 3: full lengths.
    let out = run_static(
        &inst,
        Clairvoyance::Clairvoyant,
        ClassifyByDuration::new(2.0, 1.0),
    );
    report("full", "CDB(α=2)", &out, lb);
    let out = run_static(&inst, Clairvoyance::Clairvoyant, Profit::optimal());
    report("full", "Profit(k*)", &out, lb);

    println!(
        "\nSemiCDB (class-only) matches CDB(α=2) exactly: classes are ALL the\n\
         information CDB consumes, so O(log μ) bits already break the paper's\n\
         non-clairvoyant μ barrier. Full clairvoyance buys Profit a further\n\
         constant factor."
    );
}

fn report(info: &str, name: &str, out: &SimOutcome, lb: f64) {
    assert!(out.is_feasible());
    println!(
        "{:<14} {:<18} {:>10.1} {:>10.3}",
        info,
        name,
        out.span.get(),
        out.span.get() / lb
    );
}
