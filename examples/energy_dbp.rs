//! Energy-efficient multi-server scheduling: the paper's Section 5
//! extension. Jobs have resource demands; unit-capacity servers host them
//! over their active intervals; the bill is the total server-on time
//! (MinUsageTime Dynamic Bin Packing). A span scheduler picks the start
//! times, First Fit picks the servers.
//!
//! ```sh
//! cargo run --release --example energy_dbp
//! ```

use fjs::dbp::{deterministic_sizes, outcome_items, pack, usage_lower_bound, Packer};
use fjs::prelude::*;
use fjs::workloads::Scenario;

fn main() {
    let n = 1_000;
    let inst = Scenario::BurstyAnalytics.generate(n, 7);
    let sizes = deterministic_sizes(n, 0.1, 0.6, 99);
    println!(
        "{n} bursty analytics jobs, μ = {:.1}, sizes ∈ [0.1, 0.6] of one server\n",
        inst.mu().unwrap()
    );

    let schedulers = [
        ("rigid (Eager + FF)", SchedulerKind::Eager),
        ("Batch+ + FF", SchedulerKind::BatchPlus),
        ("Profit + FF", SchedulerKind::profit_optimal()),
        ("CDB + CD-FF", SchedulerKind::cdb_optimal()),
    ];

    println!(
        "{:<22} {:>10} {:>12} {:>8} {:>12}",
        "pipeline", "span (h)", "usage (h)", "bins", "usage/LB"
    );
    for (label, kind) in schedulers {
        let out = kind.run_on(&inst);
        assert!(out.is_feasible());
        let items = outcome_items(&out, &sizes);
        let packer = if label.contains("CD-FF") {
            Packer::ClassifiedFirstFit {
                alpha: 2.0,
                base: 1.0,
            }
        } else {
            Packer::FirstFit
        };
        let packing = pack(&items, packer);
        assert!(fjs::dbp::verify_capacity(&items, &packing).is_none());
        let lb = usage_lower_bound(&items);
        println!(
            "{:<22} {:>10.1} {:>12.1} {:>8} {:>12.3}",
            label,
            out.span.get(),
            packing.total_usage.get(),
            packing.num_bins(),
            packing.total_usage.get() / lb.get()
        );
    }

    println!(
        "\nThe span term of the usage bound is what the paper's schedulers shrink:\n\
         total usage ≤ span + time-accumulated demand (both reported above as the LB parts)."
    );
}
