//! Adversarial duels: replay the paper's two lower-bound games against a
//! scheduler of your choice and watch the certified ratio emerge.
//!
//! ```sh
//! cargo run --example adversarial_duel                  # Batch+ by default
//! cargo run --example adversarial_duel -- profit        # or: eager, lazy,
//!                                                       # batch, batch+,
//!                                                       # cdb, doubler
//! ```

use fjs::adversary::{phi, CvAdversary, NcAdversary, NcAdversaryParams};
use fjs::core::sim::run;
use fjs::prelude::*;

fn pick(name: &str) -> SchedulerKind {
    match name {
        "eager" => SchedulerKind::Eager,
        "lazy" => SchedulerKind::Lazy,
        "batch" => SchedulerKind::Batch,
        "batch+" | "batchplus" => SchedulerKind::BatchPlus,
        "cdb" => SchedulerKind::cdb_optimal(),
        "profit" => SchedulerKind::profit_optimal(),
        "doubler" => SchedulerKind::Doubler { c: 1.0 },
        other => {
            eprintln!("unknown scheduler '{other}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "batch+".into());
    let kind = pick(&name);

    // Game 1: the golden-ratio adversary (Theorem 4.1). Works against any
    // scheduler.
    println!(
        "=== Theorem 4.1 game: the φ-adversary ({}) ===",
        kind.label()
    );
    for n in [1usize, 5, 20, 100] {
        let mut adv = CvAdversary::new(n);
        let out = run(&mut adv, kind.build());
        let prescribed = adv.prescribed_schedule(&out.instance);
        let ratio = out.span.ratio(prescribed.span(&out.instance));
        println!(
            "  n = {n:>3}: {} rounds released, {} — online span {:>8.3}, OPT ≤ {:>8.3}, ratio {:.4} (φ = {:.4})",
            adv.rounds_released(),
            if adv.ran_full_course() { "full course " } else { "stopped early" },
            out.span.get(),
            prescribed.span(&out.instance).get(),
            ratio,
            phi(),
        );
    }

    // Game 2: the non-clairvoyant adversary (Theorem 3.3). Only for
    // schedulers that do not read lengths.
    if kind.requires_clairvoyance() {
        println!(
            "\n(Theorem 3.3 game skipped: {} reads processing lengths.)",
            kind.label()
        );
        return;
    }
    println!(
        "\n=== Theorem 3.3 game: the earmarking adversary ({}) ===",
        kind.label()
    );
    let mu = 6.0;
    for k in [1usize, 4, 16] {
        let mut adv = NcAdversary::new(NcAdversaryParams::uniform(mu, k, 64));
        let out = run(&mut adv, kind.build());
        let prescribed = adv
            .prescribed_schedule(&out.instance)
            .expect("Lemma 3.2 check");
        let ratio = out.span.ratio(prescribed.span(&out.instance));
        println!(
            "  μ = {mu}, k = {k:>2}: {} iterations, {} earmarks — online span {:>9.3}, OPT ≤ {:>8.3}, ratio {:.4} (→ μ = {mu})",
            adv.iterations_released(),
            adv.earmarks().len(),
            out.span.get(),
            prescribed.span(&out.instance).get(),
            ratio,
        );
    }
}
