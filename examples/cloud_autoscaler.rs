//! Cloud batch scheduling: the paper's motivating scenario. A pay-as-you-go
//! server farm runs flexible batch jobs (heavy-tailed lengths, Poisson
//! arrivals, laxity proportional to length). Minimizing the span minimizes
//! the hours the (single, large) server is on — i.e. the bill.
//!
//! ```sh
//! cargo run --release --example cloud_autoscaler
//! ```

use fjs::prelude::*;
use fjs::workloads::Scenario;

const DOLLARS_PER_HOUR: f64 = 3.06; // a large on-demand instance

fn main() {
    let n = 2_000;
    println!("generating {n} cloud batch jobs (bounded-Pareto lengths, Poisson arrivals)…");
    let inst = Scenario::CloudBatch.generate(n, 2024);
    println!(
        "μ = {:.1}, total work = {:.0} h, horizon = {:.0} h\n",
        inst.mu().unwrap(),
        inst.total_work().get(),
        inst.horizon().unwrap().get()
    );

    let lb = fjs::opt::best_lower_bound(&inst).get();
    println!(
        "certified minimum server-on time: ≥ {lb:.1} h (${:.0})\n",
        lb * DOLLARS_PER_HOUR
    );

    println!(
        "{:<18} {:>12} {:>12} {:>10}",
        "scheduler", "span (h)", "bill ($)", "vs LB"
    );
    let mut best: Option<(String, f64)> = None;
    for kind in SchedulerKind::full_set() {
        let out = kind.run_on(&inst);
        assert!(out.is_feasible());
        let span = out.span.get();
        println!(
            "{:<18} {:>12.1} {:>12.0} {:>10.3}",
            kind.label(),
            span,
            span * DOLLARS_PER_HOUR,
            span / lb
        );
        if best.as_ref().is_none_or(|(_, s)| span < *s) {
            best = Some((kind.label(), span));
        }
    }

    let (name, span) = best.unwrap();
    let eager = SchedulerKind::Eager.run_on(&inst).span.get();
    println!(
        "\n{name} saves {:.1} server-hours (${:.0}, {:.1}%) over starting every job immediately",
        eager - span,
        (eager - span) * DOLLARS_PER_HOUR,
        100.0 * (eager - span) / eager
    );
}
