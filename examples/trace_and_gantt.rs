//! Bring-your-own-trace: parse a CSV job trace, run the paper's schedulers
//! on it, and visualize the winning schedule as an ASCII Gantt chart.
//!
//! ```sh
//! cargo run --example trace_and_gantt               # built-in demo trace
//! cargo run --example trace_and_gantt -- jobs.csv   # your own trace
//! ```
//!
//! Trace format: `arrival,deadline,length` per line (header, comments with
//! `#`, and an optional fourth `size` column are accepted).

use fjs::analysis::{render_busy_strip, render_gantt, GanttOptions};
use fjs::prelude::*;
use fjs::workloads::parse_trace;

const DEMO: &str = "\
# a small mixed trace: arrival,deadline,length
0,6,2
0.5,8,1
1,1,1.5
2,12,5
6,18,1
7,15,2
9,9,1
10,22,3
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => DEMO.to_string(),
    };
    let trace = parse_trace(&text).expect("valid trace");
    let inst = trace.instance;
    println!(
        "trace: {} jobs, μ = {:.2}",
        inst.len(),
        inst.mu().unwrap_or(1.0)
    );

    let lb = fjs::opt::best_lower_bound(&inst);
    println!("optimal span ≥ {lb}\n");

    let mut best: Option<(SchedulerKind, SimOutcome)> = None;
    for kind in SchedulerKind::full_set() {
        let out = kind.run_on(&inst);
        assert!(out.is_feasible());
        println!(
            "{:<18} span {:>8.3}   busy |{}|",
            kind.label(),
            out.span.get(),
            render_busy_strip(&out.instance, &out.schedule, 40)
        );
        if best.as_ref().is_none_or(|(_, b)| out.span < b.span) {
            best = Some((kind, out));
        }
    }

    let (kind, out) = best.unwrap();
    println!(
        "\nbest schedule — {} (span {:.3}):\n",
        kind.label(),
        out.span.get()
    );
    println!(
        "{}",
        render_gantt(
            &out.instance,
            &out.schedule,
            GanttOptions {
                width: 56,
                ..Default::default()
            }
        )
    );
}
