//! Smoke test: every registered experiment runs at quick profile and
//! produces well-formed, non-empty tables (the same code paths the `fjs`
//! binary and `cargo bench` exercise).

use fjs_cli::experiments::{all, Profile};

#[test]
fn every_experiment_runs_quick() {
    for exp in all() {
        let tables = (exp.run)(Profile::Quick);
        assert!(!tables.is_empty(), "{} produced no tables", exp.id);
        for (i, t) in tables.iter().enumerate() {
            assert!(!t.headers.is_empty(), "{} table {i} has no headers", exp.id);
            assert!(!t.rows.is_empty(), "{} table {i} has no rows", exp.id);
            for row in &t.rows {
                assert_eq!(row.len(), t.headers.len(), "{} table {i} ragged", exp.id);
            }
            // Rendering round-trips without panicking and contains data.
            let rendered = t.render();
            assert!(
                rendered.lines().count() >= 3,
                "{} table {i} rendering too short",
                exp.id
            );
            let csv = t.to_csv();
            assert_eq!(csv.lines().count(), t.rows.len() + 1);
        }
    }
}

#[test]
fn experiment_ids_cover_design_doc() {
    let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
    for expected in [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
    ] {
        assert!(ids.contains(&expected), "missing experiment {expected}");
    }
}
