//! Differential engine-equivalence suite.
//!
//! Replays identical workloads through the arena/calendar-queue engine
//! (`fjs_core::sim::run_with_config`) and the pre-rewrite reference core
//! (`fjs_core::sim::legacy`, compiled via the `legacy-engine` feature), and
//! asserts the outcomes are bit-identical: decision logs (rendered traces),
//! schedules and spans compared through `f64::to_bits`, and every
//! `RunStats` counter (wall clocks zeroed — they are the only fields
//! allowed to differ).
//!
//! Coverage: the full scheduler registry over the seeded μ×slack×load
//! family grid, the committed `tests/corpus/` counterexamples (chaos
//! targets exercising violation/force-start paths), the Theorem 3.3
//! adaptive adversary (LengthProbe / deferred-ruling paths), the Fibonacci
//! clairvoyant adversary, and event-cap-truncated partial runs.

use fjs::adversary::{CvAdversary, NcAdversary, NcAdversaryParams};
use fjs::schedulers::SchedulerKind;
use fjs::workloads::{IntFamily, LoadRegime, SlackRegime};
use fjs_core::faults::ChaosScheduler;
use fjs_core::job::{Instance, JobId};
use fjs_core::sim::legacy::run_with_config_legacy;
use fjs_core::sim::{
    render_trace, run_with_config, RunStats, SimConfig, SimOutcome, StaticEnv, TraceMode,
};
use fjs_prng::check::case_seed;
use fjs_testkit::{all_targets, load_dir, Target};
use std::path::Path;

fn config() -> SimConfig {
    SimConfig {
        max_events: 1_000_000,
        trace: TraceMode::Full,
        ..SimConfig::default()
    }
}

fn run_new_target(target: Target, inst: &Instance) -> SimOutcome {
    let env = StaticEnv::new(inst, target.information_model());
    match target {
        Target::Kind(kind) => run_with_config(env, kind.build(), config()),
        Target::Chaos { inner, mode } => {
            run_with_config(env, ChaosScheduler::new(inner.build(), mode), config())
        }
    }
}

fn run_old_target(target: Target, inst: &Instance) -> SimOutcome {
    let env = StaticEnv::new(inst, target.information_model());
    match target {
        Target::Kind(kind) => run_with_config_legacy(env, kind.build(), config()),
        Target::Chaos { inner, mode } => {
            run_with_config_legacy(env, ChaosScheduler::new(inner.build(), mode), config())
        }
    }
}

/// Wall clocks are measurements, not decisions; everything else must match.
fn zero_walls(mut s: RunStats) -> RunStats {
    s.wall_total_s = 0.0;
    s.wall_scheduler_s = 0.0;
    s.wall_environment_s = 0.0;
    s
}

fn assert_equivalent(label: &str, new: &SimOutcome, old: &SimOutcome) {
    // Decision log: the rendered trace is the byte-identical contract.
    assert_eq!(
        render_trace(&new.trace),
        render_trace(&old.trace),
        "{label}: decision logs diverge"
    );
    // Span and every schedule start, compared at the bit level.
    assert_eq!(
        new.span.get().to_bits(),
        old.span.get().to_bits(),
        "{label}: span {} vs {}",
        new.span,
        old.span
    );
    assert_eq!(new.instance.len(), old.instance.len(), "{label}: job count");
    for i in 0..new.instance.len() {
        let id = JobId(i as u32);
        let (a, b) = (new.instance.job(id), old.instance.job(id));
        assert_eq!(
            a.arrival().get().to_bits(),
            b.arrival().get().to_bits(),
            "{label}: arrival of {id}"
        );
        assert_eq!(
            a.deadline().get().to_bits(),
            b.deadline().get().to_bits(),
            "{label}: deadline of {id}"
        );
        assert_eq!(
            a.length().get().to_bits(),
            b.length().get().to_bits(),
            "{label}: length of {id}"
        );
        assert_eq!(
            new.schedule.start(id).map(|t| t.get().to_bits()),
            old.schedule.start(id).map(|t| t.get().to_bits()),
            "{label}: start of {id}"
        );
    }
    assert_eq!(new.violations, old.violations, "{label}: violations");
    assert_eq!(
        new.rejected_actions, old.rejected_actions,
        "{label}: rejected actions"
    );
    assert_eq!(new.termination, old.termination, "{label}: termination");
    assert_eq!(new.unresolved, old.unresolved, "{label}: unresolved jobs");
    assert_eq!(
        new.events_processed, old.events_processed,
        "{label}: events processed"
    );
    assert_eq!(
        zero_walls(new.stats),
        zero_walls(old.stats),
        "{label}: RunStats counters"
    );
}

/// The full registry over the seeded μ×slack×load family grid: every
/// registered scheduler, every family, several seeds each.
#[test]
fn registry_matches_legacy_on_family_grid() {
    let mut cases = 0usize;
    for target in all_targets() {
        for &mu in &[1u64, 2, 4] {
            for &slack in &[
                SlackRegime::Rigid,
                SlackRegime::Tight,
                SlackRegime::Proportional,
                SlackRegime::Generous,
            ] {
                for &load in &[LoadRegime::Burst, LoadRegime::Moderate, LoadRegime::Sparse] {
                    let fam = IntFamily {
                        n: 6,
                        mu,
                        slack,
                        load,
                    };
                    for rep in 0..2 {
                        let inst = fam.generate(case_seed(0xe901, cases));
                        let label = format!("{} / {} rep {rep}", target.name(), fam.label());
                        let new = run_new_target(target, &inst);
                        let old = run_old_target(target, &inst);
                        assert_equivalent(&label, &new, &old);
                        cases += 1;
                    }
                }
            }
        }
    }
    assert!(
        cases >= 700,
        "grid covers the whole registry ({cases} runs checked)"
    );
}

/// Every committed counterexample replays identically on both cores —
/// chaos targets drive the violation, rejection and force-start paths.
#[test]
fn corpus_counterexamples_match_legacy() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("corpus must load");
    assert!(
        !entries.is_empty(),
        "corpus ships at least the chaos entries"
    );
    for (path, entry) in &entries {
        let target = Target::from_name(&entry.target)
            .unwrap_or_else(|| panic!("{}: unknown target {}", path.display(), entry.target));
        let new = run_new_target(target, &entry.instance);
        let old = run_old_target(target, &entry.instance);
        assert_equivalent(&format!("corpus {}", path.display()), &new, &old);
    }
}

/// The Theorem 3.3 adaptive adversary rules lengths *after* starts via
/// deferred probes — the one path static instances never reach.
#[test]
fn adaptive_adversary_matches_legacy() {
    for &mu in &[2.0, 4.0] {
        for &n in &[4usize, 9] {
            for kind in SchedulerKind::non_clairvoyant_set() {
                let params = || NcAdversaryParams::uniform(mu, 2, n);
                let label = format!("nc-adversary μ={mu} n={n} vs {}", kind.label());
                let new = run_with_config(NcAdversary::new(params()), kind.build(), config());
                let old =
                    run_with_config_legacy(NcAdversary::new(params()), kind.build(), config());
                assert_equivalent(&label, &new, &old);
            }
        }
    }
}

/// The clairvoyant lower-bound adversary releases jobs reactively based on
/// observed world state; both cores must show it the same world.
#[test]
fn clairvoyant_adversary_matches_legacy() {
    for &n in &[3usize, 5, 8] {
        for kind in SchedulerKind::clairvoyant_set() {
            let label = format!("cv-adversary n={n} vs {}", kind.label());
            let new = run_with_config(CvAdversary::new(n), kind.build(), config());
            let old = run_with_config_legacy(CvAdversary::new(n), kind.build(), config());
            assert_equivalent(&label, &new, &old);
        }
    }
}

/// Event-cap-truncated runs produce identical *partial* outcomes:
/// termination, unresolved lists and placeholder instances all match.
#[test]
fn event_cap_partial_outcomes_match_legacy() {
    let fam = IntFamily {
        n: 12,
        mu: 4,
        slack: SlackRegime::Tight,
        load: LoadRegime::Burst,
    };
    let inst = fam.generate(case_seed(0xe902, 0));
    for cap in [1usize, 3, 7, 15, 30] {
        let cfg = SimConfig {
            max_events: cap,
            trace: TraceMode::Full,
            ..SimConfig::default()
        };
        let kind = SchedulerKind::Batch;
        let env = || StaticEnv::new(&inst, kind.information_model());
        let new = run_with_config(env(), kind.build(), cfg);
        let old = run_with_config_legacy(env(), kind.build(), cfg);
        assert_equivalent(&format!("event-cap {cap}"), &new, &old);
    }
}

/// The clairvoyance models must agree per-target with the model the legacy
/// run used (guards the registry plumbing the suite relies on).
#[test]
fn equivalence_covers_every_registered_kind() {
    let targets = all_targets();
    assert_eq!(
        targets.len(),
        SchedulerKind::registered_set().len(),
        "suite must cover the full registry"
    );
    for t in &targets {
        assert!(!t.is_chaos(), "registry targets are the real schedulers");
    }
}

/// The engine parks its allocations (arena world, calendar ring, scratch
/// buffers) in a thread-local pool between runs. A recycled run must be
/// bit-identical to a fresh-thread run — including after a much larger run
/// has grown the pooled ring and arena in between, and across different
/// schedulers and information models sharing one thread.
#[test]
fn recycled_scratch_matches_fresh_thread_runs() {
    let small = Instance::new(vec![
        fjs_core::job::Job::adp(0.0, 3.0, 1.0),
        fjs_core::job::Job::adp(0.5, 3.5, 2.0),
        fjs_core::job::Job::adp(2.0, 2.5, 0.5),
    ]);
    let big = Instance::new(
        (0..600)
            .map(|i| {
                let a = (i as f64) * 0.17;
                fjs_core::job::Job::adp(a, a + 4.0, 1.0 + (i % 7) as f64 * 0.3)
            })
            .collect::<Vec<_>>(),
    );

    for target in all_targets() {
        // Fresh thread: the very first run finds an empty pool.
        let fresh = std::thread::spawn({
            let small = small.clone();
            move || run_new_target(target, &small)
        })
        .join()
        .expect("fresh-thread run");

        // Same thread, pool warmed — first by the small run itself, then by
        // a big run that grows the pooled arena and calendar ring.
        let warmed = std::thread::spawn({
            let (small, big) = (small.clone(), big.clone());
            move || {
                let first = run_new_target(target, &small);
                let grown = run_new_target(target, &big);
                assert!(grown.termination.is_completed());
                let second = run_new_target(target, &small);
                (first, second)
            }
        })
        .join()
        .expect("warmed-thread runs");

        let label = format!("{target:?} (recycled vs fresh)");
        assert_equivalent(&label, &warmed.0, &fresh);
        assert_equivalent(&label, &warmed.1, &fresh);
    }
}
