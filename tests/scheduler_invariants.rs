//! Property-based cross-crate invariants: every scheduler on random
//! workloads must produce feasible, deterministic schedules whose spans sit
//! inside the certified optimal bracket, and the structural lemmas of §4.3
//! must hold on real Profit runs.

use fjs::prelude::*;
use fjs::schedulers::{
    audit_batch, audit_batch_plus, audit_profit, BatchPlus, FlagGraph, FlagRecorder, Profit,
    OPTIMAL_K,
};
use fjs::workloads::{ArrivalProcess, LaxityModel, LengthLaw, WorkloadSpec};
use proptest::prelude::*;

/// Strategy: a workload spec with bounded parameters.
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        5usize..60,
        prop_oneof![
            (0.2f64..3.0).prop_map(|rate| ArrivalProcess::Poisson { rate }),
            (0.0f64..4.0).prop_map(|gap| ArrivalProcess::Uniform { gap }),
            (1usize..6, 0.1f64..1.0)
                .prop_map(|(b, r)| ArrivalProcess::Bursty { burst_size: b, rate: r }),
        ],
        prop_oneof![
            (1.0f64..4.0).prop_map(|v| LengthLaw::Fixed { value: v }),
            (1.0f64..3.0, 0.0f64..9.0)
                .prop_map(|(lo, extra)| LengthLaw::Uniform { min: lo, max: lo + extra }),
            (1.0f64..2.0, 1.0f64..30.0, 0.05f64..0.95).prop_map(|(s, mult, p)| {
                LengthLaw::Bimodal { short: s, long: s * (1.0 + mult), p_long: p }
            }),
        ],
        prop_oneof![
            Just(LaxityModel::Rigid),
            (0.0f64..20.0).prop_map(|v| LaxityModel::Constant { value: v }),
            (0.0f64..4.0).prop_map(|f| LaxityModel::Proportional { factor: f }),
        ],
    )
        .prop_map(|(n, arrivals, lengths, laxity)| WorkloadSpec { n, arrivals, lengths, laxity })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Feasibility + validity + optimal-bracket sandwich for every scheduler.
    #[test]
    fn schedulers_feasible_and_bracketed(spec in spec_strategy(), seed in 0u64..1000) {
        let inst = spec.generate(seed);
        let lb = fjs::opt::best_lower_bound(&inst);
        for kind in SchedulerKind::full_set() {
            let out = kind.run_on(&inst);
            prop_assert!(out.is_feasible(), "{} violated a deadline", kind.label());
            prop_assert!(out.schedule.validate(&out.instance).is_ok(), "{}", kind.label());
            // Tolerate f64 summation-order noise (different orders of
            // interval accumulation) with a tiny relative epsilon.
            let tol = 1e-9 * (1.0 + lb.get().abs());
            prop_assert!(
                out.span.get() >= lb.get() - tol,
                "{}: span {} below the certified OPT lower bound {}",
                kind.label(), out.span, lb
            );
        }
    }

    /// Runs are bit-for-bit deterministic.
    #[test]
    fn runs_are_deterministic(spec in spec_strategy(), seed in 0u64..1000) {
        let inst = spec.generate(seed);
        for kind in SchedulerKind::full_set() {
            let a = kind.run_on(&inst);
            let b = kind.run_on(&inst);
            prop_assert_eq!(a.span, b.span, "{} span nondeterministic", kind.label());
            prop_assert_eq!(a.schedule, b.schedule, "{} schedule nondeterministic", kind.label());
        }
    }

    /// Real runs of Batch/Batch+/Profit pass their rule audits.
    #[test]
    fn runs_pass_their_audits(spec in spec_strategy(), seed in 0u64..1000) {
        let inst = spec.generate(seed);

        let mut batch = fjs::schedulers::Batch::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut batch);
        prop_assert!(audit_batch(&out.instance, &out.schedule, &batch.flag_jobs()).is_ok());

        let mut plus = BatchPlus::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut plus);
        prop_assert!(audit_batch_plus(&out.instance, &out.schedule, &plus.flag_jobs()).is_ok());

        let mut profit = Profit::new(OPTIMAL_K);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut profit);
        prop_assert!(
            audit_profit(&out.instance, &out.schedule, &profit.flag_jobs(), OPTIMAL_K).is_ok()
        );
    }

    /// §4.3 structural lemmas on real Profit executions.
    #[test]
    fn profit_flag_graph_lemmas(spec in spec_strategy(), seed in 0u64..1000) {
        let inst = spec.generate(seed);
        let mut profit = Profit::new(OPTIMAL_K);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut profit);
        prop_assert!(out.is_feasible());
        let graph = FlagGraph::from_outcome(&out, &profit.flag_jobs());
        prop_assert!(graph.is_forest(), "Lemma 4.7 violated");
        prop_assert!(graph.check_lemma_4_6().is_ok(), "Lemma 4.6 violated");
        prop_assert!(graph.check_lemma_4_9().is_ok(), "Lemma 4.9 violated");
    }

    /// Rigid workloads admit exactly one schedule: all schedulers tie, and
    /// the span equals the mandatory-part bound exactly.
    #[test]
    fn rigid_instances_are_scheduler_independent(n in 3usize..40, seed in 0u64..500) {
        let spec = WorkloadSpec {
            n,
            arrivals: ArrivalProcess::Poisson { rate: 1.0 },
            lengths: LengthLaw::Uniform { min: 1.0, max: 5.0 },
            laxity: LaxityModel::Rigid,
        };
        let inst = spec.generate(seed);
        let expected = fjs::opt::lb_mandatory(&inst);
        for kind in SchedulerKind::full_set() {
            let out = kind.run_on(&inst);
            let diff = (out.span - expected).get().abs();
            prop_assert!(diff < 1e-9 * (1.0 + expected.get()), "{}: {} vs {}",
                kind.label(), out.span, expected);
        }
    }

    /// The span never exceeds the horizon-width bound nor undershoots
    /// max-length, for any scheduler.
    #[test]
    fn span_within_global_envelope(spec in spec_strategy(), seed in 0u64..1000) {
        let inst = spec.generate(seed);
        let max_len = inst.max_length().unwrap();
        let horizon = inst.horizon().unwrap() - inst.first_arrival().unwrap();
        for kind in SchedulerKind::full_set() {
            let out = kind.run_on(&inst);
            let tol = 1e-9 * (1.0 + horizon.get().abs());
            prop_assert!(out.span.get() >= max_len.get() - tol, "{}", kind.label());
            prop_assert!(out.span.get() <= horizon.get() + tol, "{}", kind.label());
        }
    }
}
