//! Property-based cross-crate invariants: every scheduler on random
//! workloads must produce feasible, deterministic schedules whose spans sit
//! inside the certified optimal bracket, and the structural lemmas of §4.3
//! must hold on real Profit runs.

use fjs::prelude::*;
use fjs::schedulers::{
    audit_batch, audit_batch_plus, audit_profit, BatchPlus, FlagGraph, FlagRecorder, Profit,
    OPTIMAL_K,
};
use fjs::workloads::{ArrivalProcess, LaxityModel, LengthLaw, WorkloadSpec};
use fjs_prng::{check, SmallRng};

/// Random workload spec with bounded parameters.
fn random_spec(rng: &mut SmallRng) -> WorkloadSpec {
    let n = rng.usize_range(5, 60);
    let arrivals = match rng.u64_below(3) {
        0 => ArrivalProcess::Poisson {
            rate: rng.f64_range(0.2, 3.0),
        },
        1 => ArrivalProcess::Uniform {
            gap: rng.f64_range(0.0, 4.0),
        },
        _ => ArrivalProcess::Bursty {
            burst_size: rng.usize_range(1, 6),
            rate: rng.f64_range(0.1, 1.0),
        },
    };
    let lengths = match rng.u64_below(3) {
        0 => LengthLaw::Fixed {
            value: rng.f64_range(1.0, 4.0),
        },
        1 => {
            let lo = rng.f64_range(1.0, 3.0);
            LengthLaw::Uniform {
                min: lo,
                max: lo + rng.f64_range(0.0, 9.0),
            }
        }
        _ => {
            let s = rng.f64_range(1.0, 2.0);
            LengthLaw::Bimodal {
                short: s,
                long: s * (1.0 + rng.f64_range(1.0, 30.0)),
                p_long: rng.f64_range(0.05, 0.95),
            }
        }
    };
    let laxity = match rng.u64_below(3) {
        0 => LaxityModel::Rigid,
        1 => LaxityModel::Constant {
            value: rng.f64_range(0.0, 20.0),
        },
        _ => LaxityModel::Proportional {
            factor: rng.f64_range(0.0, 4.0),
        },
    };
    WorkloadSpec {
        n,
        arrivals,
        lengths,
        laxity,
    }
}

/// Random spec materialized with a random seed.
fn random_instance(rng: &mut SmallRng) -> Instance {
    let spec = random_spec(rng);
    spec.generate(rng.u64_below(1000))
}

/// Feasibility + validity + optimal-bracket sandwich for every scheduler.
#[test]
fn schedulers_feasible_and_bracketed() {
    check::forall(48, |rng| {
        let inst = random_instance(rng);
        let lb = fjs::opt::best_lower_bound(&inst);
        for kind in SchedulerKind::full_set() {
            let out = kind.run_on(&inst);
            assert!(out.is_feasible(), "{} violated a deadline", kind.label());
            assert!(
                out.schedule.validate(&out.instance).is_ok(),
                "{}",
                kind.label()
            );
            // Tolerate f64 summation-order noise (different orders of
            // interval accumulation) with a tiny relative epsilon.
            let tol = 1e-9 * (1.0 + lb.get().abs());
            assert!(
                out.span.get() >= lb.get() - tol,
                "{}: span {} below the certified OPT lower bound {}",
                kind.label(),
                out.span,
                lb
            );
        }
    });
}

/// Runs are bit-for-bit deterministic.
#[test]
fn runs_are_deterministic() {
    check::forall(48, |rng| {
        let inst = random_instance(rng);
        for kind in SchedulerKind::full_set() {
            let a = kind.run_on(&inst);
            let b = kind.run_on(&inst);
            assert_eq!(a.span, b.span, "{} span nondeterministic", kind.label());
            assert_eq!(
                a.schedule,
                b.schedule,
                "{} schedule nondeterministic",
                kind.label()
            );
        }
    });
}

/// Determinism survives tied timestamps. Quantized workloads make equal
/// arrivals, equal deadlines, and arrival==deadline collisions the common
/// case, so any ordering left to hash/iteration nondeterminism in the event
/// queue would show up here as diverging schedules between two runs.
#[test]
fn tied_timestamps_keep_runs_deterministic() {
    check::forall(48, |rng| {
        let n = rng.usize_range(4, 30);
        let jobs: Vec<Job> = (0..n)
            .map(|_| {
                // Coarse 0.5-step grid: with ≤6 arrival slots and ≤4 laxity
                // slots, most instances have many exact ties.
                let a = rng.u64_below(6) as f64 * 0.5;
                let lax = rng.u64_below(4) as f64 * 0.5;
                let p = 0.5 + rng.u64_below(4) as f64 * 0.5;
                Job::adp(a, a + lax, p)
            })
            .collect();
        let inst = Instance::new(jobs);
        for kind in SchedulerKind::registered_set() {
            let a = kind.run_on(&inst);
            let b = kind.run_on(&inst);
            assert_eq!(
                a.schedule,
                b.schedule,
                "{} nondeterministic under tied timestamps",
                kind.label()
            );
            assert_eq!(a.span, b.span, "{} span diverged", kind.label());
        }
    });
}

/// Real runs of Batch/Batch+/Profit pass their rule audits.
#[test]
fn runs_pass_their_audits() {
    check::forall(48, |rng| {
        let inst = random_instance(rng);

        let mut batch = fjs::schedulers::Batch::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut batch);
        assert!(audit_batch(&out.instance, &out.schedule, &batch.flag_jobs()).is_ok());

        let mut plus = BatchPlus::new();
        let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut plus);
        assert!(audit_batch_plus(&out.instance, &out.schedule, &plus.flag_jobs()).is_ok());

        let mut profit = Profit::new(OPTIMAL_K);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut profit);
        assert!(audit_profit(&out.instance, &out.schedule, &profit.flag_jobs(), OPTIMAL_K).is_ok());
    });
}

/// §4.3 structural lemmas on real Profit executions.
#[test]
fn profit_flag_graph_lemmas() {
    check::forall(48, |rng| {
        let inst = random_instance(rng);
        let mut profit = Profit::new(OPTIMAL_K);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut profit);
        assert!(out.is_feasible());
        let graph = FlagGraph::from_outcome(&out, &profit.flag_jobs());
        assert!(graph.is_forest(), "Lemma 4.7 violated");
        assert!(graph.check_lemma_4_6().is_ok(), "Lemma 4.6 violated");
        assert!(graph.check_lemma_4_9().is_ok(), "Lemma 4.9 violated");
    });
}

/// Rigid workloads admit exactly one schedule: all schedulers tie, and
/// the span equals the mandatory-part bound exactly.
#[test]
fn rigid_instances_are_scheduler_independent() {
    check::forall(48, |rng| {
        let n = rng.usize_range(3, 40);
        let seed = rng.u64_below(500);
        let spec = WorkloadSpec {
            n,
            arrivals: ArrivalProcess::Poisson { rate: 1.0 },
            lengths: LengthLaw::Uniform { min: 1.0, max: 5.0 },
            laxity: LaxityModel::Rigid,
        };
        let inst = spec.generate(seed);
        let expected = fjs::opt::lb_mandatory(&inst);
        for kind in SchedulerKind::full_set() {
            let out = kind.run_on(&inst);
            let diff = (out.span - expected).get().abs();
            assert!(
                diff < 1e-9 * (1.0 + expected.get()),
                "{}: {} vs {}",
                kind.label(),
                out.span,
                expected
            );
        }
    });
}

/// The span never exceeds the horizon-width bound nor undershoots
/// max-length, for any scheduler.
#[test]
fn span_within_global_envelope() {
    check::forall(48, |rng| {
        let inst = random_instance(rng);
        let max_len = inst.max_length().unwrap();
        let horizon = inst.horizon().unwrap() - inst.first_arrival().unwrap();
        for kind in SchedulerKind::full_set() {
            let out = kind.run_on(&inst);
            let tol = 1e-9 * (1.0 + horizon.get().abs());
            assert!(out.span.get() >= max_len.get() - tol, "{}", kind.label());
            assert!(out.span.get() <= horizon.get() + tol, "{}", kind.label());
        }
    });
}
