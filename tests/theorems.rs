//! Cross-crate integration tests: every headline theorem of the paper,
//! checked end-to-end through the simulation engine, the adversaries and
//! the optimal baselines.

use fjs::adversary::{
    fig2_batch_tightness, fig3_batch_plus_tightness, phi, uniform_aligned_tightness,
    uniform_endfit_tightness, uniform_greedy_tightness, CvAdversary, NcAdversary,
    NcAdversaryParams, UnitTrapAdversary,
};
use fjs::core::sim::run;
use fjs::prelude::*;
use fjs::schedulers::{cdb_bound, optimal_alpha, profit_bound, OPTIMAL_K};

/// Theorem 3.4 (upper side): Batch's span never exceeds `(2μ+1)·OPT` on
/// random small instances with exact OPT.
#[test]
fn theorem_3_4_upper_bound_holds_exactly() {
    for seed in 0..200u64 {
        let inst = random_small(seed);
        let opt = fjs::opt::optimal_span_dp(&inst).unwrap();
        let out = SchedulerKind::Batch.run_on(&inst);
        let mu = inst.mu().unwrap();
        assert!(
            out.span.get() <= (2.0 * mu + 1.0) * opt.get() + 1e-9,
            "seed {seed}: Batch {} vs (2μ+1)·OPT {}",
            out.span,
            (2.0 * mu + 1.0) * opt.get()
        );
    }
}

/// Theorem 3.4 (lower side): the Figure 2 family drives Batch's ratio
/// arbitrarily close to 2μ.
#[test]
fn theorem_3_4_lower_bound_approached() {
    let mu = 4.0;
    let tight = fig2_batch_tightness(512, mu, 1e-3);
    let out = run_static(
        &tight.instance,
        Clairvoyance::NonClairvoyant,
        fjs::schedulers::Batch::new(),
    );
    let ratio = out.span.ratio(tight.prescribed_span);
    assert!(
        ratio > 2.0 * mu * 0.97,
        "ratio {ratio} should be within 3% of 2μ = {}",
        2.0 * mu
    );
}

/// Theorem 3.5 (tightness, both sides): Batch+ stays within `(μ+1)·OPT`
/// everywhere and reaches it on the Figure 3 family.
#[test]
fn theorem_3_5_tightness() {
    // Upper bound against exact OPT.
    for seed in 0..200u64 {
        let inst = random_small(seed);
        let opt = fjs::opt::optimal_span_dp(&inst).unwrap();
        let out = SchedulerKind::BatchPlus.run_on(&inst);
        let mu = inst.mu().unwrap();
        assert!(
            out.span.get() <= (mu + 1.0) * opt.get() + 1e-9,
            "seed {seed}: Batch+ exceeded (μ+1)·OPT"
        );
    }
    // Lower bound on the tightness family.
    let mu = 4.0;
    let tight = fig3_batch_plus_tightness(512, mu, 1e-3);
    let out = run_static(
        &tight.instance,
        Clairvoyance::NonClairvoyant,
        fjs::schedulers::BatchPlus::new(),
    );
    let ratio = out.span.ratio(tight.prescribed_span);
    assert!(
        ratio > (mu + 1.0) * 0.97,
        "ratio {ratio} vs μ+1 = {}",
        mu + 1.0
    );
    assert!(ratio <= mu + 1.0 + 1e-9);
}

/// Theorem 3.3: the adaptive adversary forces Batch/Batch+/Eager towards
/// `(kμ+1)/(μ+k)`, which → μ in k.
#[test]
fn theorem_3_3_adversary_forces_mu() {
    let mu = 8.0;
    for kind in [
        SchedulerKind::Batch,
        SchedulerKind::BatchPlus,
        SchedulerKind::Eager,
    ] {
        let mut adv = NcAdversary::new(NcAdversaryParams::uniform(mu, 32, 64));
        let out = run(&mut adv, kind.build());
        assert!(out.is_feasible());
        let prescribed = adv.prescribed_schedule(&out.instance).expect("Lemma 3.2");
        let ratio = out.span.ratio(prescribed.span(&out.instance));
        let target = (32.0 * mu + 1.0) / (mu + 32.0);
        assert!(
            ratio >= target * 0.99,
            "{}: ratio {ratio} below (kμ+1)/(μ+k) = {target}",
            kind.label()
        );
    }
}

/// Theorem 4.1: the φ-adversary certifies a ratio ≥ φ(1 − O(1/n)) against
/// every scheduler in the registry.
#[test]
fn theorem_4_1_phi_adversary_beats_everyone() {
    for kind in SchedulerKind::full_set() {
        let mut adv = CvAdversary::new(150);
        let out = run(&mut adv, kind.build());
        assert!(out.is_feasible(), "{}", kind.label());
        let prescribed = adv.prescribed_schedule(&out.instance);
        let ratio = out.span.ratio(prescribed.span(&out.instance));
        assert!(
            ratio >= phi() * 0.99,
            "{}: ratio {ratio} below 0.99·φ",
            kind.label()
        );
    }
}

/// Theorem 4.4: CDB within its proved constant against exact OPT.
#[test]
fn theorem_4_4_cdb_bound_holds() {
    let bound = cdb_bound(optimal_alpha());
    for seed in 0..200u64 {
        let inst = random_small(seed);
        let opt = fjs::opt::optimal_span_dp(&inst).unwrap();
        let out = SchedulerKind::cdb_optimal().run_on(&inst);
        assert!(
            out.span.get() <= bound * opt.get() + 1e-9,
            "seed {seed}: CDB ratio {} exceeds {bound}",
            out.span.get() / opt.get()
        );
    }
}

/// Theorem 4.11: Profit within its proved constant against exact OPT, for
/// several values of k.
#[test]
fn theorem_4_11_profit_bound_holds() {
    for k in [1.2, OPTIMAL_K, 2.5] {
        let bound = profit_bound(k);
        for seed in 0..120u64 {
            let inst = random_small(seed);
            let opt = fjs::opt::optimal_span_dp(&inst).unwrap();
            let out = SchedulerKind::Profit { k }.run_on(&inst);
            assert!(
                out.span.get() <= bound * opt.get() + 1e-9,
                "seed {seed}, k {k}: Profit ratio {} exceeds {bound}",
                out.span.get() / opt.get()
            );
        }
    }
}

/// Uniform-jobs upper bounds against exact OPT: every scheduler in the
/// uniform family stays within its instance-dependent claimed ratio —
/// UnitAligned within `2·OPT`, UnitGreedy and UnitEndfit within
/// `(1+λ)·OPT` — over the full seeded unit-length grid.
#[test]
fn uniform_family_bounds_hold_against_exact_optimum() {
    for seed in 0..200u64 {
        let inst = random_uniform(seed);
        let opt = fjs::opt::optimal_span_dp(&inst).unwrap();
        for kind in SchedulerKind::uniform_set() {
            let bound = kind
                .ratio_bound_on(&inst)
                .expect("uniform family always carries a bound on uniform instances");
            let out = kind.run_on(&inst);
            assert!(
                out.span.get() <= bound * opt.get() + 1e-9,
                "seed {seed}: {} span {} exceeds {bound}·OPT = {}",
                kind.label(),
                out.span,
                bound * opt.get()
            );
        }
    }
}

/// At μ = 1 the general Batch+ theorem degenerates to `(μ+1) = 2`: the
/// mixed-length scheduler matches the uniform family's bound on
/// unit-length instances (no uniform-specific code path needed).
#[test]
fn mu_one_degenerates_batch_plus_to_ratio_two() {
    for seed in 0..200u64 {
        let inst = random_uniform(seed);
        assert_eq!(inst.mu(), Some(1.0));
        assert_eq!(SchedulerKind::BatchPlus.ratio_bound_on(&inst), Some(2.0));
        let opt = fjs::opt::optimal_span_dp(&inst).unwrap();
        let out = SchedulerKind::BatchPlus.run_on(&inst);
        assert!(
            out.span.get() <= 2.0 * opt.get() + 1e-9,
            "seed {seed}: Batch+ exceeded 2·OPT at μ=1"
        );
    }
}

/// Uniform tightness, all three constructions: the aligned family drives
/// UnitAligned arbitrarily close to 2 (never over), and the two one-sided
/// families realize `1+λ` *exactly* against their victims.
#[test]
fn uniform_tightness_families_realize_their_bounds() {
    let t = uniform_aligned_tightness(256, 1e-3);
    let out = run_static(
        &t.instance,
        Clairvoyance::NonClairvoyant,
        SchedulerKind::UnitAligned.build(),
    );
    let ratio = out.span.ratio(t.prescribed_span);
    assert!(ratio > 2.0 * 0.97, "aligned ratio {ratio} within 3% of 2");
    assert!(ratio <= 2.0 + 1e-9);

    let g = 7usize;
    let t = uniform_greedy_tightness(8, g);
    let out = run_static(
        &t.instance,
        Clairvoyance::NonClairvoyant,
        SchedulerKind::UnitGreedy.build(),
    );
    assert_eq!(out.span.ratio(t.prescribed_span), g as f64);

    let n = 9usize;
    let t = uniform_endfit_tightness(n);
    let out = run_static(
        &t.instance,
        Clairvoyance::NonClairvoyant,
        SchedulerKind::UnitEndfit.build(),
    );
    assert_eq!(out.span.ratio(t.prescribed_span), n as f64);
}

/// The adaptive unit trap forces exactly 2 against arrival-greedy play —
/// the uniform-jobs deterministic lower bound — and its certificate is
/// honest: the realized ratio equals its outcome-dependent claim.
#[test]
fn unit_trap_forces_two_on_arrival_greedy_play() {
    for kind in [SchedulerKind::Eager, SchedulerKind::UnitGreedy] {
        let mut adv = UnitTrapAdversary::new(16, 1.0);
        let out = run(&mut adv, kind.build());
        assert!(out.is_feasible(), "{}", kind.label());
        let prescribed = adv.prescribed_schedule(&out.instance);
        let ratio = out.span.ratio(prescribed.span(&out.instance));
        assert_eq!(adv.trapped(), 16, "{} escaped a round", kind.label());
        assert_eq!(ratio, 2.0, "{}", kind.label());
        assert_eq!(ratio, adv.claimed_forced_ratio());
    }
}

/// Deterministic small integer instance family (exactly solvable).
fn random_small(seed: u64) -> Instance {
    // splitmix64
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = 2 + (next() % 4) as usize;
    let jobs: Vec<Job> = (0..n)
        .map(|_| {
            let a = (next() % 7) as f64;
            let lax = (next() % 5) as f64;
            let p = 1.0 + (next() % 4) as f64;
            Job::adp(a, a + lax, p)
        })
        .collect();
    Instance::new(jobs)
}

/// Deterministic small *unit-length* instance family (μ = 1, exactly
/// solvable): the `random_small` grid with every length pinned to 1.
fn random_uniform(seed: u64) -> Instance {
    let mut state = seed.wrapping_add(0xA076_1D64_78BD_642F);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = 2 + (next() % 4) as usize;
    let jobs: Vec<Job> = (0..n)
        .map(|_| {
            let a = (next() % 7) as f64;
            let lax = (next() % 5) as f64;
            Job::adp(a, a + lax, 1.0)
        })
        .collect();
    Instance::new(jobs)
}
