//! End-to-end tests for the §5 pipeline: online scheduling → First Fit
//! packing → usage-time accounting, with capacity verification.

use fjs::dbp::{
    deterministic_sizes, outcome_items, pack, usage_lower_bound, verify_capacity, Packer,
};
use fjs::prelude::*;
use fjs::workloads::Scenario;
use fjs_prng::check;

#[test]
fn every_scheduler_packer_combination_is_capacity_safe() {
    let inst = Scenario::CloudBatch.generate(300, 5);
    let sizes = deterministic_sizes(300, 0.05, 0.8, 17);
    for kind in SchedulerKind::full_set() {
        let out = kind.run_on(&inst);
        let items = outcome_items(&out, &sizes);
        for packer in [
            Packer::FirstFit,
            Packer::ClassifiedFirstFit {
                alpha: 2.0,
                base: 1.0,
            },
        ] {
            let packing = pack(&items, packer);
            assert!(
                verify_capacity(&items, &packing).is_none(),
                "{} + {:?}: capacity violated",
                kind.label(),
                packer
            );
            assert!(packing.total_usage >= usage_lower_bound(&items) - dur(1e-9));
            assert!(
                packing.total_usage >= out.span - dur(1e-9),
                "usage dominates span"
            );
            // Every item placed exactly once.
            let placed: usize = packing.bins.iter().map(|b| b.items.len()).sum();
            assert_eq!(placed, items.len());
        }
    }
}

#[test]
fn classified_first_fit_respects_classes() {
    let inst = Scenario::BurstyAnalytics.generate(200, 9);
    let sizes = deterministic_sizes(200, 0.2, 0.5, 3);
    let out = SchedulerKind::BatchPlus.run_on(&inst);
    let items = outcome_items(&out, &sizes);
    let packing = pack(
        &items,
        Packer::ClassifiedFirstFit {
            alpha: 2.0,
            base: 1.0,
        },
    );
    for bin in &packing.bins {
        assert!(bin.class.is_some());
        // All durations in one bin within a factor 2 of each other (one
        // geometric class).
        let durs: Vec<f64> = bin
            .items
            .iter()
            .map(|&i| items[i].interval.len().get())
            .collect();
        let lo = durs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = durs.iter().cloned().fold(0.0, f64::max);
        assert!(
            hi / lo <= 2.0 * (1.0 + 1e-6),
            "bin mixes classes: {lo}..{hi}"
        );
    }
}

/// Usage is sandwiched: span ≤ usage ≤ total work (each bin's usage is
/// at most the sum of its items' durations), and items small enough to
/// all fit together collapse to a single bin with usage = span.
#[test]
fn usage_sandwich_and_tiny_items_share_one_bin() {
    check::forall(32, |rng| {
        let seed = rng.u64_below(300);
        let n = rng.usize_range(10, 80);
        let inst = Scenario::SlackRich.generate(n, seed);
        let out = SchedulerKind::BatchPlus.run_on(&inst);

        let sizes = deterministic_sizes(n, 0.1, 0.9, seed);
        let items = outcome_items(&out, &sizes);
        let packing = pack(&items, Packer::FirstFit);
        assert!(packing.total_usage >= out.span - dur(1e-9));
        assert!(packing.total_usage <= out.instance.total_work() + dur(1e-9));

        let tiny = vec![1.0 / n as f64; n];
        let tiny_items = outcome_items(&out, &tiny);
        let tiny_packing = pack(&tiny_items, Packer::FirstFit);
        assert_eq!(tiny_packing.num_bins(), 1);
        assert_eq!(tiny_packing.total_usage, out.span);
    });
}

/// Unit-size items can never share bins: usage equals total work.
#[test]
fn unit_sizes_force_one_job_per_bin() {
    check::forall(32, |rng| {
        let seed = rng.u64_below(300);
        let inst = Scenario::RigidLegacy.generate(40, seed);
        let out = SchedulerKind::Eager.run_on(&inst);
        let sizes = vec![1.0; 40];
        let items = outcome_items(&out, &sizes);
        let packing = pack(&items, Packer::FirstFit);
        // Summation order differs between per-bin accounting and total
        // work, so compare with a tolerance.
        let diff = (packing.total_usage - out.instance.total_work())
            .get()
            .abs();
        assert!(
            diff < 1e-6,
            "usage {} vs work {}",
            packing.total_usage,
            out.instance.total_work()
        );
    });
}
