//! Lock-in suite for the performance layer: the two-pointer interval
//! union and windowed measure are differentials against a sort-and-merge
//! oracle, the exact-optimum cache's canonical fingerprint is invariant
//! under translation and power-of-two scaling, cache hits never change
//! oracle verdicts, the sharded executor is bit-identical to serial for
//! conformance and soak sweeps (including interrupt + resume), and the
//! `fjs bench` JSON honours schema v1 with a zero-regression self-diff.

use fjs::core::interval::{Interval, IntervalSet};
use fjs::core::job::{Instance, Job};
use fjs::core::time::{dur, t};
use fjs_cli::soak::{run_soak, SoakOptions};
use fjs_prng::check::forall;
use fjs_prng::SmallRng;
use fjs_testkit::{
    all_targets, check_all, run_conformance, ConformConfig, OracleViolation, Target,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tests that assert on the process-global opt-cache counters or flip its
/// enabled flag serialize here so parallel test threads don't race them.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

/// A unique temp path per call so tests don't collide.
fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("fjs-perf-{tag}-{}-{n}", std::process::id()));
    p
}

// ---------------------------------------------------------------------------
// Interval-set differentials: the two-pointer `union_with` and the
// partition-point `measure_within` against a naive sort-and-merge oracle.
// ---------------------------------------------------------------------------

/// Adversarial interval batch on a half-integer grid: short intervals chain
/// into touching runs, long ones nest and bridge them, and repeated
/// endpoints force every tie-handling branch.
fn adversarial_intervals(rng: &mut SmallRng) -> Vec<Interval> {
    let n = rng.u64_below(12) as usize;
    (0..n)
        .map(|_| {
            let lo = rng.u64_below(24) as f64 * 0.5;
            let len = match rng.u64_below(4) {
                0 => 0.5,
                1 => 1.0,
                2 => 4.0,
                _ => 9.0,
            };
            Interval::new(t(lo), t(lo + len))
        })
        .collect()
}

/// The oracle: gather every interval, sort by `lo`, and coalesce touching
/// or overlapping neighbours in one pass.
fn sort_and_merge(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut all: Vec<Interval> = a.iter().chain(b.iter()).copied().collect();
    all.sort_by(|x, y| {
        x.lo()
            .get()
            .partial_cmp(&y.lo().get())
            .expect("finite endpoints")
    });
    let mut merged: Vec<Interval> = Vec::new();
    for iv in all {
        match merged.last_mut() {
            Some(last) if iv.lo() <= last.hi() => {
                if iv.hi() > last.hi() {
                    *last = Interval::new(last.lo(), iv.hi());
                }
            }
            _ => merged.push(iv),
        }
    }
    merged
}

#[test]
fn prop_union_with_matches_sort_and_merge_oracle() {
    forall(300, |rng| {
        let a = adversarial_intervals(rng);
        let b = adversarial_intervals(rng);
        let mut set: IntervalSet = a.iter().copied().collect();
        let other: IntervalSet = b.iter().copied().collect();
        set.union_with(&other);
        assert_eq!(
            set.segments(),
            sort_and_merge(&a, &b).as_slice(),
            "union_with diverged from the sort-and-merge oracle on {a:?} ∪ {b:?}"
        );
        // Union must be symmetric.
        let mut flipped: IntervalSet = b.iter().copied().collect();
        flipped.union_with(&a.iter().copied().collect());
        assert_eq!(set, flipped);
    });
}

#[test]
fn prop_measure_within_matches_full_scan_oracle() {
    forall(300, |rng| {
        let set: IntervalSet = adversarial_intervals(rng).into_iter().collect();
        for _ in 0..8 {
            let lo = rng.u64_below(40) as f64 * 0.5 - 3.0;
            let len = rng.u64_below(30) as f64 * 0.5;
            let window = Interval::new(t(lo), t(lo + len));
            let naive: f64 = set
                .segments()
                .iter()
                .map(|s| s.overlap_len(&window).get())
                .sum();
            assert_eq!(
                set.measure_within(&window),
                dur(naive),
                "measure_within diverged on window {window:?} over {set}"
            );
        }
    });
}

// ---------------------------------------------------------------------------
// Exact-optimum cache: canonical-fingerprint invariance and verdict
// stability under cache hits.
// ---------------------------------------------------------------------------

/// Random small integer instance well inside the DP's comfort zone.
fn small_int_instance(rng: &mut SmallRng) -> Instance {
    let n = 1 + rng.u64_below(4) as usize;
    Instance::new(
        (0..n)
            .map(|_| {
                let a = rng.u64_below(6) as f64;
                let lax = rng.u64_below(4) as f64;
                let p = 1.0 + rng.u64_below(3) as f64;
                Job::adp(a, a + lax, p)
            })
            .collect(),
    )
}

#[test]
fn prop_fingerprint_invariant_under_translation_and_pow2_scaling() {
    use fjs::opt::{cached_optimal_span_dp, optimal_span_dp};
    use fjs_testkit::oracles::{scaled, translated};

    forall(60, |rng| {
        let inst = small_int_instance(rng);
        let base = cached_optimal_span_dp(&inst).expect("small integer instance");
        assert_eq!(base, optimal_span_dp(&inst).expect("uncached solve"));

        // Translation: the canonical key shifts the earliest arrival to 0,
        // so any integer offset lands on the same entry — and the same span.
        let offset = rng.u64_below(50) as f64;
        let moved = translated(&inst, offset);
        assert_eq!(cached_optimal_span_dp(&moved).expect("translated"), base);
        assert_eq!(optimal_span_dp(&moved).expect("translated uncached"), base);

        // Power-of-two scaling: the key divides by the GCD, the cached
        // span multiplies back exactly (integers through exact f64 ops).
        let factor = (1u64 << rng.u64_below(3)) as f64;
        let grown = scaled(&inst, factor);
        let expect = dur(base.get() * factor);
        assert_eq!(cached_optimal_span_dp(&grown).expect("scaled"), expect);
        assert_eq!(optimal_span_dp(&grown).expect("scaled uncached"), expect);
    });
}

/// Flattens a `check_all` outcome into something comparable.
fn verdicts(target: &Target, insts: &[Instance]) -> Vec<(usize, Vec<(String, String)>)> {
    insts
        .iter()
        .map(|inst| {
            let (checks, violations) = check_all(target, inst, None);
            let flat = violations
                .iter()
                .map(|v: &OracleViolation| (v.oracle.id().to_string(), v.detail.clone()))
                .collect();
            (checks, flat)
        })
        .collect()
}

#[test]
fn cache_hits_never_change_oracle_verdicts() {
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = SmallRng::seed_from_u64(2017);
    let insts: Vec<Instance> = (0..6).map(|_| small_int_instance(&mut rng)).collect();
    let targets = all_targets();

    fjs::opt::cache::reset();
    let cold: Vec<_> = targets.iter().map(|t| verdicts(t, &insts)).collect();
    let after_cold = fjs::opt::cache::stats();
    assert!(
        after_cold.misses > 0,
        "the cold pass must actually exercise the ratio oracle"
    );

    let warm: Vec<_> = targets.iter().map(|t| verdicts(t, &insts)).collect();
    let after_warm = fjs::opt::cache::stats();
    assert_eq!(cold, warm, "a cache hit changed an oracle verdict");
    assert!(
        after_warm.hits > after_cold.hits,
        "the warm pass must be served from the cache"
    );
}

#[test]
fn conform_is_bit_identical_cached_and_uncached() {
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let targets = all_targets();
    let config = ConformConfig {
        cases: 12,
        base_seed: 3,
        quick: true,
        shards: 2,
        ..ConformConfig::default()
    };
    let cached = format!("{:?}", run_conformance(&targets, &config));
    fjs::opt::cache::set_enabled(false);
    let uncached = format!("{:?}", run_conformance(&targets, &config));
    fjs::opt::cache::set_enabled(true);
    assert_eq!(
        cached, uncached,
        "the memo table changed a conformance report"
    );
}

// ---------------------------------------------------------------------------
// Sharded executor determinism: conformance and soak sweeps bit-identical
// to serial at 1/2/8 shards, including interrupt + resume.
// ---------------------------------------------------------------------------

#[test]
fn conform_report_identical_at_1_2_8_shards() {
    let targets = all_targets();
    let run = |shards: usize| {
        let config = ConformConfig {
            cases: 24,
            base_seed: 5,
            quick: true,
            shards,
            ..ConformConfig::default()
        };
        format!("{:?}", run_conformance(&targets, &config))
    };
    let serial = run(1);
    for shards in [2, 8] {
        assert_eq!(run(shards), serial, "conform diverged at {shards} shard(s)");
    }
}

fn soak_targets() -> Vec<Target> {
    vec![
        Target::Kind(fjs::schedulers::SchedulerKind::Batch),
        Target::Kind(fjs::schedulers::SchedulerKind::Eager),
    ]
}

#[test]
fn soak_journal_identical_at_1_2_8_shards() {
    let mut journals = Vec::new();
    let mut reports = Vec::new();
    for shards in [1usize, 2, 8] {
        let path = scratch(&format!("shards{shards}"));
        let mut opts = SoakOptions::new(soak_targets(), &path);
        opts.cells = 6;
        opts.base_seed = 11;
        opts.shards = shards;
        let summary = run_soak(&opts).expect("soak");
        assert!(!summary.interrupted);
        journals.push(std::fs::read(&path).expect("journal bytes"));
        reports.push(summary.report);
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(journals[0], journals[1], "2 shards diverged from serial");
    assert_eq!(journals[0], journals[2], "8 shards diverged from serial");
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}

#[test]
fn sharded_soak_interrupted_and_resumed_converges_to_serial() {
    // Serial uninterrupted reference.
    let ref_path = scratch("resume-ref");
    let mut reference = SoakOptions::new(soak_targets(), &ref_path);
    reference.cells = 6;
    reference.base_seed = 23;
    let full = run_soak(&reference).expect("reference soak");

    // Sharded run "killed" mid-sweep, then resumed at a different shard
    // count: the journal must converge to the serial reference bytes.
    let cut_path = scratch("resume-cut");
    let mut cut = SoakOptions::new(soak_targets(), &cut_path);
    cut.cells = 6;
    cut.base_seed = 23;
    cut.shards = 4;
    cut.stop_after = Some(5);
    let first = run_soak(&cut).expect("interrupted soak");
    assert!(first.interrupted, "stop_after must interrupt the sweep");
    assert_eq!(first.ran, 5, "stop_after bounds executed cells exactly");

    cut.stop_after = None;
    cut.resume = true;
    cut.shards = 8;
    let second = run_soak(&cut).expect("resumed soak");
    assert!(!second.interrupted);

    assert_eq!(
        std::fs::read(&ref_path).expect("ref"),
        std::fs::read(&cut_path).expect("cut"),
        "sharded interrupt + resume must converge to the serial journal"
    );
    assert_eq!(second.report, full.report);
    let _ = std::fs::remove_file(&ref_path);
    let _ = std::fs::remove_file(&cut_path);
}

// ---------------------------------------------------------------------------
// Bench golden contract: schema-v1 JSON, lossless round-trip, and a
// self-diff with zero regressions.
// ---------------------------------------------------------------------------

#[test]
fn bench_json_honours_schema_v1_and_self_diff_is_clean() {
    use fjs::analysis::{diff_reports, BenchReport};

    std::env::set_var("FJS_BENCH_QUICK", "1");
    let report = fjs_cli::bench::run_bench_suite();
    report
        .validate()
        .expect("bench report must satisfy schema v1");
    assert_eq!(report.cases.len(), 7, "the suite ships seven named cases");
    assert!(
        report.cases.iter().any(|c| c.name == "engine-static-10k"),
        "the 10x engine case (arena/calendar scaling) must be in the suite"
    );

    let reparsed = BenchReport::parse(&report.to_json()).expect("round-trip parse");
    reparsed
        .validate()
        .expect("round-tripped report stays valid");
    assert_eq!(reparsed.cases.len(), report.cases.len());

    let diff = diff_reports(&report, &reparsed);
    assert_eq!(diff.aligned.len(), report.cases.len());
    assert!(diff.only_old.is_empty() && diff.only_new.is_empty());
    assert!(
        diff.regressions(0.0).is_empty(),
        "a report diffed against itself must show zero regressions"
    );
}

// ---------------------------------------------------------------------------
// Arena/queue memory gate: the 10k batch run must not grow its footprint
// past the structural bounds — every job resident exactly once (batch runs
// never recycle slots) and the calendar queue holding at most one
// completion, alarm, and ordered-start per live job plus slack for probes
// and wakeups.
// ---------------------------------------------------------------------------

#[test]
fn engine_10k_memory_counters_stay_within_structural_bounds() {
    use fjs::core::sim::{run_static, Clairvoyance};

    let inst = fjs::workloads::Scenario::CloudBatch.generate(10_000, 3);
    let out = run_static(
        &inst,
        Clairvoyance::NonClairvoyant,
        fjs::schedulers::Batch::new(),
    );
    assert!(out.is_feasible());

    // Batch runs retain every released job: the arena high-water mark and
    // total slot count both equal the job count, or slots are leaking.
    assert_eq!(
        out.stats.peak_retained, 10_000,
        "arena must retain 10k jobs"
    );
    assert_eq!(
        out.stats.arena_slots, 10_000,
        "arena must allocate 10k slots"
    );

    // The queue holds at most a few pending events per live job (completion
    // + deadline alarm dominate; probes/wakeups are transient). 4× jobs is
    // a loose structural ceiling — the seed run peaks far below it.
    assert!(
        out.stats.peak_queue <= 4 * 10_000,
        "peak queue {} exceeds the 4-events-per-job structural bound",
        out.stats.peak_queue
    );
    assert!(out.stats.is_consistent(), "per-kind counters must sum");
}
