//! Conformance-layer integration tests: the counterexample corpus replays
//! clean, the two exact solvers agree on a differential sweep, the Figure
//! 2/3 tightness families match their analytic optimal spans across a
//! `μ × m` grid, and the parallel conformance pipeline is deterministic.

use fjs::adversary::{
    fig2_batch_tightness, fig3_batch_plus_tightness, uniform_aligned_tightness,
    uniform_endfit_tightness, uniform_greedy_tightness, UnitTrapAdversary,
};
use fjs::core::sim::run;
use fjs::prelude::*;
use fjs::workloads::{IntFamily, LoadRegime, SlackRegime};
use fjs_prng::check::case_seed;
use fjs_testkit::{
    all_targets, load_dir, replay, run_conformance, still_fails, uniform_targets, ConformConfig,
    DeckKind, Expectation, Target,
};
use std::path::Path;

/// Every committed corpus entry must still replay with its recorded
/// expectation: `violate` entries prove the harness still catches the
/// injected bug, `pass` entries guard fixed scheduler bugs against
/// regression.
#[test]
fn corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("corpus must load");
    assert!(
        !entries.is_empty(),
        "the corpus ships at least the chaos self-test entry"
    );
    for (path, entry) in &entries {
        replay(entry).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if entry.expect == Expectation::Violate {
            assert!(
                entry.instance.len() <= 6,
                "{}: violate entries are committed minimized (got {} jobs)",
                path.display(),
                entry.instance.len()
            );
        }
    }
}

/// Differential test of the exact solvers: the interval DP and the
/// brute-force enumeration must agree on every small integral instance
/// across the full `(μ, slack, load)` family grid.
#[test]
fn dp_and_exhaustive_agree_on_small_instances() {
    let mut cases = 0usize;
    for &mu in &[1u64, 2, 4] {
        for &slack in &[
            SlackRegime::Rigid,
            SlackRegime::Tight,
            SlackRegime::Proportional,
            SlackRegime::Generous,
        ] {
            for &load in &[LoadRegime::Burst, LoadRegime::Moderate, LoadRegime::Sparse] {
                let fam = IntFamily {
                    n: 5,
                    mu,
                    slack,
                    load,
                };
                for _ in 0..6 {
                    let inst = fam.generate(case_seed(11, cases));
                    let dp = fjs::opt::optimal_span_dp(&inst).unwrap();
                    let ex = fjs::opt::optimal_span_exhaustive(&inst).unwrap();
                    assert!(
                        (dp.get() - ex.get()).abs() < 1e-9,
                        "{} case {cases}: dp {dp:?} vs exhaustive {ex:?}",
                        fam.label()
                    );
                    cases += 1;
                }
            }
        }
    }
    assert!(
        cases >= 200,
        "differential sweep covers at least 200 instances, got {cases}"
    );
}

/// Figure 2 across a `μ × m` grid: the prescribed schedule's span equals
/// the analytic optimum `m(1+ε) + μ`, and Batch is driven to the induced
/// span `2mμ` (the Theorem 3.4 lower-bound construction) while staying
/// under the `(2μ+1)·OPT` upper bound.
#[test]
fn fig2_matches_analytic_optimum_across_grid() {
    let eps = 1e-3;
    for &mu in &[2.0, 4.0, 8.0] {
        for &m in &[1usize, 2, 4, 8, 16] {
            let t = fig2_batch_tightness(m, mu, eps);
            let analytic = m as f64 * (1.0 + eps) + mu;
            assert!(
                (t.prescribed_span.get() - analytic).abs() < 1e-9,
                "m={m} μ={mu}: prescribed {} vs analytic {analytic}",
                t.prescribed_span.get()
            );
            assert!(fjs::opt::best_lower_bound(&t.instance).get() <= analytic + 1e-9);
            let out = run_static(
                &t.instance,
                Clairvoyance::NonClairvoyant,
                fjs::schedulers::Batch::new(),
            );
            let induced = 2.0 * m as f64 * mu;
            assert!(
                out.span.get() >= induced - 1e-6,
                "m={m} μ={mu}: Batch span {} below induced {induced}",
                out.span.get()
            );
            assert!(out.span.get() <= (2.0 * mu + 1.0) * analytic + 1e-9);
        }
    }
}

/// Figure 3 across a `μ × m` grid: the prescribed schedule's span equals
/// the analytic optimum `m + μ`, and Batch+ is driven to the induced span
/// `m(μ+1−ε)` (the Theorem 3.5 tightness construction) while staying
/// under the `(μ+1)·OPT` upper bound.
#[test]
fn fig3_matches_analytic_optimum_across_grid() {
    let eps = 1e-3;
    for &mu in &[2.0, 4.0, 8.0] {
        for &m in &[1usize, 2, 4, 8, 16] {
            let t = fig3_batch_plus_tightness(m, mu, eps);
            let analytic = m as f64 + mu;
            assert!(
                (t.prescribed_span.get() - analytic).abs() < 1e-9,
                "m={m} μ={mu}: prescribed {} vs analytic {analytic}",
                t.prescribed_span.get()
            );
            assert!(fjs::opt::best_lower_bound(&t.instance).get() <= analytic + 1e-9);
            let out = run_static(
                &t.instance,
                Clairvoyance::NonClairvoyant,
                fjs::schedulers::BatchPlus::new(),
            );
            let induced = m as f64 * (mu + 1.0 - eps);
            assert!(
                out.span.get() >= induced - 1e-6,
                "m={m} μ={mu}: Batch+ span {} below induced {induced}",
                out.span.get()
            );
            assert!(out.span.get() <= (mu + 1.0) * analytic + 1e-9);
        }
    }
}

/// The conformance fan-out relies on `parallel_map` being a drop-in for a
/// serial map: same inputs, bit-identical outputs, input order preserved.
#[test]
fn parallel_map_matches_serial_evaluation() {
    let inputs: Vec<u64> = (0..48).collect();
    let eval = |seed: &u64| {
        let fam = IntFamily {
            n: 24,
            mu: 6,
            slack: SlackRegime::Generous,
            load: LoadRegime::Moderate,
        };
        let inst = fam.generate(*seed);
        SchedulerKind::Batch.run_on(&inst).span.get().to_bits()
    };
    let par = fjs::analysis::parallel_map(&inputs, eval);
    let ser: Vec<u64> = inputs.iter().map(eval).collect();
    assert_eq!(
        par, ser,
        "parallel_map must equal the serial map bit-for-bit"
    );
}

/// Adversary transfer matrix (uniform lower bounds vs the baselines):
/// the adaptive unit trap is played against every non-clairvoyant
/// baseline and its certificate must be *exact* — realized ratio equals
/// the outcome-dependent claim `(2t+e)/(t+e)`, bit for bit — with the
/// arrival-greedy schedulers pinned at the full forced ratio 2 and the
/// deadline players pinned at the honest 1.
#[test]
fn unit_trap_transfer_matrix_is_bit_stable() {
    let pinned: &[(SchedulerKind, f64)] = &[
        (SchedulerKind::Eager, 2.0),
        (SchedulerKind::UnitGreedy, 2.0),
        (SchedulerKind::Lazy, 1.0),
        (SchedulerKind::UnitEndfit, 1.0),
        (SchedulerKind::BatchPlus, 1.0),
        (SchedulerKind::UnitAligned, 1.0),
        (SchedulerKind::Doubler { c: 1.0 }, 1.0),
    ];
    for &(kind, expect) in pinned {
        let mut adv = UnitTrapAdversary::new(8, 1.0);
        let out = run(&mut adv, kind.build());
        assert!(out.is_feasible(), "{}", kind.label());
        assert_eq!(adv.rounds_played(), 8, "{}", kind.label());
        let prescribed = adv.prescribed_schedule(&out.instance);
        prescribed
            .validate(&out.instance)
            .expect("prescribed feasible");
        let ratio = out.span.ratio(prescribed.span(&out.instance));
        assert_eq!(ratio, expect, "{} realized ratio drifted", kind.label());
        assert_eq!(
            ratio,
            adv.claimed_forced_ratio(),
            "{}: certificate must equal the realized ratio exactly",
            kind.label()
        );
    }
}

/// The static uniform tightness constructions force their claimed lower
/// bounds against at least one mixed-length baseline each: the greedy
/// family realizes exactly `g` on Eager, the endfit family exactly `n`
/// on Lazy, and the aligned family drives Batch+ beyond `2 − ε·2`.
#[test]
fn uniform_tightness_transfers_to_baselines() {
    let g = 6usize;
    let t = uniform_greedy_tightness(5, g);
    let out = run_static(
        &t.instance,
        Clairvoyance::NonClairvoyant,
        SchedulerKind::Eager.build(),
    );
    assert_eq!(out.span.ratio(t.prescribed_span), g as f64);

    let n = 8usize;
    let t = uniform_endfit_tightness(n);
    let out = run_static(
        &t.instance,
        Clairvoyance::NonClairvoyant,
        SchedulerKind::Lazy.build(),
    );
    assert_eq!(out.span.ratio(t.prescribed_span), n as f64);

    let (m, eps) = (64usize, 1e-3);
    let t = uniform_aligned_tightness(m, eps);
    let out = run_static(
        &t.instance,
        Clairvoyance::NonClairvoyant,
        fjs::schedulers::BatchPlus::new(),
    );
    let ratio = out.span.ratio(t.prescribed_span);
    assert!(
        ratio > 2.0 - 2.0 * eps - 2.0 / m as f64,
        "Batch+ ratio {ratio} on aligned(m={m})"
    );
    assert!(ratio <= 2.0 + 1e-9, "μ=1 keeps Batch+ under 2");
}

/// `fjs conform uniform` is shard-invariant: the uniform deck over the
/// full uniform target set produces a bit-identical clean report at 1, 2
/// and 8 worker shards.
#[test]
fn uniform_conformance_is_clean_and_shard_invariant() {
    let targets = uniform_targets();
    let render = |shards: usize| {
        let config = ConformConfig {
            cases: 24,
            deck: DeckKind::Uniform,
            base_seed: 1,
            quick: true,
            shards,
            ..ConformConfig::default()
        };
        let r = run_conformance(&targets, &config);
        let details: Vec<String> = r
            .failures
            .iter()
            .map(|f| format!("{} / {}: {}", f.target.name(), f.oracle.id(), f.detail))
            .collect();
        assert!(r.is_clean(), "shards={shards}:\n{}", details.join("\n"));
        format!("{} {} {:?}", r.cases, r.checks, details)
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
}

/// Injected chaos on the uniform deck is caught, and delta-debugging the
/// counterexample never leaves the uniform family: every minimized
/// failure is still unit-length and still fails its oracle.
#[test]
fn uniform_chaos_shrinks_stay_uniform() {
    let target = Target::from_name("chaos:drop-starts:ualign").expect("parseable");
    let config = ConformConfig {
        cases: 16,
        deck: DeckKind::Uniform,
        base_seed: 1,
        quick: true,
        ..ConformConfig::default()
    };
    let report = run_conformance(&[target], &config);
    assert!(!report.is_clean(), "harness must catch chaos on ualign");
    for f in &report.failures {
        assert!(
            f.shrunk.is_uniform(),
            "shrunk counterexample went mixed: {:?}",
            f.shrunk
        );
        assert!(still_fails(&f.target, f.oracle, &f.shrunk));
    }
}

/// The uniform corpus directory replays clean, exactly like the main one:
/// its `violate` entries prove the harness still catches the injected
/// uniform-scheduler bug on minimized unit-length instances.
#[test]
fn uniform_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/uniform");
    let entries = load_dir(&dir).expect("uniform corpus must load");
    assert!(
        !entries.is_empty(),
        "the uniform corpus ships at least the chaos self-test entry"
    );
    for (path, entry) in &entries {
        replay(entry).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            entry.instance.is_uniform(),
            "{}: uniform corpus entries must be unit-length",
            path.display()
        );
        if entry.expect == Expectation::Violate {
            assert!(
                entry.instance.len() <= 6,
                "{}: violate entries are committed minimized (got {} jobs)",
                path.display(),
                entry.instance.len()
            );
        }
    }
}

/// `fjs conform` with a fixed seed is a pure function: two runs over every
/// registered scheduler produce identical clean reports.
#[test]
fn conformance_run_is_deterministic_and_clean() {
    let config = ConformConfig {
        cases: 16,
        base_seed: 1,
        quick: true,
        ..ConformConfig::default()
    };
    let targets = all_targets();
    let a = run_conformance(&targets, &config);
    let b = run_conformance(&targets, &config);
    let details: Vec<String> = a
        .failures
        .iter()
        .map(|f| format!("{} / {}: {}", f.target.name(), f.oracle.id(), f.detail))
        .collect();
    assert!(
        a.is_clean(),
        "conformance failures:\n{}",
        details.join("\n")
    );
    assert_eq!(a.cases, b.cases);
    assert_eq!(a.checks, b.checks);
    assert_eq!(a.failures.len(), b.failures.len());
}
