//! The lower-bound adversaries against the *extension* schedulers: the
//! Theorem 4.1 bound is for every deterministic scheduler, and our
//! extensions (seeded RandomStart, Threshold, SemiCdb) are deterministic —
//! so the golden-ratio adversary must certify ≈φ against them too.

use fjs::adversary::{phi, CvAdversary, NcAdversary, NcAdversaryParams};
use fjs::core::sim::run;
use fjs::prelude::*;

fn cv_ratio(kind: SchedulerKind, n: usize) -> f64 {
    let mut adv = CvAdversary::new(n);
    let out = run(&mut adv, kind.build());
    assert!(out.is_feasible(), "{}", kind.label());
    let prescribed = adv.prescribed_schedule(&out.instance);
    prescribed
        .validate(&out.instance)
        .expect("prescribed feasible");
    out.span.ratio(prescribed.span(&out.instance))
}

#[test]
fn phi_adversary_beats_the_extension_schedulers_too() {
    for kind in [
        SchedulerKind::RandomStart { seed: 42 },
        SchedulerKind::Threshold { m: 2 },
        SchedulerKind::SemiCdb,
    ] {
        let ratio = cv_ratio(kind, 150);
        assert!(
            ratio >= phi() * 0.98,
            "{}: certified ratio {ratio} below 0.98·φ",
            kind.label()
        );
    }
}

#[test]
fn semicdb_declines_the_long_job_exactly_like_cdb() {
    // Short (class 0) and long (φ → class 1) land in different categories,
    // so SemiCdb buffers the long job and the game stops after round 1
    // with ratio exactly φ — the same branch CDB takes in E4.
    let mut adv = CvAdversary::new(20);
    let out = run(&mut adv, SchedulerKind::SemiCdb.build());
    assert!(out.is_feasible());
    assert_eq!(adv.rounds_released(), 1);
    let prescribed = adv.prescribed_schedule(&out.instance);
    let ratio = out.span.ratio(prescribed.span(&out.instance));
    assert!((ratio - phi()).abs() < 1e-9, "got {ratio}");
}

#[test]
fn nc_adversary_handles_threshold_batching() {
    // Threshold(m) is non-clairvoyant, so the Theorem 3.3 adversary
    // applies. Its count trigger fires as soon as m jobs pend, driving
    // concurrency over the √n threshold — earmarks follow.
    let mut adv = NcAdversary::new(NcAdversaryParams::uniform(4.0, 4, 64));
    let out = run(&mut adv, SchedulerKind::Threshold { m: 16 }.build());
    assert!(out.is_feasible());
    assert_eq!(adv.iterations_released(), 5, "all iterations triggered");
    let prescribed = adv
        .prescribed_schedule(&out.instance)
        .expect("Lemma 3.2 check");
    let ratio = out.span.ratio(prescribed.span(&out.instance));
    let target = (4.0 * 4.0 + 1.0) / (4.0 + 4.0);
    assert!(
        ratio >= target * 0.9,
        "ratio {ratio} vs (kμ+1)/(μ+k) = {target}"
    );
}

#[test]
fn nc_adversary_vs_random_start_still_certifies_a_ratio() {
    // RandomStart spreads starts across windows; whichever branch the
    // adversary takes, the certified ratio must exceed 1 by a clear margin
    // (either the Lemma 3.1 branch or the earmark branch).
    let mut adv = NcAdversary::new(NcAdversaryParams::uniform(6.0, 2, 64));
    let out = run(&mut adv, SchedulerKind::RandomStart { seed: 9 }.build());
    assert!(out.is_feasible());
    let prescribed = adv
        .prescribed_schedule(&out.instance)
        .expect("Lemma 3.2 check");
    let ratio = out.span.ratio(prescribed.span(&out.instance));
    assert!(
        ratio > 1.5,
        "adversary should clearly beat random delays, got {ratio}"
    );
}
