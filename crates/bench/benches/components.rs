//! Microbenches for the substrates: interval-set union, span lower bounds,
//! the exact DP, coordinate descent and First Fit packing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fjs_bench::bench_instance;
use fjs_core::interval::{Interval, IntervalSet};
use fjs_core::job::{Instance, Job};
use fjs_core::time::t;
use fjs_dbp::{deterministic_sizes, pack, Item, Packer};
use std::time::Duration;

fn bench_interval_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval-set");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for &n in &[1_000usize, 10_000] {
        // Deterministic pseudo-random interval soup.
        let intervals: Vec<Interval> = (0..n)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(2654435761) % 100_000) as f64 / 10.0;
                Interval::new(t(x), t(x + 3.0))
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("union-measure", n), &intervals, |b, ivs| {
            b.iter(|| {
                let set: IntervalSet = ivs.iter().copied().collect();
                std::hint::black_box(set.measure())
            })
        });
    }
    group.finish();
}

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt-bounds");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for &n in &[1_000usize, 10_000] {
        let inst = bench_instance(n, 3);
        group.bench_with_input(BenchmarkId::new("lb_chain", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(fjs_opt::lb_chain(inst)))
        });
        group.bench_with_input(BenchmarkId::new("lb_mandatory", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(fjs_opt::lb_mandatory(inst)))
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact-optimal");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let inst = Instance::new(vec![
        Job::adp(0.0, 3.0, 2.0),
        Job::adp(1.0, 5.0, 1.0),
        Job::adp(2.0, 2.0, 3.0),
        Job::adp(3.0, 8.0, 2.0),
        Job::adp(5.0, 9.0, 1.0),
        Job::adp(6.0, 10.0, 2.0),
    ]);
    group.bench_function("dp-n6", |b| {
        b.iter(|| std::hint::black_box(fjs_opt::optimal_span_dp(&inst).unwrap()))
    });
    group.bench_function("descent-n200", |b| {
        let big = bench_instance(200, 5);
        b.iter(|| std::hint::black_box(fjs_opt::upper_bound_span(&big, 5).span))
    });
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbp-packing");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[1_000usize, 5_000] {
        let inst = bench_instance(n, 9);
        let sizes = deterministic_sizes(n, 0.1, 0.6, 11);
        let items: Vec<Item> = inst
            .iter()
            .map(|(id, j)| Item::new(j.active_interval_at(j.deadline()), sizes[id.index()]))
            .collect();
        group.bench_with_input(BenchmarkId::new("first-fit", n), &items, |b, items| {
            b.iter(|| std::hint::black_box(pack(items, Packer::FirstFit).total_usage))
        });
        group.bench_with_input(BenchmarkId::new("cd-first-fit", n), &items, |b, items| {
            b.iter(|| {
                std::hint::black_box(
                    pack(items, Packer::ClassifiedFirstFit { alpha: 2.0, base: 1.0 }).total_usage,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interval_set, bench_bounds, bench_exact, bench_packing);
criterion_main!(benches);
