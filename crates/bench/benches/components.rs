//! Microbenches for the substrates: interval-set union, span lower bounds,
//! the exact DP, coordinate descent and First Fit packing.

use fjs_bench::{bench_instance, time_case};
use fjs_core::interval::{Interval, IntervalSet};
use fjs_core::job::{Instance, Job};
use fjs_core::time::t;
use fjs_dbp::{deterministic_sizes, pack, Item, Packer};

fn bench_interval_set() {
    for &n in &[1_000usize, 10_000] {
        // Deterministic pseudo-random interval soup.
        let intervals: Vec<Interval> = (0..n)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(2654435761) % 100_000) as f64 / 10.0;
                Interval::new(t(x), t(x + 3.0))
            })
            .collect();
        time_case(&format!("interval-set/union-measure/{n}"), || {
            let set: IntervalSet = intervals.iter().copied().collect();
            set.measure()
        });
    }
}

fn bench_bounds() {
    for &n in &[1_000usize, 10_000] {
        let inst = bench_instance(n, 3);
        time_case(&format!("opt-bounds/lb_chain/{n}"), || fjs_opt::lb_chain(&inst));
        time_case(&format!("opt-bounds/lb_mandatory/{n}"), || fjs_opt::lb_mandatory(&inst));
    }
}

fn bench_exact() {
    let inst = Instance::new(vec![
        Job::adp(0.0, 3.0, 2.0),
        Job::adp(1.0, 5.0, 1.0),
        Job::adp(2.0, 2.0, 3.0),
        Job::adp(3.0, 8.0, 2.0),
        Job::adp(5.0, 9.0, 1.0),
        Job::adp(6.0, 10.0, 2.0),
    ]);
    time_case("exact-optimal/dp-n6", || fjs_opt::optimal_span_dp(&inst).unwrap());
    let big = bench_instance(200, 5);
    time_case("exact-optimal/descent-n200", || fjs_opt::upper_bound_span(&big, 5).span);
}

fn bench_packing() {
    for &n in &[1_000usize, 5_000] {
        let inst = bench_instance(n, 9);
        let sizes = deterministic_sizes(n, 0.1, 0.6, 11);
        let items: Vec<Item> = inst
            .iter()
            .map(|(id, j)| Item::new(j.active_interval_at(j.deadline()), sizes[id.index()]))
            .collect();
        time_case(&format!("dbp-packing/first-fit/{n}"), || {
            pack(&items, Packer::FirstFit).total_usage
        });
        time_case(&format!("dbp-packing/cd-first-fit/{n}"), || {
            pack(&items, Packer::ClassifiedFirstFit { alpha: 2.0, base: 1.0 }).total_usage
        });
    }
}

fn main() {
    bench_interval_set();
    bench_bounds();
    bench_exact();
    bench_packing();
}
