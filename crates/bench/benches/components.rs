//! Microbenches for the substrates: interval-set union, span lower bounds,
//! the exact DP, coordinate descent and First Fit packing.

use fjs_bench::{bench_instance, quick, Collector};
use fjs_core::interval::{Interval, IntervalSet};
use fjs_core::job::{Instance, Job};
use fjs_core::time::t;
use fjs_dbp::{deterministic_sizes, pack, Item, Packer};

fn bench_interval_set(c: &mut Collector) {
    let sizes: &[usize] = if quick() { &[500] } else { &[1_000, 10_000] };
    for &n in sizes {
        // Deterministic pseudo-random interval soup.
        let intervals: Vec<Interval> = (0..n)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(2654435761) % 100_000) as f64 / 10.0;
                Interval::new(t(x), t(x + 3.0))
            })
            .collect();
        c.case(&format!("interval-set/union-measure/{n}"), || {
            let set: IntervalSet = intervals.iter().copied().collect();
            set.measure()
        });
    }
}

fn bench_bounds(c: &mut Collector) {
    let sizes: &[usize] = if quick() { &[500] } else { &[1_000, 10_000] };
    for &n in sizes {
        let inst = bench_instance(n, 3);
        c.case(&format!("opt-bounds/lb_chain/{n}"), || {
            fjs_opt::lb_chain(&inst)
        });
        c.case(&format!("opt-bounds/lb_mandatory/{n}"), || {
            fjs_opt::lb_mandatory(&inst)
        });
    }
}

fn bench_exact(c: &mut Collector) {
    let inst = Instance::new(vec![
        Job::adp(0.0, 3.0, 2.0),
        Job::adp(1.0, 5.0, 1.0),
        Job::adp(2.0, 2.0, 3.0),
        Job::adp(3.0, 8.0, 2.0),
        Job::adp(5.0, 9.0, 1.0),
        Job::adp(6.0, 10.0, 2.0),
    ]);
    c.case("exact-optimal/dp-n6", || {
        fjs_opt::optimal_span_dp(&inst).unwrap()
    });
    let n = if quick() { 50 } else { 200 };
    let big = bench_instance(n, 5);
    c.case(&format!("exact-optimal/descent-n{n}"), || {
        fjs_opt::upper_bound_span(&big, 5).span
    });
}

fn bench_packing(c: &mut Collector) {
    let sizes: &[usize] = if quick() { &[500] } else { &[1_000, 5_000] };
    for &n in sizes {
        let inst = bench_instance(n, 9);
        let item_sizes = deterministic_sizes(n, 0.1, 0.6, 11);
        let items: Vec<Item> = inst
            .iter()
            .map(|(id, j)| Item::new(j.active_interval_at(j.deadline()), item_sizes[id.index()]))
            .collect();
        c.case(&format!("dbp-packing/first-fit/{n}"), || {
            pack(&items, Packer::FirstFit).total_usage
        });
        c.case(&format!("dbp-packing/cd-first-fit/{n}"), || {
            pack(
                &items,
                Packer::ClassifiedFirstFit {
                    alpha: 2.0,
                    base: 1.0,
                },
            )
            .total_usage
        });
    }
}

fn main() {
    let mut c = Collector::new();
    bench_interval_set(&mut c);
    bench_bounds(&mut c);
    bench_exact(&mut c);
    bench_packing(&mut c);
    c.write();
}
