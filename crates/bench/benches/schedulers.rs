//! Scheduler throughput: simulated jobs per second for every scheduler on
//! the workload families, across instance sizes. This is the engineering
//! complement to the paper's competitive analysis — it shows all schedulers
//! run in near-linear time in the event count.

use fjs_bench::time_case;
use fjs_schedulers::SchedulerKind;
use fjs_workloads::Scenario;

fn bench_schedulers() {
    for &n in &[100usize, 1_000, 10_000] {
        let inst = Scenario::CloudBatch.generate(n, 42);
        for kind in SchedulerKind::full_set() {
            time_case(&format!("scheduler-throughput/{}/{n}", kind.label()), || {
                let out = kind.run_on(&inst);
                assert!(out.is_feasible());
                out.span
            });
        }
    }
}

fn bench_scenarios() {
    for sc in Scenario::all() {
        let inst = sc.generate(2_000, 7);
        time_case(&format!("batchplus-by-scenario/{}", sc.name()), || {
            SchedulerKind::BatchPlus.run_on(&inst).span
        });
    }
}

fn main() {
    bench_schedulers();
    bench_scenarios();
}
