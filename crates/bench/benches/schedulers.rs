//! Scheduler throughput: simulated jobs per second for every scheduler on
//! the workload families, across instance sizes. This is the engineering
//! complement to the paper's competitive analysis — it shows all schedulers
//! run in near-linear time in the event count.

use fjs_bench::{quick, Collector};
use fjs_schedulers::SchedulerKind;
use fjs_workloads::Scenario;

fn bench_schedulers(c: &mut Collector) {
    let sizes: &[usize] = if quick() {
        &[100]
    } else {
        &[100, 1_000, 10_000]
    };
    for &n in sizes {
        let inst = Scenario::CloudBatch.generate(n, 42);
        for kind in SchedulerKind::full_set() {
            c.case(
                &format!("scheduler-throughput/{}/{n}", kind.label()),
                || {
                    let out = kind.run_on(&inst);
                    assert!(out.is_feasible());
                    out.span
                },
            );
        }
    }
}

fn bench_scenarios(c: &mut Collector) {
    let n = if quick() { 200 } else { 2_000 };
    for sc in Scenario::all() {
        let inst = sc.generate(n, 7);
        c.case(&format!("batchplus-by-scenario/{}/{n}", sc.name()), || {
            SchedulerKind::BatchPlus.run_on(&inst).span
        });
    }
}

fn main() {
    let mut c = Collector::new();
    bench_schedulers(&mut c);
    bench_scenarios(&mut c);
    c.write();
}
