//! Scheduler throughput: simulated jobs per second for every scheduler on
//! the workload families, across instance sizes. This is the engineering
//! complement to the paper's competitive analysis — it shows all schedulers
//! run in near-linear time in the event count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fjs_schedulers::SchedulerKind;
use fjs_workloads::Scenario;
use std::time::Duration;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler-throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    for &n in &[100usize, 1_000, 10_000] {
        let inst = Scenario::CloudBatch.generate(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        for kind in SchedulerKind::full_set() {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), n),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        let out = kind.run_on(inst);
                        assert!(out.is_feasible());
                        std::hint::black_box(out.span)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("batchplus-by-scenario");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for sc in Scenario::all() {
        let inst = sc.generate(2_000, 7);
        group.bench_function(sc.name(), |b| {
            b.iter(|| std::hint::black_box(SchedulerKind::BatchPlus.run_on(&inst).span))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_scenarios);
criterion_main!(benches);
