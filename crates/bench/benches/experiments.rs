//! One Criterion group per paper experiment (E1–E11). Each bench runs the
//! exact experiment code path used by the `fjs` binary at quick profile, so
//! `cargo bench` both times the reproduction and regenerates its tables.

use criterion::{criterion_group, criterion_main, Criterion};
use fjs_cli::experiments::{all, Profile};
use std::time::Duration;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper-experiments");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for exp in all() {
        group.bench_function(exp.id, |b| {
            b.iter(|| {
                let tables = (exp.run)(Profile::Quick);
                assert!(!tables.is_empty());
                std::hint::black_box(tables)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
