//! One timing per paper experiment (E1–E11). Each bench runs the exact
//! experiment code path used by the `fjs` binary at quick profile, so
//! `cargo bench` both times the reproduction and regenerates its tables.

use fjs_bench::{quick, Collector};
use fjs_cli::experiments::{all, Profile};

fn main() {
    let mut c = Collector::new();
    let exps = all();
    // Quick mode smokes the pipeline on the first two experiments only.
    let take = if quick() {
        2.min(exps.len())
    } else {
        exps.len()
    };
    if take < exps.len() {
        println!("quick mode: timing {take} of {} experiments", exps.len());
    }
    for exp in exps.into_iter().take(take) {
        c.case(&format!("paper-experiments/{}", exp.id), || {
            let tables = (exp.run)(Profile::Quick);
            assert!(!tables.is_empty());
            tables
        });
    }
    c.write();
}
