//! One timing per paper experiment (E1–E11). Each bench runs the exact
//! experiment code path used by the `fjs` binary at quick profile, so
//! `cargo bench` both times the reproduction and regenerates its tables.

use fjs_bench::time_case;
use fjs_cli::experiments::{all, Profile};

fn main() {
    for exp in all() {
        time_case(&format!("paper-experiments/{}", exp.id), || {
            let tables = (exp.run)(Profile::Quick);
            assert!(!tables.is_empty());
            tables
        });
    }
}
