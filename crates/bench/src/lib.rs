//! # fjs-bench
//!
//! Self-contained benchmark harnesses (no external benching framework; the
//! workspace builds offline). Three targets:
//!
//! * `benches/experiments.rs` — one timing per paper experiment (E1–E11),
//!   running the same code paths as `fjs <id>` at quick profile;
//! * `benches/schedulers.rs` — scheduler throughput (jobs/second) on the
//!   workload families;
//! * `benches/components.rs` — microbenches for the interval-set algebra,
//!   lower bounds, exact DP and First Fit packing.
//!
//! Run with `cargo bench --workspace`. Besides the human-readable report
//! lines, every target records its measurements through [`Collector`] into
//! `BENCH_results.json` at the workspace root (override the path with
//! `FJS_BENCH_OUT`), in the schema defined by
//! [`fjs_analysis::benchjson`]. Compare two such files with
//! `fjs bench-diff old.json new.json`. Set `FJS_BENCH_QUICK=1` to shrink
//! sample counts and input sizes for CI smoke runs.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

pub use fjs_analysis::benchjson::{BenchReport, BenchSample};

/// Standard quick instance used by several bench targets: the cloud-batch
/// scenario at the given size.
pub fn bench_instance(n: usize, seed: u64) -> fjs_core::job::Instance {
    fjs_workloads::Scenario::CloudBatch.generate(n, seed)
}

/// Whether quick mode is on (`FJS_BENCH_QUICK` set non-empty, not `0`):
/// bench targets shrink their input sizes and this crate shrinks sample
/// counts, so CI can smoke the full pipeline in seconds.
pub fn quick() -> bool {
    std::env::var("FJS_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// Times `f` and returns the measurement as a [`BenchSample`] record.
///
/// Calibration: the closure is first *warmed up* (population of caches,
/// branch predictors, lazy allocations), then the per-sample iteration
/// count is derived from the **minimum of ≥3 post-warm-up probes** — a
/// single cold probe runs slow and would overshoot `iters`, inflating
/// sample times on short cases. The chosen `iters` is surfaced in the
/// returned record.
///
/// A tiny fixed-iteration harness, good enough for the coarse regressions
/// these targets guard; it deliberately trades Criterion's statistics for
/// a dependency-free build.
pub fn time_case_sample<R>(name: &str, mut f: impl FnMut() -> R) -> BenchSample {
    let (samples, target_sample_ms, probes) =
        if quick() { (4, 5.0, 3) } else { (12, 80.0, 3) };

    // Warm up: one untimed call, discarded.
    std::hint::black_box(f());

    // Calibrate from the fastest of several post-warm-up probes.
    let mut probe_min = f64::INFINITY;
    for _ in 0..probes {
        let t0 = Instant::now();
        std::hint::black_box(f());
        probe_min = probe_min.min(t0.elapsed().as_secs_f64());
    }
    let probe_min = probe_min.max(1e-9);
    let iters = ((target_sample_ms / 1e3 / probe_min).ceil() as usize).clamp(1, 1_000_000);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_iter.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    BenchSample {
        name: name.to_string(),
        median_s: median,
        min_s: min,
        mean_s: mean,
        iters,
        samples,
    }
}

/// Times `f`, prints one aligned report line (median / min / mean per
/// iteration) and returns the record. Convenience wrapper over
/// [`time_case_sample`] used by all bench targets.
pub fn time_case<R>(name: &str, f: impl FnMut() -> R) -> BenchSample {
    let sample = time_case_sample(name, f);
    println!(
        "{name:<44} median {:>12}  min {:>12}  mean {:>12}  ({} it/sample)",
        fmt_duration(sample.median_s),
        fmt_duration(sample.min_s),
        fmt_duration(sample.mean_s),
        sample.iters,
    );
    sample
}

/// Accumulates [`BenchSample`] records for one bench target and merges them
/// into the shared `BENCH_results.json` on [`Collector::write`].
///
/// The three bench binaries run sequentially under `cargo bench`, so each
/// loads whatever file the previous one wrote, upserts its own cases by
/// name, and rewrites the file — the final JSON holds the union.
pub struct Collector {
    samples: Vec<BenchSample>,
}

impl Collector {
    /// A new, empty collector.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Collector { samples: Vec::new() }
    }

    /// Times `f` via [`time_case`] (prints the report line) and records the
    /// sample.
    pub fn case<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        let sample = time_case(name, f);
        self.samples.push(sample);
    }

    /// Merges the recorded samples into `BENCH_results.json` (or
    /// `FJS_BENCH_OUT`) and prints where they went. An unreadable or
    /// schema-incompatible existing file is replaced rather than merged;
    /// I/O failures are reported on stderr, never panicked on, so a
    /// read-only checkout still benches.
    pub fn write(self) {
        let path = out_path();
        let mut report = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| BenchReport::parse(&text).ok())
            .unwrap_or_else(|| BenchReport::new(git_describe()));
        // Stamp the revision of *this* run; merged older cases keep their
        // numbers but the file describes the tree that last wrote it.
        report.git_describe = git_describe();
        let count = self.samples.len();
        for sample in self.samples {
            report.upsert(sample);
        }
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => println!("wrote {count} case(s) to {}", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}

/// Resolves the output path: `FJS_BENCH_OUT` if set, else
/// `BENCH_results.json` at the workspace root. Bench binaries run with the
/// package directory (`crates/bench`) as cwd, hence the `../..`.
pub fn out_path() -> PathBuf {
    match std::env::var_os("FJS_BENCH_OUT") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_results.json"),
    }
}

/// `git describe --always --dirty` of the current checkout, or `"unknown"`
/// when git is unavailable (e.g. a source tarball).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Human-friendly seconds formatting (ns/µs/ms/s).
fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_picks_sane_units() {
        assert!(fmt_duration(5e-9).ends_with("ns"));
        assert!(fmt_duration(5e-6).ends_with("µs"));
        assert!(fmt_duration(5e-3).ends_with("ms"));
        assert!(fmt_duration(5.0).ends_with("s"));
    }

    #[test]
    fn time_case_runs_the_closure_and_surfaces_calibration() {
        let mut calls = 0usize;
        let sample = time_case("noop", || calls += 1);
        // 1 warm-up + ≥3 probes + samples×iters timed calls.
        assert!(calls >= 1 + 3 + sample.samples * sample.iters);
        assert_eq!(sample.name, "noop");
        assert!(sample.iters >= 1);
        assert!(sample.samples >= 1);
        assert!(sample.min_s <= sample.median_s);
        assert!(sample.min_s >= 0.0 && sample.median_s.is_finite());
    }

    #[test]
    fn collector_writes_schema_valid_json() {
        let dir = std::env::temp_dir().join(format!("fjs-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");

        // First write: one case.
        let mut report = BenchReport::new(git_describe());
        report.upsert(time_case_sample("case-a", || 1 + 1));
        std::fs::write(&path, report.to_json()).unwrap();

        // Merge a second case the way Collector does.
        let mut merged = BenchReport::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        merged.upsert(time_case_sample("case-b", || 2 + 2));
        std::fs::write(&path, merged.to_json()).unwrap();

        let back = BenchReport::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        back.validate().unwrap();
        assert!(back.case("case-a").is_some() && back.case("case-b").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
