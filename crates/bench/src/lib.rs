//! # fjs-bench
//!
//! Criterion benchmark harnesses. Three targets:
//!
//! * `benches/experiments.rs` — one group per paper experiment (E1–E11),
//!   running the same code paths as `fjs <id>` at quick profile;
//! * `benches/schedulers.rs` — scheduler throughput (jobs/second) on the
//!   workload families;
//! * `benches/components.rs` — microbenches for the interval-set algebra,
//!   lower bounds, exact DP and First Fit packing.
//!
//! Run with `cargo bench --workspace`.

#![warn(missing_docs)]

/// Standard quick instance used by several bench targets: the cloud-batch
/// scenario at the given size.
pub fn bench_instance(n: usize, seed: u64) -> fjs_core::job::Instance {
    fjs_workloads::Scenario::CloudBatch.generate(n, seed)
}
