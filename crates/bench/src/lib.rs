//! # fjs-bench
//!
//! Self-contained benchmark harnesses (no external benching framework; the
//! workspace builds offline). Three targets:
//!
//! * `benches/experiments.rs` — one timing per paper experiment (E1–E11),
//!   running the same code paths as `fjs <id>` at quick profile;
//! * `benches/schedulers.rs` — scheduler throughput (jobs/second) on the
//!   workload families;
//! * `benches/components.rs` — microbenches for the interval-set algebra,
//!   lower bounds, exact DP and First Fit packing.
//!
//! Run with `cargo bench --workspace`.

#![warn(missing_docs)]

use std::time::Instant;

/// Standard quick instance used by several bench targets: the cloud-batch
/// scenario at the given size.
pub fn bench_instance(n: usize, seed: u64) -> fjs_core::job::Instance {
    fjs_workloads::Scenario::CloudBatch.generate(n, seed)
}

/// Times `f` over repeated samples and prints one aligned report line:
/// median, minimum and mean time per iteration.
///
/// A tiny fixed-iteration harness (calibrated so each sample takes roughly
/// `target_sample_ms`), good enough for the coarse regressions these
/// targets guard; it deliberately trades Criterion's statistics for a
/// dependency-free build.
pub fn time_case<R>(name: &str, mut f: impl FnMut() -> R) {
    const SAMPLES: usize = 12;
    const TARGET_SAMPLE_MS: f64 = 80.0;

    // Warm up and calibrate the per-sample iteration count.
    let probe_start = Instant::now();
    std::hint::black_box(f());
    let probe = probe_start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((TARGET_SAMPLE_MS / 1e3 / probe).ceil() as usize).clamp(1, 1_000_000);

    let mut per_iter: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_iter.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<44} median {:>12}  min {:>12}  mean {:>12}  ({iters} it/sample)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(mean),
    );
}

/// Human-friendly seconds formatting (ns/µs/ms/s).
fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_picks_sane_units() {
        assert!(fmt_duration(5e-9).ends_with("ns"));
        assert!(fmt_duration(5e-6).ends_with("µs"));
        assert!(fmt_duration(5e-3).ends_with("ms"));
        assert!(fmt_duration(5.0).ends_with("s"));
    }

    #[test]
    fn time_case_runs_the_closure() {
        let mut calls = 0usize;
        time_case("noop", || calls += 1);
        assert!(calls > 0);
    }
}
