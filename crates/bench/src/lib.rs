//! # fjs-bench
//!
//! Self-contained benchmark harnesses (no external benching framework; the
//! workspace builds offline). Three targets:
//!
//! * `benches/experiments.rs` — one timing per paper experiment (E1–E11),
//!   running the same code paths as `fjs <id>` at quick profile;
//! * `benches/schedulers.rs` — scheduler throughput (jobs/second) on the
//!   workload families;
//! * `benches/components.rs` — microbenches for the interval-set algebra,
//!   lower bounds, exact DP and First Fit packing.
//!
//! Run with `cargo bench --workspace`. Besides the human-readable report
//! lines, every target records its measurements through [`Collector`] into
//! `BENCH_results.json` at the workspace root (override the path with
//! `FJS_BENCH_OUT`), in the schema defined by
//! [`fjs_analysis::benchjson`]. Compare two such files with
//! `fjs bench-diff old.json new.json`. Set `FJS_BENCH_QUICK=1` to shrink
//! sample counts and input sizes for CI smoke runs.

#![warn(missing_docs)]

use std::path::PathBuf;

pub use fjs_analysis::benchjson::{BenchReport, BenchSample};
// The measurement loops live in `fjs_analysis::timing` so the `fjs bench`
// subcommand (which this crate depends on, transitively) shares the exact
// same calibration; re-exported here to keep the bench targets' imports.
pub use fjs_analysis::timing::{quick, time_case, time_case_sample};

/// Standard quick instance used by several bench targets: the cloud-batch
/// scenario at the given size.
pub fn bench_instance(n: usize, seed: u64) -> fjs_core::job::Instance {
    fjs_workloads::Scenario::CloudBatch.generate(n, seed)
}

/// Accumulates [`BenchSample`] records for one bench target and merges them
/// into the shared `BENCH_results.json` on [`Collector::write`].
///
/// The three bench binaries run sequentially under `cargo bench`, so each
/// loads whatever file the previous one wrote, upserts its own cases by
/// name, and rewrites the file — the final JSON holds the union.
pub struct Collector {
    samples: Vec<BenchSample>,
}

impl Collector {
    /// A new, empty collector.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Collector {
            samples: Vec::new(),
        }
    }

    /// Times `f` via [`time_case`] (prints the report line) and records the
    /// sample.
    pub fn case<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        let sample = time_case(name, f);
        self.samples.push(sample);
    }

    /// Merges the recorded samples into `BENCH_results.json` (or
    /// `FJS_BENCH_OUT`) and prints where they went. An unreadable or
    /// schema-incompatible existing file is replaced rather than merged;
    /// I/O failures are reported on stderr, never panicked on, so a
    /// read-only checkout still benches.
    pub fn write(self) {
        let path = out_path();
        let mut report = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| BenchReport::parse(&text).ok())
            .unwrap_or_else(|| BenchReport::new(git_describe()));
        // Stamp the revision of *this* run; merged older cases keep their
        // numbers but the file describes the tree that last wrote it.
        report.git_describe = git_describe();
        let count = self.samples.len();
        for sample in self.samples {
            report.upsert(sample);
        }
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => println!("wrote {count} case(s) to {}", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}

/// Resolves the output path: `FJS_BENCH_OUT` if set, else
/// `BENCH_results.json` at the workspace root. Bench binaries run with the
/// package directory (`crates/bench`) as cwd, hence the `../..`.
pub fn out_path() -> PathBuf {
    match std::env::var_os("FJS_BENCH_OUT") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_results.json"),
    }
}

/// `git describe --always --dirty` of the current checkout, or `"unknown"`
/// when git is unavailable (e.g. a source tarball).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_writes_schema_valid_json() {
        let dir = std::env::temp_dir().join(format!("fjs-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");

        // First write: one case.
        let mut report = BenchReport::new(git_describe());
        report.upsert(time_case_sample("case-a", || 1 + 1));
        std::fs::write(&path, report.to_json()).unwrap();

        // Merge a second case the way Collector does.
        let mut merged = BenchReport::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        merged.upsert(time_case_sample("case-b", || 2 + 2));
        std::fs::write(&path, merged.to_json()).unwrap();

        let back = BenchReport::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        back.validate().unwrap();
        assert!(back.case("case-a").is_some() && back.case("case-b").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
