//! Crash-safe checkpointing for `fjs serve` sessions.
//!
//! A [`ServeJournal`] is an append-only JSONL file in the same flat-object
//! line grammar as the supervise layer's sweep journal
//! ([`crate::supervise::journal`], whose escape/parse helpers it reuses):
//! one self-contained record per protocol request that changed session
//! state — `open`, `job`, `close`. Replaying those records through fresh
//! [`Session`](crate::service::Session)s reproduces the daemon's state
//! bit-for-bit, because sessions are deterministic functions of their
//! offer streams; the decision log of a killed-and-resumed daemon is
//! byte-identical to an uninterrupted run's.
//!
//! Durability contract (mirrors the sweep journal):
//!
//! * every record is written and flushed on append, and fsynced every
//!   [`ServeJournal::with_sync_every`] records (default
//!   [`DEFAULT_SYNC_EVERY`]) and on [`ServeJournal::sync`];
//! * a torn trailing line (the process died mid-write) is silently
//!   dropped on load — the corresponding request is simply re-consumed
//!   from the input stream;
//! * interior garbage is a hard [`ServeJournalError::Corrupt`] — that is
//!   data loss, not a crash artifact, and resuming from it would
//!   fabricate decisions.
//!
//! The governor's state (per-tenant admitted-byte usage, circuit-breaker
//! phases and failure streaks) is deliberately **not** journaled: every
//! governor transition is keyed off exactly the events recorded here —
//! admitted opens, admitted jobs, closes — so a resume replay re-derives
//! it bit-identically for free, with no new record kind and no version
//! bump. [`ServeEvent::payload_bytes`] is the replay-side hook for the
//! byte accounting.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::supervise::journal::{escape, parse_fields, unescape};

/// Journal format version.
pub const SERVE_JOURNAL_VERSION: u32 = 1;

/// Default records between fsyncs.
pub const DEFAULT_SYNC_EVERY: usize = 32;

/// One replayable state-changing request.
///
/// `line` is the 1-based input-stream line that carried the request; on
/// resume the daemon replays journal records and then skips input lines up
/// to and including the largest journaled `line`, so requests are neither
/// lost nor double-applied.
#[derive(Clone, PartialEq, Debug)]
pub enum ServeEvent {
    /// A session was opened.
    Open {
        /// Session name (protocol identifier).
        session: String,
        /// Scheduler spec the session was opened with (registry short
        /// name, possibly wrapped in a fault mode).
        scheduler: String,
        /// Input line that carried the request.
        line: u64,
    },
    /// A job was admitted into a session.
    Job {
        /// Session name.
        session: String,
        /// Input line that carried the request.
        line: u64,
        /// Arrival time (raw value; `Display`-rendered, so it round-trips
        /// exactly).
        arrival: f64,
        /// Starting deadline.
        deadline: f64,
        /// Processing length.
        length: f64,
    },
    /// A session was closed (drained to its verdict).
    Close {
        /// Session name.
        session: String,
        /// Input line that carried the request.
        line: u64,
    },
}

impl ServeEvent {
    /// The input line that carried this request.
    pub fn line(&self) -> u64 {
        match self {
            ServeEvent::Open { line, .. }
            | ServeEvent::Job { line, .. }
            | ServeEvent::Close { line, .. } => *line,
        }
    }

    /// The session the request addressed.
    pub fn session(&self) -> &str {
        match self {
            ServeEvent::Open { session, .. }
            | ServeEvent::Job { session, .. }
            | ServeEvent::Close { session, .. } => session,
        }
    }

    /// Canonical payload bytes this event charges against its tenant's
    /// byte quota (`None` for non-job events). Matches
    /// [`JobOffer::canonical_bytes`](crate::service::JobOffer::canonical_bytes)
    /// on the offer the record was journaled for, so live accounting and
    /// replay agree exactly.
    pub fn payload_bytes(&self) -> Option<u64> {
        match self {
            ServeEvent::Job {
                arrival,
                deadline,
                length,
                ..
            } => Some(
                crate::service::JobOffer {
                    arrival: crate::time::Time::new(*arrival),
                    deadline: crate::time::Time::new(*deadline),
                    length: crate::time::Dur::new(*length),
                }
                .canonical_bytes(),
            ),
            _ => None,
        }
    }

    fn serialize(&self) -> String {
        match self {
            ServeEvent::Open {
                session,
                scheduler,
                line,
            } => format!(
                "{{\"v\":{SERVE_JOURNAL_VERSION},\"kind\":\"open\",\"session\":\"{}\",\"scheduler\":\"{}\",\"line\":{line}}}",
                escape(session),
                escape(scheduler),
            ),
            ServeEvent::Job {
                session,
                line,
                arrival,
                deadline,
                length,
            } => format!(
                "{{\"v\":{SERVE_JOURNAL_VERSION},\"kind\":\"job\",\"session\":\"{}\",\"line\":{line},\"arrival\":{arrival},\"deadline\":{deadline},\"length\":{length}}}",
                escape(session),
            ),
            ServeEvent::Close { session, line } => format!(
                "{{\"v\":{SERVE_JOURNAL_VERSION},\"kind\":\"close\",\"session\":\"{}\",\"line\":{line}}}",
                escape(session),
            ),
        }
    }

    fn parse(text: &str) -> Result<ServeEvent, String> {
        let fields = parse_fields(text)?;
        let get = |key: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("missing field '{key}'"))
        };
        let version: u32 = get("v")?.parse().map_err(|_| "bad version".to_string())?;
        if version != SERVE_JOURNAL_VERSION {
            return Err(format!("unsupported journal version {version}"));
        }
        let session = unescape(get("session")?)?;
        let line: u64 = get("line")?
            .parse()
            .map_err(|_| "bad line number".to_string())?;
        let num = |key: &str| -> Result<f64, String> {
            let v: f64 = get(key)?
                .parse()
                .map_err(|_| format!("bad number in '{key}'"))?;
            if !v.is_finite() {
                return Err(format!("non-finite '{key}'"));
            }
            Ok(v)
        };
        match get("kind")? {
            "open" => Ok(ServeEvent::Open {
                scheduler: unescape(get("scheduler")?)?,
                session,
                line,
            }),
            "job" => Ok(ServeEvent::Job {
                session,
                line,
                arrival: num("arrival")?,
                deadline: num("deadline")?,
                length: num("length")?,
            }),
            "close" => Ok(ServeEvent::Close { session, line }),
            other => Err(format!("unknown kind '{other}'")),
        }
    }
}

/// Why a journal failed to load or persist.
#[derive(Debug)]
pub enum ServeJournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// An interior record is unreadable (not a torn tail).
    Corrupt {
        /// 1-based line in the journal file.
        line: usize,
        /// What the parser objected to.
        why: String,
    },
}

impl fmt::Display for ServeJournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeJournalError::Io(e) => write!(f, "journal io error: {e}"),
            ServeJournalError::Corrupt { line, why } => {
                write!(f, "journal corrupt at line {line}: {why}")
            }
        }
    }
}

impl std::error::Error for ServeJournalError {}

impl From<std::io::Error> for ServeJournalError {
    fn from(e: std::io::Error) -> Self {
        ServeJournalError::Io(e)
    }
}

/// Append-only checkpoint journal (see module docs).
#[derive(Debug)]
pub struct ServeJournal {
    path: PathBuf,
    file: File,
    sync_every: usize,
    since_sync: usize,
    records: u64,
}

impl ServeJournal {
    /// Creates (truncating) the journal at `path`. The empty file is
    /// persisted immediately, so "exists but empty" always means "a fresh
    /// daemon run that has checkpointed nothing yet".
    pub fn create(path: impl AsRef<Path>) -> Result<ServeJournal, ServeJournalError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        file.sync_all()?;
        Ok(ServeJournal {
            path,
            file,
            sync_every: DEFAULT_SYNC_EVERY,
            since_sync: 0,
            records: 0,
        })
    }

    /// Opens the journal at `path` for appending (resume continuation).
    pub fn open_append(path: impl AsRef<Path>) -> Result<ServeJournal, ServeJournalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().append(true).create(true).open(&path)?;
        Ok(ServeJournal {
            path,
            file,
            sync_every: DEFAULT_SYNC_EVERY,
            since_sync: 0,
            records: 0,
        })
    }

    /// Sets how many records may accumulate between fsyncs (0 or 1 means
    /// every record).
    pub fn with_sync_every(mut self, n: usize) -> ServeJournal {
        self.sync_every = n.max(1);
        self
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle.
    pub fn records_appended(&self) -> u64 {
        self.records
    }

    /// Appends one record (write + flush; fsync per the sync policy).
    pub fn append(&mut self, event: &ServeEvent) -> Result<(), ServeJournalError> {
        let mut line = event.serialize();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.records += 1;
        self.since_sync += 1;
        if self.since_sync >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces the journal to durable storage.
    pub fn sync(&mut self) -> Result<(), ServeJournalError> {
        self.file.sync_all()?;
        self.since_sync = 0;
        Ok(())
    }

    /// Loads every intact record from `path`. A missing file is an empty
    /// journal; a torn final line is dropped; interior garbage is
    /// [`ServeJournalError::Corrupt`].
    pub fn load(path: impl AsRef<Path>) -> Result<Vec<ServeEvent>, ServeJournalError> {
        let text = match std::fs::read_to_string(path.as_ref()) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(ServeJournalError::Io(e)),
        };
        let lines: Vec<&str> = text.split('\n').collect();
        let mut events = Vec::new();
        for (idx, raw) in lines.iter().enumerate() {
            let trimmed = raw.trim();
            if trimmed.is_empty() {
                continue;
            }
            match ServeEvent::parse(trimmed) {
                Ok(ev) => events.push(ev),
                Err(why) => {
                    let is_tail = lines[idx + 1..].iter().all(|l| l.trim().is_empty());
                    if is_tail {
                        break; // torn final record: crash artifact, drop it
                    }
                    return Err(ServeJournalError::Corrupt { line: idx + 1, why });
                }
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::session::{Decision, JobOffer, Session, SessionVerdict};
    use crate::sim::env::Clairvoyance;
    use crate::sim::sched::{Arrival, Ctx, OnlineScheduler};
    use crate::time::{dur, t};

    struct Eager;
    impl OnlineScheduler for Eager {
        fn name(&self) -> String {
            "test-eager".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, _id: crate::job::JobId, _ctx: &mut Ctx<'_>) {}
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fjs-serve-journal-{}-{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_events() -> Vec<ServeEvent> {
        vec![
            ServeEvent::Open {
                session: "alpha".into(),
                scheduler: "eager".into(),
                line: 1,
            },
            ServeEvent::Job {
                session: "alpha".into(),
                line: 2,
                arrival: 0.0,
                deadline: 2.5,
                length: 1.25,
            },
            ServeEvent::Job {
                session: "alpha".into(),
                line: 3,
                arrival: 0.1,
                deadline: 7.0,
                length: 0.30000000000000004,
            },
            ServeEvent::Close {
                session: "alpha".into(),
                line: 4,
            },
        ]
    }

    #[test]
    fn roundtrips_all_record_kinds_exactly() {
        let path = scratch("roundtrip");
        let mut j = ServeJournal::create(&path).unwrap();
        for ev in sample_events() {
            j.append(&ev).unwrap();
        }
        j.sync().unwrap();
        assert_eq!(j.records_appended(), 4);
        assert_eq!(ServeJournal::load(&path).unwrap(), sample_events());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn golden_line_format_is_stable() {
        // The on-disk grammar is a compatibility surface: resume must read
        // journals written by earlier daemon runs.
        let golden = [
            "{\"v\":1,\"kind\":\"open\",\"session\":\"alpha\",\"scheduler\":\"eager\",\"line\":1}",
            "{\"v\":1,\"kind\":\"job\",\"session\":\"alpha\",\"line\":2,\"arrival\":0,\"deadline\":2.5,\"length\":1.25}",
            "{\"v\":1,\"kind\":\"job\",\"session\":\"alpha\",\"line\":3,\"arrival\":0.1,\"deadline\":7,\"length\":0.30000000000000004}",
            "{\"v\":1,\"kind\":\"close\",\"session\":\"alpha\",\"line\":4}",
        ];
        for (ev, want) in sample_events().iter().zip(golden) {
            assert_eq!(ev.serialize(), want);
            assert_eq!(&ServeEvent::parse(want).unwrap(), ev);
        }
    }

    #[test]
    fn missing_file_is_empty_and_create_persists_immediately() {
        let path = scratch("missing");
        assert_eq!(ServeJournal::load(&path).unwrap(), Vec::new());
        let _j = ServeJournal::create(&path).unwrap();
        assert!(path.exists(), "created journal persists even when empty");
        assert_eq!(ServeJournal::load(&path).unwrap(), Vec::new());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_interior_garbage_is_fatal() {
        let path = scratch("torn");
        let mut j = ServeJournal::create(&path).unwrap();
        for ev in sample_events() {
            j.append(&ev).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        // Torn tail: a crash mid-write leaves a half record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"kind\":\"job\",\"session\":\"al");
        std::fs::write(&path, &text).unwrap();
        assert_eq!(ServeJournal::load(&path).unwrap(), sample_events());
        // Interior garbage: not a crash artifact, must refuse to resume.
        let broken = text.replacen("\"kind\":\"job\"", "\"kind\":\"jbo\"", 1);
        std::fs::write(&path, &broken).unwrap();
        let err = ServeJournal::load(&path).unwrap_err();
        let ServeJournalError::Corrupt { line, .. } = err else {
            panic!("want Corrupt, got {err:?}");
        };
        assert_eq!(line, 2);
        let _ = std::fs::remove_file(&path);
    }

    /// The resume contract, in-process: replaying the journaled offer
    /// stream through a fresh session reproduces the decision stream
    /// byte-for-byte.
    #[test]
    fn replayed_journal_reproduces_decision_stream() {
        let path = scratch("replay");
        let offers = [
            JobOffer {
                arrival: t(0.0),
                deadline: t(3.0),
                length: dur(2.0),
            },
            JobOffer {
                arrival: t(1.5),
                deadline: t(4.0),
                length: dur(1.0),
            },
            JobOffer {
                arrival: t(6.0),
                deadline: t(6.5),
                length: dur(0.25),
            },
        ];
        let run = |offers: &[JobOffer]| -> (Vec<Decision>, SessionVerdict) {
            let mut s = Session::new(Box::new(Eager), Clairvoyance::Clairvoyant);
            for &o in offers {
                s.offer(o).unwrap();
            }
            let v = s.close();
            (s.take_decisions(), v)
        };
        // Original daemon: journal every offer as it is admitted.
        let mut j = ServeJournal::create(&path).unwrap().with_sync_every(1);
        j.append(&ServeEvent::Open {
            session: "s".into(),
            scheduler: "eager".into(),
            line: 1,
        })
        .unwrap();
        for (i, o) in offers.iter().enumerate() {
            j.append(&ServeEvent::Job {
                session: "s".into(),
                line: 2 + i as u64,
                arrival: o.arrival.get(),
                deadline: o.deadline.get(),
                length: o.length.get(),
            })
            .unwrap();
        }
        drop(j); // killed before close: no close record
        let (original, verdict) = run(&offers);
        assert_eq!(verdict, SessionVerdict::Completed);
        // Resumed daemon: rebuild offers from the journal, replay.
        let mut replayed_offers = Vec::new();
        for ev in ServeJournal::load(&path).unwrap() {
            if let ServeEvent::Job {
                arrival,
                deadline,
                length,
                ..
            } = ev
            {
                replayed_offers.push(JobOffer {
                    arrival: t(arrival),
                    deadline: t(deadline),
                    length: dur(length),
                });
            }
        }
        let (replayed, _) = run(&replayed_offers);
        let render = |ds: &[Decision]| ds.iter().map(|d| format!("{d}\n")).collect::<String>();
        assert_eq!(render(&original), render(&replayed));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn payload_bytes_matches_the_live_offer_accounting() {
        let ev = ServeEvent::Job {
            session: "t.a".into(),
            line: 7,
            arrival: 0.5,
            deadline: 2.0,
            length: 1.25,
        };
        let live = JobOffer {
            arrival: t(0.5),
            deadline: t(2.0),
            length: dur(1.25),
        };
        assert_eq!(ev.payload_bytes(), Some(live.canonical_bytes()));
        assert_eq!(ev.payload_bytes(), Some("0.5,2,1.25".len() as u64));
        let open = ServeEvent::Open {
            session: "t.a".into(),
            scheduler: "eager".into(),
            line: 1,
        };
        assert_eq!(open.payload_bytes(), None);
    }
}
