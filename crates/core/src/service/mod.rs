//! The resident-service layer behind `fjs serve`.
//!
//! Batch runs ([`crate::sim::run_static`]) materialize a whole trace, run
//! it, and report once. A *service* instead holds many concurrent
//! [`Session`]s — one scheduler instance each — that consume unbounded
//! arrival streams with O(pending) memory, emit decisions incrementally,
//! and fail independently:
//!
//! * [`session`] — the per-session drive loop: a verbatim mirror of the
//!   batch engine's event ordering and action validation, plus panic
//!   containment ([`SessionVerdict`]), a cumulative watchdog budget, span
//!   accounting via [`crate::interval::SpanAccountant`], and completed-
//!   record compaction;
//! * [`checkpoint`] — the crash-safe [`ServeJournal`] that makes a killed
//!   daemon resumable to a byte-identical decision log;
//! * [`pool`] — the multi-core worker pool: sessions sharded across
//!   resident threads by stable *tenant* hash (so per-tenant state stays
//!   on one worker), replies tagged with global sequence numbers so the
//!   dispatcher can merge decision-log and journal lines
//!   deterministically at any worker count;
//! * [`governor`] — overload/abuse containment: tenant identity, per-
//!   tenant admission quotas, and the deterministic circuit-breaker
//!   state machine that refuses `open`s from tenants whose sessions keep
//!   failing.
//!
//! The protocol frontend (line parsing, admission control, sockets,
//! signals) lives in the `fjs` CLI; this module is deliberately free of
//! any I/O beyond the journal so it can be driven in-process by tests and
//! benches.

pub mod checkpoint;
pub mod governor;
pub mod pool;
pub mod session;

pub use checkpoint::{
    ServeEvent, ServeJournal, ServeJournalError, DEFAULT_SYNC_EVERY, SERVE_JOURNAL_VERSION,
};
pub use governor::{
    tenant_of, BreakerConfig, OpenDecision, TenantBreakers, TenantQuotas, TenantShedCause,
};
pub use pool::{
    stable_shard, PoolReply, PoolRequest, SessionFactory, SessionPool, SessionSnapshot,
    WorkerReport,
};
pub use session::{Decision, DecisionKind, JobOffer, Session, SessionError, SessionVerdict};
