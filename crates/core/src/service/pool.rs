//! A worker pool that shards [`Session`]s across threads.
//!
//! `fjs serve` at `--workers N` dispatches every session to one of `N`
//! resident worker threads chosen by a **stable hash of the session's
//! tenant** ([`stable_shard`] over [`tenant_of`]), so all requests of one
//! session — and of every sibling session of its tenant — apply on one
//! thread in submission order. Tenant co-location is what makes the
//! governor's per-tenant quotas exact: the owning worker can sum resident
//! jobs and admitted bytes over the whole tenant without racing anyone. Each submitted request carries a **global
//! sequence number** assigned by the dispatcher; replies come back tagged
//! with it, and the dispatcher merges decision-log and journal lines in
//! sequence order — the same index-ordered merge discipline as the
//! sharded sweep executor in `fjs-analysis` — which makes
//! the merged output a pure function of the request stream, independent
//! of the worker count.
//!
//! Why this is deterministic: a session's observable behaviour (its
//! decisions, its span, its shed/terminal outcomes) is a function of its
//! *own* request subsequence only — simulation time advances with offers,
//! never with wall clock. Requests of one session are FIFO on one worker,
//! so every per-request reply equals the reply a single-threaded server
//! would have produced, and the sequence-ordered merge reproduces the
//! single-threaded interleaving byte for byte.
//!
//! The pool is deliberately free of any protocol or I/O concern: it
//! receives typed [`PoolRequest`]s and returns typed [`PoolReply`]s. The
//! CLI's dispatcher owns parsing, admission (session-count limits need
//! the global open-set, which only the dispatcher sees in input order),
//! journaling and rendering.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use super::governor::{tenant_of, TenantQuotas, TenantShedCause};
use super::session::{Decision, JobOffer, Session, SessionError, SessionVerdict};
use crate::job::JobId;
use crate::time::Dur;

/// Builds a session from a scheduler spec string, on the worker thread
/// that will own it (sessions never cross threads, so schedulers need no
/// `Send` bound). The callable itself must be shareable across workers.
pub type SessionFactory = Arc<dyn Fn(&str) -> Result<Session, String> + Send + Sync>;

/// Stable session-id shard assignment: FNV-1a over the id's bytes, mod
/// the worker count. Pure, platform-independent, and fixed for the life
/// of the repo — reassigning sids across versions would silently break
/// per-worker FIFO expectations in mixed-version tooling.
pub fn stable_shard(sid: &str, workers: usize) -> usize {
    if workers <= 1 {
        return 0;
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sid.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % workers as u64) as usize
}

/// A request routed to the worker owning the session.
#[derive(Clone, Debug)]
pub enum PoolRequest {
    /// Create the session (the factory runs on the worker thread).
    Open {
        /// Session id.
        sid: String,
        /// Scheduler spec handed to the factory.
        spec: String,
    },
    /// Offer one job to the session.
    Offer {
        /// Session id.
        sid: String,
        /// The offer.
        offer: JobOffer,
    },
    /// Close the session and drain it to quiescence.
    Close {
        /// Session id.
        sid: String,
    },
    /// Read-only probe.
    Stats {
        /// Session id.
        sid: String,
    },
}

/// Read-only session probe results (the `stats` reply payload).
#[derive(Clone, Copy, Debug)]
pub struct SessionSnapshot {
    /// Running span.
    pub span: Dur,
    /// Jobs admitted but not started.
    pub pending: usize,
    /// Jobs running.
    pub running: usize,
    /// Materialized job records.
    pub retained: usize,
    /// High-water mark of materialized records.
    pub peak_retained: usize,
    /// Events processed.
    pub events_total: usize,
}

/// What a worker did with a request. Every variant mirrors one arm of the
/// single-threaded server's dispatch, including which ones count as
/// *admitted* (and therefore journaled) versus shed or rejected.
#[derive(Clone, Debug)]
pub enum PoolReply {
    /// The session was built and registered.
    Opened {
        /// The scheduler's self-reported name.
        name: String,
    },
    /// The factory refused the spec (or the sid was already resident —
    /// a dispatcher-directory inconsistency that should not happen).
    OpenFailed {
        /// Human-readable reason.
        error: String,
    },
    /// The offer was admitted and applied.
    OfferAdmitted {
        /// The released job's id.
        id: JobId,
        /// Session span after the offer.
        span: Dur,
        /// Decisions emitted by this offer, in order.
        decisions: Vec<Decision>,
    },
    /// The offer was admitted and its application poisoned the session
    /// (the mutation happened, so the request must still be journaled).
    OfferPoisoned {
        /// The terminal verdict.
        verdict: SessionVerdict,
        /// Decisions emitted before the poison landed.
        decisions: Vec<Decision>,
    },
    /// The session was already terminal; nothing was mutated.
    OfferTerminal {
        /// The pre-existing terminal verdict.
        verdict: SessionVerdict,
    },
    /// The per-session resident-job cap would be exceeded; shed.
    OfferShed {
        /// Resident (pending + running) jobs at the time of the check.
        resident: usize,
    },
    /// A per-tenant governor quota would be exceeded; shed. Exact
    /// because the dispatcher shards sessions by tenant, so the worker
    /// sees all of the tenant's sessions.
    OfferTenantShed {
        /// The tenant (sid prefix) the quota charged.
        tenant: String,
        /// Which quota tripped.
        cause: TenantShedCause,
        /// Tenant-wide usage observed at the check.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The offer failed validation; nothing was mutated.
    OfferRejected {
        /// The validation error.
        error: SessionError,
        /// Always empty (kept so the reply shape mirrors the serial
        /// server's unconditional decision flush).
        decisions: Vec<Decision>,
    },
    /// The session closed.
    Closed {
        /// Terminal verdict.
        verdict: SessionVerdict,
        /// Final span.
        span: Dur,
        /// Jobs admitted over the session's lifetime.
        jobs: u64,
        /// Decisions flushed by the close drain.
        decisions: Vec<Decision>,
    },
    /// Stats probe.
    Stats(SessionSnapshot),
    /// The worker has no such session (dispatcher-directory
    /// inconsistency; rendered as the serial `no such session` error).
    NoSession,
}

/// Peaks observed by one worker (merged into the serve summary).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerReport {
    /// Max materialized records in any of this worker's sessions.
    pub peak_retained: usize,
    /// Max live span segments in any of this worker's sessions.
    pub peak_live_segments: usize,
}

impl WorkerReport {
    /// Pointwise max.
    pub fn merge(&mut self, other: WorkerReport) {
        self.peak_retained = self.peak_retained.max(other.peak_retained);
        self.peak_live_segments = self.peak_live_segments.max(other.peak_live_segments);
    }
}

struct Task {
    seq: u64,
    req: PoolRequest,
}

struct Slot {
    session: Session,
    jobs: u64,
}

/// Per-worker state: the sessions hashed to this worker plus the peaks
/// they reached.
struct Worker {
    sessions: BTreeMap<String, Slot>,
    factory: SessionFactory,
    max_pending: usize,
    quotas: TenantQuotas,
    report: WorkerReport,
}

impl Worker {
    /// Tenant-wide (resident jobs, admitted payload bytes) across this
    /// worker's open sessions of `tenant`. Exact by construction: the
    /// dispatcher shards by tenant, so no other worker holds any of them.
    fn tenant_usage(&self, tenant: &str) -> (usize, u64) {
        let mut resident = 0usize;
        let mut bytes = 0u64;
        for (sid, slot) in &self.sessions {
            if tenant_of(sid) == tenant {
                resident += slot.session.num_pending() + slot.session.num_running();
                bytes += slot.session.admitted_payload_bytes();
            }
        }
        (resident, bytes)
    }
    fn note_peaks(&mut self, sid: &str) {
        if let Some(slot) = self.sessions.get(sid) {
            self.report.peak_retained = self
                .report
                .peak_retained
                .max(slot.session.peak_retained_records());
            self.report.peak_live_segments = self
                .report
                .peak_live_segments
                .max(slot.session.peak_live_segments());
        }
    }

    fn handle(&mut self, req: PoolRequest) -> PoolReply {
        match req {
            PoolRequest::Open { sid, spec } => {
                if self.sessions.contains_key(&sid) {
                    return PoolReply::OpenFailed {
                        error: "session already open".into(),
                    };
                }
                match (self.factory)(&spec) {
                    Ok(session) => {
                        let name = session.scheduler_name();
                        self.sessions.insert(sid, Slot { session, jobs: 0 });
                        PoolReply::Opened { name }
                    }
                    Err(error) => PoolReply::OpenFailed { error },
                }
            }
            PoolRequest::Offer { sid, offer } => {
                let Some(slot) = self.sessions.get_mut(&sid) else {
                    return PoolReply::NoSession;
                };
                if let Some(v) = slot.session.verdict() {
                    return PoolReply::OfferTerminal { verdict: v.clone() };
                }
                let resident = slot.session.num_pending() + slot.session.num_running();
                if resident >= self.max_pending {
                    return PoolReply::OfferShed { resident };
                }
                if self.quotas.enabled() {
                    let tenant = tenant_of(&sid).to_string();
                    let (t_resident, t_bytes) = self.tenant_usage(&tenant);
                    if self.quotas.max_pending > 0 && t_resident >= self.quotas.max_pending {
                        return PoolReply::OfferTenantShed {
                            tenant,
                            cause: TenantShedCause::Pending,
                            used: t_resident as u64,
                            limit: self.quotas.max_pending as u64,
                        };
                    }
                    if self.quotas.max_bytes > 0
                        && t_bytes + offer.canonical_bytes() > self.quotas.max_bytes
                    {
                        return PoolReply::OfferTenantShed {
                            tenant,
                            cause: TenantShedCause::Bytes,
                            used: t_bytes,
                            limit: self.quotas.max_bytes,
                        };
                    }
                }
                let Some(slot) = self.sessions.get_mut(&sid) else {
                    return PoolReply::NoSession;
                };
                let outcome = slot.session.offer(offer);
                if outcome.is_ok() {
                    slot.jobs += 1;
                }
                let decisions = slot.session.take_decisions();
                let span = slot.session.span();
                let reply = match outcome {
                    Ok(id) => PoolReply::OfferAdmitted {
                        id,
                        span,
                        decisions,
                    },
                    Err(SessionError::Terminal(verdict)) => {
                        PoolReply::OfferPoisoned { verdict, decisions }
                    }
                    Err(error) => PoolReply::OfferRejected { error, decisions },
                };
                self.note_peaks(&sid);
                reply
            }
            PoolRequest::Close { sid } => {
                let Some(mut slot) = self.sessions.remove(&sid) else {
                    return PoolReply::NoSession;
                };
                let verdict = slot.session.close();
                let span = slot.session.span();
                let decisions = slot.session.take_decisions();
                self.report.peak_retained = self
                    .report
                    .peak_retained
                    .max(slot.session.peak_retained_records());
                self.report.peak_live_segments = self
                    .report
                    .peak_live_segments
                    .max(slot.session.peak_live_segments());
                PoolReply::Closed {
                    verdict,
                    span,
                    jobs: slot.jobs,
                    decisions,
                }
            }
            PoolRequest::Stats { sid } => match self.sessions.get(&sid) {
                None => PoolReply::NoSession,
                Some(slot) => {
                    let s = &slot.session;
                    PoolReply::Stats(SessionSnapshot {
                        span: s.span(),
                        pending: s.num_pending(),
                        running: s.num_running(),
                        retained: s.retained_records(),
                        peak_retained: s.peak_retained_records(),
                        events_total: s.stats().events_total,
                    })
                }
            },
        }
    }
}

/// The pool: `workers` resident threads, per-worker FIFO request
/// channels, one shared reply channel tagged with global sequence
/// numbers. Scheduler panics are already contained inside [`Session`];
/// the threads themselves only die if the process is torn down around
/// them, which [`SessionPool::submit`] reports as an error.
pub struct SessionPool {
    txs: Vec<mpsc::Sender<Task>>,
    rx: mpsc::Receiver<(u64, PoolReply)>,
    handles: Vec<std::thread::JoinHandle<WorkerReport>>,
}

impl SessionPool {
    /// Spawns `workers` threads (at least 1). `max_pending` is the
    /// per-session resident-job cap enforced on the owning worker — the
    /// worker sees its session's exact state after all prior requests,
    /// so the shed decision is identical to a single-threaded server's.
    /// `quotas` are the per-tenant caps (off by default), exact under
    /// tenant-sharded dispatch for the same reason.
    pub fn new(
        workers: usize,
        max_pending: usize,
        quotas: TenantQuotas,
        factory: SessionFactory,
    ) -> SessionPool {
        let workers = workers.max(1);
        let (reply_tx, rx) = mpsc::channel::<(u64, PoolReply)>();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, task_rx) = mpsc::channel::<Task>();
            let reply_tx = reply_tx.clone();
            let factory = Arc::clone(&factory);
            handles.push(std::thread::spawn(move || {
                let mut w = Worker {
                    sessions: BTreeMap::new(),
                    factory,
                    max_pending,
                    quotas,
                    report: WorkerReport::default(),
                };
                while let Ok(task) = task_rx.recv() {
                    let reply = w.handle(task.req);
                    if reply_tx.send((task.seq, reply)).is_err() {
                        break;
                    }
                }
                w.report
            }));
            txs.push(tx);
        }
        SessionPool { txs, rx, handles }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Queues a request on `worker` (see [`stable_shard`]) tagged `seq`.
    pub fn submit(&self, worker: usize, seq: u64, req: PoolRequest) -> Result<(), String> {
        let tx = self
            .txs
            .get(worker)
            .ok_or_else(|| format!("no such worker {worker}"))?;
        tx.send(Task { seq, req })
            .map_err(|_| format!("worker {worker} is gone"))
    }

    /// A completed reply, if one is ready.
    pub fn try_recv(&self) -> Option<(u64, PoolReply)> {
        self.rx.try_recv().ok()
    }

    /// Waits up to `timeout` for a completed reply.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(u64, PoolReply)> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Stops every worker (their queues drain first) and merges their
    /// peak reports. Sessions still resident are dropped without a close
    /// — callers drain before shutting down.
    pub fn shutdown(self) -> WorkerReport {
        drop(self.txs);
        let mut merged = WorkerReport::default();
        for h in self.handles {
            if let Ok(report) = h.join() {
                merged.merge(report);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::env::Clairvoyance;
    use crate::sim::sched::{Arrival, Ctx, OnlineScheduler};
    use crate::time::{dur, t};

    struct Eager;
    impl OnlineScheduler for Eager {
        fn name(&self) -> String {
            "pool-eager".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }

    fn factory() -> SessionFactory {
        Arc::new(|spec: &str| {
            if spec == "eager" {
                Ok(Session::new(Box::new(Eager), Clairvoyance::Clairvoyant))
            } else {
                Err(format!("unknown scheduler '{spec}'"))
            }
        })
    }

    fn offer(a: f64, d: f64, p: f64) -> JobOffer {
        JobOffer {
            arrival: t(a),
            deadline: t(d),
            length: dur(p),
        }
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for sid in ["a", "s0", "s1", "tenant-42", "x.y_z"] {
            for n in [1usize, 2, 3, 8] {
                let w = stable_shard(sid, n);
                assert!(w < n, "{sid}@{n}");
                assert_eq!(w, stable_shard(sid, n), "{sid}@{n} must be stable");
            }
        }
        // Pinned values: the hash is part of the cross-version contract.
        assert_eq!(stable_shard("s0", 8), stable_shard("s0", 8));
        assert_ne!(
            (0..16).map(|i| stable_shard(&format!("s{i}"), 8)).max(),
            Some(0),
            "ids must spread across workers"
        );
    }

    #[test]
    fn pool_round_trips_a_session_lifecycle() {
        let pool = SessionPool::new(2, 1024, TenantQuotas::off(), factory());
        let w = stable_shard("a", pool.workers());
        pool.submit(
            w,
            0,
            PoolRequest::Open {
                sid: "a".into(),
                spec: "eager".into(),
            },
        )
        .unwrap();
        pool.submit(
            w,
            1,
            PoolRequest::Offer {
                sid: "a".into(),
                offer: offer(0.0, 5.0, 2.0),
            },
        )
        .unwrap();
        pool.submit(w, 2, PoolRequest::Close { sid: "a".into() })
            .unwrap();

        let mut replies = BTreeMap::new();
        for _ in 0..3 {
            let (seq, reply) = pool
                .recv_timeout(Duration::from_secs(5))
                .expect("pool reply");
            replies.insert(seq, reply);
        }
        assert!(
            matches!(replies.get(&0), Some(PoolReply::Opened { name }) if name == "pool-eager")
        );
        match replies.get(&1) {
            Some(PoolReply::OfferAdmitted {
                span, decisions, ..
            }) => {
                assert_eq!(*span, dur(2.0));
                assert_eq!(decisions.len(), 1, "eager start decision");
            }
            other => panic!("want OfferAdmitted, got {other:?}"),
        }
        match replies.get(&2) {
            Some(PoolReply::Closed {
                verdict,
                span,
                jobs,
                decisions,
            }) => {
                assert!(verdict.is_completed());
                assert_eq!(*span, dur(2.0));
                assert_eq!(*jobs, 1);
                assert_eq!(decisions.len(), 1, "close drains the done decision");
            }
            other => panic!("want Closed, got {other:?}"),
        }
        let report = pool.shutdown();
        assert!(report.peak_retained >= 1);
    }

    #[test]
    fn unknown_spec_and_missing_session_are_typed() {
        let pool = SessionPool::new(1, 1024, TenantQuotas::off(), factory());
        pool.submit(
            0,
            0,
            PoolRequest::Open {
                sid: "a".into(),
                spec: "bogus".into(),
            },
        )
        .unwrap();
        pool.submit(
            0,
            1,
            PoolRequest::Offer {
                sid: "ghost".into(),
                offer: offer(0.0, 1.0, 1.0),
            },
        )
        .unwrap();
        let mut replies = BTreeMap::new();
        for _ in 0..2 {
            let (seq, reply) = pool
                .recv_timeout(Duration::from_secs(5))
                .expect("pool reply");
            replies.insert(seq, reply);
        }
        assert!(
            matches!(replies.get(&0), Some(PoolReply::OpenFailed { error }) if error.contains("bogus"))
        );
        assert!(matches!(replies.get(&1), Some(PoolReply::NoSession)));
        pool.shutdown();
    }

    #[test]
    fn per_session_shed_is_enforced_on_the_worker() {
        // A session under a scheduler that keeps jobs pending would need
        // a non-starting scheduler; eager starts instantly, so resident
        // stays 1 — use max_pending 1 and two same-instant offers: the
        // first is running when the second arrives, so it sheds.
        let pool = SessionPool::new(1, 1, TenantQuotas::off(), factory());
        pool.submit(
            0,
            0,
            PoolRequest::Open {
                sid: "a".into(),
                spec: "eager".into(),
            },
        )
        .unwrap();
        pool.submit(
            0,
            1,
            PoolRequest::Offer {
                sid: "a".into(),
                offer: offer(0.0, 5.0, 10.0),
            },
        )
        .unwrap();
        pool.submit(
            0,
            2,
            PoolRequest::Offer {
                sid: "a".into(),
                offer: offer(1.0, 6.0, 1.0),
            },
        )
        .unwrap();
        let mut got_shed = false;
        for _ in 0..3 {
            if let Some((seq, reply)) = pool.recv_timeout(Duration::from_secs(5)) {
                if seq == 2 {
                    assert!(
                        matches!(reply, PoolReply::OfferShed { resident: 1 }),
                        "{reply:?}"
                    );
                    got_shed = true;
                }
            }
        }
        assert!(got_shed);
        pool.shutdown();
    }

    #[test]
    fn tenant_pending_quota_spans_sibling_sessions() {
        // Tenant `t` owns two sessions on one worker; a 1-job tenant
        // quota sheds the second session's offer while the first tenant's
        // job is still resident — and leaves other tenants alone.
        let quotas = TenantQuotas {
            max_pending: 1,
            max_bytes: 0,
        };
        let pool = SessionPool::new(1, 1024, quotas, factory());
        for (seq, sid) in [(0u64, "t.a"), (1, "t.b"), (2, "u.a")] {
            pool.submit(
                0,
                seq,
                PoolRequest::Open {
                    sid: sid.into(),
                    spec: "eager".into(),
                },
            )
            .unwrap();
        }
        pool.submit(
            0,
            3,
            PoolRequest::Offer {
                sid: "t.a".into(),
                offer: offer(0.0, 5.0, 10.0),
            },
        )
        .unwrap();
        pool.submit(
            0,
            4,
            PoolRequest::Offer {
                sid: "t.b".into(),
                offer: offer(0.0, 6.0, 1.0),
            },
        )
        .unwrap();
        pool.submit(
            0,
            5,
            PoolRequest::Offer {
                sid: "u.a".into(),
                offer: offer(0.0, 6.0, 1.0),
            },
        )
        .unwrap();
        let mut replies = BTreeMap::new();
        for _ in 0..6 {
            let (seq, reply) = pool
                .recv_timeout(Duration::from_secs(5))
                .expect("pool reply");
            replies.insert(seq, reply);
        }
        assert!(matches!(
            replies.get(&3),
            Some(PoolReply::OfferAdmitted { .. })
        ));
        match replies.get(&4) {
            Some(PoolReply::OfferTenantShed {
                tenant,
                cause: TenantShedCause::Pending,
                used: 1,
                limit: 1,
            }) => assert_eq!(tenant, "t"),
            other => panic!("want tenant shed, got {other:?}"),
        }
        assert!(matches!(
            replies.get(&5),
            Some(PoolReply::OfferAdmitted { .. })
        ));
        pool.shutdown();
    }

    #[test]
    fn tenant_byte_quota_charges_canonical_payload_bytes() {
        // "0,5,2" is 5 canonical bytes; a 9-byte quota admits one offer
        // and sheds the next (5 + 5 > 9). Bytes are only released at
        // close, so job completion does not reopen the budget.
        let quotas = TenantQuotas {
            max_pending: 0,
            max_bytes: 9,
        };
        let pool = SessionPool::new(1, 1024, quotas, factory());
        pool.submit(
            0,
            0,
            PoolRequest::Open {
                sid: "t.a".into(),
                spec: "eager".into(),
            },
        )
        .unwrap();
        pool.submit(
            0,
            1,
            PoolRequest::Offer {
                sid: "t.a".into(),
                offer: offer(0.0, 5.0, 2.0),
            },
        )
        .unwrap();
        pool.submit(
            0,
            2,
            PoolRequest::Offer {
                sid: "t.a".into(),
                offer: offer(3.0, 8.0, 2.0),
            },
        )
        .unwrap();
        let mut replies = BTreeMap::new();
        for _ in 0..3 {
            let (seq, reply) = pool
                .recv_timeout(Duration::from_secs(5))
                .expect("pool reply");
            replies.insert(seq, reply);
        }
        assert!(matches!(
            replies.get(&1),
            Some(PoolReply::OfferAdmitted { .. })
        ));
        match replies.get(&2) {
            Some(PoolReply::OfferTenantShed {
                tenant,
                cause: TenantShedCause::Bytes,
                used: 5,
                limit: 9,
            }) => assert_eq!(tenant, "t"),
            other => panic!("want byte shed, got {other:?}"),
        }
        pool.shutdown();
    }
}
