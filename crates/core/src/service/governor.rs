//! Tenant-level overload and abuse containment for the serve stack.
//!
//! A **tenant** is the session-id prefix before the first `.` (the whole
//! sid when there is no dot), so `acme.batch-7` and `acme.rt` belong to
//! tenant `acme` while bare sids like `s0` are their own tenant. Two
//! mechanisms hang off that identity:
//!
//! * [`TenantQuotas`] — caps on resident jobs and admitted payload bytes
//!   across all of one tenant's open sessions, enforced where the exact
//!   session state lives (inline in the serial server; on the owning
//!   worker under a pool, which is why the dispatcher shards sessions by
//!   *tenant* hash — co-location makes the check exact and deterministic).
//! * [`TenantBreakers`] — a circuit breaker per tenant: repeated
//!   non-`Completed` close verdicts open the breaker, subsequent `open`s
//!   are refused with a structured `busy breaker-open` reply, and after a
//!   cooldown measured in **applied events** (never wall clock) a single
//!   half-open probe decides between closing and re-opening it.
//!
//! Determinism is the design constraint everything here bends around:
//! every piece of breaker state advances only on *journal-equivalent*
//! events — admitted opens, admitted (journaled) offers, and closes — so
//! a SIGKILL + `--resume` replay of the journal reconstructs breaker
//! state bit-identically, with no new journal record kind and no version
//! bump. Refused opens are not journaled and never mutate breaker state,
//! so their absence from a replay cannot cause divergence.

use std::collections::HashMap;

/// The tenant a session id belongs to: the prefix before the first `.`,
/// or the whole sid when there is no dot (or the dot is leading, so the
/// prefix would be empty).
pub fn tenant_of(sid: &str) -> &str {
    match sid.find('.') {
        Some(i) if i > 0 => &sid[..i],
        _ => sid,
    }
}

/// Per-tenant admission quotas, enforced across all of a tenant's open
/// sessions. `0` disables a quota.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Cap on resident (pending + running) jobs summed over the tenant's
    /// open sessions; offers beyond it are shed `busy`.
    pub max_pending: usize,
    /// Cap on canonical payload bytes admitted into the tenant's
    /// currently-open sessions (released wholesale when a session
    /// closes); offers beyond it are shed `busy`. This bounds how much
    /// work a tenant can pump in without recycling sessions.
    pub max_bytes: u64,
}

impl TenantQuotas {
    /// Both quotas disabled (the default: zero overhead on the hot path).
    pub fn off() -> TenantQuotas {
        TenantQuotas {
            max_pending: 0,
            max_bytes: 0,
        }
    }

    /// `true` when at least one quota is active.
    pub fn enabled(&self) -> bool {
        self.max_pending > 0 || self.max_bytes > 0
    }
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas::off()
    }
}

/// Which tenant quota shed an offer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantShedCause {
    /// The resident-jobs quota ([`TenantQuotas::max_pending`]).
    Pending,
    /// The admitted-bytes quota ([`TenantQuotas::max_bytes`]).
    Bytes,
}

impl TenantShedCause {
    /// The wire token used in `busy` replies (`tenant-pending` /
    /// `tenant-bytes`).
    pub fn label(&self) -> &'static str {
        match self {
            TenantShedCause::Pending => "pending",
            TenantShedCause::Bytes => "bytes",
        }
    }
}

/// Circuit-breaker tuning. The cooldown counts **applied events** (every
/// journal-equivalent event daemon-wide), never wall-clock time, so the
/// breaker timeline is a pure function of the input stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive non-`Completed` close verdicts (while closed) that
    /// trip the breaker. `0` disables the breaker entirely.
    pub threshold: u32,
    /// Applied events between tripping and the half-open probe window.
    pub cooldown_events: u64,
}

/// Default trip threshold: three consecutive failed sessions.
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 3;
/// Default cooldown: 256 applied events.
pub const DEFAULT_BREAKER_COOLDOWN: u64 = 256;

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: DEFAULT_BREAKER_THRESHOLD,
            cooldown_events: DEFAULT_BREAKER_COOLDOWN,
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
enum BreakerState {
    Closed,
    Open { since: u64 },
    HalfOpen { probe: Option<String> },
}

#[derive(Clone, Debug)]
struct TenantBreaker {
    state: BreakerState,
    failures: u32,
}

/// The outcome of a breaker check on an `open`.
#[derive(Clone, Debug, PartialEq)]
pub enum OpenDecision {
    /// Admit the open (possibly as the half-open probe).
    Admit,
    /// Refuse with `busy breaker-open`.
    Refuse {
        /// Consecutive failures recorded when the breaker tripped.
        failures: u32,
        /// Applied events until the half-open window (0 while a probe is
        /// already outstanding).
        retry_after: u64,
    },
}

/// All tenants' breakers plus the global applied-event clock.
///
/// State only changes on journal-equivalent events (see module docs), and
/// entries exist only for tenants with recorded failures — healthy
/// traffic costs one map lookup per event.
#[derive(Debug)]
pub struct TenantBreakers {
    cfg: BreakerConfig,
    tenants: HashMap<String, TenantBreaker>,
    clock: u64,
    trips: u64,
}

impl TenantBreakers {
    /// A breaker set under `cfg` (threshold 0 disables everything).
    pub fn new(cfg: BreakerConfig) -> TenantBreakers {
        TenantBreakers {
            cfg,
            tenants: HashMap::new(),
            clock: 0,
            trips: 0,
        }
    }

    /// Times the breaker has tripped (transitioned to open) over the run.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The global applied-event clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// `true` when the tenant's breaker is open or half-open — the
    /// pooled dispatcher uses this to decide whether an `open` needs the
    /// global clock settled to input order first.
    pub fn is_restricted(&self, tenant: &str) -> bool {
        self.cfg.threshold > 0
            && self
                .tenants
                .get(tenant)
                .is_some_and(|b| b.state != BreakerState::Closed)
    }

    /// Ticks the clock for one applied (journal-equivalent) event: an
    /// admitted open or an admitted (journaled) job offer.
    pub fn note_event(&mut self) {
        if self.cfg.threshold == 0 {
            return;
        }
        self.clock += 1;
    }

    /// Records a close verdict (and ticks the clock — closes are applied
    /// events too). `completed` is `SessionVerdict::is_completed`.
    pub fn note_close(&mut self, sid: &str, completed: bool) {
        if self.cfg.threshold == 0 {
            return;
        }
        self.clock += 1;
        let tenant = tenant_of(sid);
        let Some(b) = self.tenants.get_mut(tenant) else {
            if !completed {
                let mut b = TenantBreaker {
                    state: BreakerState::Closed,
                    failures: 1,
                };
                if b.failures >= self.cfg.threshold {
                    b.state = BreakerState::Open { since: self.clock };
                    self.trips += 1;
                }
                self.tenants.insert(tenant.to_string(), b);
            }
            return;
        };
        match &b.state {
            BreakerState::Closed => {
                if completed {
                    self.tenants.remove(tenant);
                } else {
                    b.failures += 1;
                    if b.failures >= self.cfg.threshold {
                        b.state = BreakerState::Open { since: self.clock };
                        self.trips += 1;
                    }
                }
            }
            // Sessions opened before the trip keep draining; their
            // verdicts neither extend nor shorten the cooldown.
            BreakerState::Open { .. } => {}
            BreakerState::HalfOpen { probe } => {
                if probe.as_deref() == Some(sid) {
                    if completed {
                        self.tenants.remove(tenant);
                    } else {
                        b.state = BreakerState::Open { since: self.clock };
                        self.trips += 1;
                    }
                }
            }
        }
    }

    /// Checks (and, for the half-open transition, advances) the breaker
    /// for an `open` of `sid`. State mutations happen only on `Admit`
    /// paths, which correspond to journaled opens — so a resume replay,
    /// which re-runs exactly the admitted opens, reproduces them.
    pub fn admit_open(&mut self, sid: &str) -> OpenDecision {
        if self.cfg.threshold == 0 {
            return OpenDecision::Admit;
        }
        let tenant = tenant_of(sid);
        let Some(b) = self.tenants.get_mut(tenant) else {
            return OpenDecision::Admit;
        };
        if let BreakerState::Open { since } = b.state {
            if self.clock.saturating_sub(since) >= self.cfg.cooldown_events {
                b.state = BreakerState::HalfOpen { probe: None };
            }
        }
        match &mut b.state {
            BreakerState::Closed => OpenDecision::Admit,
            BreakerState::Open { since } => OpenDecision::Refuse {
                failures: b.failures,
                retry_after: self
                    .cfg
                    .cooldown_events
                    .saturating_sub(self.clock.saturating_sub(*since)),
            },
            BreakerState::HalfOpen { probe } => match probe {
                None => {
                    *probe = Some(sid.to_string());
                    OpenDecision::Admit
                }
                Some(_) => OpenDecision::Refuse {
                    failures: b.failures,
                    retry_after: 0,
                },
            },
        }
    }

    /// Rolls back a half-open probe reservation whose open then failed
    /// (duplicate sid or invalid spec — checks that run after the breaker
    /// so both server backends agree on reply order). Failed opens are
    /// not journaled, and reserve+rollback nets to no state change, so
    /// replay stays consistent.
    pub fn abort_open(&mut self, sid: &str) {
        if let Some(b) = self.tenants.get_mut(tenant_of(sid)) {
            if let BreakerState::HalfOpen { probe: Some(p) } = &b.state {
                if p == sid {
                    b.state = BreakerState::HalfOpen { probe: None };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown: u64) -> BreakerConfig {
        BreakerConfig {
            threshold,
            cooldown_events: cooldown,
        }
    }

    #[test]
    fn tenant_is_the_prefix_before_the_first_dot() {
        assert_eq!(tenant_of("acme.batch-7"), "acme");
        assert_eq!(tenant_of("acme.rt.x"), "acme");
        assert_eq!(tenant_of("s0"), "s0");
        assert_eq!(tenant_of(".hidden"), ".hidden");
        assert_eq!(tenant_of("a."), "a");
    }

    #[test]
    fn quotas_default_off() {
        assert!(!TenantQuotas::default().enabled());
        assert!(TenantQuotas {
            max_pending: 1,
            max_bytes: 0
        }
        .enabled());
    }

    /// The pinned state machine: closed → open → half-open → closed, and
    /// the re-open path when the probe fails.
    #[test]
    fn breaker_lifecycle_closed_open_halfopen_closed_and_reopen() {
        let mut b = TenantBreakers::new(cfg(2, 4));

        // Closed: failures accumulate only while consecutive.
        b.note_close("t.a", false);
        b.note_close("t.b", true); // completed resets the streak
        assert_eq!(b.admit_open("t.c"), OpenDecision::Admit);
        assert_eq!(b.trips(), 0);

        // Two consecutive failures trip it.
        b.note_close("t.a", false);
        b.note_close("t.b", false);
        assert_eq!(b.trips(), 1);
        assert!(b.is_restricted("t"));
        assert!(matches!(
            b.admit_open("t.c"),
            OpenDecision::Refuse {
                failures: 2,
                retry_after: 4
            }
        ));

        // Other tenants are unaffected.
        assert_eq!(b.admit_open("other.x"), OpenDecision::Admit);

        // Cooldown counts applied events, not wall clock.
        for _ in 0..4 {
            b.note_event();
        }
        // Half-open: first open becomes the probe, siblings are refused.
        assert_eq!(b.admit_open("t.probe"), OpenDecision::Admit);
        assert!(matches!(
            b.admit_open("t.d"),
            OpenDecision::Refuse { retry_after: 0, .. }
        ));

        // Probe failing re-opens (second trip)…
        b.note_close("t.probe", false);
        assert_eq!(b.trips(), 2);
        assert!(matches!(b.admit_open("t.e"), OpenDecision::Refuse { .. }));

        // …cooldown again, and a successful probe closes it fully.
        for _ in 0..4 {
            b.note_event();
        }
        assert_eq!(b.admit_open("t.probe2"), OpenDecision::Admit);
        b.note_close("t.probe2", true);
        assert!(!b.is_restricted("t"));
        assert_eq!(b.admit_open("t.f"), OpenDecision::Admit);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn non_probe_closes_during_halfopen_are_ignored() {
        let mut b = TenantBreakers::new(cfg(1, 0));
        b.note_close("t.a", false); // trips immediately (threshold 1)
        assert_eq!(b.trips(), 1);
        // cooldown 0: next open goes straight to half-open probe.
        assert_eq!(b.admit_open("t.p"), OpenDecision::Admit);
        // A pre-trip session failing while the probe is out must not
        // re-trip the breaker.
        b.note_close("t.old", false);
        assert_eq!(b.trips(), 1);
        // The probe's own verdict decides.
        b.note_close("t.p", true);
        assert!(!b.is_restricted("t"));
    }

    #[test]
    fn abort_open_rolls_back_a_probe_reservation() {
        let mut b = TenantBreakers::new(cfg(1, 0));
        b.note_close("t.a", false);
        assert_eq!(b.admit_open("t.p"), OpenDecision::Admit);
        // The open failed post-breaker (bad spec): roll the probe back so
        // the next open can probe instead of being refused forever.
        b.abort_open("t.p");
        assert_eq!(b.admit_open("t.q"), OpenDecision::Admit);
    }

    #[test]
    fn threshold_zero_disables_everything() {
        let mut b = TenantBreakers::new(cfg(0, 8));
        for _ in 0..10 {
            b.note_close("t.a", false);
        }
        assert_eq!(b.admit_open("t.b"), OpenDecision::Admit);
        assert_eq!(b.trips(), 0);
        assert_eq!(b.clock(), 0);
    }
}
