//! A resident scheduling session: the incremental analogue of the batch
//! engine's drive loop.
//!
//! [`Session`] owns one scheduler and one [`World`] and accepts jobs one at
//! a time via [`Session::offer`], in arrival order, with no bound on how
//! many will ever arrive. Between offers it holds the pending event queue
//! (deadline alarms, ordered starts, completions, wakeups) exactly as the
//! batch engine would; each offer first drains every queued event that
//! precedes the new arrival in the engine's `(time, tie-order)` total
//! order, then releases the job and dispatches `on_arrival`. Because the
//! tie-break orders are copied verbatim from the engine
//! ([`crate::sim::engine`]), a session fed a trace job-by-job makes the
//! same decisions, in the same order, as [`crate::sim::run_static`] over
//! the whole trace — the determinism contract `fjs serve` advertises.
//!
//! Three properties distinguish a session from a batch run:
//!
//! * **O(pending) memory.** Spans are accumulated by a
//!   [`SpanAccountant`] (closed intervals retire into a scalar) and
//!   completed job records are dropped by
//!   `World::compact_completed_prefix`, so resident state is proportional
//!   to the jobs in flight, not the jobs ever seen.
//! * **Containment.** Every entry point runs the scheduler under
//!   [`catch_unwind`] with a cumulative event budget; a panic, a runaway
//!   wakeup loop, or a horizon overflow poisons *this* session with a
//!   typed [`SessionVerdict`] (mirroring the supervise layer's verdicts)
//!   and leaves every other session untouched.
//! * **Incremental output.** Start/finish [`Decision`]s carry the running
//!   span and are drained by the caller as they happen; nothing waits for
//!   the end of the trace.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::interval::{Interval, SpanAccountant};
use crate::job::JobId;
use crate::sim::env::{geometric_class, Clairvoyance};
use crate::sim::sched::{Action, Arrival, Ctx, OnlineScheduler};
use crate::sim::stats::RunStats;
use crate::sim::world::World;
use crate::supervise::{panic_message, DEFAULT_WATCHDOG_EVENTS};
use crate::time::{Dur, Time};

// ---- event queue (verbatim mirror of the batch engine's ordering) -------

/// Same-instant tie-break order, copied from the batch engine: completions
/// first, then releases (order 1, held by the arriving offer itself), then
/// ordered starts, deadline alarms, wakeups. Fixed-length sessions never
/// queue length probes (order 3), so that slot is simply unused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    Completion(JobId),
    OrderedStart(JobId),
    DeadlineAlarm(JobId),
    Wakeup(u64),
}

impl EventKind {
    fn order(self) -> u8 {
        match self {
            EventKind::Completion(_) => 0,
            EventKind::OrderedStart(_) => 2,
            EventKind::DeadlineAlarm(_) => 4,
            EventKind::Wakeup(_) => 5,
        }
    }
}

/// Tie-break rank of a release, between completions and ordered starts.
const RELEASE_ORDER: u8 = 1;

#[derive(Clone, Copy, Debug)]
struct Event {
    time: Time,
    order: u8,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.order, self.seq).cmp(&(other.time, other.order, other.seq))
    }
}

// ---- public surface ------------------------------------------------------

/// A job offered to a session (the streaming analogue of a trace record).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct JobOffer {
    /// Arrival time `a(J)`; must be ≥ every previously offered arrival.
    pub arrival: Time,
    /// Starting deadline `d(J)`; must be ≥ the arrival.
    pub deadline: Time,
    /// Processing length `p(J)`; must be positive. Sessions schedule fixed
    /// lengths only — adaptive adversaries need the batch engine's
    /// environment loop.
    pub length: Dur,
}

impl JobOffer {
    /// Canonical wire size of this offer's payload: the byte length of
    /// `"{a},{d},{l}"` rendered from the parsed values. The governor's
    /// per-tenant byte quota charges this — not the raw client bytes — so
    /// live admission and a journal replay (which re-parses the same
    /// canonical floats) account identically, and padding a payload with
    /// whitespace buys a client nothing.
    pub fn canonical_bytes(&self) -> u64 {
        let mut counter = ByteCounter(0);
        use std::fmt::Write;
        let _ = write!(
            counter,
            "{},{},{}",
            self.arrival.get(),
            self.deadline.get(),
            self.length.get()
        );
        counter.0
    }
}

/// Counts formatted bytes without allocating.
struct ByteCounter(u64);

impl fmt::Write for ByteCounter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0 += s.len() as u64;
        Ok(())
    }
}

/// Why an offer (or close) was refused. The session state is unchanged
/// unless the variant is [`SessionError::Terminal`].
#[derive(Clone, PartialEq, Debug)]
pub enum SessionError {
    /// The session already reached a terminal verdict and accepts nothing.
    Terminal(SessionVerdict),
    /// The offer's arrival precedes an earlier offer — sessions consume
    /// arrival-ordered streams, exactly like the batch engine's
    /// environments (which fault a release into the past).
    ArrivalRegressed {
        /// The offending arrival.
        arrival: Time,
        /// The session's arrival frontier (largest arrival admitted).
        frontier: Time,
    },
    /// The starting deadline precedes the arrival.
    DeadlineBeforeArrival {
        /// The offer's arrival.
        arrival: Time,
        /// The offending deadline.
        deadline: Time,
    },
    /// The processing length is zero or negative.
    NonPositiveLength {
        /// The offending length.
        length: Dur,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Terminal(v) => write!(f, "session is terminal ({v})"),
            SessionError::ArrivalRegressed { arrival, frontier } => write!(
                f,
                "arrival {arrival} precedes the session frontier {frontier}"
            ),
            SessionError::DeadlineBeforeArrival { arrival, deadline } => {
                write!(f, "deadline {deadline} precedes arrival {arrival}")
            }
            SessionError::NonPositiveLength { length } => {
                write!(f, "non-positive length {length}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// How a session ended — the service-layer mirror of
/// [`SuperviseVerdict`](crate::supervise::SuperviseVerdict), with the same
/// stable labels.
#[derive(Clone, PartialEq, Debug)]
pub enum SessionVerdict {
    /// Drained cleanly: every admitted job started and completed.
    Completed,
    /// The cumulative event budget was exhausted (e.g. a wakeup loop from
    /// a hanging scheduler). Fields: events processed when the watchdog
    /// fired.
    TimedOut {
        /// Events processed when the budget ran out.
        events: usize,
    },
    /// The scheduler (or a containment-tripping world access) panicked.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The session hit a simulation fault (currently only horizon
    /// overflow: a start so late that `start + length` is not finite).
    Faulted {
        /// Human-readable fault description.
        message: String,
    },
}

impl SessionVerdict {
    /// Stable label used in replies, logs and reports; matches the
    /// supervise layer's verdict labels.
    pub fn label(&self) -> &'static str {
        match self {
            SessionVerdict::Completed => "completed",
            SessionVerdict::TimedOut { .. } => "timed-out",
            SessionVerdict::Panicked { .. } => "panicked",
            SessionVerdict::Faulted { .. } => "faulted",
        }
    }

    /// Whether this is the clean outcome.
    pub fn is_completed(&self) -> bool {
        matches!(self, SessionVerdict::Completed)
    }
}

impl fmt::Display for SessionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionVerdict::Completed => f.write_str("completed"),
            SessionVerdict::TimedOut { events } => {
                write!(f, "timed-out after {events} events")
            }
            SessionVerdict::Panicked { message } => write!(f, "panicked: {message}"),
            SessionVerdict::Faulted { message } => write!(f, "faulted: {message}"),
        }
    }
}

/// What a decision stream entry records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecisionKind {
    /// A job started (scheduler action, ordered start firing, or deadline
    /// force-start — indistinguishable downstream, exactly as in a batch
    /// run's schedule).
    Start,
    /// A job ran to completion.
    Finish,
}

/// One entry of a session's incremental decision stream.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Decision {
    /// Start or finish.
    pub kind: DecisionKind,
    /// The job.
    pub id: JobId,
    /// When it happened (simulation time).
    pub at: Time,
    /// Running span of the session *after* this decision.
    pub span: Dur,
}

impl fmt::Display for Decision {
    /// The canonical decision-log line body (without the session name):
    /// `start J3 at=4 span=7.5`. `fjs serve` prefixes the session and the
    /// byte-identity contract is over exactly this rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            DecisionKind::Start => "start",
            DecisionKind::Finish => "done",
        };
        write!(f, "{kind} {} at={} span={}", self.id, self.at, self.span)
    }
}

/// Outcome the session tried to reach internally: `Ok` to keep going, or
/// the terminal verdict that poisons it.
type Step = Result<(), SessionVerdict>;

/// One resident scheduler instance (see module docs).
pub struct Session {
    world: World,
    sched: Box<dyn OnlineScheduler>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    scratch: Vec<Action>,
    span: SpanAccountant,
    stats: RunStats,
    decisions: Vec<Decision>,
    verdict: Option<SessionVerdict>,
    max_events: usize,
    frontier: Time,
    peak_retained: usize,
    admitted_bytes: u64,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("scheduler", &self.sched.name())
            .field("now", &self.world.now())
            .field("pending", &self.world.num_pending())
            .field("running", &self.world.num_running())
            .field("verdict", &self.verdict)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// A fresh session around a scheduler. `clairvoyance` controls what
    /// `on_arrival` reveals, exactly as in batch runs; pass the
    /// scheduler's declared information model.
    pub fn new(sched: Box<dyn OnlineScheduler>, clairvoyance: Clairvoyance) -> Self {
        Session {
            world: World::new(clairvoyance),
            sched,
            queue: BinaryHeap::new(),
            seq: 0,
            scratch: Vec::new(),
            span: SpanAccountant::new(),
            stats: RunStats::default(),
            decisions: Vec::new(),
            verdict: None,
            max_events: DEFAULT_WATCHDOG_EVENTS,
            frontier: Time::ZERO,
            peak_retained: 0,
            admitted_bytes: 0,
        }
    }

    /// Caps the cumulative events this session may process (the watchdog
    /// budget; default [`DEFAULT_WATCHDOG_EVENTS`]).
    pub fn with_watchdog(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    /// The scheduler's self-reported name.
    pub fn scheduler_name(&self) -> String {
        self.sched.name()
    }

    /// Current simulation time (the time of the last processed event).
    pub fn now(&self) -> Time {
        self.world.now()
    }

    /// Running span: retired mass plus the measure of still-open segments.
    pub fn span(&self) -> Dur {
        self.span.total()
    }

    /// Engine counters accumulated so far. One divergence from a batch run
    /// over the same trace is expected: the batch engine counts one
    /// release *event* per distinct arrival instant, a session counts one
    /// per offer. `jobs_released` and every decision-bearing counter
    /// match.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Jobs admitted but not yet started.
    pub fn num_pending(&self) -> usize {
        self.world.num_pending()
    }

    /// Jobs currently running.
    pub fn num_running(&self) -> usize {
        self.world.num_running()
    }

    /// Job records currently materialized (history is compacted away).
    pub fn retained_records(&self) -> usize {
        self.world.num_retained()
    }

    /// High-water mark of materialized records — the bounded-memory
    /// witness: stays O(pending), not O(jobs ever offered).
    pub fn peak_retained_records(&self) -> usize {
        self.peak_retained
    }

    /// High-water mark of live (unretired) span segments.
    pub fn peak_live_segments(&self) -> usize {
        self.span.peak_live_segments()
    }

    /// Cumulative [`JobOffer::canonical_bytes`] of every offer that got
    /// past validation (admitted jobs *and* the offer that poisoned the
    /// session — exactly the offers the journal records, so a replay
    /// reproduces this figure). The tenant byte quota sums it across a
    /// tenant's open sessions.
    pub fn admitted_payload_bytes(&self) -> u64 {
        self.admitted_bytes
    }

    /// Terminal verdict, if the session has one.
    pub fn verdict(&self) -> Option<&SessionVerdict> {
        self.verdict.as_ref()
    }

    /// Drains the decisions emitted since the last call, in order.
    pub fn take_decisions(&mut self) -> Vec<Decision> {
        std::mem::take(&mut self.decisions)
    }

    /// Offers the next job of the arrival stream.
    ///
    /// Drains every queued event that precedes the arrival, releases the
    /// job, and dispatches `on_arrival` — all under panic containment and
    /// the event budget. On success returns the job's id (global release
    /// order). A validation failure rejects the offer without touching
    /// session state; a contained panic / budget exhaustion / fault
    /// poisons the session and reports [`SessionError::Terminal`].
    pub fn offer(&mut self, offer: JobOffer) -> Result<JobId, SessionError> {
        if let Some(v) = &self.verdict {
            return Err(SessionError::Terminal(v.clone()));
        }
        if offer.arrival < self.frontier {
            return Err(SessionError::ArrivalRegressed {
                arrival: offer.arrival,
                frontier: self.frontier,
            });
        }
        if offer.deadline < offer.arrival {
            return Err(SessionError::DeadlineBeforeArrival {
                arrival: offer.arrival,
                deadline: offer.deadline,
            });
        }
        if !offer.length.is_positive() {
            return Err(SessionError::NonPositiveLength {
                length: offer.length,
            });
        }
        self.frontier = offer.arrival;
        self.admitted_bytes += offer.canonical_bytes();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.drain_before(offer.arrival, RELEASE_ORDER)?;
            self.release_offer(offer)
        }));
        self.settle(outcome)
    }

    /// Declares the arrival stream finished and drains the session to
    /// quiescence (every admitted job started and completed), returning
    /// the terminal verdict. Idempotent: closing a terminal session just
    /// returns its verdict again.
    pub fn close(&mut self) -> SessionVerdict {
        if let Some(v) = &self.verdict {
            return v.clone();
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| self.drain_all()));
        let verdict = match outcome {
            Ok(Ok(())) => SessionVerdict::Completed,
            Ok(Err(v)) => v,
            Err(payload) => SessionVerdict::Panicked {
                message: panic_message(payload.as_ref()),
            },
        };
        self.verdict = Some(verdict.clone());
        verdict
    }

    /// Maps a contained step outcome onto the offer result, recording the
    /// terminal verdict if the step poisoned the session.
    fn settle(
        &mut self,
        outcome: Result<Result<JobId, SessionVerdict>, Box<dyn std::any::Any + Send>>,
    ) -> Result<JobId, SessionError> {
        let verdict = match outcome {
            Ok(Ok(id)) => return Ok(id),
            Ok(Err(v)) => v,
            Err(payload) => SessionVerdict::Panicked {
                message: panic_message(payload.as_ref()),
            },
        };
        self.verdict = Some(verdict.clone());
        Err(SessionError::Terminal(verdict))
    }

    // ---- drive loop (mirrors crate::sim::engine) ---------------------

    fn push(&mut self, time: Time, kind: EventKind) {
        let ev = Event {
            time,
            order: kind.order(),
            seq: self.seq,
            kind,
        };
        self.seq += 1;
        self.queue.push(Reverse(ev));
        self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len());
    }

    /// Processes queued events strictly preceding `(time, order)` in the
    /// engine's total order.
    fn drain_before(&mut self, time: Time, order: u8) -> Step {
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if (ev.time, ev.order) >= (time, order) {
                break;
            }
            self.budget_check()?;
            self.queue.pop();
            self.dispatch_event(ev)?;
        }
        Ok(())
    }

    fn drain_all(&mut self) -> Step {
        while let Some(&Reverse(ev)) = self.queue.peek() {
            self.budget_check()?;
            self.queue.pop();
            self.dispatch_event(ev)?;
        }
        Ok(())
    }

    fn budget_check(&self) -> Step {
        if self.stats.events_total >= self.max_events {
            return Err(SessionVerdict::TimedOut {
                events: self.stats.events_total,
            });
        }
        Ok(())
    }

    fn release_offer(&mut self, offer: JobOffer) -> Result<JobId, SessionVerdict> {
        self.budget_check()?;
        self.advance(offer.arrival);
        self.stats.release_events += 1;
        self.stats.events_total += 1;
        let id = self
            .world
            .release(offer.arrival, offer.deadline, Some(offer.length));
        self.stats.jobs_released += 1;
        self.peak_retained = self.peak_retained.max(self.world.num_retained());
        self.push(offer.deadline, EventKind::DeadlineAlarm(id));
        let clairvoyance = self.world.clairvoyance();
        let arrival = Arrival {
            id,
            arrival: offer.arrival,
            deadline: offer.deadline,
            length: clairvoyance.is_clairvoyant().then_some(offer.length),
            length_class: clairvoyance
                .reveals_class()
                .then(|| geometric_class(offer.length, 2.0, 1.0)),
        };
        self.dispatch(|sched, ctx| sched.on_arrival(arrival, ctx))?;
        Ok(id)
    }

    fn advance(&mut self, to: Time) {
        self.world.advance_to(to);
        self.span.advance(to);
    }

    fn dispatch_event(&mut self, ev: Event) -> Step {
        self.advance(ev.time);
        self.stats.events_total += 1;
        match ev.kind {
            EventKind::Completion(id) => {
                self.stats.completions += 1;
                self.stats.jobs_completed += 1;
                let length = match self.world.job(id).length() {
                    Some(p) => p,
                    None => {
                        return Err(SessionVerdict::Faulted {
                            message: format!("completing {id} with no ruled length"),
                        })
                    }
                };
                self.world.mark_completed(id);
                self.decisions.push(Decision {
                    kind: DecisionKind::Finish,
                    id,
                    at: ev.time,
                    span: self.span.total(),
                });
                self.world.compact_completed_prefix();
                self.dispatch(|sched, ctx| sched.on_completion(id, length, ctx))?;
            }
            EventKind::OrderedStart(id) => {
                self.stats.ordered_starts += 1;
                if self.world.is_pending(id) {
                    self.start_job(id, ev.time)?;
                }
            }
            EventKind::DeadlineAlarm(id) => {
                self.stats.deadline_alarms += 1;
                if !self.world.is_pending(id) {
                    // Already started (or completed): the alarm is spent.
                } else if self.world.job(id).ordered_start().is_some() {
                    // A same-instant ordered start is honored, as in the
                    // batch engine.
                    self.start_job(id, ev.time)?;
                } else {
                    self.dispatch(|sched, ctx| sched.on_deadline(id, ctx))?;
                    if self.world.is_pending(id) && self.world.job(id).ordered_start().is_none() {
                        self.stats.force_starts += 1;
                        self.start_job(id, ev.time)?;
                    }
                }
            }
            EventKind::Wakeup(token) => {
                self.stats.wakeups += 1;
                self.dispatch(|sched, ctx| sched.on_wakeup(token, ctx))?;
            }
        }
        Ok(())
    }

    /// Runs one scheduler callback and applies its actions — the batch
    /// engine's dispatch pattern, with the same scratch-buffer reuse.
    fn dispatch<F>(&mut self, callback: F) -> Step
    where
        F: FnOnce(&mut dyn OnlineScheduler, &mut Ctx<'_>),
    {
        let mut ctx = Ctx::with_scratch(&self.world, std::mem::take(&mut self.scratch));
        callback(self.sched.as_mut(), &mut ctx);
        let mut actions = ctx.into_actions();
        let step = self.apply_actions(&mut actions);
        actions.clear();
        self.scratch = actions;
        step
    }

    /// Validates and applies scheduler actions, mirroring the batch
    /// engine's rules verbatim. Invalid actions are counted and dropped
    /// (the session keeps going, exactly like a batch run).
    fn apply_actions(&mut self, actions: &mut Vec<Action>) -> Step {
        for action in actions.drain(..) {
            let now = self.world.now();
            match action {
                Action::StartNow(id) => {
                    if !self.world.is_pending(id) {
                        self.stats.actions_rejected += 1;
                        continue;
                    }
                    let rec = self.world.job(id);
                    if now < rec.arrival() || now > rec.deadline() {
                        self.stats.actions_rejected += 1;
                        continue;
                    }
                    self.stats.actions_applied += 1;
                    self.start_job(id, now)?;
                }
                Action::StartAt(id, at) => {
                    if !self.world.is_pending(id) {
                        self.stats.actions_rejected += 1;
                        continue;
                    }
                    let rec = self.world.job(id);
                    if rec.ordered_start().is_some() {
                        self.stats.actions_rejected += 1;
                        continue;
                    }
                    if at < now || at < rec.arrival() || at > rec.deadline() {
                        self.stats.actions_rejected += 1;
                        continue;
                    }
                    self.stats.actions_applied += 1;
                    self.world.set_ordered_start(id, at);
                    self.push(at, EventKind::OrderedStart(id));
                }
                Action::WakeAt(at, token) => {
                    if at < now {
                        self.stats.actions_rejected += 1;
                        continue;
                    }
                    self.stats.actions_applied += 1;
                    self.push(at, EventKind::Wakeup(token));
                }
            }
        }
        Ok(())
    }

    fn start_job(&mut self, id: JobId, at: Time) -> Step {
        let length = match self.world.job(id).length() {
            Some(p) => p,
            None => {
                return Err(SessionVerdict::Faulted {
                    message: format!("starting {id} with no ruled length"),
                })
            }
        };
        // Same horizon guard as the batch engine: a completion time that
        // leaves f64 range would corrupt the event order.
        if !(at.get() + length.get()).is_finite() {
            return Err(SessionVerdict::Faulted {
                message: format!("horizon overflow: {id} started at {at} with length {length}"),
            });
        }
        self.world.mark_started(id, at);
        self.span.record(Interval::active(at, length));
        self.decisions.push(Decision {
            kind: DecisionKind::Start,
            id,
            at,
            span: self.span.total(),
        });
        self.push(at + length, EventKind::Completion(id));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Instance, Job};
    use crate::sim::run_static;
    use crate::supervise::with_quiet_panics;
    use crate::time::{dur, t};

    fn offer(a: f64, d: f64, p: f64) -> JobOffer {
        JobOffer {
            arrival: t(a),
            deadline: t(d),
            length: dur(p),
        }
    }

    /// Starts every job the instant it arrives.
    struct Eager;
    impl OnlineScheduler for Eager {
        fn name(&self) -> String {
            "test-eager".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }

    /// Commits every job to its deadline via an ordered start.
    struct Latest;
    impl OnlineScheduler for Latest {
        fn name(&self) -> String {
            "test-latest".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start_at(job.id, job.deadline);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }

    /// Never acts: every job is force-started by its deadline alarm, and
    /// every arrival also books a wakeup (exercising the wakeup path).
    struct Sleeper;
    impl OnlineScheduler for Sleeper {
        fn name(&self) -> String {
            "test-sleeper".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.wake_at(job.deadline, job.id.0 as u64);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }

    /// Panics on the `n`-th arrival.
    struct PanicOnNth {
        seen: usize,
        n: usize,
    }
    impl OnlineScheduler for PanicOnNth {
        fn name(&self) -> String {
            "test-panic".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            self.seen += 1;
            if self.seen == self.n {
                panic!("poisoned on arrival {}", self.seen);
            }
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }

    /// Books a wakeup from every wakeup: a hang, contained only by the
    /// watchdog budget.
    struct Spinner;
    impl OnlineScheduler for Spinner {
        fn name(&self) -> String {
            "test-spinner".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
            ctx.wake_at(ctx.now(), 0);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
        fn on_wakeup(&mut self, token: u64, ctx: &mut Ctx<'_>) {
            ctx.wake_at(ctx.now(), token + 1);
        }
    }

    fn deck() -> Vec<JobOffer> {
        vec![
            offer(0.0, 2.0, 3.0),
            offer(0.0, 4.0, 1.0),
            offer(1.0, 5.0, 2.0),
            offer(3.0, 3.0, 0.5),
            offer(7.0, 11.0, 2.0),
            offer(7.0, 9.0, 4.0),
            offer(15.0, 18.0, 1.0),
        ]
    }

    fn session_outcome(
        sched: Box<dyn OnlineScheduler>,
        offers: &[JobOffer],
    ) -> (Vec<Decision>, Dur, SessionVerdict) {
        let mut s = Session::new(sched, Clairvoyance::Clairvoyant);
        for &o in offers {
            s.offer(o).unwrap();
        }
        let verdict = s.close();
        (s.take_decisions(), s.span(), verdict)
    }

    /// The determinism contract: a session fed job-by-job reproduces the
    /// batch engine's starts and span exactly, for action-free, ordered-
    /// start, and force-start schedulers alike.
    #[test]
    fn session_matches_batch_engine_decisions() {
        let offers = deck();
        let inst = Instance::new(
            offers
                .iter()
                .map(|o| Job::new(o.arrival, o.deadline, o.length))
                .collect::<Vec<_>>(),
        );
        type MkSched = fn() -> Box<dyn OnlineScheduler>;
        let scheds: Vec<(&str, MkSched)> = vec![
            ("eager", || Box::new(Eager)),
            ("latest", || Box::new(Latest)),
            ("sleeper", || Box::new(Sleeper)),
        ];
        for (label, mk) in scheds {
            let batch = run_static(&inst, Clairvoyance::Clairvoyant, mk());
            assert!(batch.termination.is_completed(), "{label}: batch completed");
            let (decisions, span, verdict) = session_outcome(mk(), &offers);
            assert_eq!(verdict, SessionVerdict::Completed, "{label}");
            assert_eq!(span, batch.span, "{label}: span");
            let starts: Vec<(JobId, Time)> = decisions
                .iter()
                .filter(|d| d.kind == DecisionKind::Start)
                .map(|d| (d.id, d.at))
                .collect();
            assert_eq!(starts.len(), offers.len(), "{label}: all jobs started");
            for &(id, at) in &starts {
                assert_eq!(batch.schedule.start(id), Some(at), "{label}: start of {id}");
            }
            // Final decision's running span equals the batch span.
            assert_eq!(
                decisions.last().map(|d| d.span),
                Some(batch.span),
                "{label}"
            );
        }
    }

    #[test]
    fn session_is_deterministic_byte_for_byte() {
        let offers = deck();
        let render = |ds: &[Decision]| ds.iter().map(|d| format!("{d}\n")).collect::<String>();
        let (a, _, _) = session_outcome(Box::new(Latest), &offers);
        let (b, _, _) = session_outcome(Box::new(Latest), &offers);
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn offers_are_validated_without_state_damage() {
        let mut s = Session::new(Box::new(Eager), Clairvoyance::Clairvoyant);
        s.offer(offer(5.0, 6.0, 1.0)).unwrap();
        assert!(matches!(
            s.offer(offer(4.0, 9.0, 1.0)),
            Err(SessionError::ArrivalRegressed { .. })
        ));
        assert!(matches!(
            s.offer(offer(6.0, 5.0, 1.0)),
            Err(SessionError::DeadlineBeforeArrival { .. })
        ));
        assert!(matches!(
            s.offer(offer(6.0, 7.0, 0.0)),
            Err(SessionError::NonPositiveLength { .. })
        ));
        // The session is unpoisoned and still serves.
        s.offer(offer(6.0, 8.0, 1.0)).unwrap();
        assert_eq!(s.close(), SessionVerdict::Completed);
        assert_eq!(s.stats().jobs_completed, 2);
    }

    #[test]
    fn panic_is_contained_with_typed_verdict() {
        with_quiet_panics(|| {
            let mut s = Session::new(
                Box::new(PanicOnNth { seen: 0, n: 2 }),
                Clairvoyance::Clairvoyant,
            );
            s.offer(offer(0.0, 5.0, 1.0)).unwrap();
            let err = s.offer(offer(1.0, 6.0, 1.0)).unwrap_err();
            let SessionError::Terminal(SessionVerdict::Panicked { message }) = err else {
                panic!("want Panicked, got {err:?}");
            };
            assert_eq!(message, "poisoned on arrival 2");
            assert_eq!(s.verdict().map(|v| v.label()), Some("panicked"));
            // Terminal sessions refuse everything, idempotently.
            assert!(matches!(
                s.offer(offer(2.0, 7.0, 1.0)),
                Err(SessionError::Terminal(_))
            ));
            assert_eq!(s.close().label(), "panicked");
        });
    }

    #[test]
    fn watchdog_contains_wakeup_spin() {
        let mut s = Session::new(Box::new(Spinner), Clairvoyance::Clairvoyant).with_watchdog(500);
        s.offer(offer(0.0, 1.0, 1.0)).unwrap();
        let verdict = s.close();
        let SessionVerdict::TimedOut { events } = verdict else {
            panic!("want TimedOut, got {verdict:?}");
        };
        assert_eq!(events, 500);
        assert_eq!(s.verdict().map(|v| v.label()), Some("timed-out"));
    }

    /// The O(pending) memory contract: a long sequential stream retires
    /// both its span segments and its job records as it goes.
    #[test]
    fn resident_state_stays_bounded_on_long_streams() {
        let mut s = Session::new(Box::new(Eager), Clairvoyance::Clairvoyant);
        let n = 5_000;
        for i in 0..n {
            let a = 2.0 * i as f64;
            s.offer(offer(a, a + 1.0, 1.0)).unwrap();
        }
        assert_eq!(s.close(), SessionVerdict::Completed);
        assert_eq!(s.stats().jobs_completed, n);
        assert!(
            s.peak_retained_records() <= 8,
            "records grew: {}",
            s.peak_retained_records()
        );
        assert!(
            s.peak_live_segments() <= 8,
            "live segments grew: {}",
            s.peak_live_segments()
        );
        // Span is still exact over the whole history.
        assert_eq!(s.span(), dur(n as f64));
    }
}
