//! Time points and durations.
//!
//! The paper's constructions use irrational constants (the golden ratio `φ`,
//! `1 + √2/2`, `1 + √(2/3)`), so exact rational arithmetic buys nothing.
//! Instead [`Time`] and [`Dur`] are thin newtypes over `f64` that enforce
//! *finiteness* at construction, which makes a total order sound. All
//! interval logic in this workspace is half-open (`[s, s + p)`), matching the
//! paper's convention, so equality comparisons only ever happen between
//! values produced by identical arithmetic (e.g. a completion event created
//! as `start + length` compared against itself).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in (simulated) time. Finite, totally ordered.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Time(f64);

/// A duration (difference of two [`Time`]s). Finite, totally ordered, may be
/// negative in intermediate arithmetic but job processing lengths are
/// validated to be strictly positive at [`crate::job::Job`] construction.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Dur(f64);

macro_rules! impl_finite_newtype {
    ($name:ident) => {
        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw `f64`.
            ///
            /// # Panics
            /// Panics if `v` is NaN or infinite; finiteness is the invariant
            /// that makes [`Ord`] sound.
            #[inline]
            #[track_caller]
            pub fn new(v: f64) -> Self {
                assert!(
                    v.is_finite(),
                    concat!(stringify!($name), " must be finite, got {}"),
                    v
                );
                Self(v)
            }

            /// The raw `f64` value.
            #[inline]
            pub fn get(self) -> f64 {
                self.0
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                if self <= other {
                    self
                } else {
                    other
                }
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                if self >= other {
                    self
                } else {
                    other
                }
            }
        }

        impl Eq for $name {}

        #[allow(clippy::derive_ord_xor_partial_ord)]
        impl Ord for $name {
            #[inline]
            fn cmp(&self, other: &Self) -> Ordering {
                // Finiteness is enforced at construction, so partial_cmp is
                // total; the fallback is unreachable but keeps this panic-free.
                self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
            }
        }

        impl PartialOrd for $name {
            #[inline]
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }

        impl From<f64> for $name {
            #[inline]
            #[track_caller]
            fn from(v: f64) -> Self {
                Self::new(v)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v as f64)
            }
        }

        impl From<i32> for $name {
            #[inline]
            fn from(v: i32) -> Self {
                Self(v as f64)
            }
        }
    };
}

impl_finite_newtype!(Time);
impl_finite_newtype!(Dur);

impl Time {
    /// Converts a duration measured from the epoch into a time point.
    #[inline]
    pub fn from_dur(d: Dur) -> Time {
        Time(d.0)
    }

    /// The duration from the epoch to this time point.
    #[inline]
    pub fn as_dur(self) -> Dur {
        Dur(self.0)
    }
}

impl Dur {
    /// Ratio of two durations.
    ///
    /// Prefer [`Dur::checked_ratio`] when `other` may legitimately be zero
    /// (e.g. degenerate workloads with equal min/max lengths of zero laxity).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    #[inline]
    #[track_caller]
    pub fn ratio(self, other: Dur) -> f64 {
        match self.checked_ratio(other) {
            Some(r) => r,
            None => panic!("division by zero duration"),
        }
    }

    /// Ratio of two durations, or `None` when `other` is zero (the checked
    /// companion of [`Dur::ratio`]). Use this wherever the denominator comes
    /// from data — e.g. `μ = max/min` over a workload whose minimum length
    /// could be arbitrarily small or a degenerate zero.
    #[inline]
    pub fn checked_ratio(self, other: Dur) -> Option<f64> {
        (other.0 != 0.0).then(|| self.0 / other.0)
    }

    /// Whether this duration is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time::new(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time::new(self.0 - rhs.0)
    }
}

impl SubAssign<Dur> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur::new(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur::new(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur::new(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Neg for Dur {
    type Output = Dur;
    #[inline]
    fn neg(self) -> Dur {
        Dur::new(-self.0)
    }
}

impl Mul<f64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: f64) -> Dur {
        Dur::new(self.0 * rhs)
    }
}

impl Mul<Dur> for f64 {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: Dur) -> Dur {
        Dur::new(self * rhs.0)
    }
}

impl Div<f64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: f64) -> Dur {
        Dur::new(self.0 / rhs)
    }
}

impl std::iter::Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |acc, d| acc + d)
    }
}

/// Convenience constructor for a [`Time`].
#[inline]
#[track_caller]
pub fn t(v: f64) -> Time {
    Time::new(v)
}

/// Convenience constructor for a [`Dur`].
#[inline]
#[track_caller]
pub fn dur(v: f64) -> Dur {
    Dur::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_on_finite_values() {
        let a = t(1.0);
        let b = t(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(t(3.5), t(3.5));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_time_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn infinite_dur_rejected() {
        let _ = Dur::new(f64::INFINITY);
    }

    #[test]
    fn time_dur_arithmetic_roundtrips() {
        let s = t(5.0);
        let p = dur(3.0);
        let e = s + p;
        assert_eq!(e, t(8.0));
        assert_eq!(e - s, p);
        assert_eq!(e - p, s);
    }

    #[test]
    fn dur_scaling_and_ratio() {
        assert_eq!(dur(3.0) * 2.0, dur(6.0));
        assert_eq!(2.0 * dur(3.0), dur(6.0));
        assert_eq!(dur(6.0) / 2.0, dur(3.0));
        assert!((dur(6.0).ratio(dur(3.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_ratio_panics() {
        let _ = dur(1.0).ratio(Dur::ZERO);
    }

    #[test]
    fn checked_ratio_guards_zero() {
        assert_eq!(dur(1.0).checked_ratio(Dur::ZERO), None);
        assert_eq!(dur(6.0).checked_ratio(dur(3.0)), Some(2.0));
        assert_eq!(Dur::ZERO.checked_ratio(dur(3.0)), Some(0.0));
    }

    #[test]
    fn sum_of_durs() {
        let total: Dur = [dur(1.0), dur(2.5), dur(0.5)].into_iter().sum();
        assert_eq!(total, dur(4.0));
    }

    #[test]
    fn negative_dur_allowed_in_arithmetic() {
        let d = t(1.0) - t(4.0);
        assert_eq!(d, dur(-3.0));
        assert!(!d.is_positive());
        assert_eq!(-d, dur(3.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Time::from(3u32), t(3.0));
        assert_eq!(Dur::from(-2i32), dur(-2.0));
        assert_eq!(Time::from_dur(dur(7.0)), t(7.0));
        assert_eq!(t(7.0).as_dur(), dur(7.0));
    }
}
