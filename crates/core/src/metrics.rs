//! Schedule metrics beyond the span: concurrency profile, waiting times,
//! utilization. These quantify *how* a scheduler achieves its span (the
//! paper's algorithms all work by boosting concurrency) and feed the
//! MinUsageTime DBP bounds (peak concurrency bounds the number of unit
//! bins any packing needs for unit-size items).

use crate::job::Instance;
use crate::schedule::Schedule;
use crate::time::{Dur, Time};

/// Aggregate metrics of a complete schedule.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScheduleMetrics {
    /// The span (union measure).
    pub span: Dur,
    /// Maximum number of simultaneously running jobs.
    pub peak_concurrency: usize,
    /// Time-average concurrency over the busy period (`total work / span`).
    pub mean_concurrency: f64,
    /// Total waiting time `Σ (s(J) − a(J))`.
    pub total_wait: Dur,
    /// Largest single wait.
    pub max_wait: Dur,
    /// Fraction of total laxity actually used, in `[0, 1]` (0 when no job
    /// has laxity).
    pub laxity_utilization: f64,
}

/// Computes metrics for a complete schedule.
///
/// # Panics
/// Panics if the schedule is incomplete or sized differently from the
/// instance.
pub fn schedule_metrics(inst: &Instance, schedule: &Schedule) -> ScheduleMetrics {
    assert_eq!(
        schedule.len(),
        inst.len(),
        "schedule/instance size mismatch"
    );
    let span = schedule.span(inst);
    let peak = concurrency_profile(inst, schedule)
        .into_iter()
        .map(|(_, c)| c)
        .max()
        .unwrap_or(0);

    let mut total_wait = Dur::ZERO;
    let mut max_wait = Dur::ZERO;
    let mut total_laxity = Dur::ZERO;
    for (id, job) in inst.iter() {
        let Some(s) = schedule.start(id) else {
            panic!("metrics need a complete schedule, but {id} has no start");
        };
        let wait = s - job.arrival();
        total_wait += wait;
        max_wait = max_wait.max(wait);
        total_laxity += job.laxity();
    }
    let mean_concurrency = if span.is_positive() {
        inst.total_work().ratio(span)
    } else {
        0.0
    };
    let laxity_utilization = if total_laxity.is_positive() {
        total_wait.ratio(total_laxity)
    } else {
        0.0
    };
    ScheduleMetrics {
        span,
        peak_concurrency: peak,
        mean_concurrency,
        total_wait,
        max_wait,
        laxity_utilization,
    }
}

/// The stepwise concurrency profile: `(time, running count)` at every
/// *strict* change point, sorted by time. The count applies on
/// `[time, next time)`; consecutive entries always carry different counts.
/// Instants where paired ±1 events cancel (one job ends exactly as another
/// begins) are no change and are suppressed.
pub fn concurrency_profile(inst: &Instance, schedule: &Schedule) -> Vec<(Time, usize)> {
    let mut events: Vec<(Time, i32)> = Vec::with_capacity(2 * inst.len());
    for (id, job) in inst.iter() {
        if let Some(s) = schedule.start(id) {
            events.push((s, 1));
            events.push((s + job.length(), -1));
        }
    }
    // Departures before arrivals at equal times (half-open intervals).
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut profile: Vec<(Time, usize)> = Vec::new();
    let mut count: i32 = 0;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        let before = count;
        while i < events.len() && events[i].0 == t {
            count += events[i].1;
            i += 1;
        }
        debug_assert!(count >= 0);
        if count != before {
            profile.push((t, count as usize));
        }
    }
    profile
}

/// The number of running jobs at an instant (half-open semantics: a job
/// completing exactly at `t` is not running at `t`).
pub fn concurrency_at(inst: &Instance, schedule: &Schedule, t: Time) -> usize {
    inst.iter()
        .filter(|(id, job)| {
            schedule
                .start(*id)
                .is_some_and(|s| s <= t && t < s + job.length())
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobId};
    use crate::time::{dur, t};

    fn setup() -> (Instance, Schedule) {
        let inst = Instance::new(vec![
            Job::adp(0.0, 5.0, 2.0),
            Job::adp(0.0, 5.0, 3.0),
            Job::adp(4.0, 9.0, 1.0),
        ]);
        let s = Schedule::from_starts(
            3,
            [(JobId(0), t(1.0)), (JobId(1), t(2.0)), (JobId(2), t(8.0))],
        );
        (inst, s)
    }

    #[test]
    fn profile_counts_steps() {
        let (inst, s) = setup();
        // Intervals: [1,3), [2,5), [8,9).
        let profile = concurrency_profile(&inst, &s);
        assert_eq!(
            profile,
            vec![
                (t(1.0), 1),
                (t(2.0), 2),
                (t(3.0), 1),
                (t(5.0), 0),
                (t(8.0), 1),
                (t(9.0), 0),
            ]
        );
    }

    #[test]
    fn concurrency_at_instants() {
        let (inst, s) = setup();
        assert_eq!(concurrency_at(&inst, &s, t(0.5)), 0);
        assert_eq!(concurrency_at(&inst, &s, t(2.5)), 2);
        assert_eq!(
            concurrency_at(&inst, &s, t(3.0)),
            1,
            "half-open: J0 done at 3"
        );
        assert_eq!(concurrency_at(&inst, &s, t(8.0)), 1);
        assert_eq!(concurrency_at(&inst, &s, t(9.0)), 0);
    }

    #[test]
    fn metrics_aggregates() {
        let (inst, s) = setup();
        let m = schedule_metrics(&inst, &s);
        assert_eq!(m.span, dur(5.0)); // [1,5) ∪ [8,9)
        assert_eq!(m.peak_concurrency, 2);
        assert!((m.mean_concurrency - 6.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.total_wait, dur(1.0 + 2.0 + 4.0));
        assert_eq!(m.max_wait, dur(4.0));
        // Laxities 5, 5, 5 → utilization 7/15.
        assert!((m.laxity_utilization - 7.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn rigid_schedule_has_zero_wait() {
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 1.0), Job::adp(2.0, 2.0, 1.0)]);
        let s = Schedule::from_starts(2, [(JobId(0), t(0.0)), (JobId(1), t(2.0))]);
        let m = schedule_metrics(&inst, &s);
        assert_eq!(m.total_wait, Dur::ZERO);
        assert_eq!(m.laxity_utilization, 0.0);
        assert_eq!(m.peak_concurrency, 1);
    }

    #[test]
    fn simultaneous_departure_arrival_ordering() {
        // J0 ends exactly when J1 starts: peak must be 1, not 2.
        let inst = Instance::new(vec![Job::adp(0.0, 0.0, 2.0), Job::adp(2.0, 2.0, 2.0)]);
        let s = Schedule::from_starts(2, [(JobId(0), t(0.0)), (JobId(1), t(2.0))]);
        let m = schedule_metrics(&inst, &s);
        assert_eq!(m.peak_concurrency, 1);
        let profile = concurrency_profile(&inst, &s);
        // t = 2.0 is a handoff (−1 then +1): the count never changes, so
        // the profile must not emit a no-op change point there.
        assert_eq!(profile, vec![(t(0.0), 1), (t(4.0), 0)]);
    }

    #[test]
    fn profile_entries_are_strict_changes() {
        let (inst, s) = setup();
        let profile = concurrency_profile(&inst, &s);
        assert!(
            profile
                .windows(2)
                .all(|w| w[0].1 != w[1].1 && w[0].0 < w[1].0),
            "consecutive entries must differ in count and ascend in time: {profile:?}"
        );
        // Each entry agrees with the instantaneous oracle.
        for &(time, count) in &profile {
            assert_eq!(concurrency_at(&inst, &s, time), count);
        }
    }

    #[test]
    fn empty_instance_metrics() {
        let inst = Instance::empty();
        let s = Schedule::with_len(0);
        let m = schedule_metrics(&inst, &s);
        assert_eq!(m.span, Dur::ZERO);
        assert_eq!(m.peak_concurrency, 0);
        assert_eq!(m.mean_concurrency, 0.0);
    }
}
