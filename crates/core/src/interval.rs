//! Half-open intervals `[lo, hi)` and measurable unions of them.
//!
//! The span objective of the paper is `len(⋃_J [s(J), s(J)+p(J)))`; the
//! [`IntervalSet`] type maintains a sorted list of disjoint intervals so that
//! unions and measures are exact (no discretization).

use crate::time::{Dur, Time};
use std::fmt;

/// A half-open time interval `[lo, hi)`. Empty iff `lo >= hi`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    lo: Time,
    hi: Time,
}

impl Interval {
    /// Creates `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`. (Zero-length intervals are allowed and are empty.)
    #[track_caller]
    pub fn new(lo: Time, hi: Time) -> Self {
        assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi})");
        Interval { lo, hi }
    }

    /// The active interval of a job started at `start` with length `len`.
    #[track_caller]
    pub fn active(start: Time, len: Dur) -> Self {
        Interval::new(start, start + len)
    }

    /// Left endpoint (`I⁻` in the paper).
    #[inline]
    pub fn lo(&self) -> Time {
        self.lo
    }

    /// Right endpoint (`I⁺` in the paper).
    #[inline]
    pub fn hi(&self) -> Time {
        self.hi
    }

    /// `len(I) = I⁺ − I⁻`.
    #[inline]
    pub fn len(&self) -> Dur {
        self.hi - self.lo
    }

    /// Whether the interval is empty (`lo == hi`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Whether `t ∈ [lo, hi)`.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.lo <= t && t < self.hi
    }

    /// Whether `other ⊆ self`.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Whether the two half-open intervals share a point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Intersection of two intervals; `None` if disjoint (or touching).
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo < hi).then_some(Interval { lo, hi })
    }

    /// Length of the overlap with `other` (zero if disjoint).
    pub fn overlap_len(&self, other: &Interval) -> Dur {
        self.intersect(other).map_or(Dur::ZERO, |i| i.len())
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// A union of half-open intervals, stored as sorted, disjoint, non-touching,
/// non-empty segments. The measure of the set is the *span* when the
/// segments are job active intervals.
///
/// ```
/// use fjs_core::interval::{Interval, IntervalSet};
/// use fjs_core::time::{t, dur};
///
/// let set: IntervalSet = [
///     Interval::new(t(0.0), t(2.0)),
///     Interval::new(t(1.0), t(3.0)),  // overlaps → merges
///     Interval::new(t(5.0), t(6.0)),  // gap → second segment
/// ].into_iter().collect();
/// assert_eq!(set.num_segments(), 2);
/// assert_eq!(set.measure(), dur(4.0));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct IntervalSet {
    /// Sorted by `lo`; pairwise disjoint with strict gaps between segments.
    segs: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Builds the union of arbitrary intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut s = IntervalSet::new();
        for iv in iter {
            s.insert(iv);
        }
        s
    }

    /// Inserts (unions) one interval. Amortized `O(log n + k)` where `k` is
    /// the number of segments merged away.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        // Find the first segment whose right endpoint reaches iv.lo
        // (touching segments merge: [0,1) ∪ [1,2) = [0,2)).
        let start = self.segs.partition_point(|s| s.hi < iv.lo);
        // Find the first segment strictly to the right of iv (no touching).
        let end = self.segs.partition_point(|s| s.lo <= iv.hi);
        if start == end {
            self.segs.insert(start, iv);
            return;
        }
        let lo = iv.lo.min(self.segs[start].lo);
        let hi = iv.hi.max(self.segs[end - 1].hi);
        self.segs.drain(start + 1..end);
        self.segs[start] = Interval { lo, hi };
    }

    /// Unions another set into this one.
    ///
    /// Bulk two-pointer merge over the two sorted segment lists: `O(n + m)`
    /// total, versus `O(m · (log n + k))` for inserting `other`'s segments
    /// one at a time (each insert may shift the tail of the vector).
    pub fn union_with(&mut self, other: &IntervalSet) {
        if other.segs.is_empty() {
            return;
        }
        if self.segs.is_empty() {
            self.segs.clone_from(&other.segs);
            return;
        }
        // Disjoint fast paths: one set lies strictly past the other (no
        // touching), so the result is plain concatenation.
        if self.segs[self.segs.len() - 1].hi < other.segs[0].lo {
            self.segs.extend_from_slice(&other.segs);
            return;
        }
        if other.segs[other.segs.len() - 1].hi < self.segs[0].lo {
            self.segs.splice(0..0, other.segs.iter().copied());
            return;
        }
        let old = std::mem::take(&mut self.segs);
        let mut merged = Vec::with_capacity(old.len() + other.segs.len());
        let (mut i, mut j) = (0, 0);
        let mut cur: Option<Interval> = None;
        while i < old.len() || j < other.segs.len() {
            let next = if j >= other.segs.len() || (i < old.len() && old[i].lo <= other.segs[j].lo)
            {
                i += 1;
                old[i - 1]
            } else {
                j += 1;
                other.segs[j - 1]
            };
            match cur {
                None => cur = Some(next),
                // Touching segments merge, matching `insert`'s invariant
                // that stored segments have strict gaps between them.
                Some(ref mut c) if next.lo <= c.hi => c.hi = c.hi.max(next.hi),
                Some(c) => {
                    merged.push(c);
                    cur = Some(next);
                }
            }
        }
        if let Some(c) = cur {
            merged.push(c);
        }
        self.segs = merged;
    }

    /// Total measure of the set (`span` when segments are active intervals).
    pub fn measure(&self) -> Dur {
        self.segs.iter().map(|s| s.len()).sum()
    }

    /// Number of maximal contiguous segments.
    pub fn num_segments(&self) -> usize {
        self.segs.len()
    }

    /// The maximal contiguous segments, sorted.
    pub fn segments(&self) -> &[Interval] {
        &self.segs
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Whether `t` lies in the set.
    pub fn contains(&self, t: Time) -> bool {
        let idx = self.segs.partition_point(|s| s.hi <= t);
        self.segs.get(idx).is_some_and(|s| s.contains(t))
    }

    /// Whether `iv ⊆ self` (as point sets).
    pub fn contains_interval(&self, iv: &Interval) -> bool {
        if iv.is_empty() {
            return true;
        }
        let idx = self.segs.partition_point(|s| s.hi <= iv.lo);
        self.segs.get(idx).is_some_and(|s| s.contains_interval(iv))
    }

    /// The maximal contiguous segment containing `t`, if any.
    ///
    /// This is the `I_S(J)` operation used throughout Section 4 of the paper:
    /// the contiguous busy interval a given active interval falls in.
    pub fn segment_containing(&self, t: Time) -> Option<Interval> {
        let idx = self.segs.partition_point(|s| s.hi <= t);
        self.segs.get(idx).filter(|s| s.contains(t)).copied()
    }

    /// Measure of the intersection of `self` with `iv`.
    ///
    /// `O(log n + k)` where `k` is the number of segments overlapping the
    /// window: binary-search to the first candidate, stop at the first
    /// segment past the window.
    pub fn measure_within(&self, iv: &Interval) -> Dur {
        if iv.is_empty() {
            return Dur::ZERO;
        }
        let start = self.segs.partition_point(|s| s.hi <= iv.lo);
        self.segs[start..]
            .iter()
            .take_while(|s| s.lo < iv.hi)
            .map(|s| s.overlap_len(iv))
            .sum()
    }

    /// Leftmost point of the set, if non-empty.
    pub fn lo(&self) -> Option<Time> {
        self.segs.first().map(|s| s.lo)
    }

    /// Rightmost point of the set, if non-empty.
    pub fn hi(&self) -> Option<Time> {
        self.segs.last().map(|s| s.hi)
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

/// Incremental span accounting for an unbounded stream of active intervals.
///
/// A long-lived scheduling service cannot afford the batch invariant of
/// keeping every active interval in one [`IntervalSet`] forever — its memory
/// would grow with the total number of jobs ever served. The accountant
/// exploits the online structure of the problem instead: once the clock has
/// advanced to `now`, every future interval starts at or after `now`
/// (inserts are validated against a monotone watermark), so a segment lying
/// entirely in the past can never gain overlap and its length may be
/// *retired* into a running scalar. Live state is then proportional to the
/// number of segments still reaching into the future (open jobs), not to
/// history.
///
/// The measure invariant, checked by the differential property test against
/// [`IntervalSet::measure`]: at every point of any open/close sequence,
/// `total()` equals the measure of the union of every interval ever
/// recorded.
///
/// ```
/// use fjs_core::interval::{Interval, SpanAccountant};
/// use fjs_core::time::{t, dur};
///
/// let mut acc = SpanAccountant::new();
/// acc.record(Interval::new(t(0.0), t(2.0)));
/// acc.record(Interval::new(t(1.0), t(3.0)));
/// acc.advance(t(10.0)); // both segments retire into the scalar
/// acc.record(Interval::new(t(10.0), t(11.0)));
/// assert_eq!(acc.total(), dur(4.0));
/// assert_eq!(acc.live_segments(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SpanAccountant {
    /// Measure of segments that ended at or before the watermark.
    retired: Dur,
    /// Segments still reaching past the watermark.
    live: IntervalSet,
    /// The clock frontier: no recorded interval may start before this.
    watermark: Time,
    /// High-water mark of `live` segment count (bounded-memory evidence).
    peak_live: usize,
}

impl SpanAccountant {
    /// A fresh accountant at time zero with zero span.
    pub fn new() -> Self {
        SpanAccountant::default()
    }

    /// Records one active interval into the union.
    ///
    /// # Panics
    /// Panics if the interval starts before the current watermark — that
    /// would let it overlap already-retired mass and silently break the
    /// measure invariant.
    #[track_caller]
    pub fn record(&mut self, iv: Interval) {
        assert!(
            iv.lo() >= self.watermark,
            "interval {iv} starts before the accountant watermark {}",
            self.watermark
        );
        self.live.insert(iv);
        self.peak_live = self.peak_live.max(self.live.num_segments());
    }

    /// Advances the watermark to `now`, retiring every live segment that
    /// ends at or before it. `now` must not regress.
    #[track_caller]
    pub fn advance(&mut self, now: Time) {
        assert!(
            now >= self.watermark,
            "accountant watermark went backwards: {} -> {now}",
            self.watermark
        );
        self.watermark = now;
        let cut = self.live.segs.partition_point(|s| s.hi <= now);
        if cut > 0 {
            self.retired += self.live.segs.drain(..cut).map(|s| s.len()).sum();
        }
    }

    /// Total measure of every interval ever recorded (retired + live).
    pub fn total(&self) -> Dur {
        self.retired + self.live.measure()
    }

    /// Measure already retired behind the watermark.
    pub fn retired(&self) -> Dur {
        self.retired
    }

    /// The current watermark.
    pub fn watermark(&self) -> Time {
        self.watermark
    }

    /// Number of live (future-reaching) segments currently held.
    pub fn live_segments(&self) -> usize {
        self.live.num_segments()
    }

    /// High-water mark of [`SpanAccountant::live_segments`] over the
    /// accountant's lifetime — the bounded-memory witness reported by the
    /// serve smoke test.
    pub fn peak_live_segments(&self) -> usize {
        self.peak_live
    }
}

/// Incremental span for the batch engine: a running scalar updated at each
/// busy-interval open/close, replacing the end-of-run
/// `Schedule::busy_set().measure()` pass.
///
/// Where [`SpanAccountant`] keeps a live [`IntervalSet`] (resident services
/// record arbitrary, possibly-nested intervals), the engine's access pattern
/// is stricter — starts arrive at a monotone `now` — so the whole union
/// collapses to *one* current segment `[seg_start, seg_end)` plus a closed
/// total:
///
/// * a start at `now` **merges** into the current segment iff `now <=
///   seg_end` (the exact touching-merge comparison `lo <= hi` that
///   [`IntervalSet::insert`] uses) or some merged job's completion is still
///   unruled (`open > 0`): an unruled running job is guaranteed to cover
///   through any later ruling instant, so the segment cannot have a gap;
/// * otherwise the current segment **closes** (its length is added to the
///   scalar in chronological order, matching the summation order of
///   [`IntervalSet::measure`]) and a new one opens.
///
/// Endpoints are the same `f64` values the interval set would compute
/// (`max` over identical completions, `min` = first chronological start), so
/// the result is bit-identical to the legacy measurement — the engine
/// equivalence suite pins this, and `prop_running_span_matches_measure`
/// checks it against seeded open/close streams.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningSpan {
    /// Sum of closed segments, accumulated chronologically.
    closed: Dur,
    seg_start: Time,
    /// Latest known completion within the current segment.
    seg_end: Time,
    has_seg: bool,
    /// Running jobs merged into the current segment whose completion is not
    /// yet known (adaptive lengths before their ruling).
    open: usize,
}

impl RunningSpan {
    /// A fresh span of zero.
    pub fn new() -> Self {
        RunningSpan::default()
    }

    /// Records a job starting at `at` (calls must be monotone in `at`), with
    /// its completion time when already known (fixed or just-ruled lengths)
    /// or `None` while adaptive (close it later with
    /// [`RunningSpan::on_rule`]).
    pub fn on_start(&mut self, at: Time, completion: Option<Time>) {
        if !self.has_seg {
            self.has_seg = true;
            self.seg_start = at;
            self.seg_end = at;
        } else if self.open == 0 && at > self.seg_end {
            // Gap: close the finished segment, open a new one.
            self.closed += self.seg_end - self.seg_start;
            self.seg_start = at;
            self.seg_end = at;
        }
        match completion {
            Some(c) => self.seg_end = self.seg_end.max(c),
            None => self.open += 1,
        }
    }

    /// Resolves the completion of one previously-open start. The job is
    /// necessarily part of the current segment: a segment cannot close while
    /// any of its jobs is still open.
    pub fn on_rule(&mut self, completion: Time) {
        debug_assert!(self.open > 0, "ruling without an open start");
        self.open -= 1;
        self.seg_end = self.seg_end.max(completion);
    }

    /// The total span, provided every start's completion has been resolved;
    /// `None` while any merged job's length is still unruled (callers fall
    /// back to measuring the materialized schedule, as aborted runs must).
    pub fn total_if_resolved(&self) -> Option<Dur> {
        if self.open > 0 {
            return None;
        }
        let tail = if self.has_seg {
            self.seg_end - self.seg_start
        } else {
            Dur::ZERO
        };
        Some(self.closed + tail)
    }

    /// Number of merged starts whose completion is still unknown.
    pub fn open_starts(&self) -> usize {
        self.open
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, seg) in self.segs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{seg}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{dur, t};

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(t(lo), t(hi))
    }

    #[test]
    fn interval_basics() {
        let i = iv(1.0, 3.0);
        assert_eq!(i.len(), dur(2.0));
        assert!(i.contains(t(1.0)));
        assert!(i.contains(t(2.999)));
        assert!(!i.contains(t(3.0)), "half-open: right endpoint excluded");
        assert!(!i.contains(t(0.999)));
        assert!(!i.is_empty());
        assert!(iv(2.0, 2.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_interval_panics() {
        let _ = iv(3.0, 1.0);
    }

    #[test]
    fn overlap_semantics_half_open() {
        // Touching half-open intervals do not overlap…
        assert!(!iv(0.0, 1.0).overlaps(&iv(1.0, 2.0)));
        // …but properly intersecting ones do.
        assert!(iv(0.0, 1.5).overlaps(&iv(1.0, 2.0)));
        assert_eq!(iv(0.0, 1.5).overlap_len(&iv(1.0, 2.0)), dur(0.5));
        assert_eq!(iv(0.0, 1.0).overlap_len(&iv(1.0, 2.0)), Dur::ZERO);
    }

    #[test]
    fn intersect() {
        assert_eq!(iv(0.0, 2.0).intersect(&iv(1.0, 3.0)), Some(iv(1.0, 2.0)));
        assert_eq!(iv(0.0, 1.0).intersect(&iv(1.0, 3.0)), None);
        assert_eq!(iv(0.0, 5.0).intersect(&iv(1.0, 3.0)), Some(iv(1.0, 3.0)));
    }

    #[test]
    fn set_merges_touching_segments() {
        let s = IntervalSet::from_intervals([iv(0.0, 1.0), iv(1.0, 2.0)]);
        assert_eq!(s.num_segments(), 1);
        assert_eq!(s.measure(), dur(2.0));
    }

    #[test]
    fn set_keeps_gaps() {
        let s = IntervalSet::from_intervals([iv(0.0, 1.0), iv(2.0, 3.0)]);
        assert_eq!(s.num_segments(), 2);
        assert_eq!(s.measure(), dur(2.0));
        assert!(s.contains(t(0.5)));
        assert!(!s.contains(t(1.5)));
    }

    #[test]
    fn set_insert_merging_many() {
        let mut s = IntervalSet::new();
        s.insert(iv(0.0, 1.0));
        s.insert(iv(4.0, 5.0));
        s.insert(iv(2.0, 3.0));
        assert_eq!(s.num_segments(), 3);
        // Bridge all three.
        s.insert(iv(0.5, 4.5));
        assert_eq!(s.num_segments(), 1);
        assert_eq!(s.measure(), dur(5.0));
        assert_eq!(s.segments()[0], iv(0.0, 5.0));
    }

    #[test]
    fn set_insert_empty_is_noop() {
        let mut s = IntervalSet::new();
        s.insert(iv(1.0, 1.0));
        assert!(s.is_empty());
        assert_eq!(s.measure(), Dur::ZERO);
    }

    #[test]
    fn set_insert_contained() {
        let mut s = IntervalSet::from_intervals([iv(0.0, 10.0)]);
        s.insert(iv(3.0, 4.0));
        assert_eq!(s.num_segments(), 1);
        assert_eq!(s.measure(), dur(10.0));
    }

    #[test]
    fn segment_containing_lookup() {
        let s = IntervalSet::from_intervals([iv(0.0, 1.0), iv(2.0, 5.0)]);
        assert_eq!(s.segment_containing(t(3.0)), Some(iv(2.0, 5.0)));
        assert_eq!(s.segment_containing(t(1.5)), None);
        assert_eq!(
            s.segment_containing(t(1.0)),
            None,
            "right endpoint excluded"
        );
        assert_eq!(s.segment_containing(t(2.0)), Some(iv(2.0, 5.0)));
    }

    #[test]
    fn contains_interval_subset() {
        let s = IntervalSet::from_intervals([iv(0.0, 2.0), iv(3.0, 6.0)]);
        assert!(s.contains_interval(&iv(3.5, 5.0)));
        assert!(s.contains_interval(&iv(0.0, 2.0)));
        assert!(!s.contains_interval(&iv(1.0, 4.0)), "spans a gap");
        assert!(
            s.contains_interval(&iv(9.0, 9.0)),
            "empty interval always contained"
        );
    }

    #[test]
    fn measure_within_window() {
        let s = IntervalSet::from_intervals([iv(0.0, 2.0), iv(3.0, 6.0)]);
        assert_eq!(s.measure_within(&iv(1.0, 4.0)), dur(2.0));
        assert_eq!(s.measure_within(&iv(10.0, 20.0)), Dur::ZERO);
    }

    #[test]
    fn union_with_edge_shapes() {
        // Into empty / with empty.
        let mut a = IntervalSet::new();
        a.union_with(&IntervalSet::from_intervals([iv(1.0, 2.0)]));
        assert_eq!(a.segments(), &[iv(1.0, 2.0)]);
        a.union_with(&IntervalSet::new());
        assert_eq!(a.segments(), &[iv(1.0, 2.0)]);

        // Disjoint fast paths: append and prepend.
        let mut b = IntervalSet::from_intervals([iv(0.0, 1.0)]);
        b.union_with(&IntervalSet::from_intervals([iv(5.0, 6.0), iv(8.0, 9.0)]));
        assert_eq!(b.num_segments(), 3);
        let mut c = IntervalSet::from_intervals([iv(10.0, 11.0)]);
        c.union_with(&IntervalSet::from_intervals([iv(0.0, 1.0), iv(2.0, 3.0)]));
        assert_eq!(c.segments(), &[iv(0.0, 1.0), iv(2.0, 3.0), iv(10.0, 11.0)]);

        // Touching across the two sets must merge (same rule as insert).
        let mut d = IntervalSet::from_intervals([iv(0.0, 1.0), iv(3.0, 4.0)]);
        d.union_with(&IntervalSet::from_intervals([iv(1.0, 3.0)]));
        assert_eq!(d.segments(), &[iv(0.0, 4.0)]);

        // Interleaved with containment and bridging.
        let mut e = IntervalSet::from_intervals([iv(0.0, 2.0), iv(4.0, 6.0), iv(9.0, 10.0)]);
        e.union_with(&IntervalSet::from_intervals([iv(1.0, 5.0), iv(6.5, 7.0)]));
        assert_eq!(e.segments(), &[iv(0.0, 6.0), iv(6.5, 7.0), iv(9.0, 10.0)]);
        assert_eq!(e.measure(), dur(7.5));
    }

    #[test]
    fn measure_within_matches_full_scan() {
        let s =
            IntervalSet::from_intervals((0..40).map(|k| iv(k as f64 * 3.0, k as f64 * 3.0 + 1.5)));
        for (lo, hi) in [
            (0.0, 0.0),
            (2.0, 2.5),
            (0.75, 50.25),
            (119.0, 300.0),
            (-5.0, 500.0),
        ] {
            let w = iv(lo, hi);
            let naive: Dur = s.segments().iter().map(|g| g.overlap_len(&w)).sum();
            assert_eq!(s.measure_within(&w), naive, "window [{lo}, {hi})");
        }
    }

    #[test]
    fn union_with_other_set() {
        let mut a = IntervalSet::from_intervals([iv(0.0, 1.0)]);
        let b = IntervalSet::from_intervals([iv(0.5, 2.0), iv(5.0, 6.0)]);
        a.union_with(&b);
        assert_eq!(a.num_segments(), 2);
        assert_eq!(a.measure(), dur(3.0));
        assert_eq!(a.lo(), Some(t(0.0)));
        assert_eq!(a.hi(), Some(t(6.0)));
    }

    #[test]
    fn accountant_retires_closed_segments() {
        let mut acc = SpanAccountant::new();
        acc.record(iv(0.0, 2.0));
        acc.record(iv(1.0, 3.0));
        acc.record(iv(5.0, 6.0));
        assert_eq!(acc.total(), dur(4.0));
        assert_eq!(acc.live_segments(), 2);

        acc.advance(t(4.0)); // [0,3) fully past, [5,6) still ahead
        assert_eq!(acc.retired(), dur(3.0));
        assert_eq!(acc.live_segments(), 1);
        assert_eq!(acc.total(), dur(4.0), "retirement preserves the measure");

        acc.advance(t(6.0));
        assert_eq!(acc.live_segments(), 0);
        assert_eq!(acc.total(), dur(4.0));
        assert_eq!(acc.peak_live_segments(), 2);
    }

    #[test]
    fn accountant_straddling_segment_stays_live() {
        let mut acc = SpanAccountant::new();
        acc.record(iv(0.0, 10.0));
        acc.advance(t(5.0));
        assert_eq!(acc.retired(), Dur::ZERO, "future-reaching segment kept");
        assert_eq!(acc.live_segments(), 1);
        // A start at the watermark may merge with the straddler.
        acc.record(iv(5.0, 12.0));
        assert_eq!(acc.live_segments(), 1);
        assert_eq!(acc.total(), dur(12.0));
    }

    #[test]
    fn accountant_touching_retired_boundary_is_exact() {
        let mut acc = SpanAccountant::new();
        acc.record(iv(0.0, 1.0));
        acc.advance(t(1.0));
        assert_eq!(acc.retired(), dur(1.0));
        // Touches the retired mass at t=1 exactly; measure must not double
        // count or lose the boundary.
        acc.record(iv(1.0, 2.0));
        assert_eq!(acc.total(), dur(2.0));
    }

    #[test]
    #[should_panic(expected = "starts before the accountant watermark")]
    fn accountant_rejects_past_inserts() {
        let mut acc = SpanAccountant::new();
        acc.advance(t(5.0));
        acc.record(iv(4.0, 6.0));
    }

    #[test]
    #[should_panic(expected = "watermark went backwards")]
    fn accountant_rejects_time_regression() {
        let mut acc = SpanAccountant::new();
        acc.advance(t(5.0));
        acc.advance(t(4.0));
    }

    /// The satellite differential property: over random open/close
    /// sequences (monotone starts, arbitrary lengths, interleaved clock
    /// advances), the accountant's running total must equal
    /// [`IntervalSet::measure`] over *every* interval ever recorded at
    /// every step — while its live segment count stays bounded by the
    /// number of future-reaching segments, not history.
    #[test]
    fn prop_accountant_matches_interval_set_measure() {
        use fjs_prng::check::forall;
        use fjs_prng::SmallRng;
        // Quarter-unit grid: every endpoint and length is a dyadic
        // rational, so sums and differences are exact in f64 and the
        // accountant's differently-grouped arithmetic (retired scalar +
        // live measure) must match the one-pass measure *exactly*.
        let q = |x: f64| (x * 4.0).round() / 4.0;
        forall(64, move |rng: &mut SmallRng| {
            let mut acc = SpanAccountant::new();
            let mut reference = IntervalSet::new();
            let mut now = 0.0f64;
            let steps = 1 + rng.u64_below(120) as usize;
            for _ in 0..steps {
                if rng.bool_with(0.35) {
                    // Advance the clock (and retire).
                    now += q(rng.f64_range(0.0, 8.0));
                    acc.advance(t(now));
                } else {
                    // Open an interval starting at or after the watermark.
                    let start = now + q(rng.f64_range(0.0, 4.0));
                    let len = q(rng.f64_range_inclusive(0.0, 6.0));
                    let iv = Interval::new(t(start), t(start + len));
                    acc.record(iv);
                    reference.insert(iv);
                }
                assert_eq!(acc.total(), reference.measure(), "divergence at now={now}");
                assert!(
                    acc.live_segments()
                        <= reference
                            .segments()
                            .iter()
                            .filter(|s| s.hi() > t(now))
                            .count(),
                    "live segments exceed future-reaching reference segments"
                );
            }
            // Fast-forward far past everything: all mass retires.
            acc.advance(t(now + 1e6));
            assert_eq!(acc.total(), reference.measure());
            assert_eq!(acc.live_segments(), 0);
        });
    }

    /// The engine-shaped satellite differential property: over seeded
    /// streams of monotone starts — fixed completions, re-entrant overlaps,
    /// and adaptive starts whose completions are ruled later — the running
    /// scalar must equal [`IntervalSet::measure`] over every interval ever
    /// opened, *exactly*, whenever all completions are resolved. The same
    /// stream is also replayed through [`SpanAccountant`] (with prefix
    /// retirement at every step) to pin the compacted-prefix path the
    /// service layer shares.
    #[test]
    fn prop_running_span_matches_measure() {
        use fjs_prng::check::forall_seeded;
        // Quarter-unit grid, as above: exact f64 arithmetic everywhere, so
        // equality below is bitwise, not approximate.
        let q = |x: f64| (x * 4.0).round() / 4.0;
        forall_seeded(0x59a7_0a01, 96, move |rng| {
            let mut span = RunningSpan::new();
            let mut reference = IntervalSet::new();
            let mut acc = SpanAccountant::new();
            // Start times of adaptive opens whose completion is unruled.
            let mut open: Vec<f64> = Vec::new();
            let mut now = 0.0f64;
            let steps = 1 + rng.u64_below(100) as usize;
            for _ in 0..steps {
                if !open.is_empty() && rng.bool_with(0.4) {
                    // Rule one open start. The engine validates completions
                    // against the ruling instant (`completion >= now`), and
                    // `now` has passed every start merged meanwhile — the
                    // exact guarantee that lets an open job hold its segment
                    // together across re-entrant overlaps.
                    let k = rng.usize_range(0, open.len());
                    let start = open.swap_remove(k);
                    now += q(rng.f64_range(0.0, 2.0));
                    let hi = (start + 0.25).max(now) + q(rng.f64_range(0.0, 4.0));
                    span.on_rule(t(hi));
                    reference.insert(Interval::new(t(start), t(hi)));
                    acc.record(Interval::new(t(start), t(hi)));
                } else {
                    now += q(rng.f64_range(0.0, 6.0));
                    let s = now;
                    let len = q(rng.f64_range_inclusive(0.25, 6.0));
                    if rng.bool_with(0.3) {
                        // Adaptive: completion revealed at a later ruling.
                        span.on_start(t(s), None);
                        open.push(s);
                    } else {
                        span.on_start(t(s), Some(t(s + len)));
                        reference.insert(Interval::new(t(s), t(s + len)));
                        acc.record(Interval::new(t(s), t(s + len)));
                    }
                }
                assert_eq!(span.open_starts(), open.len());
                if open.is_empty() {
                    assert_eq!(
                        span.total_if_resolved(),
                        Some(reference.measure()),
                        "running span diverged at now={now}"
                    );
                } else {
                    assert_eq!(span.total_if_resolved(), None);
                }
                // Retire the accountant's prefix continuously (the
                // compacted-prefix path the service layer uses); late
                // records of open starts cap how far the watermark may go.
                let safe = open.iter().fold(now, |m, &s| m.min(s));
                acc.advance(t(safe));
                assert_eq!(acc.total(), reference.measure());
            }
            // Resolve every remaining open start, then all three agree.
            while let Some(start) = open.pop() {
                let hi = (start + 0.25).max(now) + q(rng.f64_range(0.0, 4.0));
                span.on_rule(t(hi));
                reference.insert(Interval::new(t(start), t(hi)));
                acc.record(Interval::new(t(start), t(hi)));
            }
            assert_eq!(span.total_if_resolved(), Some(reference.measure()));
            assert_eq!(acc.total(), reference.measure());
        });
    }

    #[test]
    fn running_span_merges_touching_and_counts_gaps() {
        let mut span = RunningSpan::new();
        span.on_start(t(0.0), Some(t(2.0)));
        span.on_start(t(2.0), Some(t(3.0))); // touching: [0,3)
        span.on_start(t(5.0), Some(t(6.0))); // gap: closes [0,3)
        assert_eq!(span.total_if_resolved(), Some(dur(4.0)));
    }

    #[test]
    fn running_span_open_start_holds_segment_open() {
        let mut span = RunningSpan::new();
        span.on_start(t(0.0), None);
        // Far-later start: would be a gap if the adaptive job's reach were
        // known, but while open the segment cannot close.
        span.on_start(t(10.0), Some(t(11.0)));
        assert_eq!(span.total_if_resolved(), None);
        span.on_rule(t(12.0)); // the adaptive job ran [0,12) — one segment
        assert_eq!(span.total_if_resolved(), Some(dur(12.0)));
    }

    #[test]
    fn running_span_empty_is_zero() {
        assert_eq!(RunningSpan::new().total_if_resolved(), Some(Dur::ZERO));
    }
}
