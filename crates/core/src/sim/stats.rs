//! Per-run engine counters ([`RunStats`]).
//!
//! Every simulation accumulates these with near-zero overhead (plain
//! integer increments on paths the engine already executes) and returns
//! them in [`SimOutcome::stats`](crate::sim::SimOutcome::stats). They are
//! the observability substrate for performance work: they say *where*
//! events go (releases vs. alarms vs. wakeups), how deep the event heap
//! gets, and — when [`SimConfig::time_phases`](crate::sim::SimConfig) is
//! set — how wall-clock time splits between the engine, the scheduler's
//! callbacks and the environment's oracles.
//!
//! Counter semantics are exact and deterministic: the same (environment,
//! scheduler, config) triple always yields the same counts, so tests can
//! assert them verbatim and sweeps can diff them across revisions.

use std::fmt;

/// Counters accumulated by the engine over one simulation run.
///
/// All counts are exact. The three `wall_*` fields are measured wall-clock
/// seconds; `wall_total_s` is always populated, while the scheduler /
/// environment split is only non-zero when the run was configured with
/// [`SimConfig::time_phases`](crate::sim::SimConfig) (per-callback timing
/// costs two monotonic-clock reads per event, which is *not* near-zero on
/// micro runs, so it is opt-in).
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct RunStats {
    /// Release instants processed. Each instant may release several jobs
    /// (see [`RunStats::jobs_released`]).
    pub release_events: usize,
    /// Jobs released across all release instants.
    pub jobs_released: usize,
    /// Completion events processed.
    pub completions: usize,
    /// Ordered-start commitments (`start_at`) that fell due and fired.
    pub ordered_starts: usize,
    /// Deferred adaptive-length probe events processed.
    pub length_probes: usize,
    /// Deadline alarms delivered (one is queued per released job; alarms
    /// for already-started jobs still count as processed events).
    pub deadline_alarms: usize,
    /// Scheduler wakeup callbacks delivered.
    pub wakeups: usize,
    /// Total events processed — the sum of the six per-kind counters
    /// above (with `release_events`, not `jobs_released`, as the release
    /// contribution). Equals `SimOutcome::events_processed`.
    pub events_total: usize,
    /// Peak size of the event heap over the run.
    pub peak_queue: usize,
    /// Scheduler actions the engine applied.
    pub actions_applied: usize,
    /// Scheduler actions the engine refused (see
    /// [`RejectedAction`](crate::sim::RejectedAction)).
    pub actions_rejected: usize,
    /// Jobs force-started at their deadline after the scheduler failed to
    /// start them (equals the number of recorded
    /// [`Violation`](crate::sim::Violation)s).
    pub force_starts: usize,
    /// Jobs that ran to completion.
    pub jobs_completed: usize,
    /// Peak number of job records resident in the world's arena at any
    /// point in the run (the memory high-water mark; equals jobs released
    /// for batch runs, stays near the live set for compacting services).
    pub peak_retained: usize,
    /// Total arena slots allocated over the run. Recycled slots count
    /// once, so this is the arena's column footprint in records.
    pub arena_slots: usize,
    /// Wall-clock seconds for the whole drive loop. Always measured (two
    /// clock reads per *run*).
    pub wall_total_s: f64,
    /// Wall-clock seconds spent inside scheduler callbacks. Zero unless
    /// the run set [`SimConfig::time_phases`](crate::sim::SimConfig).
    pub wall_scheduler_s: f64,
    /// Wall-clock seconds spent inside environment oracles
    /// (`next_release_time`, `release_at`, `rule_length`). Zero unless the
    /// run set [`SimConfig::time_phases`](crate::sim::SimConfig).
    pub wall_environment_s: f64,
    /// Exact-optimum cache hits attributed to the sweep that produced this
    /// record. The engine itself never consults the optimum cache and
    /// leaves this at zero; harnesses that do (conformance runs, the bench
    /// suite, exhaustive validation) copy the `fjs-opt` cache counters in
    /// before reporting, so the stats JSONL carries them alongside the
    /// event counts.
    pub opt_cache_hits: u64,
    /// Exact-optimum cache misses (see [`RunStats::opt_cache_hits`]).
    pub opt_cache_misses: u64,
}

impl RunStats {
    /// The per-kind event counters as `(label, count)` pairs, in the
    /// engine's tie-break order. Sums to [`RunStats::events_total`].
    pub fn events_by_kind(&self) -> [(&'static str, usize); 6] {
        [
            ("completion", self.completions),
            ("release", self.release_events),
            ("ordered-start", self.ordered_starts),
            ("length-probe", self.length_probes),
            ("deadline-alarm", self.deadline_alarms),
            ("wakeup", self.wakeups),
        ]
    }

    /// Whether the per-kind counters are consistent with the total (an
    /// internal invariant; exposed for tests and harnesses).
    pub fn is_consistent(&self) -> bool {
        self.events_by_kind().iter().map(|(_, c)| c).sum::<usize>() == self.events_total
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events (release {}/{} jobs, completion {}, ordered-start {}, probe {}, \
             alarm {}, wakeup {}), peak queue {}, actions {}+{} rejected, \
             force-starts {}, completed {}",
            self.events_total,
            self.release_events,
            self.jobs_released,
            self.completions,
            self.ordered_starts,
            self.length_probes,
            self.deadline_alarms,
            self.wakeups,
            self.peak_queue,
            self.actions_applied,
            self.actions_rejected,
            self.force_starts,
            self.jobs_completed,
        )?;
        if self.arena_slots > 0 {
            write!(
                f,
                ", arena peak {} / {} slots",
                self.peak_retained, self.arena_slots,
            )?;
        }
        if self.opt_cache_hits + self.opt_cache_misses > 0 {
            write!(
                f,
                ", opt-cache {}/{} hits",
                self.opt_cache_hits,
                self.opt_cache_hits + self.opt_cache_misses,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed_and_consistent() {
        let s = RunStats::default();
        assert_eq!(s.events_total, 0);
        assert!(s.is_consistent());
    }

    #[test]
    fn events_by_kind_sums_to_total() {
        let s = RunStats {
            release_events: 2,
            jobs_released: 5,
            completions: 5,
            ordered_starts: 1,
            length_probes: 0,
            deadline_alarms: 5,
            wakeups: 3,
            events_total: 16,
            ..RunStats::default()
        };
        assert!(s.is_consistent());
        let display = s.to_string();
        assert!(display.contains("16 events"), "{display}");
        assert!(!display.contains("opt-cache"), "hidden when untouched");
    }

    #[test]
    fn display_includes_cache_counters_when_populated() {
        let s = RunStats {
            opt_cache_hits: 7,
            opt_cache_misses: 3,
            ..RunStats::default()
        };
        assert!(s.to_string().contains("opt-cache 7/10 hits"));
    }
}
