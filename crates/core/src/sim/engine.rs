//! The event-driven simulation engine.
//!
//! Drives an [`OnlineScheduler`] against an [`Environment`] and produces a
//! [`SimOutcome`]: the materialized instance, the schedule, its span, and
//! any feasibility violations.
//!
//! # Event ordering
//!
//! Multiple events may share a timestamp; they are processed in a fixed kind
//! order chosen to match the paper's semantics of half-open active intervals
//! `[s, s+p)`:
//!
//! 1. **Completions** — a job is *not* running at its completion instant, so
//!    completions precede everything else (e.g. the Theorem 3.3 adversary
//!    releases iteration `i+1` exactly at the earmarked job's completion,
//!    and those arrivals must observe the job as finished).
//! 2. **Releases** — arrivals at this instant.
//! 3. **Ordered starts** — `Ctx::start_at` commitments falling due.
//! 4. **Length probes** — deferred adaptive-length rulings.
//! 5. **Deadline alarms** — last-chance notifications for pending jobs.
//! 6. **Wakeups** — scheduler-requested callbacks.
//!
//! Within a kind, ties break by insertion sequence (FIFO), which makes runs
//! fully deterministic.

use crate::job::{Instance, JobId};
use crate::schedule::Schedule;
use crate::sim::env::{Clairvoyance, Environment, JobSpec, LengthRuling, LengthSpec};
use crate::sim::sched::{Action, Arrival, Ctx, OnlineScheduler};
use crate::sim::trace::{TraceEvent, TraceKind};
use crate::sim::world::{JobStatus, World};
use crate::time::{Dur, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Engine limits and options.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Hard cap on processed events (guards against runaway adaptive
    /// environments or scheduler wakeup loops).
    pub max_events: usize,
    /// Record a chronological [`TraceEvent`] log in the outcome.
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { max_events: 50_000_000, record_trace: false }
    }
}

/// A feasibility violation: the scheduler let a pending job pass its
/// starting deadline. The engine force-starts the job at the deadline so the
/// run can continue, but correct schedulers must never trigger this.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Violation {
    /// The job that was not started in time.
    pub id: JobId,
    /// The deadline at which the engine force-started it.
    pub at: Time,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} missed its starting deadline at {}", self.id, self.at)
    }
}

/// The result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// All released jobs with their final lengths, in release order.
    pub instance: Instance,
    /// Start times chosen by the scheduler (complete by construction).
    pub schedule: Schedule,
    /// Span of the schedule (cached from [`Schedule::span`]).
    pub span: Dur,
    /// Feasibility violations (empty for a correct scheduler).
    pub violations: Vec<Violation>,
    /// Total events processed (diagnostics).
    pub events_processed: usize,
    /// Chronological event log (empty unless
    /// [`SimConfig::record_trace`] was set).
    pub trace: Vec<TraceEvent>,
}

impl SimOutcome {
    /// Whether the run finished without feasibility violations.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    Completion(JobId),
    // Releases are not queued; they are pulled from the environment and
    // slot in at priority `RELEASE_ORDER`.
    OrderedStart(JobId),
    LengthProbe(JobId),
    DeadlineAlarm(JobId),
    Wakeup(u64),
}

impl EventKind {
    fn order(&self) -> u8 {
        match self {
            EventKind::Completion(_) => 0,
            EventKind::OrderedStart(_) => 2,
            EventKind::LengthProbe(_) => 3,
            EventKind::DeadlineAlarm(_) => 4,
            EventKind::Wakeup(_) => 5,
        }
    }
}

/// Priority of a release pseudo-event at equal timestamps.
const RELEASE_ORDER: u8 = 1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Event {
    time: Time,
    order: u8,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.order, self.seq).cmp(&(other.time, other.order, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Engine<E, S> {
    world: World,
    env: E,
    sched: S,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    violations: Vec<Violation>,
    events: usize,
    config: SimConfig,
    trace: Vec<TraceEvent>,
}

impl<E: Environment, S: OnlineScheduler> Engine<E, S> {
    fn record(&mut self, kind: TraceKind) {
        if self.config.record_trace {
            self.trace.push(TraceEvent { time: self.world.now(), kind });
        }
    }

    fn push(&mut self, time: Time, kind: EventKind) {
        self.queue.push(Reverse(Event { time, order: kind.order(), seq: self.seq, kind }));
        self.seq += 1;
    }

    /// Starts a pending job at `at`; consults the environment for adaptive
    /// lengths and schedules the completion or probe.
    fn start_job(&mut self, id: JobId, at: Time) {
        assert!(self.world.is_pending(id), "starting non-pending job {id}");
        let rec = self.world.job(id);
        assert!(
            rec.arrival() <= at && at <= rec.deadline(),
            "start of {id} at {at} outside its window [{}, {}]",
            rec.arrival(),
            rec.deadline()
        );
        let known = rec.length();
        self.world.mark_started(id, at);
        self.record(TraceKind::Started { id });
        match known {
            Some(p) => self.push(at + p, EventKind::Completion(id)),
            None => match self.env.rule_length(id, at, at, &self.world) {
                LengthRuling::Assign(p) => {
                    assert!(p.is_positive(), "ruled non-positive length {p} for {id}");
                    self.world.set_length(id, p);
                    self.record(TraceKind::LengthRuled { id, length: p });
                    self.push(at + p, EventKind::Completion(id));
                }
                LengthRuling::AskAgainAt(t) => {
                    assert!(t > at, "length probe for {id} must defer forward");
                    self.push(t, EventKind::LengthProbe(id));
                }
            },
        }
    }

    /// Applies the actions a scheduler requested during one callback.
    fn apply_actions(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::StartNow(id) => {
                    let now = self.world.now();
                    self.start_job(id, now);
                }
                Action::StartAt(id, at) => {
                    assert!(self.world.is_pending(id), "start_at for non-pending job {id}");
                    let now = self.world.now();
                    let rec = self.world.job(id);
                    assert!(
                        rec.ordered_start().is_none(),
                        "start_at for job {id} which already has an ordered start"
                    );
                    assert!(
                        at >= now && at >= rec.arrival() && at <= rec.deadline(),
                        "start_at({id}, {at}) outside [max(now,a), d] = [{}, {}]",
                        now.max(rec.arrival()),
                        rec.deadline()
                    );
                    self.world.set_ordered_start(id, at);
                    self.push(at, EventKind::OrderedStart(id));
                }
                Action::WakeAt(at, token) => {
                    assert!(
                        at >= self.world.now(),
                        "wake_at({at}) in the past (now = {})",
                        self.world.now()
                    );
                    self.push(at, EventKind::Wakeup(token));
                }
            }
        }
    }

    fn dispatch_arrival(&mut self, arrival: Arrival) {
        let mut ctx = Ctx::new(&self.world);
        self.sched.on_arrival(arrival, &mut ctx);
        let actions = ctx.into_actions();
        self.apply_actions(actions);
    }

    fn run(mut self) -> SimOutcome {
        loop {
            let queued = self.queue.peek().map(|Reverse(e)| (e.time, e.order));
            let release = self.env.next_release_time(&self.world).map(|rt| {
                assert!(
                    rt >= self.world.now(),
                    "environment scheduled a release in the past: {rt} < {}",
                    self.world.now()
                );
                (rt, RELEASE_ORDER)
            });
            let take_release = match (queued, release) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(q), Some(r)) => r < q,
            };

            self.events += 1;
            assert!(
                self.events <= self.config.max_events,
                "simulation exceeded {} events (runaway environment or scheduler?)",
                self.config.max_events
            );

            if take_release {
                let now = release.expect("checked").0;
                self.world.advance_to(now);
                let specs = self.env.release_at(now, &self.world);
                let clairvoyance = self.world.clairvoyance();
                for JobSpec { deadline, length } in specs {
                    assert!(
                        deadline >= now,
                        "released job has deadline {deadline} before arrival {now}"
                    );
                    let fixed = match length {
                        LengthSpec::Fixed(p) => {
                            assert!(p.is_positive(), "released job has non-positive length {p}");
                            Some(p)
                        }
                        LengthSpec::Adaptive => {
                            assert!(
                                !clairvoyance.reveals_class(),
                                "adaptive lengths require a fully non-clairvoyant run"
                            );
                            None
                        }
                    };
                    let id = self.world.release(now, deadline, fixed);
                    self.record(TraceKind::Released { id, deadline });
                    self.push(deadline, EventKind::DeadlineAlarm(id));
                    self.dispatch_arrival(Arrival {
                        id,
                        arrival: now,
                        deadline,
                        length: if clairvoyance.is_clairvoyant() { fixed } else { None },
                        length_class: if clairvoyance.reveals_class() {
                            fixed.map(|p| crate::sim::env::geometric_class(p, 2.0, 1.0))
                        } else {
                            None
                        },
                    });
                }
                continue;
            }

            let Reverse(event) = self.queue.pop().expect("checked non-empty");
            self.world.advance_to(event.time);
            match event.kind {
                EventKind::Completion(id) => {
                    self.world.mark_completed(id);
                    self.record(TraceKind::Completed { id });
                    let length = self.world.job(id).length().expect("completed job has length");
                    let mut ctx = Ctx::new(&self.world);
                    self.sched.on_completion(id, length, &mut ctx);
                    let actions = ctx.into_actions();
                    self.apply_actions(actions);
                }
                EventKind::OrderedStart(id) => {
                    if self.world.is_pending(id) {
                        self.start_job(id, event.time);
                    }
                }
                EventKind::LengthProbe(id) => {
                    let started_at = self.world.job(id).start().expect("probed job has started");
                    match self.env.rule_length(id, started_at, event.time, &self.world) {
                        LengthRuling::Assign(p) => {
                            assert!(p.is_positive(), "ruled non-positive length {p} for {id}");
                            let completion = started_at + p;
                            assert!(
                                completion >= event.time,
                                "ruled length puts completion of {id} in the past"
                            );
                            self.world.set_length(id, p);
                            self.record(TraceKind::LengthRuled { id, length: p });
                            self.push(completion, EventKind::Completion(id));
                        }
                        LengthRuling::AskAgainAt(at) => {
                            assert!(at > event.time, "length probe for {id} must defer forward");
                            self.push(at, EventKind::LengthProbe(id));
                        }
                    }
                }
                EventKind::DeadlineAlarm(id) => {
                    if !self.world.is_pending(id) {
                        continue; // already started
                    }
                    if self.world.job(id).ordered_start().is_some() {
                        // An ordered start exists; it can only be for this
                        // very instant (start_at validates t <= d), and the
                        // OrderedStart event sorts before remaining alarms,
                        // so reaching here means it was issued during this
                        // instant. Honor it now.
                        self.start_job(id, event.time);
                        continue;
                    }
                    let mut ctx = Ctx::new(&self.world);
                    self.sched.on_deadline(id, &mut ctx);
                    let actions = ctx.into_actions();
                    self.apply_actions(actions);
                    if self.world.is_pending(id) && self.world.job(id).ordered_start().is_none() {
                        self.violations.push(Violation { id, at: event.time });
                        self.record(TraceKind::ForcedStart { id });
                        self.start_job(id, event.time);
                    }
                }
                EventKind::Wakeup(token) => {
                    self.record(TraceKind::Wakeup { token });
                    let mut ctx = Ctx::new(&self.world);
                    self.sched.on_wakeup(token, &mut ctx);
                    let actions = ctx.into_actions();
                    self.apply_actions(actions);
                }
            }
        }

        debug_assert_eq!(self.world.num_running(), 0);
        debug_assert_eq!(self.world.num_pending(), 0);

        let instance = self.world.to_instance();
        let mut schedule = Schedule::with_len(instance.len());
        for (i, rec) in self.world.jobs().iter().enumerate() {
            if let JobStatus::Completed { start, .. } = rec.status() {
                schedule.set_start(JobId(i as u32), start);
            }
        }
        let span = schedule.span(&instance);
        SimOutcome {
            instance,
            schedule,
            span,
            violations: self.violations,
            events_processed: self.events,
            trace: self.trace,
        }
    }
}

/// Runs `sched` against `env` until no events remain.
pub fn run<E: Environment, S: OnlineScheduler>(env: E, sched: S) -> SimOutcome {
    run_with_config(env, sched, SimConfig::default())
}

/// Runs with explicit [`SimConfig`].
pub fn run_with_config<E: Environment, S: OnlineScheduler>(
    env: E,
    sched: S,
    config: SimConfig,
) -> SimOutcome {
    Engine {
        world: World::new(env.clairvoyance()),
        env,
        sched,
        queue: BinaryHeap::new(),
        seq: 0,
        violations: Vec::new(),
        events: 0,
        config,
        trace: Vec::new(),
    }
    .run()
}

/// Convenience: runs a scheduler on a static instance.
///
/// Note: the outcome's instance lists jobs in *release order* (sorted by
/// arrival), which may be a permutation of `inst`; spans are unaffected.
pub fn run_static<S: OnlineScheduler>(
    inst: &Instance,
    clairvoyance: Clairvoyance,
    sched: S,
) -> SimOutcome {
    let env = crate::sim::env::StaticEnv::new(inst, clairvoyance);
    run(env, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::time::{dur, t};

    /// Starts every job the moment it arrives.
    struct EagerTest;
    impl OnlineScheduler for EagerTest {
        fn name(&self) -> String {
            "eager-test".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {
            unreachable!("eager never leaves jobs pending");
        }
    }

    /// Starts every job at its deadline via the deadline alarm.
    struct LazyTest;
    impl OnlineScheduler for LazyTest {
        fn name(&self) -> String {
            "lazy-test".into()
        }
        fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}
        fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
            ctx.start(id);
        }
    }

    /// Never starts anything voluntarily (exercises force-start violations).
    struct Broken;
    impl OnlineScheduler for Broken {
        fn name(&self) -> String {
            "broken".into()
        }
        fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }

    fn inst() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 2.0, 1.0),
            Job::adp(0.5, 3.0, 2.0),
            Job::adp(10.0, 12.0, 1.0),
        ])
    }

    #[test]
    fn eager_starts_at_arrivals() {
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, EagerTest);
        assert!(out.is_feasible());
        assert!(out.schedule.is_complete());
        // [0,1) ∪ [0.5,2.5) ∪ [10,11) → 2.5 + 1.
        assert_eq!(out.span, dur(3.5));
        assert_eq!(out.schedule.start(JobId(0)), Some(t(0.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(0.5)));
        assert_eq!(out.schedule.start(JobId(2)), Some(t(10.0)));
        assert!(out.schedule.validate(&out.instance).is_ok());
    }

    #[test]
    fn lazy_starts_at_deadlines() {
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, LazyTest);
        assert!(out.is_feasible());
        // [2,3) ∪ [3,5) ∪ [12,13) → 3 + 1.
        assert_eq!(out.span, dur(4.0));
        assert_eq!(out.schedule.start(JobId(0)), Some(t(2.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(3.0)));
    }

    #[test]
    fn broken_scheduler_is_force_started_with_violations() {
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, Broken);
        assert_eq!(out.violations.len(), 3);
        assert!(!out.is_feasible());
        // Force-start happens at each deadline, so spans match Lazy.
        assert_eq!(out.span, dur(4.0));
    }

    #[test]
    fn start_at_commitment_honored() {
        /// Commits each arrival to start at its deadline via start_at.
        struct Committer;
        impl OnlineScheduler for Committer {
            fn name(&self) -> String {
                "committer".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.start_at(job.id, job.deadline);
            }
            fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {
                unreachable!("ordered start should pre-empt the alarm");
            }
        }
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, Committer);
        assert!(out.is_feasible());
        assert_eq!(out.span, dur(4.0));
    }

    #[test]
    fn wakeups_fire_with_tokens() {
        /// Starts each job 0.5 after its arrival using a wakeup.
        struct Waker;
        impl OnlineScheduler for Waker {
            fn name(&self) -> String {
                "waker".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.wake_at(job.arrival + dur(0.5), u64::from(job.id.0));
            }
            fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
                ctx.start(id);
            }
            fn on_wakeup(&mut self, token: u64, ctx: &mut Ctx<'_>) {
                let id = JobId(token as u32);
                if ctx.is_pending(id) {
                    ctx.start(id);
                }
            }
        }
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, Waker);
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(0.5)));
        assert_eq!(out.schedule.start(JobId(2)), Some(t(10.5)));
    }

    #[test]
    fn non_clairvoyant_masks_lengths_until_completion() {
        struct Observer {
            saw_length_at_arrival: bool,
            completion_lengths: Vec<Dur>,
        }
        impl OnlineScheduler for Observer {
            fn name(&self) -> String {
                "observer".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                self.saw_length_at_arrival |= job.length.is_some();
                ctx.start(job.id);
            }
            fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
            fn on_completion(&mut self, _id: JobId, length: Dur, _ctx: &mut Ctx<'_>) {
                self.completion_lengths.push(length);
            }
        }
        let mut obs = Observer { saw_length_at_arrival: false, completion_lengths: vec![] };
        {
            let env = crate::sim::env::StaticEnv::new(&inst(), Clairvoyance::NonClairvoyant);
            let out = run_with_config(env, &mut obs, SimConfig::default());
            assert!(out.is_feasible());
        }
        assert!(!obs.saw_length_at_arrival);
        assert_eq!(obs.completion_lengths.len(), 3);
    }

    #[test]
    fn adaptive_lengths_via_probe() {
        /// Environment releasing one adaptive job and ruling length 2.0 one
        /// time unit after start (the Theorem 3.3 adversary's cadence).
        struct OneAdaptive {
            released: bool,
        }
        impl Environment for OneAdaptive {
            fn clairvoyance(&self) -> Clairvoyance {
                Clairvoyance::NonClairvoyant
            }
            fn next_release_time(&mut self, _world: &World) -> Option<Time> {
                (!self.released).then(|| t(1.0))
            }
            fn release_at(&mut self, _now: Time, _world: &World) -> Vec<JobSpec> {
                self.released = true;
                vec![JobSpec::adaptive(t(4.0))]
            }
            fn rule_length(
                &mut self,
                _id: JobId,
                started_at: Time,
                now: Time,
                _world: &World,
            ) -> LengthRuling {
                if now == started_at {
                    LengthRuling::AskAgainAt(started_at + dur(1.0))
                } else {
                    LengthRuling::Assign(dur(2.0))
                }
            }
        }
        let out = run(OneAdaptive { released: false }, EagerTest);
        assert!(out.is_feasible());
        assert_eq!(out.instance.job(JobId(0)).length(), dur(2.0));
        assert_eq!(out.schedule.start(JobId(0)), Some(t(1.0)));
        assert_eq!(out.span, dur(2.0));
    }

    #[test]
    fn outcome_instance_matches_release_order() {
        let source = Instance::new(vec![
            Job::adp(5.0, 6.0, 1.0), // released second
            Job::adp(0.0, 1.0, 2.0), // released first
        ]);
        let out = run_static(&source, Clairvoyance::Clairvoyant, EagerTest);
        assert_eq!(out.instance.job(JobId(0)).arrival(), t(0.0));
        assert_eq!(out.instance.job(JobId(1)).arrival(), t(5.0));
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn event_cap_trips() {
        /// Wakes itself up forever.
        struct Spinner;
        impl OnlineScheduler for Spinner {
            fn name(&self) -> String {
                "spinner".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.start(job.id);
                ctx.wake_at(job.arrival + dur(1.0), 0);
            }
            fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
            fn on_wakeup(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
                ctx.wake_at(ctx.now() + dur(1.0), 0);
            }
        }
        let single = Instance::new(vec![Job::adp(0.0, 0.0, 1.0)]);
        let env = crate::sim::env::StaticEnv::new(&single, Clairvoyance::Clairvoyant);
        let _ = run_with_config(env, Spinner, SimConfig { max_events: 100, record_trace: false });
    }

    #[test]
    fn empty_instance_runs_to_empty_outcome() {
        let out = run_static(&Instance::empty(), Clairvoyance::Clairvoyant, EagerTest);
        assert!(out.is_feasible());
        assert_eq!(out.span, Dur::ZERO);
        assert_eq!(out.instance.len(), 0);
    }

    #[test]
    fn trace_records_full_lifecycle() {
        let single = Instance::new(vec![Job::adp(0.0, 2.0, 1.0)]);
        let env = crate::sim::env::StaticEnv::new(&single, Clairvoyance::Clairvoyant);
        let out = run_with_config(
            env,
            LazyTest,
            SimConfig { record_trace: true, ..Default::default() },
        );
        use crate::sim::trace::TraceKind;
        let kinds: Vec<_> = out.trace.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Released { id: JobId(0), deadline: t(2.0) },
                TraceKind::Started { id: JobId(0) },
                TraceKind::Completed { id: JobId(0) },
            ]
        );
        assert_eq!(out.trace[1].time, t(2.0));
        assert_eq!(out.trace[2].time, t(3.0));
    }

    #[test]
    fn trace_empty_when_disabled() {
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, EagerTest);
        assert!(out.trace.is_empty());
    }

    #[test]
    fn simultaneous_deadline_alarms_after_batch_start() {
        /// Batch-like: on a deadline alarm, start every pending job.
        struct MiniBatch;
        impl OnlineScheduler for MiniBatch {
            fn name(&self) -> String {
                "mini-batch".into()
            }
            fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}
            fn on_deadline(&mut self, _id: JobId, ctx: &mut Ctx<'_>) {
                let pending: Vec<JobId> = ctx.pending().collect();
                for id in pending {
                    ctx.start(id);
                }
            }
        }
        // Two jobs share a deadline; the first alarm starts both, the second
        // alarm must be a no-op.
        let two = Instance::new(vec![Job::adp(0.0, 2.0, 1.0), Job::adp(0.0, 2.0, 5.0)]);
        let out = run_static(&two, Clairvoyance::Clairvoyant, MiniBatch);
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(2.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(2.0)));
        assert_eq!(out.span, dur(5.0));
    }
}
