//! The event-driven simulation engine.
//!
//! Drives an [`OnlineScheduler`] against an [`Environment`] and produces a
//! [`SimOutcome`]: the materialized instance, the schedule, its span, and
//! any feasibility violations.
//!
//! # Event ordering
//!
//! Multiple events may share a timestamp; they are processed in a fixed kind
//! order chosen to match the paper's semantics of half-open active intervals
//! `[s, s+p)`:
//!
//! 1. **Completions** — a job is *not* running at its completion instant, so
//!    completions precede everything else (e.g. the Theorem 3.3 adversary
//!    releases iteration `i+1` exactly at the earmarked job's completion,
//!    and those arrivals must observe the job as finished).
//! 2. **Releases** — arrivals at this instant.
//! 3. **Ordered starts** — `Ctx::start_at` commitments falling due.
//! 4. **Length probes** — deferred adaptive-length rulings.
//! 5. **Deadline alarms** — last-chance notifications for pending jobs.
//! 6. **Wakeups** — scheduler-requested callbacks.
//!
//! Within a kind, ties break by insertion sequence (FIFO), which makes runs
//! fully deterministic.

use crate::interval::RunningSpan;
use crate::job::{Instance, JobId};
use crate::schedule::Schedule;
use crate::sim::calendar::{CalendarEvent, CalendarQueue};
use crate::sim::env::{Clairvoyance, Environment, JobSpec, LengthRuling, LengthSpec};
use crate::sim::sched::{Action, Arrival, Ctx, OnlineScheduler};
use crate::sim::stats::RunStats;
use crate::sim::trace::{TraceEvent, TraceKind, TraceMode};
use crate::sim::world::World;
use crate::time::{Dur, Time};
use std::fmt;
use std::time::Instant;

/// Engine limits and options.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Hard cap on processed events (guards against runaway adaptive
    /// environments or scheduler wakeup loops).
    pub max_events: usize,
    /// What to record into the outcome's [`TraceEvent`] log: nothing (the
    /// default), the full chronology, or a bounded ring of the most recent
    /// events. See [`TraceMode`].
    pub trace: TraceMode,
    /// Measure wall-clock time spent inside scheduler callbacks and
    /// environment oracles ([`RunStats::wall_scheduler_s`] /
    /// [`RunStats::wall_environment_s`]). Costs two monotonic-clock reads
    /// per event, so it is off by default; counters are always collected.
    pub time_phases: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_events: 50_000_000,
            trace: TraceMode::Off,
            time_phases: false,
        }
    }
}

/// A feasibility violation: the scheduler let a pending job pass its
/// starting deadline. The engine force-starts the job at the deadline so the
/// run can continue, but correct schedulers must never trigger this.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Violation {
    /// The job that was not started in time.
    pub id: JobId,
    /// The deadline at which the engine force-started it.
    pub at: Time,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} missed its starting deadline at {}",
            self.id, self.at
        )
    }
}

/// How a simulation run ended.
///
/// Every run — even one driven by a hostile environment or a misbehaving
/// scheduler — produces a [`SimOutcome`]; this status says whether the
/// outcome covers the full instance or is a partial schedule cut short by a
/// resource cap or an environment contract breach.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Termination {
    /// All events drained; the schedule is complete.
    Completed,
    /// The [`SimConfig::max_events`] budget ran out (runaway environment or
    /// scheduler wakeup loop). The outcome carries the partial schedule at
    /// the moment the cap tripped.
    EventCapExhausted {
        /// Events processed (equals the configured cap).
        events: usize,
    },
    /// The environment broke its contract; the run stopped at the breach
    /// with the partial schedule accumulated so far.
    EnvironmentFault(EnvFault),
}

impl Termination {
    /// Whether the run drained naturally.
    pub fn is_completed(&self) -> bool {
        matches!(self, Termination::Completed)
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Termination::Completed => write!(f, "completed"),
            Termination::EventCapExhausted { events } => {
                write!(f, "event cap exhausted after {events} events")
            }
            Termination::EnvironmentFault(e) => write!(f, "environment fault: {e}"),
        }
    }
}

/// A breach of the [`Environment`] contract, detected and reported instead
/// of aborting the process.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EnvFault {
    /// `next_release_time` returned a time before the current instant.
    ReleaseInPast {
        /// The time the environment asked for.
        scheduled: Time,
        /// The simulation clock when it asked.
        now: Time,
    },
    /// A released job's starting deadline precedes its arrival.
    DeadlineBeforeArrival {
        /// The release instant (= arrival).
        arrival: Time,
        /// The offending deadline.
        deadline: Time,
    },
    /// A released job has a zero or negative fixed length.
    NonPositiveLength {
        /// The offending length.
        length: Dur,
    },
    /// An `Adaptive` length was released in a run that reveals lengths (or
    /// length classes) at arrival — there is nothing coherent to reveal.
    AdaptiveUnderClairvoyance,
    /// `rule_length` assigned a zero or negative length.
    RuledNonPositiveLength {
        /// The job whose length was ruled.
        id: JobId,
        /// The offending length.
        length: Dur,
    },
    /// `rule_length` assigned a length whose completion lies before the
    /// ruling instant (the job would have to finish in the past).
    RulingInPast {
        /// The job whose length was ruled.
        id: JobId,
        /// The implied completion time.
        completion: Time,
        /// The ruling instant.
        now: Time,
    },
    /// `rule_length` deferred to a time that is not in the future.
    ProbeNotDeferred {
        /// The job being probed.
        id: JobId,
        /// The non-advancing ask-again time.
        at: Time,
    },
    /// A start or ruling pushed a completion time beyond the finite `f64`
    /// range (degenerate timestamps on the order of `f64::MAX`).
    HorizonOverflow {
        /// The job whose completion overflowed.
        id: JobId,
    },
}

impl EnvFault {
    /// Whether a retry with a fresh environment could plausibly succeed.
    ///
    /// Transient faults are the clock-skew-shaped ones — a release or
    /// ruling that landed "in the past", or a probe that failed to advance —
    /// which an external job source can produce under load and which a
    /// re-run may not reproduce. Structural faults (bad deadlines, bad
    /// lengths, incoherent clairvoyance) are properties of the workload
    /// itself and will recur on every attempt.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            EnvFault::ReleaseInPast { .. }
                | EnvFault::RulingInPast { .. }
                | EnvFault::ProbeNotDeferred { .. }
        )
    }
}

impl fmt::Display for EnvFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvFault::ReleaseInPast { scheduled, now } => {
                write!(f, "release scheduled in the past: {scheduled} < {now}")
            }
            EnvFault::DeadlineBeforeArrival { arrival, deadline } => {
                write!(
                    f,
                    "released job has deadline {deadline} before arrival {arrival}"
                )
            }
            EnvFault::NonPositiveLength { length } => {
                write!(f, "released job has non-positive length {length}")
            }
            EnvFault::AdaptiveUnderClairvoyance => {
                write!(f, "adaptive lengths require a fully non-clairvoyant run")
            }
            EnvFault::RuledNonPositiveLength { id, length } => {
                write!(f, "ruled non-positive length {length} for {id}")
            }
            EnvFault::RulingInPast {
                id,
                completion,
                now,
            } => {
                write!(
                    f,
                    "ruled length puts completion of {id} at {completion}, before {now}"
                )
            }
            EnvFault::ProbeNotDeferred { id, at } => {
                write!(
                    f,
                    "length probe for {id} re-asked at {at}, which is not in the future"
                )
            }
            EnvFault::HorizonOverflow { id } => {
                write!(f, "completion time of {id} overflows the finite time range")
            }
        }
    }
}

/// A scheduler action the engine refused to apply. The action is dropped
/// (the job in question remains pending and is force-started at its
/// deadline if the scheduler never issues a valid start), the run continues,
/// and the rejection is recorded in [`SimOutcome::rejected_actions`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RejectedAction {
    /// When the action was requested.
    pub at: Time,
    /// Why it was refused.
    pub fault: ActionFault,
}

impl fmt::Display for RejectedAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}: {}", self.at, self.fault)
    }
}

/// Why a scheduler action was refused.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ActionFault {
    /// A start was requested for a job that is not pending (already started,
    /// completed, or never released).
    StartNonPending {
        /// The requested job.
        id: JobId,
    },
    /// An immediate start was requested outside the job's `[a, d]` window.
    StartOutsideWindow {
        /// The requested job.
        id: JobId,
        /// The attempted start time (the current instant).
        at: Time,
    },
    /// A `start_at` was issued for a job that already has an ordered start.
    DuplicateOrderedStart {
        /// The requested job.
        id: JobId,
    },
    /// A `start_at` time lies in the past or outside the job's window.
    StartAtOutsideWindow {
        /// The requested job.
        id: JobId,
        /// The attempted start time.
        at: Time,
    },
    /// A wakeup was requested for a past instant.
    WakeupInPast {
        /// The requested wakeup time.
        at: Time,
    },
}

impl fmt::Display for ActionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionFault::StartNonPending { id } => {
                write!(f, "start of non-pending job {id}")
            }
            ActionFault::StartOutsideWindow { id, at } => {
                write!(f, "start of {id} at {at} outside its window")
            }
            ActionFault::DuplicateOrderedStart { id } => {
                write!(f, "duplicate ordered start for {id}")
            }
            ActionFault::StartAtOutsideWindow { id, at } => {
                write!(f, "ordered start of {id} at {at} outside [max(now, a), d]")
            }
            ActionFault::WakeupInPast { at } => write!(f, "wakeup at past instant {at}"),
        }
    }
}

/// The result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// All released jobs with their final lengths, in release order. For a
    /// run that did not complete ([`SimOutcome::termination`]), lengths of
    /// jobs listed in [`SimOutcome::unresolved`] are placeholders.
    pub instance: Instance,
    /// Start times chosen by the scheduler (complete when the run
    /// completed; partial otherwise).
    pub schedule: Schedule,
    /// Span of the schedule (cached from [`Schedule::span`]).
    pub span: Dur,
    /// Feasibility violations (empty for a correct scheduler).
    pub violations: Vec<Violation>,
    /// How the run ended.
    pub termination: Termination,
    /// Scheduler actions the engine refused to apply (empty for a correct
    /// scheduler).
    pub rejected_actions: Vec<RejectedAction>,
    /// Jobs whose adaptive lengths were never ruled because the run was cut
    /// short; their lengths in [`SimOutcome::instance`] are placeholders.
    /// Always empty when the run completed.
    pub unresolved: Vec<JobId>,
    /// Total events processed (diagnostics; equals
    /// [`RunStats::events_total`]).
    pub events_processed: usize,
    /// Engine counters for the run: events by kind, peak event-heap size,
    /// applied/rejected actions, force-starts and wall-clock phases.
    pub stats: RunStats,
    /// Chronological event log (empty unless [`SimConfig::trace`] asked
    /// for recording; bounded to the most recent events under
    /// [`TraceMode::Ring`]).
    pub trace: Vec<TraceEvent>,
}

impl SimOutcome {
    /// Whether the run finished without feasibility violations.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether the run completed with no violations and no rejected
    /// actions — the strictest notion of a healthy run.
    pub fn is_clean(&self) -> bool {
        self.termination.is_completed()
            && self.violations.is_empty()
            && self.rejected_actions.is_empty()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum EventKind {
    Completion(JobId),
    // Releases are not queued; they are pulled from the environment and
    // slot in at priority `RELEASE_ORDER`.
    OrderedStart(JobId),
    LengthProbe(JobId),
    DeadlineAlarm(JobId),
    Wakeup(u64),
}

impl EventKind {
    pub(crate) fn order(&self) -> u8 {
        match self {
            EventKind::Completion(_) => 0,
            EventKind::OrderedStart(_) => 2,
            EventKind::LengthProbe(_) => 3,
            EventKind::DeadlineAlarm(_) => 4,
            EventKind::Wakeup(_) => 5,
        }
    }
}

/// Priority of a release pseudo-event at equal timestamps.
pub(crate) const RELEASE_ORDER: u8 = 1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Event {
    pub(crate) time: Time,
    pub(crate) order: u8,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.order, self.seq).cmp(&(other.time, other.order, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl CalendarEvent for Event {
    fn time(&self) -> Time {
        self.time
    }
}

/// How the drive loop ended (the non-fault half of [`Termination`]).
enum DriveEnd {
    Drained,
    EventCap,
}

struct Engine<E, S> {
    world: World,
    env: E,
    sched: S,
    queue: CalendarQueue<Event>,
    /// Busy-interval span maintained incrementally as starts and rulings
    /// happen, so completed runs never re-measure the `IntervalSet` union.
    span: RunningSpan,
    seq: u64,
    violations: Vec<Violation>,
    rejected: Vec<RejectedAction>,
    stats: RunStats,
    config: SimConfig,
    trace: Vec<TraceEvent>,
    /// Next overwrite slot when the trace is a full [`TraceMode::Ring`];
    /// the trace is un-rotated back to chronological order at run end.
    trace_next: usize,
    /// Reused action buffer handed to each [`Ctx`] (one allocation per run,
    /// not per callback).
    scratch: Vec<Action>,
    /// Reused release buffer handed to [`Environment::release_into`] (one
    /// allocation per run, not one per release event).
    spec_scratch: Vec<JobSpec>,
}

impl<E: Environment, S: OnlineScheduler> Engine<E, S> {
    #[inline]
    fn record(&mut self, kind: TraceKind) {
        match self.config.trace {
            TraceMode::Off | TraceMode::Ring(0) => {}
            TraceMode::Full => self.trace.push(TraceEvent {
                time: self.world.now(),
                kind,
            }),
            TraceMode::Ring(n) => {
                let ev = TraceEvent {
                    time: self.world.now(),
                    kind,
                };
                if self.trace.len() < n {
                    self.trace.push(ev);
                } else {
                    self.trace[self.trace_next] = ev;
                    self.trace_next = (self.trace_next + 1) % n;
                }
            }
        }
    }

    #[inline]
    fn push(&mut self, time: Time, kind: EventKind) {
        self.queue.push(Event {
            time,
            order: kind.order(),
            seq: self.seq,
            kind,
        });
        self.seq += 1;
        self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len());
    }

    fn reject(&mut self, fault: ActionFault) {
        self.stats.actions_rejected += 1;
        self.rejected.push(RejectedAction {
            at: self.world.now(),
            fault,
        });
    }

    /// Starts a phase-timing measurement when [`SimConfig::time_phases`]
    /// is set; [`Engine::phase_done`] accumulates it.
    fn phase_start(&self) -> Option<Instant> {
        self.config.time_phases.then(Instant::now)
    }

    fn phase_done(t0: Option<Instant>, acc: &mut f64) {
        if let Some(t0) = t0 {
            *acc += t0.elapsed().as_secs_f64();
        }
    }

    /// The completion instant `at + p`, guarding against `f64` overflow from
    /// degenerate timestamps.
    fn completion_time(&self, id: JobId, at: Time, p: Dur) -> Result<Time, EnvFault> {
        let raw = at.get() + p.get();
        if !raw.is_finite() {
            return Err(EnvFault::HorizonOverflow { id });
        }
        Ok(Time::new(raw))
    }

    /// Starts a job at `at` and schedules its completion or length probe.
    ///
    /// Callers must have validated that the job is pending and `at` lies in
    /// its start window; this method only reports *environment* misbehavior
    /// (bad adaptive-length rulings).
    fn start_job(&mut self, id: JobId, at: Time) -> Result<(), EnvFault> {
        debug_assert!(self.world.is_pending(id), "starting non-pending job {id}");
        debug_assert!({
            let (a, d) = self.world.window_of(id);
            a <= at && at <= d
        });
        let known = self.world.length_of(id);
        self.world.mark_started(id, at);
        self.record(TraceKind::Started { id });
        match known {
            Some(p) => {
                let completion = self.completion_time(id, at, p)?;
                self.span.on_start(at, Some(completion));
                self.push(completion, EventKind::Completion(id));
            }
            None => {
                let t0 = self.phase_start();
                let ruling = self.env.rule_length(id, at, at, &self.world);
                Self::phase_done(t0, &mut self.stats.wall_environment_s);
                match ruling {
                    LengthRuling::Assign(p) => {
                        if !p.is_positive() {
                            return Err(EnvFault::RuledNonPositiveLength { id, length: p });
                        }
                        let completion = self.completion_time(id, at, p)?;
                        self.world.set_length(id, p);
                        self.record(TraceKind::LengthRuled { id, length: p });
                        self.span.on_start(at, Some(completion));
                        self.push(completion, EventKind::Completion(id));
                    }
                    LengthRuling::AskAgainAt(t) => {
                        if t <= at {
                            return Err(EnvFault::ProbeNotDeferred { id, at: t });
                        }
                        self.span.on_start(at, None);
                        self.push(t, EventKind::LengthProbe(id));
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs one scheduler callback against a fresh [`Ctx`] (backed by the
    /// reusable scratch buffer) and applies the actions it requested.
    fn dispatch_callback(
        &mut self,
        call: impl FnOnce(&mut S, &mut Ctx<'_>),
    ) -> Result<(), EnvFault> {
        let mut ctx = Ctx::with_scratch(&self.world, std::mem::take(&mut self.scratch));
        let t0 = self.phase_start();
        call(&mut self.sched, &mut ctx);
        Self::phase_done(t0, &mut self.stats.wall_scheduler_s);
        let mut actions = ctx.into_actions();
        // No-op callbacks (the default on_completion, buffering on_arrival)
        // skip the apply machinery entirely.
        let applied = if actions.is_empty() {
            Ok(())
        } else {
            self.apply_actions(&mut actions)
        };
        actions.clear();
        self.scratch = actions;
        applied
    }

    /// Applies (by draining) the actions a scheduler requested during one
    /// callback. Invalid actions are rejected (recorded and dropped) rather
    /// than aborting the run: a dropped start leaves the job pending, where
    /// the deadline-alarm force-start guarantees it is eventually scheduled.
    fn apply_actions(&mut self, actions: &mut Vec<Action>) -> Result<(), EnvFault> {
        for action in actions.drain(..) {
            match action {
                Action::StartNow(id) => {
                    let now = self.world.now();
                    if !self.world.is_pending(id) {
                        self.reject(ActionFault::StartNonPending { id });
                        continue;
                    }
                    let (arrival, deadline) = self.world.window_of(id);
                    if now < arrival || now > deadline {
                        self.reject(ActionFault::StartOutsideWindow { id, at: now });
                        continue;
                    }
                    self.stats.actions_applied += 1;
                    self.start_job(id, now)?;
                }
                Action::StartAt(id, at) => {
                    let now = self.world.now();
                    if !self.world.is_pending(id) {
                        self.reject(ActionFault::StartNonPending { id });
                        continue;
                    }
                    if self.world.ordered_start_of(id).is_some() {
                        self.reject(ActionFault::DuplicateOrderedStart { id });
                        continue;
                    }
                    let (arrival, deadline) = self.world.window_of(id);
                    if at < now || at < arrival || at > deadline {
                        self.reject(ActionFault::StartAtOutsideWindow { id, at });
                        continue;
                    }
                    self.stats.actions_applied += 1;
                    self.world.set_ordered_start(id, at);
                    self.push(at, EventKind::OrderedStart(id));
                }
                Action::WakeAt(at, token) => {
                    if at < self.world.now() {
                        self.reject(ActionFault::WakeupInPast { at });
                        continue;
                    }
                    self.stats.actions_applied += 1;
                    self.push(at, EventKind::Wakeup(token));
                }
            }
        }
        Ok(())
    }

    fn dispatch_arrival(&mut self, arrival: Arrival) -> Result<(), EnvFault> {
        self.dispatch_callback(|sched, ctx| sched.on_arrival(arrival, ctx))
    }

    /// The event loop. Returns how it stopped; environment contract
    /// breaches bubble up as errors, scheduler misbehavior is absorbed.
    fn drive(&mut self) -> Result<DriveEnd, EnvFault> {
        loop {
            let queued = self.queue.peek().map(|e| (e.time, e.order));
            let t0 = self.phase_start();
            let next_release = self.env.next_release_time(&self.world);
            Self::phase_done(t0, &mut self.stats.wall_environment_s);
            let release = match next_release {
                Some(rt) if rt < self.world.now() => {
                    return Err(EnvFault::ReleaseInPast {
                        scheduled: rt,
                        now: self.world.now(),
                    })
                }
                Some(rt) => Some((rt, RELEASE_ORDER)),
                None => None,
            };
            let release_due = match (queued, release) {
                (None, None) => return Ok(DriveEnd::Drained),
                (None, Some((rt, _))) => Some(rt),
                (Some(_), None) => None,
                (Some(q), Some(r)) => (r < q).then_some(r.0),
            };

            if self.stats.events_total >= self.config.max_events {
                return Ok(DriveEnd::EventCap);
            }
            self.stats.events_total += 1;

            if let Some(now) = release_due {
                self.stats.release_events += 1;
                self.world.advance_to(now);
                let mut specs = std::mem::take(&mut self.spec_scratch);
                let t0 = self.phase_start();
                self.env.release_into(now, &self.world, &mut specs);
                Self::phase_done(t0, &mut self.stats.wall_environment_s);
                let clairvoyance = self.world.clairvoyance();
                for JobSpec { deadline, length } in specs.drain(..) {
                    if deadline < now {
                        return Err(EnvFault::DeadlineBeforeArrival {
                            arrival: now,
                            deadline,
                        });
                    }
                    let fixed = match length {
                        LengthSpec::Fixed(p) => {
                            if !p.is_positive() {
                                return Err(EnvFault::NonPositiveLength { length: p });
                            }
                            Some(p)
                        }
                        LengthSpec::Adaptive => {
                            if clairvoyance.reveals_class() {
                                return Err(EnvFault::AdaptiveUnderClairvoyance);
                            }
                            None
                        }
                    };
                    let id = self.world.release(now, deadline, fixed);
                    self.stats.jobs_released += 1;
                    self.record(TraceKind::Released { id, deadline });
                    self.push(deadline, EventKind::DeadlineAlarm(id));
                    self.dispatch_arrival(Arrival {
                        id,
                        arrival: now,
                        deadline,
                        length: if clairvoyance.is_clairvoyant() {
                            fixed
                        } else {
                            None
                        },
                        length_class: if clairvoyance.reveals_class() {
                            fixed.map(|p| crate::sim::env::geometric_class(p, 2.0, 1.0))
                        } else {
                            None
                        },
                    })?;
                }
                // (On the error paths above the buffer is simply dropped.)
                self.spec_scratch = specs;
                continue;
            }

            let Some(event) = self.queue.pop() else {
                // Unreachable: release_due == None implies the queue was
                // non-empty above; treat defensively as drained.
                return Ok(DriveEnd::Drained);
            };
            self.world.advance_to(event.time);
            match event.kind {
                EventKind::Completion(id) => {
                    self.stats.completions += 1;
                    self.stats.jobs_completed += 1;
                    self.world.mark_completed(id);
                    self.record(TraceKind::Completed { id });
                    let Some(length) = self.world.length_of(id) else {
                        // Unreachable: completions are only scheduled once a
                        // length is known (mark_completed checks too).
                        continue;
                    };
                    self.dispatch_callback(|sched, ctx| sched.on_completion(id, length, ctx))?;
                }
                EventKind::OrderedStart(id) => {
                    self.stats.ordered_starts += 1;
                    if self.world.is_pending(id) {
                        self.start_job(id, event.time)?;
                    }
                }
                EventKind::LengthProbe(id) => {
                    self.stats.length_probes += 1;
                    let Some(started_at) = self.world.start_of(id) else {
                        // Unreachable: probes are only scheduled after a
                        // start; skip rather than abort.
                        continue;
                    };
                    let t0 = self.phase_start();
                    let ruling = self
                        .env
                        .rule_length(id, started_at, event.time, &self.world);
                    Self::phase_done(t0, &mut self.stats.wall_environment_s);
                    match ruling {
                        LengthRuling::Assign(p) => {
                            if !p.is_positive() {
                                return Err(EnvFault::RuledNonPositiveLength { id, length: p });
                            }
                            let completion = self.completion_time(id, started_at, p)?;
                            if completion < event.time {
                                return Err(EnvFault::RulingInPast {
                                    id,
                                    completion,
                                    now: event.time,
                                });
                            }
                            self.world.set_length(id, p);
                            self.record(TraceKind::LengthRuled { id, length: p });
                            self.span.on_rule(completion);
                            self.push(completion, EventKind::Completion(id));
                        }
                        LengthRuling::AskAgainAt(at) => {
                            if at <= event.time {
                                return Err(EnvFault::ProbeNotDeferred { id, at });
                            }
                            self.push(at, EventKind::LengthProbe(id));
                        }
                    }
                }
                EventKind::DeadlineAlarm(id) => {
                    self.stats.deadline_alarms += 1;
                    if !self.world.is_pending(id) {
                        continue; // already started
                    }
                    if self.world.ordered_start_of(id).is_some() {
                        // An ordered start exists; it can only be for this
                        // very instant (start_at validates t <= d), and the
                        // OrderedStart event sorts before remaining alarms,
                        // so reaching here means it was issued during this
                        // instant. Honor it now.
                        self.start_job(id, event.time)?;
                        continue;
                    }
                    self.dispatch_callback(|sched, ctx| sched.on_deadline(id, ctx))?;
                    if self.world.is_pending(id) && self.world.ordered_start_of(id).is_none() {
                        self.stats.force_starts += 1;
                        self.violations.push(Violation { id, at: event.time });
                        self.record(TraceKind::ForcedStart { id });
                        self.start_job(id, event.time)?;
                    }
                }
                EventKind::Wakeup(token) => {
                    self.stats.wakeups += 1;
                    self.record(TraceKind::Wakeup { token });
                    self.dispatch_callback(|sched, ctx| sched.on_wakeup(token, ctx))?;
                }
            }
        }
    }

    fn run(mut self) -> (SimOutcome, EngineScratch) {
        let run_start = Instant::now();
        let drive_end = self.drive();
        self.stats.wall_total_s = run_start.elapsed().as_secs_f64();
        // A full ring holds the newest events wrapped around `trace_next`;
        // rotate back so the outcome's trace is chronological.
        if let TraceMode::Ring(n) = self.config.trace {
            if n > 0 && self.trace.len() == n {
                self.trace.rotate_left(self.trace_next);
            }
        }
        let termination = match drive_end {
            Ok(DriveEnd::Drained) => Termination::Completed,
            Ok(DriveEnd::EventCap) => Termination::EventCapExhausted {
                events: self.stats.events_total,
            },
            Err(fault) => Termination::EnvironmentFault(fault),
        };

        if termination.is_completed() {
            debug_assert_eq!(self.world.num_running(), 0);
            debug_assert_eq!(self.world.num_pending(), 0);
        }

        let (instance, unresolved) = self.world.to_partial_instance();
        debug_assert!(unresolved.is_empty() || !termination.is_completed());
        let mut schedule = Schedule::with_len(instance.len());
        for (id, start) in self.world.starts() {
            if let Some(start) = start {
                schedule.set_start(id, start);
            }
        }
        // A drained run has every start's completion ruled, so the running
        // scalar is the exact span; aborted runs fall back to measuring the
        // partial schedule (placeholder lengths make the scalar meaningless).
        let span = match self.span.total_if_resolved() {
            Some(s) if termination.is_completed() => {
                debug_assert_eq!(
                    s.get().to_bits(),
                    schedule.span(&instance).get().to_bits(),
                    "incremental span must be bit-identical to the measured union"
                );
                s
            }
            _ => schedule.span(&instance),
        };
        self.stats.peak_retained = self.world.peak_retained();
        self.stats.arena_slots = self.world.arena_slots();
        let outcome = SimOutcome {
            instance,
            schedule,
            span,
            violations: self.violations,
            termination,
            rejected_actions: self.rejected,
            unresolved,
            events_processed: self.stats.events_total,
            stats: self.stats,
            trace: self.trace,
        };
        let scratch = EngineScratch {
            world: self.world,
            queue: self.queue,
            scratch: self.scratch,
            spec_scratch: self.spec_scratch,
        };
        (outcome, scratch)
    }
}

/// The engine's recyclable allocations: the arena-backed world (eleven
/// column vectors), the calendar ring, and the two per-run scratch buffers.
/// `run_with_config` parks one of these per thread between runs, so
/// harness-shaped workloads — thousands of deck-sized runs back to back —
/// pay the malloc bill once per thread instead of once per run. Every part
/// is reset to its pristine state before reuse, so a recycled run is
/// observably identical to a fresh one (the equivalence and determinism
/// suites drive both paths).
struct EngineScratch {
    world: World,
    queue: CalendarQueue<Event>,
    scratch: Vec<Action>,
    spec_scratch: Vec<JobSpec>,
}

/// Arenas above this capacity (in records) are dropped rather than parked,
/// so one huge run does not pin megabytes to a long-lived thread.
const POOL_MAX_RECORDS: usize = 1 << 15;

thread_local! {
    static SCRATCH_POOL: std::cell::Cell<Option<Box<EngineScratch>>> =
        const { std::cell::Cell::new(None) };
}

/// Runs `sched` against `env` until no events remain.
pub fn run<E: Environment, S: OnlineScheduler>(env: E, sched: S) -> SimOutcome {
    run_with_config(env, sched, SimConfig::default())
}

/// Runs with explicit [`SimConfig`].
pub fn run_with_config<E: Environment, S: OnlineScheduler>(
    env: E,
    sched: S,
    config: SimConfig,
) -> SimOutcome {
    // Pre-sized: a typical run keeps a deadline alarm plus a completion in
    // flight per overlapping job, so `2n` calendar days absorb the common
    // case. The cap keeps huge runs from paying for a giant ring up front
    // (the queue grows itself), and the `2n` side keeps tiny runs — the
    // conformance decks and sweeps are dominated by 2–8 job instances —
    // on a few-bucket ring instead of the full default.
    let mut queue_hint = INITIAL_QUEUE_CAPACITY;
    let expected = env.expected_jobs();
    if let Some(n) = expected {
        queue_hint = queue_hint.min(2 * n.max(1));
    }
    // Recycle the previous run's allocations (this thread) or start fresh;
    // either way the parts are in their pristine state before the run.
    let mut parts = match SCRATCH_POOL.with(|p| p.take()) {
        Some(mut parts) => {
            parts.world.reset(env.clairvoyance());
            parts.queue.reset(queue_hint.min(config.max_events));
            parts.scratch.clear();
            parts.spec_scratch.clear();
            parts
        }
        None => Box::new(EngineScratch {
            world: World::new(env.clairvoyance()),
            queue: CalendarQueue::with_capacity(queue_hint.min(config.max_events)),
            scratch: Vec::new(),
            spec_scratch: Vec::new(),
        }),
    };
    if let Some(n) = expected {
        parts.world.reserve_jobs(n);
    }
    let EngineScratch {
        world,
        queue,
        scratch,
        spec_scratch,
    } = *parts;
    let (outcome, used) = Engine {
        world,
        env,
        sched,
        queue,
        span: RunningSpan::new(),
        seq: 0,
        violations: Vec::new(),
        rejected: Vec::new(),
        stats: RunStats::default(),
        config,
        trace: Vec::new(),
        trace_next: 0,
        scratch,
        spec_scratch,
    }
    .run();
    if used.world.capacity() <= POOL_MAX_RECORDS {
        SCRATCH_POOL.with(|p| p.set(Some(Box::new(used))));
    }
    outcome
}

/// Initial event-queue capacity (clamped to `max_events` for micro runs).
const INITIAL_QUEUE_CAPACITY: usize = 64;

/// Convenience: runs a scheduler on a static instance.
///
/// Note: the outcome's instance lists jobs in *release order* (sorted by
/// arrival), which may be a permutation of `inst`; spans are unaffected.
pub fn run_static<S: OnlineScheduler>(
    inst: &Instance,
    clairvoyance: Clairvoyance,
    sched: S,
) -> SimOutcome {
    let env = crate::sim::env::StaticEnv::new(inst, clairvoyance);
    run(env, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::time::{dur, t};

    /// Starts every job the moment it arrives.
    struct EagerTest;
    impl OnlineScheduler for EagerTest {
        fn name(&self) -> String {
            "eager-test".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {
            unreachable!("eager never leaves jobs pending");
        }
    }

    /// Starts every job at its deadline via the deadline alarm.
    struct LazyTest;
    impl OnlineScheduler for LazyTest {
        fn name(&self) -> String {
            "lazy-test".into()
        }
        fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}
        fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
            ctx.start(id);
        }
    }

    /// Never starts anything voluntarily (exercises force-start violations).
    struct Broken;
    impl OnlineScheduler for Broken {
        fn name(&self) -> String {
            "broken".into()
        }
        fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }

    fn inst() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 2.0, 1.0),
            Job::adp(0.5, 3.0, 2.0),
            Job::adp(10.0, 12.0, 1.0),
        ])
    }

    #[test]
    fn eager_starts_at_arrivals() {
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, EagerTest);
        assert!(out.is_feasible());
        assert!(out.schedule.is_complete());
        // [0,1) ∪ [0.5,2.5) ∪ [10,11) → 2.5 + 1.
        assert_eq!(out.span, dur(3.5));
        assert_eq!(out.schedule.start(JobId(0)), Some(t(0.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(0.5)));
        assert_eq!(out.schedule.start(JobId(2)), Some(t(10.0)));
        assert!(out.schedule.validate(&out.instance).is_ok());
    }

    #[test]
    fn lazy_starts_at_deadlines() {
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, LazyTest);
        assert!(out.is_feasible());
        // [2,3) ∪ [3,5) ∪ [12,13) → 3 + 1.
        assert_eq!(out.span, dur(4.0));
        assert_eq!(out.schedule.start(JobId(0)), Some(t(2.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(3.0)));
    }

    #[test]
    fn broken_scheduler_is_force_started_with_violations() {
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, Broken);
        assert_eq!(out.violations.len(), 3);
        assert!(!out.is_feasible());
        // Force-start happens at each deadline, so spans match Lazy.
        assert_eq!(out.span, dur(4.0));
    }

    #[test]
    fn start_at_commitment_honored() {
        /// Commits each arrival to start at its deadline via start_at.
        struct Committer;
        impl OnlineScheduler for Committer {
            fn name(&self) -> String {
                "committer".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.start_at(job.id, job.deadline);
            }
            fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {
                unreachable!("ordered start should pre-empt the alarm");
            }
        }
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, Committer);
        assert!(out.is_feasible());
        assert_eq!(out.span, dur(4.0));
    }

    #[test]
    fn wakeups_fire_with_tokens() {
        /// Starts each job 0.5 after its arrival using a wakeup.
        struct Waker;
        impl OnlineScheduler for Waker {
            fn name(&self) -> String {
                "waker".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.wake_at(job.arrival + dur(0.5), u64::from(job.id.0));
            }
            fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
                ctx.start(id);
            }
            fn on_wakeup(&mut self, token: u64, ctx: &mut Ctx<'_>) {
                let id = JobId(token as u32);
                if ctx.is_pending(id) {
                    ctx.start(id);
                }
            }
        }
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, Waker);
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(0.5)));
        assert_eq!(out.schedule.start(JobId(2)), Some(t(10.5)));
    }

    #[test]
    fn non_clairvoyant_masks_lengths_until_completion() {
        struct Observer {
            saw_length_at_arrival: bool,
            completion_lengths: Vec<Dur>,
        }
        impl OnlineScheduler for Observer {
            fn name(&self) -> String {
                "observer".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                self.saw_length_at_arrival |= job.length.is_some();
                ctx.start(job.id);
            }
            fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
            fn on_completion(&mut self, _id: JobId, length: Dur, _ctx: &mut Ctx<'_>) {
                self.completion_lengths.push(length);
            }
        }
        let mut obs = Observer {
            saw_length_at_arrival: false,
            completion_lengths: vec![],
        };
        {
            let env = crate::sim::env::StaticEnv::new(&inst(), Clairvoyance::NonClairvoyant);
            let out = run_with_config(env, &mut obs, SimConfig::default());
            assert!(out.is_feasible());
        }
        assert!(!obs.saw_length_at_arrival);
        assert_eq!(obs.completion_lengths.len(), 3);
    }

    #[test]
    fn adaptive_lengths_via_probe() {
        /// Environment releasing one adaptive job and ruling length 2.0 one
        /// time unit after start (the Theorem 3.3 adversary's cadence).
        struct OneAdaptive {
            released: bool,
        }
        impl Environment for OneAdaptive {
            fn clairvoyance(&self) -> Clairvoyance {
                Clairvoyance::NonClairvoyant
            }
            fn next_release_time(&mut self, _world: &World) -> Option<Time> {
                (!self.released).then(|| t(1.0))
            }
            fn release_at(&mut self, _now: Time, _world: &World) -> Vec<JobSpec> {
                self.released = true;
                vec![JobSpec::adaptive(t(4.0))]
            }
            fn rule_length(
                &mut self,
                _id: JobId,
                started_at: Time,
                now: Time,
                _world: &World,
            ) -> LengthRuling {
                if now == started_at {
                    LengthRuling::AskAgainAt(started_at + dur(1.0))
                } else {
                    LengthRuling::Assign(dur(2.0))
                }
            }
        }
        let out = run(OneAdaptive { released: false }, EagerTest);
        assert!(out.is_feasible());
        assert_eq!(out.instance.job(JobId(0)).length(), dur(2.0));
        assert_eq!(out.schedule.start(JobId(0)), Some(t(1.0)));
        assert_eq!(out.span, dur(2.0));
    }

    #[test]
    fn outcome_instance_matches_release_order() {
        let source = Instance::new(vec![
            Job::adp(5.0, 6.0, 1.0), // released second
            Job::adp(0.0, 1.0, 2.0), // released first
        ]);
        let out = run_static(&source, Clairvoyance::Clairvoyant, EagerTest);
        assert_eq!(out.instance.job(JobId(0)).arrival(), t(0.0));
        assert_eq!(out.instance.job(JobId(1)).arrival(), t(5.0));
    }

    #[test]
    fn event_cap_yields_typed_termination_with_partial_schedule() {
        /// Wakes itself up forever.
        struct Spinner;
        impl OnlineScheduler for Spinner {
            fn name(&self) -> String {
                "spinner".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.start(job.id);
                ctx.wake_at(job.arrival + dur(1.0), 0);
            }
            fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
            fn on_wakeup(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
                ctx.wake_at(ctx.now() + dur(1.0), 0);
            }
        }
        let single = Instance::new(vec![Job::adp(0.0, 0.0, 1.0)]);
        let env = crate::sim::env::StaticEnv::new(&single, Clairvoyance::Clairvoyant);
        let out = run_with_config(
            env,
            Spinner,
            SimConfig {
                max_events: 100,
                ..SimConfig::default()
            },
        );
        assert_eq!(
            out.termination,
            Termination::EventCapExhausted { events: 100 }
        );
        assert!(!out.is_clean());
        // The partial schedule still carries everything that happened before
        // the cap: the one real job was started (and completed).
        assert_eq!(out.schedule.start(JobId(0)), Some(t(0.0)));
        assert_eq!(out.instance.len(), 1);
        assert!(out.unresolved.is_empty());
    }

    #[test]
    fn rejected_actions_are_dropped_and_job_force_started() {
        /// Issues a barrage of invalid actions, never a valid start.
        struct Hostile;
        impl OnlineScheduler for Hostile {
            fn name(&self) -> String {
                "hostile".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.start(JobId(999)); // never released
                ctx.start_at(job.id, job.deadline + dur(5.0)); // past deadline
                ctx.wake_at(job.arrival - dur(1.0), 7); // in the past
            }
            fn on_deadline(&mut self, id: JobId, _ctx: &mut Ctx<'_>) {
                let _ = id; // refuse to start
            }
        }
        let single = Instance::new(vec![Job::adp(1.0, 3.0, 2.0)]);
        let out = run_static(&single, Clairvoyance::Clairvoyant, Hostile);
        assert!(out.termination.is_completed(), "run absorbs the abuse");
        assert_eq!(out.rejected_actions.len(), 3);
        assert!(matches!(
            out.rejected_actions[0].fault,
            ActionFault::StartNonPending { id: JobId(999) }
        ));
        assert!(matches!(
            out.rejected_actions[1].fault,
            ActionFault::StartAtOutsideWindow { .. }
        ));
        assert!(matches!(
            out.rejected_actions[2].fault,
            ActionFault::WakeupInPast { .. }
        ));
        // The job was force-started at its deadline, so the schedule is
        // complete despite the scheduler never issuing a valid start.
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.schedule.start(JobId(0)), Some(t(3.0)));
        assert!(out.schedule.validate(&out.instance).is_ok());
    }

    #[test]
    fn duplicate_ordered_start_rejected_but_first_honored() {
        struct DoubleCommit;
        impl OnlineScheduler for DoubleCommit {
            fn name(&self) -> String {
                "double-commit".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.start_at(job.id, job.deadline);
                ctx.start_at(job.id, job.arrival); // duplicate → rejected
            }
            fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
        }
        let single = Instance::new(vec![Job::adp(0.0, 2.0, 1.0)]);
        let out = run_static(&single, Clairvoyance::Clairvoyant, DoubleCommit);
        assert!(out.termination.is_completed());
        assert_eq!(out.rejected_actions.len(), 1);
        assert!(matches!(
            out.rejected_actions[0].fault,
            ActionFault::DuplicateOrderedStart { id: JobId(0) }
        ));
        assert!(out.is_feasible(), "first commitment still honored");
        assert_eq!(out.schedule.start(JobId(0)), Some(t(2.0)));
    }

    #[test]
    fn environment_fault_terminates_with_partial_outcome() {
        /// Releases one good job, then one whose deadline precedes arrival.
        struct BadEnv {
            step: u8,
        }
        impl Environment for BadEnv {
            fn clairvoyance(&self) -> Clairvoyance {
                Clairvoyance::Clairvoyant
            }
            fn next_release_time(&mut self, _world: &World) -> Option<Time> {
                match self.step {
                    0 => Some(t(0.0)),
                    1 => Some(t(1.0)),
                    _ => None,
                }
            }
            fn release_at(&mut self, now: Time, _world: &World) -> Vec<JobSpec> {
                self.step += 1;
                match self.step {
                    1 => vec![JobSpec::fixed(now + dur(4.0), dur(1.0))],
                    _ => vec![JobSpec::fixed(now - dur(0.5), dur(1.0))],
                }
            }
        }
        let out = run(BadEnv { step: 0 }, EagerTest);
        assert!(matches!(
            out.termination,
            Termination::EnvironmentFault(EnvFault::DeadlineBeforeArrival { .. })
        ));
        assert!(!out.is_clean());
        // The first (legal) job made it into the partial outcome.
        assert!(!out.instance.is_empty());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(0.0)));
    }

    #[test]
    fn empty_instance_runs_to_empty_outcome() {
        let out = run_static(&Instance::empty(), Clairvoyance::Clairvoyant, EagerTest);
        assert!(out.is_feasible());
        assert_eq!(out.span, Dur::ZERO);
        assert_eq!(out.instance.len(), 0);
    }

    #[test]
    fn trace_records_full_lifecycle() {
        let single = Instance::new(vec![Job::adp(0.0, 2.0, 1.0)]);
        let env = crate::sim::env::StaticEnv::new(&single, Clairvoyance::Clairvoyant);
        let out = run_with_config(
            env,
            LazyTest,
            SimConfig {
                trace: TraceMode::Full,
                ..Default::default()
            },
        );
        use crate::sim::trace::TraceKind;
        let kinds: Vec<_> = out.trace.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Released {
                    id: JobId(0),
                    deadline: t(2.0)
                },
                TraceKind::Started { id: JobId(0) },
                TraceKind::Completed { id: JobId(0) },
            ]
        );
        assert_eq!(out.trace[1].time, t(2.0));
        assert_eq!(out.trace[2].time, t(3.0));
    }

    #[test]
    fn trace_empty_when_disabled() {
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, EagerTest);
        assert!(out.trace.is_empty());
    }

    #[test]
    fn ring_trace_keeps_newest_events_in_order() {
        let full = {
            let env = crate::sim::env::StaticEnv::new(&inst(), Clairvoyance::Clairvoyant);
            run_with_config(
                env,
                EagerTest,
                SimConfig {
                    trace: TraceMode::Full,
                    ..Default::default()
                },
            )
        };
        assert!(full.trace.len() > 4, "need enough events to wrap the ring");
        for n in [1, 4, full.trace.len(), full.trace.len() + 10] {
            let env = crate::sim::env::StaticEnv::new(&inst(), Clairvoyance::Clairvoyant);
            let ringed = run_with_config(
                env,
                EagerTest,
                SimConfig {
                    trace: TraceMode::Ring(n),
                    ..Default::default()
                },
            );
            let keep = full.trace.len().min(n);
            assert_eq!(
                ringed.trace,
                full.trace[full.trace.len() - keep..],
                "Ring({n}) must equal the chronological tail of the full trace"
            );
        }
    }

    #[test]
    fn ring_zero_records_nothing() {
        let env = crate::sim::env::StaticEnv::new(&inst(), Clairvoyance::Clairvoyant);
        let out = run_with_config(
            env,
            EagerTest,
            SimConfig {
                trace: TraceMode::Ring(0),
                ..Default::default()
            },
        );
        assert!(out.trace.is_empty());
    }

    #[test]
    fn run_stats_count_events_exactly() {
        // Eager on the 3-job instance: every event is accounted for.
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, EagerTest);
        let s = out.stats;
        assert_eq!(s.release_events, 3, "one release instant per arrival");
        assert_eq!(s.jobs_released, 3);
        assert_eq!(s.completions, 3);
        assert_eq!(s.jobs_completed, 3);
        assert_eq!(s.deadline_alarms, 3, "alarms fire even for started jobs");
        assert_eq!(s.ordered_starts, 0);
        assert_eq!(s.length_probes, 0);
        assert_eq!(s.wakeups, 0);
        assert_eq!(s.events_total, 9);
        assert!(s.is_consistent());
        assert_eq!(s.events_total, out.events_processed);
        // J0 and J1 overlap in time: alarm0 + completion0 + alarm1 +
        // completion1 are all queued at once before anything pops.
        assert_eq!(s.peak_queue, 4);
        assert_eq!(s.actions_applied, 3, "three StartNow actions");
        assert_eq!(s.actions_rejected, 0);
        assert_eq!(s.force_starts, 0);
        assert!(s.wall_total_s >= 0.0 && s.wall_total_s.is_finite());
        // Phase timing is off by default.
        assert_eq!(s.wall_scheduler_s, 0.0);
        assert_eq!(s.wall_environment_s, 0.0);
    }

    #[test]
    fn run_stats_track_force_starts_and_rejections() {
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, Broken);
        assert_eq!(out.stats.force_starts, 3);
        assert_eq!(out.stats.force_starts, out.violations.len());
        assert_eq!(out.stats.actions_applied, 0);
        assert_eq!(
            out.stats.jobs_completed, 3,
            "force-started jobs still complete"
        );
    }

    #[test]
    fn time_phases_populates_wall_splits_without_changing_counts() {
        let env = crate::sim::env::StaticEnv::new(&inst(), Clairvoyance::Clairvoyant);
        let timed = run_with_config(
            env,
            EagerTest,
            SimConfig {
                time_phases: true,
                ..SimConfig::default()
            },
        );
        let untimed = run_static(&inst(), Clairvoyance::Clairvoyant, EagerTest);
        // Same deterministic counters either way; only wall clocks differ.
        assert_eq!(
            {
                let mut s = timed.stats;
                s.wall_total_s = 0.0;
                s.wall_scheduler_s = 0.0;
                s.wall_environment_s = 0.0;
                s
            },
            {
                let mut s = untimed.stats;
                s.wall_total_s = 0.0;
                s
            },
        );
        assert!(timed.stats.wall_scheduler_s >= 0.0);
        assert!(timed.stats.wall_environment_s >= 0.0);
        assert!(timed.stats.wall_total_s >= timed.stats.wall_scheduler_s);
    }

    #[test]
    fn run_stats_count_wakeups_and_ordered_starts() {
        /// Commits each arrival to its deadline and also asks for a wakeup.
        struct CommitAndWake;
        impl OnlineScheduler for CommitAndWake {
            fn name(&self) -> String {
                "commit-and-wake".into()
            }
            fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
                ctx.start_at(job.id, job.deadline);
                ctx.wake_at(job.deadline, u64::from(job.id.0));
            }
            fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
        }
        let out = run_static(&inst(), Clairvoyance::Clairvoyant, CommitAndWake);
        assert!(out.is_feasible());
        assert_eq!(out.stats.ordered_starts, 3);
        assert_eq!(out.stats.wakeups, 3);
        assert_eq!(out.stats.actions_applied, 6, "3 start_at + 3 wake_at");
        assert!(out.stats.is_consistent());
    }

    #[test]
    fn simultaneous_deadline_alarms_after_batch_start() {
        /// Batch-like: on a deadline alarm, start every pending job.
        struct MiniBatch;
        impl OnlineScheduler for MiniBatch {
            fn name(&self) -> String {
                "mini-batch".into()
            }
            fn on_arrival(&mut self, _job: Arrival, _ctx: &mut Ctx<'_>) {}
            fn on_deadline(&mut self, _id: JobId, ctx: &mut Ctx<'_>) {
                let pending: Vec<JobId> = ctx.pending().collect();
                for id in pending {
                    ctx.start(id);
                }
            }
        }
        // Two jobs share a deadline; the first alarm starts both, the second
        // alarm must be a no-op.
        let two = Instance::new(vec![Job::adp(0.0, 2.0, 1.0), Job::adp(0.0, 2.0, 5.0)]);
        let out = run_static(&two, Clairvoyance::Clairvoyant, MiniBatch);
        assert!(out.is_feasible());
        assert_eq!(out.schedule.start(JobId(0)), Some(t(2.0)));
        assert_eq!(out.schedule.start(JobId(1)), Some(t(2.0)));
        assert_eq!(out.span, dur(5.0));
    }
}
