//! The online scheduler interface.
//!
//! A scheduler is a state machine driven by four callbacks: job arrival,
//! a pending job hitting its starting deadline, job completion, and
//! self-requested wakeups. All decisions flow through [`Ctx`], which exposes
//! a read view of the [`World`] (masking processing lengths in
//! non-clairvoyant runs) and collects start orders.

use crate::job::JobId;
use crate::sim::env::geometric_class;
use crate::sim::world::World;
use crate::time::{Dur, Time};

/// What a scheduler learns when a job arrives.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Arrival {
    /// The job's id (release order).
    pub id: JobId,
    /// Arrival time `a(J)` (equals the current time).
    pub arrival: Time,
    /// Starting deadline `d(J)`.
    pub deadline: Time,
    /// Processing length `p(J)` — `Some` iff the run is clairvoyant.
    pub length: Option<Dur>,
    /// Geometric length class `⌈log₂ p⌉` — `Some` iff the run reveals at
    /// least classes ([`crate::sim::Clairvoyance::reveals_class`]).
    pub length_class: Option<i64>,
}

impl Arrival {
    /// Laxity `d(J) − a(J)`.
    pub fn laxity(&self) -> Dur {
        self.deadline - self.arrival
    }
}

/// An action requested by the scheduler during a callback.
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum Action {
    StartNow(JobId),
    StartAt(JobId, Time),
    WakeAt(Time, u64),
}

/// Scheduler-facing view of the simulation plus an action sink.
///
/// Reads reflect the world *at callback entry*; actions requested during the
/// callback are applied by the engine after the callback returns, in order.
pub struct Ctx<'a> {
    world: &'a World,
    actions: Vec<Action>,
}

impl<'a> Ctx<'a> {
    /// Test-only convenience; the engine goes through [`Ctx::with_scratch`].
    #[cfg(test)]
    pub(crate) fn new(world: &'a World) -> Self {
        Ctx {
            world,
            actions: Vec::new(),
        }
    }

    /// Like [`Ctx::new`], but reusing a caller-owned action buffer so the
    /// engine's dispatch loop allocates once per run instead of once per
    /// callback. The buffer must be empty.
    pub(crate) fn with_scratch(world: &'a World, scratch: Vec<Action>) -> Self {
        debug_assert!(scratch.is_empty());
        Ctx {
            world,
            actions: scratch,
        }
    }

    pub(crate) fn into_actions(self) -> Vec<Action> {
        self.actions
    }

    /// Drains the actions requested so far, leaving the sink empty. Used by
    /// [`crate::faults::ChaosScheduler`] to intercept and perturb an inner
    /// scheduler's actions before the engine sees them.
    pub(crate) fn take_actions(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.world.now()
    }

    /// Whether lengths are revealed at arrival.
    pub fn is_clairvoyant(&self) -> bool {
        self.world.is_clairvoyant()
    }

    /// Starts a pending job immediately (at [`Ctx::now`]).
    pub fn start(&mut self, id: JobId) {
        self.actions.push(Action::StartNow(id));
    }

    /// Starts every currently pending job immediately, in id order.
    /// Equivalent to `for id in ctx.pending().collect::<Vec<_>>() {
    /// ctx.start(id) }` but without materializing the id list.
    pub fn start_all_pending(&mut self) {
        // `pending()` borrows the world immutably while `actions` is
        // disjoint, so the loop pushes directly into the sink.
        let world = self.world;
        for id in world.pending() {
            self.actions.push(Action::StartNow(id));
        }
    }

    /// Commits to starting a pending job at a future time `t` (engine
    /// validates `now <= t <= d(J)` when applying).
    pub fn start_at(&mut self, id: JobId, t: Time) {
        self.actions.push(Action::StartAt(id, t));
    }

    /// Requests an [`OnlineScheduler::on_wakeup`] callback at time `t`
    /// (`>= now`) carrying `token`.
    pub fn wake_at(&mut self, t: Time, token: u64) {
        self.actions.push(Action::WakeAt(t, token));
    }

    /// Ids of jobs that have arrived but not started, ascending.
    pub fn pending(&self) -> impl Iterator<Item = JobId> + '_ {
        self.world.pending()
    }

    /// Ids of currently running jobs, ascending.
    pub fn running(&self) -> impl Iterator<Item = JobId> + '_ {
        self.world.running()
    }

    /// Number of running jobs.
    pub fn num_running(&self) -> usize {
        self.world.num_running()
    }

    /// Number of pending jobs.
    pub fn num_pending(&self) -> usize {
        self.world.num_pending()
    }

    /// Whether a job is pending.
    pub fn is_pending(&self, id: JobId) -> bool {
        self.world.is_pending(id)
    }

    /// Arrival time of a released job.
    pub fn arrival_of(&self, id: JobId) -> Time {
        self.world.arrival_of(id)
    }

    /// Starting deadline of a released job.
    pub fn deadline_of(&self, id: JobId) -> Time {
        self.world.deadline_of(id)
    }

    /// Start time of a job, if it has started.
    pub fn start_of(&self, id: JobId) -> Option<Time> {
        self.world.start_of(id)
    }

    /// Processing length as visible to the scheduler: known for completed
    /// jobs always, and for released jobs iff the run is clairvoyant.
    pub fn length_of(&self, id: JobId) -> Option<Dur> {
        let len = self.world.length_of(id); // panics on unreleased ids, like job()
        if self.world.is_clairvoyant() || self.world.is_completed(id) {
            len
        } else {
            None
        }
    }

    /// Geometric length class `⌈log₂ p⌉` as visible to the scheduler:
    /// available for released jobs iff the run reveals classes, and always
    /// for completed jobs.
    pub fn length_class_of(&self, id: JobId) -> Option<i64> {
        let len = self.world.length_of(id); // panics on unreleased ids, like job()
        if self.world.clairvoyance().reveals_class() || self.world.is_completed(id) {
            len.map(|p| geometric_class(p, 2.0, 1.0))
        } else {
            None
        }
    }

    /// The pending job with the earliest starting deadline (ties broken by
    /// longer visible length, then smaller id — the Profit scheduler's flag
    /// selection rule; for length-blind schedulers ties fall through to id).
    pub fn earliest_deadline_pending(&self) -> Option<JobId> {
        self.pending().min_by(|&x, &y| {
            let dx = self.deadline_of(x);
            let dy = self.deadline_of(y);
            dx.cmp(&dy)
                .then_with(|| {
                    // Longer length first.
                    let lx = self.length_of(x).unwrap_or(Dur::ZERO);
                    let ly = self.length_of(y).unwrap_or(Dur::ZERO);
                    ly.cmp(&lx)
                })
                .then(x.cmp(&y))
        })
    }
}

/// An online scheduler for flexible job scheduling.
///
/// Contract: every job must be started (via [`Ctx::start`] or
/// [`Ctx::start_at`]) no later than its starting deadline. The engine calls
/// [`OnlineScheduler::on_deadline`] as a last-chance notification at `d(J)`
/// for each still-pending job; failing to start the job in that callback is
/// recorded as a feasibility violation (and the engine force-starts the job
/// to keep the run meaningful).
///
/// Everything a scheduler does is observable after the run: the engine
/// counts delivered callbacks, applied and rejected actions, and deadline
/// force-starts in [`RunStats`](crate::sim::RunStats), returned on every
/// [`SimOutcome`](crate::sim::SimOutcome).
pub trait OnlineScheduler {
    /// Human-readable name (used in reports).
    fn name(&self) -> String;

    /// A job has arrived.
    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>);

    /// A *pending* job has reached its starting deadline `d(J)`; it must be
    /// started now.
    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>);

    /// A job completed; its length is now revealed.
    fn on_completion(&mut self, id: JobId, length: Dur, ctx: &mut Ctx<'_>) {
        let _ = (id, length, ctx);
    }

    /// A wakeup requested via [`Ctx::wake_at`] fired.
    fn on_wakeup(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let _ = (token, ctx);
    }
}

impl<S: OnlineScheduler + ?Sized> OnlineScheduler for &mut S {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        (**self).on_arrival(job, ctx)
    }
    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        (**self).on_deadline(id, ctx)
    }
    fn on_completion(&mut self, id: JobId, length: Dur, ctx: &mut Ctx<'_>) {
        (**self).on_completion(id, length, ctx)
    }
    fn on_wakeup(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        (**self).on_wakeup(token, ctx)
    }
}

impl<S: OnlineScheduler + ?Sized> OnlineScheduler for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        (**self).on_arrival(job, ctx)
    }
    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        (**self).on_deadline(id, ctx)
    }
    fn on_completion(&mut self, id: JobId, length: Dur, ctx: &mut Ctx<'_>) {
        (**self).on_completion(id, length, ctx)
    }
    fn on_wakeup(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        (**self).on_wakeup(token, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{dur, t};

    #[test]
    fn ctx_collects_actions_in_order() {
        let world = World::new(crate::sim::env::Clairvoyance::Clairvoyant);
        let mut ctx = Ctx::new(&world);
        ctx.start(JobId(1));
        ctx.start_at(JobId(2), t(5.0));
        ctx.wake_at(t(9.0), 42);
        assert_eq!(
            ctx.into_actions(),
            vec![
                Action::StartNow(JobId(1)),
                Action::StartAt(JobId(2), t(5.0)),
                Action::WakeAt(t(9.0), 42),
            ]
        );
    }

    #[test]
    fn length_masked_when_non_clairvoyant() {
        let mut world = World::new(crate::sim::env::Clairvoyance::NonClairvoyant);
        let id = world.release(t(0.0), t(1.0), Some(dur(3.0)));
        {
            let ctx = Ctx::new(&world);
            assert_eq!(ctx.length_of(id), None, "hidden while pending");
        }
        world.mark_started(id, t(0.0));
        world.advance_to(t(3.0));
        world.mark_completed(id);
        let ctx = Ctx::new(&world);
        assert_eq!(ctx.length_of(id), Some(dur(3.0)), "revealed at completion");
    }

    #[test]
    fn length_visible_when_clairvoyant() {
        let mut world = World::new(crate::sim::env::Clairvoyance::Clairvoyant);
        let id = world.release(t(0.0), t(1.0), Some(dur(3.0)));
        let ctx = Ctx::new(&world);
        assert_eq!(ctx.length_of(id), Some(dur(3.0)));
    }

    #[test]
    fn earliest_deadline_pending_tie_breaks_by_length() {
        let mut world = World::new(crate::sim::env::Clairvoyance::Clairvoyant);
        let a = world.release(t(0.0), t(5.0), Some(dur(1.0)));
        let b = world.release(t(0.0), t(5.0), Some(dur(4.0)));
        let c = world.release(t(0.0), t(6.0), Some(dur(9.0)));
        let ctx = Ctx::new(&world);
        // Same deadline: longer job wins (Profit's flag rule).
        assert_eq!(ctx.earliest_deadline_pending(), Some(b));
        let _ = (a, c);
    }

    #[test]
    fn arrival_laxity() {
        let a = Arrival {
            id: JobId(0),
            arrival: t(1.0),
            deadline: t(4.0),
            length: None,
            length_class: None,
        };
        assert_eq!(a.laxity(), dur(3.0));
    }

    #[test]
    fn length_class_visibility() {
        use crate::sim::env::Clairvoyance;
        let mut world = World::new(Clairvoyance::ClassOnly);
        let id = world.release(t(0.0), t(1.0), Some(dur(3.0)));
        let ctx = Ctx::new(&world);
        assert_eq!(ctx.length_of(id), None, "exact length hidden");
        assert_eq!(
            ctx.length_class_of(id),
            Some(2),
            "class ⌈log₂ 3⌉ = 2 revealed"
        );

        let world_nc = {
            let mut w = World::new(Clairvoyance::NonClairvoyant);
            w.release(t(0.0), t(1.0), Some(dur(3.0)));
            w
        };
        let ctx = Ctx::new(&world_nc);
        assert_eq!(
            ctx.length_class_of(JobId(0)),
            None,
            "hidden non-clairvoyantly"
        );
    }
}
