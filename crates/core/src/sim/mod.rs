//! Event-driven online scheduling simulation.
//!
//! See [`engine`] for the run loop and event-ordering contract, [`mod@env`] for
//! job sources (including adaptive adversaries), [`sched`] for the scheduler
//! interface, [`world`] for the observable state, and [`mod@stats`] for the
//! [`RunStats`] counters every run accumulates.

pub(crate) mod arena;
pub(crate) mod calendar;
pub mod engine;
pub mod env;
#[cfg(feature = "legacy-engine")]
pub mod legacy;
pub mod sched;
pub mod stats;
pub mod trace;
pub mod world;

pub use engine::{
    run, run_static, run_with_config, ActionFault, EnvFault, RejectedAction, SimConfig, SimOutcome,
    Termination, Violation,
};
pub use env::{
    geometric_class, Clairvoyance, Environment, JobSpec, LengthRuling, LengthSpec, StaticEnv,
};
pub use sched::{Arrival, Ctx, OnlineScheduler};
pub use stats::RunStats;
pub use trace::{render_trace, TraceEvent, TraceKind, TraceMode};
pub use world::{JobRecord, JobStatus, World};
