//! The pre-arena reference engine, kept behind the `legacy-engine` feature.
//!
//! This is a verbatim snapshot of the drive loop as it stood before the
//! arena/calendar-queue/incremental-span rewrite: a `BinaryHeap<Reverse<_>>`
//! event queue and an end-of-run [`Schedule::span`] measurement. It runs
//! against the same [`World`], [`Environment`] and [`OnlineScheduler`]
//! types, so `tests/engine_equivalence.rs` can replay identical workloads
//! through both cores and assert bit-identical outcomes.
//!
//! Not compiled into release artifacts — only the equivalence suite enables
//! the feature. The event-ordering contract is documented in
//! [`engine`](crate::sim::engine) and is shared by construction: both cores
//! order by the same `(time, order, seq)` tuple.

use crate::job::JobId;
use crate::schedule::Schedule;
use crate::sim::engine::{
    ActionFault, EnvFault, Event, EventKind, RejectedAction, SimConfig, SimOutcome, Termination,
    Violation, RELEASE_ORDER,
};
use crate::sim::env::{Environment, JobSpec, LengthRuling, LengthSpec};
use crate::sim::sched::{Action, Arrival, Ctx, OnlineScheduler};
use crate::sim::stats::RunStats;
use crate::sim::trace::{TraceEvent, TraceKind, TraceMode};
use crate::sim::world::{JobStatus, World};
use crate::time::{Dur, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

enum DriveEnd {
    Drained,
    EventCap,
}

struct LegacyEngine<E, S> {
    world: World,
    env: E,
    sched: S,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    violations: Vec<Violation>,
    rejected: Vec<RejectedAction>,
    stats: RunStats,
    config: SimConfig,
    trace: Vec<TraceEvent>,
    trace_next: usize,
    scratch: Vec<Action>,
}

impl<E: Environment, S: OnlineScheduler> LegacyEngine<E, S> {
    fn record(&mut self, kind: TraceKind) {
        match self.config.trace {
            TraceMode::Off | TraceMode::Ring(0) => {}
            TraceMode::Full => self.trace.push(TraceEvent {
                time: self.world.now(),
                kind,
            }),
            TraceMode::Ring(n) => {
                let ev = TraceEvent {
                    time: self.world.now(),
                    kind,
                };
                if self.trace.len() < n {
                    self.trace.push(ev);
                } else {
                    self.trace[self.trace_next] = ev;
                    self.trace_next = (self.trace_next + 1) % n;
                }
            }
        }
    }

    fn push(&mut self, time: Time, kind: EventKind) {
        self.queue.push(Reverse(Event {
            time,
            order: kind.order(),
            seq: self.seq,
            kind,
        }));
        self.seq += 1;
        self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len());
    }

    fn reject(&mut self, fault: ActionFault) {
        self.stats.actions_rejected += 1;
        self.rejected.push(RejectedAction {
            at: self.world.now(),
            fault,
        });
    }

    fn phase_start(&self) -> Option<Instant> {
        self.config.time_phases.then(Instant::now)
    }

    fn phase_done(t0: Option<Instant>, acc: &mut f64) {
        if let Some(t0) = t0 {
            *acc += t0.elapsed().as_secs_f64();
        }
    }

    fn completion_time(&self, id: JobId, at: Time, p: Dur) -> Result<Time, EnvFault> {
        let raw = at.get() + p.get();
        if !raw.is_finite() {
            return Err(EnvFault::HorizonOverflow { id });
        }
        Ok(Time::new(raw))
    }

    fn start_job(&mut self, id: JobId, at: Time) -> Result<(), EnvFault> {
        debug_assert!(self.world.is_pending(id), "starting non-pending job {id}");
        let rec = self.world.job(id);
        debug_assert!(rec.arrival() <= at && at <= rec.deadline());
        let known = rec.length();
        self.world.mark_started(id, at);
        self.record(TraceKind::Started { id });
        match known {
            Some(p) => {
                let completion = self.completion_time(id, at, p)?;
                self.push(completion, EventKind::Completion(id));
            }
            None => {
                let t0 = self.phase_start();
                let ruling = self.env.rule_length(id, at, at, &self.world);
                Self::phase_done(t0, &mut self.stats.wall_environment_s);
                match ruling {
                    LengthRuling::Assign(p) => {
                        if !p.is_positive() {
                            return Err(EnvFault::RuledNonPositiveLength { id, length: p });
                        }
                        let completion = self.completion_time(id, at, p)?;
                        self.world.set_length(id, p);
                        self.record(TraceKind::LengthRuled { id, length: p });
                        self.push(completion, EventKind::Completion(id));
                    }
                    LengthRuling::AskAgainAt(t) => {
                        if t <= at {
                            return Err(EnvFault::ProbeNotDeferred { id, at: t });
                        }
                        self.push(t, EventKind::LengthProbe(id));
                    }
                }
            }
        }
        Ok(())
    }

    fn dispatch_callback(
        &mut self,
        call: impl FnOnce(&mut S, &mut Ctx<'_>),
    ) -> Result<(), EnvFault> {
        let mut ctx = Ctx::with_scratch(&self.world, std::mem::take(&mut self.scratch));
        let t0 = self.phase_start();
        call(&mut self.sched, &mut ctx);
        Self::phase_done(t0, &mut self.stats.wall_scheduler_s);
        let mut actions = ctx.into_actions();
        let applied = self.apply_actions(&mut actions);
        actions.clear();
        self.scratch = actions;
        applied
    }

    fn apply_actions(&mut self, actions: &mut Vec<Action>) -> Result<(), EnvFault> {
        for action in actions.drain(..) {
            match action {
                Action::StartNow(id) => {
                    let now = self.world.now();
                    if !self.world.is_pending(id) {
                        self.reject(ActionFault::StartNonPending { id });
                        continue;
                    }
                    let rec = self.world.job(id);
                    if now < rec.arrival() || now > rec.deadline() {
                        self.reject(ActionFault::StartOutsideWindow { id, at: now });
                        continue;
                    }
                    self.stats.actions_applied += 1;
                    self.start_job(id, now)?;
                }
                Action::StartAt(id, at) => {
                    let now = self.world.now();
                    if !self.world.is_pending(id) {
                        self.reject(ActionFault::StartNonPending { id });
                        continue;
                    }
                    let rec = self.world.job(id);
                    if rec.ordered_start().is_some() {
                        self.reject(ActionFault::DuplicateOrderedStart { id });
                        continue;
                    }
                    if at < now || at < rec.arrival() || at > rec.deadline() {
                        self.reject(ActionFault::StartAtOutsideWindow { id, at });
                        continue;
                    }
                    self.stats.actions_applied += 1;
                    self.world.set_ordered_start(id, at);
                    self.push(at, EventKind::OrderedStart(id));
                }
                Action::WakeAt(at, token) => {
                    if at < self.world.now() {
                        self.reject(ActionFault::WakeupInPast { at });
                        continue;
                    }
                    self.stats.actions_applied += 1;
                    self.push(at, EventKind::Wakeup(token));
                }
            }
        }
        Ok(())
    }

    fn dispatch_arrival(&mut self, arrival: Arrival) -> Result<(), EnvFault> {
        self.dispatch_callback(|sched, ctx| sched.on_arrival(arrival, ctx))
    }

    fn drive(&mut self) -> Result<DriveEnd, EnvFault> {
        loop {
            let queued = self.queue.peek().map(|Reverse(e)| (e.time, e.order));
            let t0 = self.phase_start();
            let next_release = self.env.next_release_time(&self.world);
            Self::phase_done(t0, &mut self.stats.wall_environment_s);
            let release = match next_release {
                Some(rt) if rt < self.world.now() => {
                    return Err(EnvFault::ReleaseInPast {
                        scheduled: rt,
                        now: self.world.now(),
                    })
                }
                Some(rt) => Some((rt, RELEASE_ORDER)),
                None => None,
            };
            let release_due = match (queued, release) {
                (None, None) => return Ok(DriveEnd::Drained),
                (None, Some((rt, _))) => Some(rt),
                (Some(_), None) => None,
                (Some(q), Some(r)) => (r < q).then_some(r.0),
            };

            if self.stats.events_total >= self.config.max_events {
                return Ok(DriveEnd::EventCap);
            }
            self.stats.events_total += 1;

            if let Some(now) = release_due {
                self.stats.release_events += 1;
                self.world.advance_to(now);
                let t0 = self.phase_start();
                let specs = self.env.release_at(now, &self.world);
                Self::phase_done(t0, &mut self.stats.wall_environment_s);
                let clairvoyance = self.world.clairvoyance();
                for JobSpec { deadline, length } in specs {
                    if deadline < now {
                        return Err(EnvFault::DeadlineBeforeArrival {
                            arrival: now,
                            deadline,
                        });
                    }
                    let fixed = match length {
                        LengthSpec::Fixed(p) => {
                            if !p.is_positive() {
                                return Err(EnvFault::NonPositiveLength { length: p });
                            }
                            Some(p)
                        }
                        LengthSpec::Adaptive => {
                            if clairvoyance.reveals_class() {
                                return Err(EnvFault::AdaptiveUnderClairvoyance);
                            }
                            None
                        }
                    };
                    let id = self.world.release(now, deadline, fixed);
                    self.stats.jobs_released += 1;
                    self.record(TraceKind::Released { id, deadline });
                    self.push(deadline, EventKind::DeadlineAlarm(id));
                    self.dispatch_arrival(Arrival {
                        id,
                        arrival: now,
                        deadline,
                        length: if clairvoyance.is_clairvoyant() {
                            fixed
                        } else {
                            None
                        },
                        length_class: if clairvoyance.reveals_class() {
                            fixed.map(|p| crate::sim::env::geometric_class(p, 2.0, 1.0))
                        } else {
                            None
                        },
                    })?;
                }
                continue;
            }

            let Some(Reverse(event)) = self.queue.pop() else {
                return Ok(DriveEnd::Drained);
            };
            self.world.advance_to(event.time);
            match event.kind {
                EventKind::Completion(id) => {
                    self.stats.completions += 1;
                    self.stats.jobs_completed += 1;
                    self.world.mark_completed(id);
                    self.record(TraceKind::Completed { id });
                    let Some(length) = self.world.job(id).length() else {
                        continue;
                    };
                    self.dispatch_callback(|sched, ctx| sched.on_completion(id, length, ctx))?;
                }
                EventKind::OrderedStart(id) => {
                    self.stats.ordered_starts += 1;
                    if self.world.is_pending(id) {
                        self.start_job(id, event.time)?;
                    }
                }
                EventKind::LengthProbe(id) => {
                    self.stats.length_probes += 1;
                    let Some(started_at) = self.world.job(id).start() else {
                        continue;
                    };
                    let t0 = self.phase_start();
                    let ruling = self
                        .env
                        .rule_length(id, started_at, event.time, &self.world);
                    Self::phase_done(t0, &mut self.stats.wall_environment_s);
                    match ruling {
                        LengthRuling::Assign(p) => {
                            if !p.is_positive() {
                                return Err(EnvFault::RuledNonPositiveLength { id, length: p });
                            }
                            let completion = self.completion_time(id, started_at, p)?;
                            if completion < event.time {
                                return Err(EnvFault::RulingInPast {
                                    id,
                                    completion,
                                    now: event.time,
                                });
                            }
                            self.world.set_length(id, p);
                            self.record(TraceKind::LengthRuled { id, length: p });
                            self.push(completion, EventKind::Completion(id));
                        }
                        LengthRuling::AskAgainAt(at) => {
                            if at <= event.time {
                                return Err(EnvFault::ProbeNotDeferred { id, at });
                            }
                            self.push(at, EventKind::LengthProbe(id));
                        }
                    }
                }
                EventKind::DeadlineAlarm(id) => {
                    self.stats.deadline_alarms += 1;
                    if !self.world.is_pending(id) {
                        continue;
                    }
                    if self.world.job(id).ordered_start().is_some() {
                        self.start_job(id, event.time)?;
                        continue;
                    }
                    self.dispatch_callback(|sched, ctx| sched.on_deadline(id, ctx))?;
                    if self.world.is_pending(id) && self.world.job(id).ordered_start().is_none() {
                        self.stats.force_starts += 1;
                        self.violations.push(Violation { id, at: event.time });
                        self.record(TraceKind::ForcedStart { id });
                        self.start_job(id, event.time)?;
                    }
                }
                EventKind::Wakeup(token) => {
                    self.stats.wakeups += 1;
                    self.record(TraceKind::Wakeup { token });
                    self.dispatch_callback(|sched, ctx| sched.on_wakeup(token, ctx))?;
                }
            }
        }
    }

    fn run(mut self) -> SimOutcome {
        let run_start = Instant::now();
        let drive_end = self.drive();
        self.stats.wall_total_s = run_start.elapsed().as_secs_f64();
        if let TraceMode::Ring(n) = self.config.trace {
            if n > 0 && self.trace.len() == n {
                self.trace.rotate_left(self.trace_next);
            }
        }
        let termination = match drive_end {
            Ok(DriveEnd::Drained) => Termination::Completed,
            Ok(DriveEnd::EventCap) => Termination::EventCapExhausted {
                events: self.stats.events_total,
            },
            Err(fault) => Termination::EnvironmentFault(fault),
        };

        if termination.is_completed() {
            debug_assert_eq!(self.world.num_running(), 0);
            debug_assert_eq!(self.world.num_pending(), 0);
        }

        let (instance, unresolved) = self.world.to_partial_instance();
        debug_assert!(unresolved.is_empty() || !termination.is_completed());
        let mut schedule = Schedule::with_len(instance.len());
        for (id, rec) in self.world.records() {
            match rec.status() {
                JobStatus::Completed { start, .. } | JobStatus::Running { start } => {
                    schedule.set_start(id, start);
                }
                JobStatus::Pending => {}
            }
        }
        let span = schedule.span(&instance);
        self.stats.peak_retained = self.world.peak_retained();
        self.stats.arena_slots = self.world.arena_slots();
        SimOutcome {
            instance,
            schedule,
            span,
            violations: self.violations,
            termination,
            rejected_actions: self.rejected,
            unresolved,
            events_processed: self.stats.events_total,
            stats: self.stats,
            trace: self.trace,
        }
    }
}

/// Runs `sched` against `env` on the pre-rewrite reference core.
pub fn run_legacy<E: Environment, S: OnlineScheduler>(env: E, sched: S) -> SimOutcome {
    run_with_config_legacy(env, sched, SimConfig::default())
}

/// Runs the reference core with explicit [`SimConfig`].
pub fn run_with_config_legacy<E: Environment, S: OnlineScheduler>(
    env: E,
    sched: S,
    config: SimConfig,
) -> SimOutcome {
    LegacyEngine {
        world: World::new(env.clairvoyance()),
        env,
        sched,
        queue: BinaryHeap::with_capacity(256.min(config.max_events)),
        seq: 0,
        violations: Vec::new(),
        rejected: Vec::new(),
        stats: RunStats::default(),
        config,
        trace: Vec::new(),
        trace_next: 0,
        scratch: Vec::new(),
    }
    .run()
}

/// Convenience: runs a scheduler on a static instance on the reference core.
pub fn run_static_legacy<S: OnlineScheduler>(
    inst: &crate::job::Instance,
    clairvoyance: crate::sim::env::Clairvoyance,
    sched: S,
) -> SimOutcome {
    let env = crate::sim::env::StaticEnv::new(inst, clairvoyance);
    run_legacy(env, sched)
}
