//! A bucketed calendar queue for simulation events.
//!
//! The engine pops events in `(time, kind-order, seq)` order. A binary heap
//! gives `O(log n)` per operation; simulation workloads are far friendlier
//! than arbitrary priority queues — events are overwhelmingly pushed for the
//! near future and popped in almost-sorted order — which is exactly the case
//! a *calendar queue* (Brown 1988) turns into `O(1)` amortized.
//!
//! Time is divided into equal-width *days*. A power-of-two ring of buckets
//! covers the `N` days starting at the current scan day `cur`; each queued
//! item lives in the bucket of its day, or in an unordered overflow list when
//! its day lies beyond the window. Every bucket is kept **sorted ascending
//! by the item's full `Ord`** behind a consumed-prefix `head` index: the
//! minimum is `items[head]`, pop is a single index bump, and — because
//! events pushed into one bucket overwhelmingly arrive in increasing order —
//! push is almost always a plain append (one compare against the bucket
//! maximum), falling back to a binary-searched insert only for out-of-order
//! arrivals. The engine's same-timestamp kind-order/FIFO tiebreak is the
//! tail of the item `Ord`, so it is preserved exactly.
//!
//! # Why pops come out in exact global order
//!
//! * `day(t) = ⌊(t − origin)/width⌋` is a monotone function of `t` (clamps
//!   included), so distinct days order times correctly and *equal times
//!   always share a day*.
//! * An item may be placed *later* than its day (it is clamped to `cur` when
//!   pushed for a day the scan already passed), never earlier. `cur` is
//!   non-decreasing between rebuilds and never advances past a non-empty
//!   bucket, so every bucket strictly before the first non-empty one is and
//!   stays empty, and any item in a strictly later bucket is unclamped —
//!   hence has a strictly later time than everything in the first non-empty
//!   bucket. Ties therefore only meet inside one bucket, where the sorted
//!   order (full `Ord`, ascending, min first) resolves them.
//! * Overflow items are folded back into the window before the scan ever
//!   accepts a bucket (`pull_overflow`), so no in-window pop can overtake an
//!   overflow item.
//!
//! Resizing (grow at `len > 2N`, shrink at `len < N/8`) rebuilds the
//! calendar with a fresh `origin`/`width` estimated from the queued items;
//! rebuilds re-place every item unclamped, so the invariants restart
//! cleanly. Pathological distributions only degrade speed, never order.

use crate::time::Time;

/// An item a [`CalendarQueue`] can schedule: carries its timestamp, and its
/// total `Ord` decides ties (the engine uses `(time, kind-order, seq)`).
pub(crate) trait CalendarEvent: Copy + Ord {
    /// The timestamp used for bucketing. Must agree with the leading key of
    /// the item's `Ord` (items with smaller `time()` compare smaller).
    fn time(&self) -> Time;
}

/// Days at or beyond this value are clamped (keeps `cur + N` far from
/// `u64` overflow while still being astronomically beyond any real day).
const DAY_CAP: u64 = u64::MAX / 2;

/// Smallest bucket count (power of two). Kept tiny so short runs — the
/// conformance decks and exhaustive sweeps are dominated by 2–8 job
/// instances — pay for a few cache lines of ring, not kilobytes; the queue
/// grows itself within a handful of pushes when a run turns out large.
const MIN_BUCKETS: usize = 4;

/// One calendar day: `items[head..]` is the live, ascending-sorted content;
/// `items[..head]` is the already-popped prefix, reclaimed in one `clear`
/// when the bucket drains. Keeping the prefix around makes pop a bare index
/// bump and keeps push on the append fast path.
struct Bucket<T> {
    items: Vec<T>,
    head: usize,
}

impl<T: CalendarEvent> Bucket<T> {
    fn new() -> Self {
        Bucket {
            items: Vec::new(),
            head: 0,
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.head == self.items.len()
    }

    /// The bucket minimum; callers guarantee non-emptiness.
    #[inline]
    fn min(&self) -> &T {
        &self.items[self.head]
    }

    /// Removes and returns the bucket minimum; callers guarantee
    /// non-emptiness.
    #[inline]
    fn pop_min(&mut self) -> T {
        let item = self.items[self.head];
        self.head += 1;
        if self.head == self.items.len() {
            self.items.clear();
            self.head = 0;
        }
        item
    }

    /// Inserts at the sorted (ascending) position within the live suffix.
    /// Item `Ord` is total and `seq` makes every engine event distinct, so
    /// the position is unambiguous and FIFO falls out of the seq key. The
    /// common case — the new item is `>=` the current bucket maximum — is a
    /// single compare and a push.
    fn insert(&mut self, item: T) {
        match self.items.last() {
            Some(max) if item < *max => {
                let live = &self.items[self.head..];
                let pos = self.head + live.partition_point(|x| *x < item);
                self.items.insert(pos, item);
            }
            _ => self.items.push(item),
        }
    }

    /// Copies the live items (ascending order) into `out` and empties the
    /// bucket.
    fn take_live_into(&mut self, out: &mut Vec<T>) {
        out.extend_from_slice(&self.items[self.head..]);
        self.items.clear();
        self.head = 0;
    }
}

/// A monotone priority queue over [`CalendarEvent`]s with `O(1)` amortized
/// push/pop on simulation-shaped workloads. "Monotone" is the engine's
/// contract: every push carries a timestamp `>=` the time of the last pop.
pub(crate) struct CalendarQueue<T> {
    /// `buckets[d & mask]` holds the items whose *effective* day is `d`,
    /// for the `N` days starting at `cur`.
    buckets: Vec<Bucket<T>>,
    /// `buckets.len() - 1`; the length is a power of two, so masking
    /// replaces the modulo in every ring lookup.
    mask: u64,
    /// Day zero starts at this time.
    origin: f64,
    /// Reciprocal of the day width (> 0, finite); days are computed by
    /// multiplication, which is monotone in `t` just like the division.
    inv_width: f64,
    /// Current scan day; buckets cover days `[cur, cur + N)`.
    cur: u64,
    /// Items whose day lies at or beyond `cur + N` (unordered).
    overflow: Vec<T>,
    /// Smallest day among `overflow` items; `u64::MAX` when empty, so the
    /// scan's single pull test needs no separate emptiness branch.
    overflow_min_day: u64,
    /// Items currently stored in `buckets`.
    in_window: usize,
    /// Total queued items.
    len: usize,
}

impl<T: CalendarEvent> CalendarQueue<T> {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let n = capacity.next_power_of_two().clamp(MIN_BUCKETS, 1 << 20);
        CalendarQueue {
            buckets: (0..n).map(|_| Bucket::new()).collect(),
            mask: n as u64 - 1,
            origin: 0.0,
            inv_width: 1.0,
            cur: 0,
            overflow: Vec::new(),
            overflow_min_day: u64::MAX,
            in_window: 0,
            len: 0,
        }
    }

    /// Restores the pristine `with_capacity` state while keeping the ring
    /// and every bucket's item allocation. The ring grows to cover
    /// `capacity` if it is currently smaller, and is kept as-is when
    /// larger — pop order is independent of the bucket count (the module
    /// docs' argument holds for any power-of-two ring), so a recycled
    /// queue is observably identical to a fresh one.
    pub(crate) fn reset(&mut self, capacity: usize) {
        let n = capacity.next_power_of_two().clamp(MIN_BUCKETS, 1 << 20);
        if n > self.buckets.len() {
            self.buckets.resize_with(n, Bucket::new);
            self.mask = n as u64 - 1;
        }
        for b in &mut self.buckets {
            b.items.clear();
            b.head = 0;
        }
        self.origin = 0.0;
        self.inv_width = 1.0;
        self.cur = 0;
        self.overflow.clear();
        self.overflow_min_day = u64::MAX;
        self.in_window = 0;
        self.len = 0;
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The day of a timestamp under the current `origin`/`inv_width`,
    /// clamped to `[0, DAY_CAP]`. Monotone in `t`.
    fn day_of(&self, t: Time) -> u64 {
        let d = (t.get() - self.origin) * self.inv_width;
        if d <= 0.0 {
            0
        } else if d >= DAY_CAP as f64 {
            DAY_CAP
        } else {
            d as u64 // truncation == floor for non-negative values
        }
    }

    /// Places an item into its bucket (clamped to the current scan day) or
    /// into overflow. Does not touch `len`.
    fn place(&mut self, item: T) {
        let day = self.day_of(item.time()).max(self.cur);
        if day - self.cur <= self.mask {
            self.buckets[(day & self.mask) as usize].insert(item);
            self.in_window += 1;
        } else {
            self.overflow_min_day = self.overflow_min_day.min(day);
            self.overflow.push(item);
        }
    }

    pub(crate) fn push(&mut self, item: T) {
        self.place(item);
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Moves every overflow item whose day has entered the window (or been
    /// passed by the scan) into its bucket, recomputing the overflow
    /// minimum for what remains.
    fn pull_overflow(&mut self) {
        let mut kept = Vec::with_capacity(self.overflow.len());
        let mut kept_min = u64::MAX;
        for item in std::mem::take(&mut self.overflow) {
            let day = self.day_of(item.time()).max(self.cur);
            if day - self.cur <= self.mask {
                self.buckets[(day & self.mask) as usize].insert(item);
                self.in_window += 1;
            } else {
                kept_min = kept_min.min(day);
                kept.push(item);
            }
        }
        self.overflow = kept;
        self.overflow_min_day = kept_min;
    }

    /// Advances `cur` to the first non-empty bucket (folding overflow in as
    /// the window slides) and returns its ring index; the bucket's `min()`
    /// is the queue minimum. `None` iff the queue is empty.
    fn find_min_bucket(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // Fast path: the scan day's bucket is already non-empty and nothing
        // in overflow has entered the window.
        let idx = (self.cur & self.mask) as usize;
        if !self.buckets[idx].is_empty()
            && self.overflow_min_day.saturating_sub(self.cur) > self.mask
        {
            return Some(idx);
        }
        loop {
            // `overflow_min_day` is `u64::MAX` when the overflow is empty,
            // and days are clamped to `DAY_CAP`, so the sentinel can never
            // satisfy this test — one compare covers both conditions.
            if self.overflow_min_day.saturating_sub(self.cur) <= self.mask {
                self.pull_overflow();
            }
            if self.in_window == 0 {
                // Everything lives beyond the window: jump the scan to the
                // earliest overflow day and fold it in on the next pass.
                self.cur = self.overflow_min_day;
                continue;
            }
            let idx = (self.cur & self.mask) as usize;
            if self.buckets[idx].is_empty() {
                self.cur += 1;
                continue;
            }
            return Some(idx);
        }
    }

    /// The minimum item, without removing it. Locating it may slide the
    /// window forward; a following [`CalendarQueue::pop`] finds the bucket
    /// already under the scan day, so the pair costs one scan.
    pub(crate) fn peek(&mut self) -> Option<&T> {
        let idx = self.find_min_bucket()?;
        Some(self.buckets[idx].min())
    }

    pub(crate) fn pop(&mut self) -> Option<T> {
        let idx = self.find_min_bucket()?;
        let item = Some(self.buckets[idx].pop_min());
        self.in_window -= 1;
        self.len -= 1;
        if self.len == 0 {
            // Fresh incarnation: nothing queued, so the scan may rewind to
            // keep future day numbers small.
            self.cur = 0;
        } else if self.len < self.buckets.len() / 8 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
        item
    }

    /// Rebuilds with `n` buckets, re-estimating `origin` and `width` from
    /// the queued items and re-placing everything unclamped.
    fn rebuild(&mut self, n: usize) {
        let mut items: Vec<T> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            b.take_live_into(&mut items);
        }
        items.append(&mut self.overflow);
        if self.buckets.len() != n {
            self.buckets = (0..n).map(|_| Bucket::new()).collect();
            self.mask = n as u64 - 1;
        }
        self.in_window = 0;
        self.overflow_min_day = u64::MAX;
        if items.is_empty() {
            self.cur = 0;
            return;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for item in &items {
            let t = item.time().get();
            lo = lo.min(t);
            hi = hi.max(t);
        }
        let width = (hi - lo) / items.len() as f64;
        // Both the width and its reciprocal must stay finite and positive
        // (a subnormal width would turn the reciprocal infinite).
        self.inv_width = if width.is_finite() && width > 0.0 && (1.0 / width).is_finite() {
            1.0 / width
        } else {
            1.0
        };
        self.origin = lo;
        self.cur = 0; // day_of(lo) == 0 under the new origin
        for item in items {
            self.place(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::t;
    use fjs_prng::check::forall_seeded;
    use fjs_prng::SmallRng;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// A stand-in for the engine's event: `(time, kind-order, seq)` with the
    /// engine's exact `Ord`.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Ev {
        time: Time,
        order: u8,
        seq: u64,
    }

    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.order, self.seq).cmp(&(other.time, other.order, other.seq))
        }
    }

    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl CalendarEvent for Ev {
        fn time(&self) -> Time {
            self.time
        }
    }

    /// Drives the calendar queue and a `BinaryHeap` reference through an
    /// identical monotone push/pop schedule and asserts every popped item
    /// matches. `spread` scales how far ahead pushes land (large values
    /// exercise the overflow list); `burst` controls push-run lengths
    /// (large values cross grow boundaries, draining crosses shrink
    /// boundaries).
    fn differential_run(rng: &mut SmallRng, spread: f64, burst: usize, grid: Option<f64>) {
        let mut cal = CalendarQueue::with_capacity(4);
        let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0.0f64;
        for _ in 0..rng.usize_range(4, 40) {
            for _ in 0..rng.usize_range(1, burst) {
                let mut dt = rng.f64_unit() * spread;
                if let Some(g) = grid {
                    dt = (dt / g).round() * g; // land many pushes on shared instants
                }
                let ev = Ev {
                    time: t(now + dt),
                    order: rng.u64_below(6) as u8,
                    seq,
                };
                seq += 1;
                cal.push(ev);
                heap.push(Reverse(ev));
            }
            for _ in 0..rng.usize_range(0, burst) {
                assert_eq!(cal.peek().copied(), heap.peek().map(|Reverse(e)| *e));
                let (a, b) = (cal.pop(), heap.pop().map(|Reverse(e)| e));
                assert_eq!(a, b, "pop order diverged from the heap reference");
                assert_eq!(cal.len(), heap.len());
                if let Some(e) = a {
                    now = e.time.get(); // monotone contract: pushes are >= last pop
                }
            }
        }
        // Drain both completely: the tail (shrink boundaries included) must
        // also agree.
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(cal.pop(), Some(want));
        }
        assert!(cal.is_empty());
        assert_eq!(cal.pop(), None);
        assert_eq!(cal.peek(), None);
    }

    #[test]
    fn prop_pop_order_matches_heap_dense() {
        forall_seeded(0xca1e_0001, 64, |rng| {
            differential_run(rng, 8.0, 12, None);
        });
    }

    #[test]
    fn prop_pop_order_matches_heap_tied_timestamps() {
        // A coarse grid forces many exact timestamp collisions, so the pop
        // order is decided by the (order, seq) kind/FIFO tiebreak.
        forall_seeded(0xca1e_0002, 64, |rng| {
            differential_run(rng, 4.0, 10, Some(1.0));
        });
    }

    #[test]
    fn prop_pop_order_matches_heap_far_future_overflow() {
        // Pushes land up to 1e9 time units ahead while width starts at 1.0:
        // nearly everything routes through the overflow list and is folded
        // back in as the window slides.
        forall_seeded(0xca1e_0003, 48, |rng| {
            differential_run(rng, 1.0e9, 8, None);
        });
    }

    #[test]
    fn prop_pop_order_matches_heap_resize_boundaries() {
        // Bursts far larger than MIN_BUCKETS force repeated grows; the full
        // drains at the end walk back down through the shrink threshold.
        forall_seeded(0xca1e_0004, 32, |rng| {
            differential_run(rng, 16.0, 200, Some(0.25));
        });
    }

    #[test]
    fn fifo_among_equal_events() {
        let mut cal = CalendarQueue::with_capacity(4);
        for seq in 0..10 {
            cal.push(Ev {
                time: t(5.0),
                order: 3,
                seq,
            });
        }
        for seq in 0..10 {
            assert_eq!(cal.pop().unwrap().seq, seq);
        }
    }

    #[test]
    fn kind_order_beats_sequence_at_equal_times() {
        let mut cal = CalendarQueue::with_capacity(4);
        cal.push(Ev {
            time: t(1.0),
            order: 5,
            seq: 0,
        });
        cal.push(Ev {
            time: t(1.0),
            order: 0,
            seq: 1,
        });
        assert_eq!(cal.pop().unwrap().order, 0, "kind order wins the tie");
        assert_eq!(cal.pop().unwrap().order, 5);
    }

    #[test]
    fn peek_then_push_then_pop_stays_correct() {
        // A push that introduces a new minimum into the bucket the last peek
        // located must be observed by the following pop.
        let mut cal = CalendarQueue::with_capacity(4);
        cal.push(Ev {
            time: t(2.0),
            order: 4,
            seq: 0,
        });
        assert_eq!(cal.peek().unwrap().seq, 0);
        cal.push(Ev {
            time: t(2.0),
            order: 0,
            seq: 1,
        });
        assert_eq!(cal.pop().unwrap().seq, 1);
        assert_eq!(cal.pop().unwrap().seq, 0);
    }

    #[test]
    fn zero_width_time_span_falls_back_to_unit_width() {
        // All items at one instant: the rebuild width estimate is 0 and must
        // fall back without dividing the world into zero-width days.
        let mut cal = CalendarQueue::with_capacity(4);
        for seq in 0..200 {
            cal.push(Ev {
                time: t(7.0),
                order: 2,
                seq,
            });
        }
        for seq in 0..200 {
            assert_eq!(cal.pop().unwrap().seq, seq);
        }
    }
}
