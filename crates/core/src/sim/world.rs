//! The observable simulation state.
//!
//! [`World`] is the single source of truth for job status during a run. The
//! engine mutates it; schedulers and environments read it (environments see
//! everything, schedulers go through [`crate::sim::Ctx`], which masks
//! lengths in non-clairvoyant runs).
//!
//! Storage is the flat structure-of-arrays `JobArena` (the crate-private
//! `sim::arena` module):
//! dense ids map to recycled slots through a front-compactable deque, the
//! pending/running sets are intrusive linked lists with O(1) removal, and
//! reads materialize a by-value [`JobRecord`] on demand.

use crate::job::{Instance, Job, JobId};
use crate::sim::arena::{JobArena, ListId, STATE_COMPLETED, STATE_PENDING, STATE_RUNNING};
use crate::sim::env::Clairvoyance;
use crate::time::{Dur, Time};

/// Lifecycle of a job inside a simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum JobStatus {
    /// Arrived, not yet started.
    Pending,
    /// Started at the given time, still running.
    Running {
        /// Start time chosen by the scheduler.
        start: Time,
    },
    /// Finished.
    Completed {
        /// Start time chosen by the scheduler.
        start: Time,
        /// Final processing length.
        length: Dur,
    },
}

/// Per-job record, materialized by value from the arena columns.
#[derive(Clone, Copy, Debug)]
pub struct JobRecord {
    pub(crate) arrival: Time,
    pub(crate) deadline: Time,
    /// Length as known to the *engine* (None while an adaptive length is
    /// still unruled).
    pub(crate) length: Option<Dur>,
    pub(crate) status: JobStatus,
    /// Start time the scheduler committed to via `start_at`, if any.
    pub(crate) ordered_start: Option<Time>,
}

impl JobRecord {
    /// Arrival time `a(J)`.
    pub fn arrival(&self) -> Time {
        self.arrival
    }

    /// Starting deadline `d(J)`.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The length, if decided (fixed at release, or ruled after start).
    pub fn length(&self) -> Option<Dur> {
        self.length
    }

    /// Current lifecycle status.
    pub fn status(&self) -> JobStatus {
        self.status
    }

    /// Start time, if the job has started.
    pub fn start(&self) -> Option<Time> {
        match self.status {
            JobStatus::Pending => None,
            JobStatus::Running { start } | JobStatus::Completed { start, .. } => Some(start),
        }
    }

    /// A future start committed via `Ctx::start_at`, if pending with one.
    pub fn ordered_start(&self) -> Option<Time> {
        self.ordered_start
    }
}

/// The full simulation state (see module docs).
#[derive(Clone, Debug)]
pub struct World {
    clairvoyance: Clairvoyance,
    now: Time,
    arena: JobArena,
}

impl World {
    /// Fresh world at time zero.
    pub fn new(clairvoyance: Clairvoyance) -> Self {
        World {
            clairvoyance,
            now: Time::ZERO,
            arena: JobArena::new(),
        }
    }

    /// Restores the pristine `new(clairvoyance)` state while keeping the
    /// arena's allocations (see [`JobArena::reset`]); the engine's scratch
    /// pool recycles worlds across runs through this.
    pub(crate) fn reset(&mut self, clairvoyance: Clairvoyance) {
        self.clairvoyance = clairvoyance;
        self.now = Time::ZERO;
        self.arena.reset();
    }

    /// Records of column capacity a recycled world keeps parked.
    pub(crate) fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// The information model of this run.
    pub fn clairvoyance(&self) -> Clairvoyance {
        self.clairvoyance
    }

    /// Whether this run reveals full lengths at arrival.
    pub fn is_clairvoyant(&self) -> bool {
        self.clairvoyance.is_clairvoyant()
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of jobs released so far (the next release gets this id).
    pub fn num_jobs(&self) -> usize {
        self.arena.num_jobs()
    }

    /// Number of job records still materialized (jobs released minus jobs
    /// compacted away). This is what bounds resident memory.
    pub fn num_retained(&self) -> usize {
        self.arena.num_retained()
    }

    /// High-water mark of [`World::num_retained`] over the run — the
    /// arena-resident memory gate reported in
    /// [`RunStats::peak_retained`](crate::sim::RunStats::peak_retained).
    pub fn peak_retained(&self) -> usize {
        self.arena.peak_retained()
    }

    /// Total arena slots ever allocated (recycled slots count once); the
    /// columns' memory footprint.
    pub fn arena_slots(&self) -> usize {
        self.arena.slots_allocated()
    }

    /// Number of leading completed records dropped by prefix compaction
    /// (`compact_completed_prefix`). Retained records cover ids
    /// `[compacted, num_jobs)`. Always 0 for batch-engine runs.
    pub fn compacted(&self) -> usize {
        self.arena.compacted()
    }

    /// The record for a job, materialized by value.
    ///
    /// # Panics
    /// Panics if the id has not been released, or if its record was
    /// compacted away.
    #[inline]
    #[track_caller]
    pub fn job(&self, id: JobId) -> JobRecord {
        self.record(self.arena.slot(id))
    }

    fn record(&self, slot: u32) -> JobRecord {
        let status = match self.arena.state(slot) {
            STATE_PENDING => JobStatus::Pending,
            STATE_RUNNING => match self.arena.start(slot) {
                Some(start) => JobStatus::Running { start },
                None => unreachable!("running job has a start"),
            },
            STATE_COMPLETED => match (self.arena.start(slot), self.arena.length(slot)) {
                (Some(start), Some(length)) => JobStatus::Completed { start, length },
                _ => unreachable!("completed job has a start and a ruled length"),
            },
            state => unreachable!("free slot {slot} (state {state}) reached via an id"),
        };
        JobRecord {
            arrival: self.arena.arrival(slot),
            deadline: self.arena.deadline(slot),
            length: self.arena.length(slot),
            status,
            ordered_start: self.arena.ordered_start(slot),
        }
    }

    /// All *retained* jobs as `(id, record)` in id (= release) order. For
    /// batch runs (no compaction) this is simply every released job.
    pub fn records(&self) -> impl Iterator<Item = (JobId, JobRecord)> + '_ {
        self.arena
            .retained()
            .map(|(id, slot)| (id, self.record(slot)))
    }

    /// `(id, start)` for every retained job, in id order — the lean column
    /// read behind end-of-run schedule assembly (`start` is `Some` iff the
    /// job started, exactly the Running/Completed statuses).
    pub(crate) fn starts(&self) -> impl Iterator<Item = (JobId, Option<Time>)> + '_ {
        self.arena
            .retained()
            .map(|(id, slot)| (id, self.arena.start(slot)))
    }

    /// Ids of jobs that have arrived but not started, ascending.
    pub fn pending(&self) -> impl Iterator<Item = JobId> + '_ {
        self.arena.list_ids(ListId::Pending)
    }

    /// Ids of currently running jobs, ascending.
    pub fn running(&self) -> impl Iterator<Item = JobId> + '_ {
        self.arena.list_ids(ListId::Running)
    }

    /// Number of pending jobs.
    pub fn num_pending(&self) -> usize {
        self.arena.num_pending()
    }

    /// Number of running jobs (the instantaneous *concurrency*).
    pub fn num_running(&self) -> usize {
        self.arena.num_running()
    }

    /// Whether the id refers to a pending job.
    pub fn is_pending(&self, id: JobId) -> bool {
        self.arena
            .try_slot(id)
            .is_some_and(|slot| self.arena.state(slot) == STATE_PENDING)
    }

    /// Whether the id refers to a running job.
    pub fn is_running(&self, id: JobId) -> bool {
        self.arena
            .try_slot(id)
            .is_some_and(|slot| self.arena.state(slot) == STATE_RUNNING)
    }

    /// Whether the id refers to a completed job.
    pub fn is_completed(&self, id: JobId) -> bool {
        self.arena
            .try_slot(id)
            .is_some_and(|slot| self.arena.state(slot) == STATE_COMPLETED)
    }

    // ---- single-column accessors (hot paths) -------------------------
    //
    // These read one or two arena columns without materializing a full
    // [`JobRecord`]; the engine's per-event handlers rarely need more than
    // one field, and the record's three `Option` decodes plus the status
    // match are measurable at deck scale. Same panics as [`World::job`].

    /// Arrival time `a(J)` of a released job.
    #[inline]
    #[track_caller]
    pub fn arrival_of(&self, id: JobId) -> Time {
        self.arena.arrival(self.arena.slot(id))
    }

    /// Starting deadline `d(J)` of a released job.
    #[inline]
    #[track_caller]
    pub fn deadline_of(&self, id: JobId) -> Time {
        self.arena.deadline(self.arena.slot(id))
    }

    /// `(arrival, deadline)` of a released job with one id lookup.
    #[inline]
    #[track_caller]
    pub fn window_of(&self, id: JobId) -> (Time, Time) {
        let slot = self.arena.slot(id);
        (self.arena.arrival(slot), self.arena.deadline(slot))
    }

    /// The job's length as known to the *engine* (`None` while an adaptive
    /// length is unruled). Unlike `Ctx`, this does not mask clairvoyance.
    #[inline]
    #[track_caller]
    pub fn length_of(&self, id: JobId) -> Option<Dur> {
        self.arena.length(self.arena.slot(id))
    }

    /// Start time, if the job has started.
    #[inline]
    #[track_caller]
    pub fn start_of(&self, id: JobId) -> Option<Time> {
        self.arena.start(self.arena.slot(id))
    }

    /// A future start committed via `Ctx::start_at`, if any.
    #[inline]
    #[track_caller]
    pub fn ordered_start_of(&self, id: JobId) -> Option<Time> {
        self.arena.ordered_start(self.arena.slot(id))
    }

    // ---- engine-internal mutators ------------------------------------

    /// Pre-sizes the arena for `n` more releases (capacity hint only).
    pub(crate) fn reserve_jobs(&mut self, n: usize) {
        self.arena.reserve(n);
    }

    pub(crate) fn advance_to(&mut self, t: Time) {
        debug_assert!(t >= self.now, "time went backwards: {} -> {}", self.now, t);
        self.now = t;
    }

    pub(crate) fn release(&mut self, arrival: Time, deadline: Time, length: Option<Dur>) -> JobId {
        self.arena.release(arrival, deadline, length)
    }

    pub(crate) fn mark_started(&mut self, id: JobId, start: Time) {
        self.arena.mark_started(self.arena.slot(id), start);
    }

    pub(crate) fn set_length(&mut self, id: JobId, length: Dur) {
        self.arena.set_length(self.arena.slot(id), length);
    }

    pub(crate) fn set_ordered_start(&mut self, id: JobId, t: Time) {
        self.arena.set_ordered_start(self.arena.slot(id), t);
    }

    pub(crate) fn mark_completed(&mut self, id: JobId) {
        self.arena.mark_completed(self.arena.slot(id), id);
    }

    /// Drops the leading run of completed records so resident memory stays
    /// proportional to the jobs still in flight, returning how many records
    /// were dropped.
    ///
    /// Only compacts when the completed prefix is at least half of the
    /// retained records, so the cost amortizes to O(1) per job while memory
    /// stays within 2x of the live set; freed slots are recycled through the
    /// arena free list. Pending/running lists are unaffected: a completed
    /// job is in neither, and surviving ids keep their values.
    pub(crate) fn compact_completed_prefix(&mut self) -> usize {
        self.arena.compact_completed_prefix()
    }

    /// Materializes the final state as a static [`Instance`] (requires every
    /// job's length to be known, which holds at the end of a completed run).
    ///
    /// # Panics
    /// Panics if any job's length is still unruled; use
    /// [`World::to_partial_instance`] for aborted runs.
    pub fn to_instance(&self) -> Instance {
        let (inst, unresolved) = self.to_partial_instance();
        if let Some(&id) = unresolved.first() {
            panic!("length of {id} still unruled at end of run");
        }
        inst
    }

    /// Materializes the state as a static [`Instance`] even when some
    /// adaptive lengths were never ruled (a run aborted by an event cap or
    /// an environment fault). Jobs without a ruled length get a placeholder:
    /// the time they have been observed running (for running jobs), or the
    /// smallest positive duration (for jobs that never started). The second
    /// return value lists the ids whose lengths are placeholders.
    ///
    /// Covers *retained* records only; after compaction (resident services)
    /// the instance holds the tail of the history and unresolved ids are
    /// world ids (offset by [`World::compacted`]).
    pub fn to_partial_instance(&self) -> (Instance, Vec<JobId>) {
        let mut unresolved = Vec::new();
        let inst = self
            .arena
            .retained()
            .map(|(id, slot)| {
                let length = match self.arena.length(slot) {
                    Some(p) => p,
                    None => {
                        unresolved.push(id);
                        let elapsed = match (self.arena.state(slot), self.arena.start(slot)) {
                            (STATE_RUNNING, Some(start)) => self.now - start,
                            _ => Dur::ZERO,
                        };
                        elapsed.max(Dur::new(f64::MIN_POSITIVE))
                    }
                };
                Job::new(self.arena.arrival(slot), self.arena.deadline(slot), length)
            })
            .collect();
        (inst, unresolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{dur, t};

    #[test]
    fn lifecycle_bookkeeping() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        assert_eq!(w.num_jobs(), 0);
        let a = w.release(t(0.0), t(2.0), Some(dur(1.0)));
        let b = w.release(t(0.0), t(3.0), None);
        assert_eq!((a, b), (JobId(0), JobId(1)));
        assert_eq!(w.num_pending(), 2);
        assert_eq!(w.num_running(), 0);
        assert!(w.is_pending(a));

        w.advance_to(t(1.0));
        w.mark_started(a, t(1.0));
        assert!(w.is_running(a));
        assert!(!w.is_pending(a));
        assert_eq!(w.num_running(), 1);
        assert_eq!(w.job(a).start(), Some(t(1.0)));

        w.advance_to(t(2.0));
        w.mark_completed(a);
        assert_eq!(w.num_running(), 0);
        assert_eq!(
            w.job(a).status(),
            JobStatus::Completed {
                start: t(1.0),
                length: dur(1.0)
            }
        );

        w.mark_started(b, t(2.0));
        w.set_length(b, dur(0.5));
        w.mark_completed(b);
        let inst = w.to_instance();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.job(JobId(1)).length(), dur(0.5));
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn completing_pending_job_panics() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        let a = w.release(t(0.0), t(2.0), Some(dur(1.0)));
        w.mark_completed(a);
    }

    #[test]
    fn partial_instance_substitutes_unruled_lengths() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        let a = w.release(t(0.0), t(2.0), Some(dur(1.0)));
        let b = w.release(t(0.0), t(3.0), None); // adaptive, never ruled
        let c = w.release(t(0.0), t(9.0), None); // adaptive, started
        w.mark_started(a, t(0.0));
        w.mark_started(c, t(1.0));
        w.advance_to(t(4.0));
        let (inst, unresolved) = w.to_partial_instance();
        assert_eq!(inst.len(), 3);
        assert_eq!(unresolved, vec![b, c]);
        assert_eq!(inst.job(a).length(), dur(1.0));
        // Running job: observed elapsed time is the best lower bound.
        assert_eq!(inst.job(c).length(), dur(3.0));
        assert!(inst.job(b).length().is_positive());
    }

    #[test]
    #[should_panic(expected = "still unruled")]
    fn to_instance_rejects_unruled_lengths() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        w.release(t(0.0), t(2.0), None);
        let _ = w.to_instance();
    }

    #[test]
    fn compaction_retires_completed_prefix_and_preserves_ids() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let ids: Vec<JobId> = (0..6)
            .map(|i| w.release(t(i as f64), t(i as f64 + 5.0), Some(dur(1.0))))
            .collect();
        // Complete the first four; the last two stay pending.
        for &id in &ids[..4] {
            w.mark_started(id, w.job(id).arrival());
            w.mark_completed(id);
        }
        assert_eq!(w.compact_completed_prefix(), 4);
        assert_eq!(w.compacted(), 4);
        assert_eq!(w.num_jobs(), 6, "released count is unchanged");
        assert_eq!(w.num_retained(), 2);
        // Surviving ids keep their values and records.
        assert_eq!(w.job(ids[4]).arrival(), t(4.0));
        assert!(w.is_pending(ids[5]));
        // New releases continue the global id sequence.
        let next = w.release(t(9.0), t(12.0), Some(dur(1.0)));
        assert_eq!(next, JobId(6));
        assert_eq!(w.job(next).deadline(), t(12.0));
    }

    #[test]
    fn compaction_waits_for_a_majority_prefix() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let ids: Vec<JobId> = (0..5)
            .map(|_| w.release(t(0.0), t(9.0), Some(dur(1.0))))
            .collect();
        w.mark_started(ids[0], t(0.0));
        w.mark_completed(ids[0]);
        // 1 of 5 completed: below the half threshold, nothing moves.
        assert_eq!(w.compact_completed_prefix(), 0);
        assert_eq!(w.compacted(), 0);
        for &id in &ids[1..3] {
            w.mark_started(id, t(0.0));
            w.mark_completed(id);
        }
        // 3 of 5: compacts the whole completed prefix at once.
        assert_eq!(w.compact_completed_prefix(), 3);
        assert_eq!(w.num_retained(), 2);
    }

    #[test]
    #[should_panic(expected = "compacted away")]
    fn compacted_id_lookup_panics() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let a = w.release(t(0.0), t(5.0), Some(dur(1.0)));
        let _b = w.release(t(0.0), t(5.0), Some(dur(1.0)));
        w.mark_started(a, t(0.0));
        w.mark_completed(a);
        w.compact_completed_prefix();
        let _ = w.job(a);
    }

    #[test]
    fn ordered_start_roundtrip() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let a = w.release(t(0.0), t(5.0), Some(dur(1.0)));
        assert_eq!(w.job(a).ordered_start(), None);
        w.set_ordered_start(a, t(3.0));
        assert_eq!(w.job(a).ordered_start(), Some(t(3.0)));
        w.mark_started(a, t(3.0));
        assert_eq!(w.job(a).ordered_start(), None, "cleared on start");
    }

    #[test]
    fn memory_counters_expose_arena_state() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let ids: Vec<JobId> = (0..4)
            .map(|_| w.release(t(0.0), t(9.0), Some(dur(1.0))))
            .collect();
        assert_eq!(w.peak_retained(), 4);
        assert_eq!(w.arena_slots(), 4);
        for &id in &ids {
            w.mark_started(id, t(0.0));
            w.mark_completed(id);
        }
        w.compact_completed_prefix();
        // Recycled slots: footprint does not grow on re-release.
        w.release(t(1.0), t(9.0), Some(dur(1.0)));
        assert_eq!(w.arena_slots(), 4);
        assert_eq!(w.peak_retained(), 4);
        assert_eq!(w.num_retained(), 1);
    }
}
