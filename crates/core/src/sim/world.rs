//! The observable simulation state.
//!
//! [`World`] is the single source of truth for job status during a run. The
//! engine mutates it; schedulers and environments read it (environments see
//! everything, schedulers go through [`crate::sim::Ctx`], which masks
//! lengths in non-clairvoyant runs).

use crate::job::{Instance, Job, JobId};
use crate::sim::env::Clairvoyance;
use crate::time::{Dur, Time};

/// Lifecycle of a job inside a simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum JobStatus {
    /// Arrived, not yet started.
    Pending,
    /// Started at the given time, still running.
    Running {
        /// Start time chosen by the scheduler.
        start: Time,
    },
    /// Finished.
    Completed {
        /// Start time chosen by the scheduler.
        start: Time,
        /// Final processing length.
        length: Dur,
    },
}

/// Per-job record.
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub(crate) arrival: Time,
    pub(crate) deadline: Time,
    /// Length as known to the *engine* (None while an adaptive length is
    /// still unruled).
    pub(crate) length: Option<Dur>,
    pub(crate) status: JobStatus,
    /// Start time the scheduler committed to via `start_at`, if any.
    pub(crate) ordered_start: Option<Time>,
}

impl JobRecord {
    /// Arrival time `a(J)`.
    pub fn arrival(&self) -> Time {
        self.arrival
    }

    /// Starting deadline `d(J)`.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The length, if decided (fixed at release, or ruled after start).
    pub fn length(&self) -> Option<Dur> {
        self.length
    }

    /// Current lifecycle status.
    pub fn status(&self) -> JobStatus {
        self.status
    }

    /// Start time, if the job has started.
    pub fn start(&self) -> Option<Time> {
        match self.status {
            JobStatus::Pending => None,
            JobStatus::Running { start } | JobStatus::Completed { start, .. } => Some(start),
        }
    }

    /// A future start committed via `Ctx::start_at`, if pending with one.
    pub fn ordered_start(&self) -> Option<Time> {
        self.ordered_start
    }
}

/// The full simulation state (see module docs).
#[derive(Clone, Debug)]
pub struct World {
    clairvoyance: Clairvoyance,
    now: Time,
    jobs: Vec<JobRecord>,
    /// Sorted ascending; deck-sized runs make a flat vector cheaper than a
    /// tree (releases arrive in id order, so inserts are pushes).
    pending: Vec<JobId>,
    /// Sorted ascending (starts may interleave, so inserts keep order).
    running: Vec<JobId>,
}

impl World {
    /// Fresh world at time zero.
    pub fn new(clairvoyance: Clairvoyance) -> Self {
        World {
            clairvoyance,
            now: Time::ZERO,
            jobs: Vec::new(),
            pending: Vec::new(),
            running: Vec::new(),
        }
    }

    /// The information model of this run.
    pub fn clairvoyance(&self) -> Clairvoyance {
        self.clairvoyance
    }

    /// Whether this run reveals full lengths at arrival.
    pub fn is_clairvoyant(&self) -> bool {
        self.clairvoyance.is_clairvoyant()
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of jobs released so far (the next release gets this id).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The record for a job.
    ///
    /// # Panics
    /// Panics if the id has not been released.
    #[track_caller]
    pub fn job(&self, id: JobId) -> &JobRecord {
        &self.jobs[id.index()]
    }

    /// All released jobs in id (= release) order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Ids of jobs that have arrived but not started, ascending.
    pub fn pending(&self) -> impl Iterator<Item = JobId> + '_ {
        self.pending.iter().copied()
    }

    /// Ids of currently running jobs, ascending.
    pub fn running(&self) -> impl Iterator<Item = JobId> + '_ {
        self.running.iter().copied()
    }

    /// Number of pending jobs.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Number of running jobs (the instantaneous *concurrency*).
    pub fn num_running(&self) -> usize {
        self.running.len()
    }

    /// Whether the id refers to a pending job.
    pub fn is_pending(&self, id: JobId) -> bool {
        self.pending.binary_search(&id).is_ok()
    }

    /// Whether the id refers to a running job.
    pub fn is_running(&self, id: JobId) -> bool {
        self.running.binary_search(&id).is_ok()
    }

    // ---- engine-internal mutators ------------------------------------

    pub(crate) fn advance_to(&mut self, t: Time) {
        debug_assert!(t >= self.now, "time went backwards: {} -> {}", self.now, t);
        self.now = t;
    }

    pub(crate) fn release(&mut self, arrival: Time, deadline: Time, length: Option<Dur>) -> JobId {
        let id = JobId(self.jobs.len() as u32);
        self.jobs.push(JobRecord {
            arrival,
            deadline,
            length,
            status: JobStatus::Pending,
            ordered_start: None,
        });
        // Ids are consecutive, so each release is the new maximum.
        self.pending.push(id);
        id
    }

    pub(crate) fn mark_started(&mut self, id: JobId, start: Time) {
        let rec = &mut self.jobs[id.index()];
        debug_assert!(matches!(rec.status, JobStatus::Pending));
        rec.status = JobStatus::Running { start };
        rec.ordered_start = None;
        if let Ok(i) = self.pending.binary_search(&id) {
            self.pending.remove(i);
        }
        if let Err(i) = self.running.binary_search(&id) {
            self.running.insert(i, id);
        }
    }

    pub(crate) fn set_length(&mut self, id: JobId, length: Dur) {
        let rec = &mut self.jobs[id.index()];
        debug_assert!(rec.length.is_none());
        rec.length = Some(length);
    }

    pub(crate) fn set_ordered_start(&mut self, id: JobId, t: Time) {
        self.jobs[id.index()].ordered_start = Some(t);
    }

    pub(crate) fn mark_completed(&mut self, id: JobId) {
        let rec = &mut self.jobs[id.index()];
        let JobStatus::Running { start } = rec.status else {
            panic!("completing a job that is not running: {id}");
        };
        let Some(length) = rec.length else {
            panic!("completed job {id} must have a ruled length");
        };
        rec.status = JobStatus::Completed { start, length };
        if let Ok(i) = self.running.binary_search(&id) {
            self.running.remove(i);
        }
    }

    /// Materializes the final state as a static [`Instance`] (requires every
    /// job's length to be known, which holds at the end of a completed run).
    ///
    /// # Panics
    /// Panics if any job's length is still unruled; use
    /// [`World::to_partial_instance`] for aborted runs.
    pub fn to_instance(&self) -> Instance {
        let (inst, unresolved) = self.to_partial_instance();
        if let Some(&id) = unresolved.first() {
            panic!("length of {id} still unruled at end of run");
        }
        inst
    }

    /// Materializes the state as a static [`Instance`] even when some
    /// adaptive lengths were never ruled (a run aborted by an event cap or
    /// an environment fault). Jobs without a ruled length get a placeholder:
    /// the time they have been observed running (for running jobs), or the
    /// smallest positive duration (for jobs that never started). The second
    /// return value lists the ids whose lengths are placeholders.
    pub fn to_partial_instance(&self) -> (Instance, Vec<JobId>) {
        let mut unresolved = Vec::new();
        let inst = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let length = match r.length {
                    Some(p) => p,
                    None => {
                        unresolved.push(JobId(i as u32));
                        let elapsed = match r.status {
                            JobStatus::Running { start } => self.now - start,
                            _ => Dur::ZERO,
                        };
                        elapsed.max(Dur::new(f64::MIN_POSITIVE))
                    }
                };
                Job::new(r.arrival, r.deadline, length)
            })
            .collect();
        (inst, unresolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{dur, t};

    #[test]
    fn lifecycle_bookkeeping() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        assert_eq!(w.num_jobs(), 0);
        let a = w.release(t(0.0), t(2.0), Some(dur(1.0)));
        let b = w.release(t(0.0), t(3.0), None);
        assert_eq!((a, b), (JobId(0), JobId(1)));
        assert_eq!(w.num_pending(), 2);
        assert_eq!(w.num_running(), 0);
        assert!(w.is_pending(a));

        w.advance_to(t(1.0));
        w.mark_started(a, t(1.0));
        assert!(w.is_running(a));
        assert!(!w.is_pending(a));
        assert_eq!(w.num_running(), 1);
        assert_eq!(w.job(a).start(), Some(t(1.0)));

        w.advance_to(t(2.0));
        w.mark_completed(a);
        assert_eq!(w.num_running(), 0);
        assert_eq!(
            w.job(a).status(),
            JobStatus::Completed {
                start: t(1.0),
                length: dur(1.0)
            }
        );

        w.mark_started(b, t(2.0));
        w.set_length(b, dur(0.5));
        w.mark_completed(b);
        let inst = w.to_instance();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.job(JobId(1)).length(), dur(0.5));
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn completing_pending_job_panics() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        let a = w.release(t(0.0), t(2.0), Some(dur(1.0)));
        w.mark_completed(a);
    }

    #[test]
    fn partial_instance_substitutes_unruled_lengths() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        let a = w.release(t(0.0), t(2.0), Some(dur(1.0)));
        let b = w.release(t(0.0), t(3.0), None); // adaptive, never ruled
        let c = w.release(t(0.0), t(9.0), None); // adaptive, started
        w.mark_started(a, t(0.0));
        w.mark_started(c, t(1.0));
        w.advance_to(t(4.0));
        let (inst, unresolved) = w.to_partial_instance();
        assert_eq!(inst.len(), 3);
        assert_eq!(unresolved, vec![b, c]);
        assert_eq!(inst.job(a).length(), dur(1.0));
        // Running job: observed elapsed time is the best lower bound.
        assert_eq!(inst.job(c).length(), dur(3.0));
        assert!(inst.job(b).length().is_positive());
    }

    #[test]
    #[should_panic(expected = "still unruled")]
    fn to_instance_rejects_unruled_lengths() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        w.release(t(0.0), t(2.0), None);
        let _ = w.to_instance();
    }

    #[test]
    fn ordered_start_roundtrip() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let a = w.release(t(0.0), t(5.0), Some(dur(1.0)));
        assert_eq!(w.job(a).ordered_start(), None);
        w.set_ordered_start(a, t(3.0));
        assert_eq!(w.job(a).ordered_start(), Some(t(3.0)));
        w.mark_started(a, t(3.0));
        assert_eq!(w.job(a).ordered_start(), None, "cleared on start");
    }
}
