//! The observable simulation state.
//!
//! [`World`] is the single source of truth for job status during a run. The
//! engine mutates it; schedulers and environments read it (environments see
//! everything, schedulers go through [`crate::sim::Ctx`], which masks
//! lengths in non-clairvoyant runs).

use crate::job::{Instance, Job, JobId};
use crate::sim::env::Clairvoyance;
use crate::time::{Dur, Time};

/// Lifecycle of a job inside a simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum JobStatus {
    /// Arrived, not yet started.
    Pending,
    /// Started at the given time, still running.
    Running {
        /// Start time chosen by the scheduler.
        start: Time,
    },
    /// Finished.
    Completed {
        /// Start time chosen by the scheduler.
        start: Time,
        /// Final processing length.
        length: Dur,
    },
}

/// Per-job record.
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub(crate) arrival: Time,
    pub(crate) deadline: Time,
    /// Length as known to the *engine* (None while an adaptive length is
    /// still unruled).
    pub(crate) length: Option<Dur>,
    pub(crate) status: JobStatus,
    /// Start time the scheduler committed to via `start_at`, if any.
    pub(crate) ordered_start: Option<Time>,
}

impl JobRecord {
    /// Arrival time `a(J)`.
    pub fn arrival(&self) -> Time {
        self.arrival
    }

    /// Starting deadline `d(J)`.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The length, if decided (fixed at release, or ruled after start).
    pub fn length(&self) -> Option<Dur> {
        self.length
    }

    /// Current lifecycle status.
    pub fn status(&self) -> JobStatus {
        self.status
    }

    /// Start time, if the job has started.
    pub fn start(&self) -> Option<Time> {
        match self.status {
            JobStatus::Pending => None,
            JobStatus::Running { start } | JobStatus::Completed { start, .. } => Some(start),
        }
    }

    /// A future start committed via `Ctx::start_at`, if pending with one.
    pub fn ordered_start(&self) -> Option<Time> {
        self.ordered_start
    }
}

/// The full simulation state (see module docs).
#[derive(Clone, Debug)]
pub struct World {
    clairvoyance: Clairvoyance,
    now: Time,
    /// Records for ids `[compacted, compacted + jobs.len())`; earlier ids
    /// were completed and compacted away (resident services only — the
    /// batch engine never compacts, so its base stays 0).
    jobs: Vec<JobRecord>,
    /// Number of leading completed records dropped by
    /// [`World::compact_completed_prefix`]; the id of `jobs[0]`.
    compacted: u32,
    /// Sorted ascending; deck-sized runs make a flat vector cheaper than a
    /// tree (releases arrive in id order, so inserts are pushes).
    pending: Vec<JobId>,
    /// Sorted ascending (starts may interleave, so inserts keep order).
    running: Vec<JobId>,
}

impl World {
    /// Fresh world at time zero.
    pub fn new(clairvoyance: Clairvoyance) -> Self {
        World {
            clairvoyance,
            now: Time::ZERO,
            jobs: Vec::new(),
            compacted: 0,
            pending: Vec::new(),
            running: Vec::new(),
        }
    }

    /// Index of `id` into the retained record vector.
    ///
    /// # Panics
    /// Panics if the id was compacted away — a long-lived consumer (e.g. a
    /// scheduler inside a resident session) asked about ancient history the
    /// world no longer materializes.
    #[track_caller]
    fn idx(&self, id: JobId) -> usize {
        let base = self.compacted as usize;
        assert!(
            id.index() >= base,
            "job {id} was completed and compacted away"
        );
        id.index() - base
    }

    /// The information model of this run.
    pub fn clairvoyance(&self) -> Clairvoyance {
        self.clairvoyance
    }

    /// Whether this run reveals full lengths at arrival.
    pub fn is_clairvoyant(&self) -> bool {
        self.clairvoyance.is_clairvoyant()
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of jobs released so far (the next release gets this id).
    pub fn num_jobs(&self) -> usize {
        self.compacted as usize + self.jobs.len()
    }

    /// Number of job records still materialized (jobs released minus jobs
    /// compacted away). This is what bounds resident memory.
    pub fn num_retained(&self) -> usize {
        self.jobs.len()
    }

    /// Number of leading completed records dropped by prefix compaction
    /// (`compact_completed_prefix`). Retained records cover ids
    /// `[compacted, num_jobs)`. Always 0 for batch-engine runs.
    pub fn compacted(&self) -> usize {
        self.compacted as usize
    }

    /// The record for a job.
    ///
    /// # Panics
    /// Panics if the id has not been released, or if its record was
    /// compacted away.
    #[track_caller]
    pub fn job(&self, id: JobId) -> &JobRecord {
        &self.jobs[self.idx(id)]
    }

    /// All *retained* jobs in id (= release) order; `jobs()[i]` is the
    /// record of id `compacted() + i`. For batch runs (no compaction) this
    /// is simply every released job.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Ids of jobs that have arrived but not started, ascending.
    pub fn pending(&self) -> impl Iterator<Item = JobId> + '_ {
        self.pending.iter().copied()
    }

    /// Ids of currently running jobs, ascending.
    pub fn running(&self) -> impl Iterator<Item = JobId> + '_ {
        self.running.iter().copied()
    }

    /// Number of pending jobs.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Number of running jobs (the instantaneous *concurrency*).
    pub fn num_running(&self) -> usize {
        self.running.len()
    }

    /// Whether the id refers to a pending job.
    pub fn is_pending(&self, id: JobId) -> bool {
        self.pending.binary_search(&id).is_ok()
    }

    /// Whether the id refers to a running job.
    pub fn is_running(&self, id: JobId) -> bool {
        self.running.binary_search(&id).is_ok()
    }

    // ---- engine-internal mutators ------------------------------------

    pub(crate) fn advance_to(&mut self, t: Time) {
        debug_assert!(t >= self.now, "time went backwards: {} -> {}", self.now, t);
        self.now = t;
    }

    pub(crate) fn release(&mut self, arrival: Time, deadline: Time, length: Option<Dur>) -> JobId {
        let id = JobId(self.compacted + self.jobs.len() as u32);
        self.jobs.push(JobRecord {
            arrival,
            deadline,
            length,
            status: JobStatus::Pending,
            ordered_start: None,
        });
        // Ids are consecutive, so each release is the new maximum.
        self.pending.push(id);
        id
    }

    pub(crate) fn mark_started(&mut self, id: JobId, start: Time) {
        let i = self.idx(id);
        let rec = &mut self.jobs[i];
        debug_assert!(matches!(rec.status, JobStatus::Pending));
        rec.status = JobStatus::Running { start };
        rec.ordered_start = None;
        if let Ok(i) = self.pending.binary_search(&id) {
            self.pending.remove(i);
        }
        if let Err(i) = self.running.binary_search(&id) {
            self.running.insert(i, id);
        }
    }

    pub(crate) fn set_length(&mut self, id: JobId, length: Dur) {
        let i = self.idx(id);
        let rec = &mut self.jobs[i];
        debug_assert!(rec.length.is_none());
        rec.length = Some(length);
    }

    pub(crate) fn set_ordered_start(&mut self, id: JobId, t: Time) {
        let i = self.idx(id);
        self.jobs[i].ordered_start = Some(t);
    }

    pub(crate) fn mark_completed(&mut self, id: JobId) {
        let i = self.idx(id);
        let rec = &mut self.jobs[i];
        let JobStatus::Running { start } = rec.status else {
            panic!("completing a job that is not running: {id}");
        };
        let Some(length) = rec.length else {
            panic!("completed job {id} must have a ruled length");
        };
        rec.status = JobStatus::Completed { start, length };
        if let Ok(i) = self.running.binary_search(&id) {
            self.running.remove(i);
        }
    }

    /// Drops the leading run of completed records so resident memory stays
    /// proportional to the jobs still in flight, returning how many records
    /// were dropped.
    ///
    /// Only compacts when the completed prefix is at least half of the
    /// retained records, so the `Vec::drain` shift amortizes to O(1) per
    /// job while memory stays within 2x of the live set. Pending/running
    /// indices are unaffected: a completed job is in neither list, and
    /// surviving ids keep their values (`compacted` becomes the new base).
    pub(crate) fn compact_completed_prefix(&mut self) -> usize {
        let drop = self
            .jobs
            .iter()
            .take_while(|r| matches!(r.status, JobStatus::Completed { .. }))
            .count();
        if drop == 0 || drop * 2 < self.jobs.len() {
            return 0;
        }
        self.jobs.drain(..drop);
        self.compacted += drop as u32;
        drop
    }

    /// Materializes the final state as a static [`Instance`] (requires every
    /// job's length to be known, which holds at the end of a completed run).
    ///
    /// # Panics
    /// Panics if any job's length is still unruled; use
    /// [`World::to_partial_instance`] for aborted runs.
    pub fn to_instance(&self) -> Instance {
        let (inst, unresolved) = self.to_partial_instance();
        if let Some(&id) = unresolved.first() {
            panic!("length of {id} still unruled at end of run");
        }
        inst
    }

    /// Materializes the state as a static [`Instance`] even when some
    /// adaptive lengths were never ruled (a run aborted by an event cap or
    /// an environment fault). Jobs without a ruled length get a placeholder:
    /// the time they have been observed running (for running jobs), or the
    /// smallest positive duration (for jobs that never started). The second
    /// return value lists the ids whose lengths are placeholders.
    ///
    /// Covers *retained* records only; after compaction (resident services)
    /// the instance holds the tail of the history and unresolved ids are
    /// world ids (offset by [`World::compacted`]).
    pub fn to_partial_instance(&self) -> (Instance, Vec<JobId>) {
        let mut unresolved = Vec::new();
        let inst = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let length = match r.length {
                    Some(p) => p,
                    None => {
                        unresolved.push(JobId(self.compacted + i as u32));
                        let elapsed = match r.status {
                            JobStatus::Running { start } => self.now - start,
                            _ => Dur::ZERO,
                        };
                        elapsed.max(Dur::new(f64::MIN_POSITIVE))
                    }
                };
                Job::new(r.arrival, r.deadline, length)
            })
            .collect();
        (inst, unresolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{dur, t};

    #[test]
    fn lifecycle_bookkeeping() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        assert_eq!(w.num_jobs(), 0);
        let a = w.release(t(0.0), t(2.0), Some(dur(1.0)));
        let b = w.release(t(0.0), t(3.0), None);
        assert_eq!((a, b), (JobId(0), JobId(1)));
        assert_eq!(w.num_pending(), 2);
        assert_eq!(w.num_running(), 0);
        assert!(w.is_pending(a));

        w.advance_to(t(1.0));
        w.mark_started(a, t(1.0));
        assert!(w.is_running(a));
        assert!(!w.is_pending(a));
        assert_eq!(w.num_running(), 1);
        assert_eq!(w.job(a).start(), Some(t(1.0)));

        w.advance_to(t(2.0));
        w.mark_completed(a);
        assert_eq!(w.num_running(), 0);
        assert_eq!(
            w.job(a).status(),
            JobStatus::Completed {
                start: t(1.0),
                length: dur(1.0)
            }
        );

        w.mark_started(b, t(2.0));
        w.set_length(b, dur(0.5));
        w.mark_completed(b);
        let inst = w.to_instance();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.job(JobId(1)).length(), dur(0.5));
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn completing_pending_job_panics() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        let a = w.release(t(0.0), t(2.0), Some(dur(1.0)));
        w.mark_completed(a);
    }

    #[test]
    fn partial_instance_substitutes_unruled_lengths() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        let a = w.release(t(0.0), t(2.0), Some(dur(1.0)));
        let b = w.release(t(0.0), t(3.0), None); // adaptive, never ruled
        let c = w.release(t(0.0), t(9.0), None); // adaptive, started
        w.mark_started(a, t(0.0));
        w.mark_started(c, t(1.0));
        w.advance_to(t(4.0));
        let (inst, unresolved) = w.to_partial_instance();
        assert_eq!(inst.len(), 3);
        assert_eq!(unresolved, vec![b, c]);
        assert_eq!(inst.job(a).length(), dur(1.0));
        // Running job: observed elapsed time is the best lower bound.
        assert_eq!(inst.job(c).length(), dur(3.0));
        assert!(inst.job(b).length().is_positive());
    }

    #[test]
    #[should_panic(expected = "still unruled")]
    fn to_instance_rejects_unruled_lengths() {
        let mut w = World::new(Clairvoyance::NonClairvoyant);
        w.release(t(0.0), t(2.0), None);
        let _ = w.to_instance();
    }

    #[test]
    fn compaction_retires_completed_prefix_and_preserves_ids() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let ids: Vec<JobId> = (0..6)
            .map(|i| w.release(t(i as f64), t(i as f64 + 5.0), Some(dur(1.0))))
            .collect();
        // Complete the first four; the last two stay pending.
        for &id in &ids[..4] {
            w.mark_started(id, w.job(id).arrival());
            w.mark_completed(id);
        }
        assert_eq!(w.compact_completed_prefix(), 4);
        assert_eq!(w.compacted(), 4);
        assert_eq!(w.num_jobs(), 6, "released count is unchanged");
        assert_eq!(w.num_retained(), 2);
        // Surviving ids keep their values and records.
        assert_eq!(w.job(ids[4]).arrival(), t(4.0));
        assert!(w.is_pending(ids[5]));
        // New releases continue the global id sequence.
        let next = w.release(t(9.0), t(12.0), Some(dur(1.0)));
        assert_eq!(next, JobId(6));
        assert_eq!(w.job(next).deadline(), t(12.0));
    }

    #[test]
    fn compaction_waits_for_a_majority_prefix() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let ids: Vec<JobId> = (0..5)
            .map(|_| w.release(t(0.0), t(9.0), Some(dur(1.0))))
            .collect();
        w.mark_started(ids[0], t(0.0));
        w.mark_completed(ids[0]);
        // 1 of 5 completed: below the half threshold, nothing moves.
        assert_eq!(w.compact_completed_prefix(), 0);
        assert_eq!(w.compacted(), 0);
        for &id in &ids[1..3] {
            w.mark_started(id, t(0.0));
            w.mark_completed(id);
        }
        // 3 of 5: compacts the whole completed prefix at once.
        assert_eq!(w.compact_completed_prefix(), 3);
        assert_eq!(w.num_retained(), 2);
    }

    #[test]
    #[should_panic(expected = "compacted away")]
    fn compacted_id_lookup_panics() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let a = w.release(t(0.0), t(5.0), Some(dur(1.0)));
        let _b = w.release(t(0.0), t(5.0), Some(dur(1.0)));
        w.mark_started(a, t(0.0));
        w.mark_completed(a);
        w.compact_completed_prefix();
        let _ = w.job(a);
    }

    #[test]
    fn ordered_start_roundtrip() {
        let mut w = World::new(Clairvoyance::Clairvoyant);
        let a = w.release(t(0.0), t(5.0), Some(dur(1.0)));
        assert_eq!(w.job(a).ordered_start(), None);
        w.set_ordered_start(a, t(3.0));
        assert_eq!(w.job(a).ordered_start(), Some(t(3.0)));
        w.mark_started(a, t(3.0));
        assert_eq!(w.job(a).ordered_start(), None, "cleared on start");
    }
}
