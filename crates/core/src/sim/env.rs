//! Environments: where jobs (and their processing lengths) come from.
//!
//! The paper's lower-bound proofs (Theorems 3.3 and 4.1) use *adaptive
//! adversaries*: the job release process and even the processing lengths
//! react to the online scheduler's decisions. The [`Environment`] trait is
//! general enough to express both adversaries and ordinary static instances:
//!
//! * releases are pulled lazily ([`Environment::next_release_time`] /
//!   [`Environment::release_at`]), so an adversary may decide *whether* and
//!   *when* to release more jobs based on everything that has happened;
//! * a job's length may be `Adaptive`, in which case the environment is
//!   consulted when the job starts and may defer the decision to a later
//!   time ([`LengthRuling::AskAgainAt`]) — exactly how the Theorem 3.3
//!   adversary assigns each length one time unit after the start.

use crate::job::{Instance, JobId};
use crate::sim::world::World;
use crate::time::{Dur, Time};

/// How much the scheduler learns about `p(J)` at arrival.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Clairvoyance {
    /// Lengths revealed at arrival (Section 4 of the paper).
    Clairvoyant,
    /// Lengths revealed only at completion (Section 3).
    NonClairvoyant,
    /// Only the geometric **length class** `⌈log₂ p⌉` is revealed at
    /// arrival (a semi-clairvoyant extension: `O(log μ)` bits of
    /// information, exactly what Classify-by-Duration Batch+ consumes).
    ClassOnly,
}

impl Clairvoyance {
    /// `true` iff full lengths are revealed at arrival.
    pub fn is_clairvoyant(self) -> bool {
        matches!(self, Clairvoyance::Clairvoyant)
    }

    /// `true` iff at least the length class is revealed at arrival.
    pub fn reveals_class(self) -> bool {
        matches!(self, Clairvoyance::Clairvoyant | Clairvoyance::ClassOnly)
    }
}

/// The geometric class of a length: the smallest integer `i` with
/// `p ≤ base·alpha^i` (class `i` covers `(base·alpha^(i−1), base·alpha^i]`),
/// with a small relative tolerance so boundary lengths land in the lower
/// class despite floating-point noise. This is the classification both
/// [`Clairvoyance::ClassOnly`] runs and Classify-by-Duration Batch+ use.
pub fn geometric_class(p: Dur, alpha: f64, base: f64) -> i64 {
    assert!(alpha > 1.0 && base > 0.0, "need alpha > 1 and base > 0");
    assert!(p.is_positive(), "lengths are positive");
    let x = (p.get() / base).ln() / alpha.ln();
    let snapped = x.round();
    if (x - snapped).abs() < 1e-9 {
        snapped as i64
    } else {
        x.ceil() as i64
    }
}

/// How a released job's processing length is determined.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LengthSpec {
    /// Length fixed at release time (required under [`Clairvoyance::Clairvoyant`]).
    Fixed(Dur),
    /// Length decided by the environment after the job starts, via
    /// [`Environment::rule_length`]. Only allowed in non-clairvoyant runs.
    Adaptive,
}

/// A job as released by an environment; the arrival time is implicitly the
/// release instant.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct JobSpec {
    /// Starting deadline `d(J)` (must be `>=` the release time).
    pub deadline: Time,
    /// Processing length specification.
    pub length: LengthSpec,
}

impl JobSpec {
    /// A job with a fixed length.
    pub fn fixed(deadline: Time, length: Dur) -> Self {
        JobSpec {
            deadline,
            length: LengthSpec::Fixed(length),
        }
    }

    /// A job whose length the environment will decide adaptively.
    pub fn adaptive(deadline: Time) -> Self {
        JobSpec {
            deadline,
            length: LengthSpec::Adaptive,
        }
    }
}

/// The environment's answer when asked for an adaptive job's length.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LengthRuling {
    /// The length is `d`; the job completes at `start + d` (which must not
    /// lie in the past at ruling time).
    Assign(Dur),
    /// Defer: ask again at the given time (strictly later than now).
    AskAgainAt(Time),
}

/// A source of jobs (and of adaptive length decisions).
///
/// Implementations observe the full simulation state through [`World`] and
/// may adapt. The engine guarantees:
///
/// * ids are assigned consecutively in release order, so the environment can
///   predict the ids of the jobs it returns from [`Environment::release_at`]
///   (the first gets `JobId(world.num_jobs())`, and so on);
/// * [`Environment::rule_length`] is called only for `Adaptive` jobs — once
///   when the job starts and once at every `AskAgainAt` time — and the
///   world already reflects the start when the first call happens.
pub trait Environment {
    /// The information model of this run.
    fn clairvoyance(&self) -> Clairvoyance;

    /// The earliest time `>= world.now()` at which this environment wants to
    /// release jobs, or `None` if no release is *currently* scheduled. The
    /// engine re-queries after every event, so an adversary may answer
    /// `None` now and a concrete time after observing a future event.
    fn next_release_time(&mut self, world: &World) -> Option<Time>;

    /// Releases the batch of jobs arriving exactly at `now` (the engine
    /// calls this only at a time previously returned by
    /// [`Environment::next_release_time`]). May return an empty vector.
    fn release_at(&mut self, now: Time, world: &World) -> Vec<JobSpec>;

    /// Appends the batch of jobs arriving at `now` to `out` (which the
    /// engine hands over empty and reuses across releases, so hot static
    /// environments avoid one allocation per release). The default defers
    /// to [`Environment::release_at`]; override it together with
    /// `release_at` — the two must describe the same releases.
    fn release_into(&mut self, now: Time, world: &World, out: &mut Vec<JobSpec>) {
        debug_assert!(out.is_empty());
        out.extend(self.release_at(now, world));
    }

    /// Rules on the length of an adaptive job. See [`LengthRuling`].
    ///
    /// `started_at` is the job's start time; `now` is the ruling time (equal
    /// to `started_at` on the first call). When assigning, the completion
    /// `started_at + length` must be `>= now`.
    fn rule_length(
        &mut self,
        id: JobId,
        started_at: Time,
        now: Time,
        world: &World,
    ) -> LengthRuling {
        let _ = (id, started_at, now, world);
        unreachable!("environment released an Adaptive job but does not implement rule_length")
    }

    /// How many jobs this environment expects to release in total, when
    /// known up front (static instances). Purely a capacity hint: the engine
    /// pre-sizes the arena columns with it so releases never reallocate.
    /// `None` (the default) means unknown; over- or under-estimating is
    /// harmless for correctness.
    fn expected_jobs(&self) -> Option<usize> {
        None
    }
}

impl<E: Environment + ?Sized> Environment for &mut E {
    fn clairvoyance(&self) -> Clairvoyance {
        (**self).clairvoyance()
    }
    fn next_release_time(&mut self, world: &World) -> Option<Time> {
        (**self).next_release_time(world)
    }
    fn release_at(&mut self, now: Time, world: &World) -> Vec<JobSpec> {
        (**self).release_at(now, world)
    }
    fn release_into(&mut self, now: Time, world: &World, out: &mut Vec<JobSpec>) {
        (**self).release_into(now, world, out)
    }
    fn rule_length(
        &mut self,
        id: JobId,
        started_at: Time,
        now: Time,
        world: &World,
    ) -> LengthRuling {
        (**self).rule_length(id, started_at, now, world)
    }
    fn expected_jobs(&self) -> Option<usize> {
        (**self).expected_jobs()
    }
}

impl<E: Environment + ?Sized> Environment for Box<E> {
    fn clairvoyance(&self) -> Clairvoyance {
        (**self).clairvoyance()
    }
    fn next_release_time(&mut self, world: &World) -> Option<Time> {
        (**self).next_release_time(world)
    }
    fn release_at(&mut self, now: Time, world: &World) -> Vec<JobSpec> {
        (**self).release_at(now, world)
    }
    fn release_into(&mut self, now: Time, world: &World, out: &mut Vec<JobSpec>) {
        (**self).release_into(now, world, out)
    }
    fn rule_length(
        &mut self,
        id: JobId,
        started_at: Time,
        now: Time,
        world: &World,
    ) -> LengthRuling {
        (**self).rule_length(id, started_at, now, world)
    }
    fn expected_jobs(&self) -> Option<usize> {
        (**self).expected_jobs()
    }
}

/// The trivial environment: a static [`Instance`] whose jobs are released at
/// their arrival times with fixed lengths.
///
/// Jobs are released in `(arrival, original-index)` order; because the
/// engine numbers jobs by release order, the simulation's `JobId`s may be a
/// permutation of the instance's. [`StaticEnv::source_index`] maps back.
#[derive(Clone, Debug)]
pub struct StaticEnv {
    /// `(arrival, deadline, length, original index)` sorted by `(arrival, idx)`.
    jobs: Vec<(Time, Time, Dur, usize)>,
    next: usize,
    clairvoyance: Clairvoyance,
}

impl StaticEnv {
    /// Wraps an instance.
    pub fn new(inst: &Instance, clairvoyance: Clairvoyance) -> Self {
        let mut jobs: Vec<_> = inst
            .iter()
            .map(|(id, j)| (j.arrival(), j.deadline(), j.length(), id.index()))
            .collect();
        jobs.sort_by_key(|a| (a.0, a.3));
        StaticEnv {
            jobs,
            next: 0,
            clairvoyance,
        }
    }

    /// Maps a simulation `JobId` (release order) back to the index of the
    /// job in the source instance.
    pub fn source_index(&self, sim_id: JobId) -> usize {
        self.jobs[sim_id.index()].3
    }

    /// The release-order-to-source-index mapping for all jobs.
    pub fn source_indices(&self) -> Vec<usize> {
        self.jobs.iter().map(|j| j.3).collect()
    }
}

impl Environment for StaticEnv {
    fn clairvoyance(&self) -> Clairvoyance {
        self.clairvoyance
    }

    fn next_release_time(&mut self, _world: &World) -> Option<Time> {
        self.jobs.get(self.next).map(|j| j.0)
    }

    fn release_at(&mut self, now: Time, world: &World) -> Vec<JobSpec> {
        let mut out = Vec::new();
        self.release_into(now, world, &mut out);
        out
    }

    fn release_into(&mut self, now: Time, _world: &World, out: &mut Vec<JobSpec>) {
        while let Some(&(a, d, p, _)) = self.jobs.get(self.next) {
            if a != now {
                break;
            }
            out.push(JobSpec::fixed(d, p));
            self.next += 1;
        }
    }

    fn expected_jobs(&self) -> Option<usize> {
        Some(self.jobs.len() - self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::time::{dur, t};

    #[test]
    fn static_env_releases_in_arrival_order() {
        let inst = Instance::new(vec![
            Job::adp(5.0, 6.0, 1.0),
            Job::adp(0.0, 1.0, 2.0),
            Job::adp(0.0, 3.0, 3.0),
        ]);
        let mut env = StaticEnv::new(&inst, Clairvoyance::Clairvoyant);
        let world = World::new(Clairvoyance::Clairvoyant);
        assert_eq!(env.next_release_time(&world), Some(t(0.0)));
        let batch = env.release_at(t(0.0), &world);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], JobSpec::fixed(t(1.0), dur(2.0)));
        assert_eq!(batch[1], JobSpec::fixed(t(3.0), dur(3.0)));
        assert_eq!(env.next_release_time(&world), Some(t(5.0)));
        let batch2 = env.release_at(t(5.0), &world);
        assert_eq!(batch2.len(), 1);
        assert_eq!(env.next_release_time(&world), None);
        // Release order 0,1,2 maps to source indices 1,2,0.
        assert_eq!(env.source_indices(), vec![1, 2, 0]);
        assert_eq!(env.source_index(JobId(2)), 0);
    }

    #[test]
    fn job_spec_constructors() {
        assert_eq!(
            JobSpec::fixed(t(3.0), dur(1.0)).length,
            LengthSpec::Fixed(dur(1.0))
        );
        assert_eq!(JobSpec::adaptive(t(3.0)).length, LengthSpec::Adaptive);
    }

    #[test]
    fn clairvoyance_predicate() {
        assert!(Clairvoyance::Clairvoyant.is_clairvoyant());
        assert!(!Clairvoyance::NonClairvoyant.is_clairvoyant());
        assert!(!Clairvoyance::ClassOnly.is_clairvoyant());
        assert!(Clairvoyance::ClassOnly.reveals_class());
        assert!(Clairvoyance::Clairvoyant.reveals_class());
        assert!(!Clairvoyance::NonClairvoyant.reveals_class());
    }

    #[test]
    fn geometric_classes_base_two() {
        // Class i covers (2^(i−1), 2^i].
        assert_eq!(geometric_class(dur(1.0), 2.0, 1.0), 0);
        assert_eq!(geometric_class(dur(1.5), 2.0, 1.0), 1);
        assert_eq!(geometric_class(dur(2.0), 2.0, 1.0), 1);
        assert_eq!(geometric_class(dur(2.1), 2.0, 1.0), 2);
        assert_eq!(geometric_class(dur(0.5), 2.0, 1.0), -1);
    }
}
