//! Event traces: an optional chronological record of everything that
//! happened in a simulation, for debugging, visualization and replay
//! verification. Select a [`TraceMode`] via [`crate::sim::SimConfig::trace`].

use crate::job::JobId;
use crate::time::{Dur, Time};
use std::fmt;

/// How much of the event history a run records into
/// [`SimOutcome::trace`](crate::sim::SimOutcome::trace).
///
/// The default is [`TraceMode::Off`]: long simulations would otherwise
/// accumulate an unbounded `Vec<TraceEvent>` (one entry per release, start,
/// ruling, completion, …), which dominates memory on soak-scale runs.
/// [`TraceMode::Ring`] bounds the cost while keeping the most recent events
/// for post-mortem debugging of a failure at the end of a long run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceMode {
    /// Record nothing (the default). The outcome's trace is empty and the
    /// engine's record path is a single branch.
    #[default]
    Off,
    /// Record every event, unbounded. What `record_trace: true` used to do;
    /// required by oracles that replay the full lifecycle (e.g. the
    /// masked-lengths check).
    Full,
    /// Keep only the most recent `n` events, overwriting the oldest once
    /// full. The outcome's trace is still chronological. `Ring(0)` records
    /// nothing, like [`TraceMode::Off`].
    Ring(usize),
}

impl TraceMode {
    /// Whether this mode records any events at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, TraceMode::Off | TraceMode::Ring(0))
    }
}

/// One recorded simulation event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEvent {
    /// When it happened.
    pub time: Time,
    /// What happened.
    pub kind: TraceKind,
}

/// The kinds of recorded events.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TraceKind {
    /// A job was released (arrived).
    Released {
        /// The job.
        id: JobId,
        /// Its starting deadline.
        deadline: Time,
    },
    /// A job was started by the scheduler.
    Started {
        /// The job.
        id: JobId,
    },
    /// An adaptive length was ruled (fixed-length jobs do not emit this;
    /// their length is known at release).
    LengthRuled {
        /// The job.
        id: JobId,
        /// The ruled length.
        length: Dur,
    },
    /// A job completed.
    Completed {
        /// The job.
        id: JobId,
    },
    /// The engine force-started a job whose deadline passed (a scheduler
    /// bug; mirrors [`crate::sim::Violation`]).
    ForcedStart {
        /// The job.
        id: JobId,
    },
    /// A scheduler wakeup fired.
    Wakeup {
        /// The token passed to `Ctx::wake_at`.
        token: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t={}] ", self.time)?;
        match self.kind {
            TraceKind::Released { id, deadline } => {
                write!(f, "released {id} (deadline {deadline})")
            }
            TraceKind::Started { id } => write!(f, "started {id}"),
            TraceKind::LengthRuled { id, length } => {
                write!(f, "length of {id} ruled: {length}")
            }
            TraceKind::Completed { id } => write!(f, "completed {id}"),
            TraceKind::ForcedStart { id } => write!(f, "FORCED start of {id}"),
            TraceKind::Wakeup { token } => write!(f, "wakeup {token}"),
        }
    }
}

/// Renders a trace as one event per line.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{dur, t};

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            time: t(2.5),
            kind: TraceKind::Released {
                id: JobId(3),
                deadline: t(7.0),
            },
        };
        assert_eq!(e.to_string(), "[t=2.5] released J3 (deadline 7)");
        let e = TraceEvent {
            time: t(3.0),
            kind: TraceKind::LengthRuled {
                id: JobId(0),
                length: dur(1.5),
            },
        };
        assert!(e.to_string().contains("ruled: 1.5"));
    }

    #[test]
    fn trace_mode_enablement() {
        assert_eq!(TraceMode::default(), TraceMode::Off);
        assert!(!TraceMode::Off.is_enabled());
        assert!(TraceMode::Full.is_enabled());
        assert!(TraceMode::Ring(4).is_enabled());
        assert!(
            !TraceMode::Ring(0).is_enabled(),
            "zero-capacity ring records nothing"
        );
    }

    #[test]
    fn render_joins_lines() {
        let events = vec![
            TraceEvent {
                time: t(0.0),
                kind: TraceKind::Started { id: JobId(0) },
            },
            TraceEvent {
                time: t(1.0),
                kind: TraceKind::Completed { id: JobId(0) },
            },
        ];
        let r = render_trace(&events);
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("started J0"));
    }
}
