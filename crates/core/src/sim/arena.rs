//! The flat per-job arena behind [`crate::sim::World`].
//!
//! Job state is stored in structure-of-arrays columns indexed by *slot*, so
//! the engine's hot loops (membership tests, start/complete transitions,
//! pending/running iteration) touch contiguous memory instead of chasing a
//! `Vec<JobRecord>` of wide mixed records.
//!
//! * **Id → slot.** Ids are dense and assigned in release order, so the map
//!   is a `Vec<u32>` plus a `base` offset: id `base + i` occupies
//!   `slot_of[i]`. Prefix compaction drains the front, but only when the
//!   completed prefix is a majority of the map, so the shift is amortized
//!   O(1) per record while lookups stay a plain indexed load (measurably
//!   cheaper than a `VecDeque`'s two-slice indexing on the hot paths).
//! * **Pending/running sets** are intrusive doubly-linked lists threaded
//!   through `prev`/`next` columns (a job is in at most one of the two), so
//!   removal is O(1) — the previous flat sorted `Vec`s paid an O(n) shift
//!   per start and per completion, which made deck-scale runs quadratic.
//!   Pending stays id-sorted for free (ids ascend at release and a job never
//!   re-enters pending); running inserts walk backwards from the tail,
//!   which is O(1) for the dominant in-id-order start patterns.
//! * **Free list + generations.** Compacted slots are recycled through a
//!   LIFO free list. Each slot carries a generation counter bumped on every
//!   free, so a stale reference to a recycled slot is detectable and reuse
//!   can be asserted ABA-safe (see `no_aba_on_recycled_slots`).
//!
//! Optional columns (`length`, `start`, `ordered_start`) use a NaN sentinel
//! instead of `Option<f64>`: all legitimate values are finite by the
//! [`Time`]/[`Dur`] construction invariant, and the dense 8-byte column
//! halves the footprint scanned by hot paths.

use crate::job::JobId;
use crate::time::{Dur, Time};

/// Slot state machine. `FREE` slots live on the free list only.
pub(crate) const STATE_PENDING: u8 = 0;
pub(crate) const STATE_RUNNING: u8 = 1;
pub(crate) const STATE_COMPLETED: u8 = 2;
pub(crate) const STATE_FREE: u8 = 3;

/// Null link in the intrusive lists.
const NIL: u32 = u32::MAX;

/// Which intrusive list an operation targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ListId {
    Pending,
    Running,
}

#[derive(Clone, Copy, Debug, Default)]
struct ListHeads {
    head: u32,
    tail: u32,
    len: usize,
}

/// The structure-of-arrays job store. See module docs.
#[derive(Clone, Debug)]
pub(crate) struct JobArena {
    // ---- per-slot columns --------------------------------------------
    arrival: Vec<Time>,
    deadline: Vec<Time>,
    /// Length in seconds; NaN while an adaptive length is unruled.
    length: Vec<f64>,
    /// Start time; NaN until started.
    start: Vec<f64>,
    /// `Ctx::start_at` commitment; NaN when none.
    ordered: Vec<f64>,
    state: Vec<u8>,
    /// Bumped every time the slot is freed; pins ABA-safe reuse.
    gen: Vec<u32>,
    /// Id of the current occupant (diagnostics + ABA checks).
    id_of: Vec<u32>,
    prev: Vec<u32>,
    next: Vec<u32>,
    // ---- indexes ------------------------------------------------------
    /// Recycled slots, LIFO.
    free: Vec<u32>,
    /// `slot_of[i]` is the slot of id `base + i`.
    slot_of: Vec<u32>,
    /// First retained id (count of compacted-away records).
    base: u32,
    pending: ListHeads,
    running: ListHeads,
    /// High-water mark of retained records (memory gate).
    peak_retained: usize,
}

impl JobArena {
    pub(crate) fn new() -> Self {
        JobArena {
            arrival: Vec::new(),
            deadline: Vec::new(),
            length: Vec::new(),
            start: Vec::new(),
            ordered: Vec::new(),
            state: Vec::new(),
            gen: Vec::new(),
            id_of: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            free: Vec::new(),
            slot_of: Vec::new(),
            base: 0,
            pending: ListHeads {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            running: ListHeads {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            peak_retained: 0,
        }
    }

    /// Restores the pristine `new()` state while keeping every column's
    /// allocation, so a recycled arena starts the next run without paying
    /// the eleven-vector malloc bill again. Observable state afterwards is
    /// exactly that of a fresh arena (the engine's cross-run determinism
    /// rests on this).
    pub(crate) fn reset(&mut self) {
        self.arrival.clear();
        self.deadline.clear();
        self.length.clear();
        self.start.clear();
        self.ordered.clear();
        self.state.clear();
        self.gen.clear();
        self.id_of.clear();
        self.prev.clear();
        self.next.clear();
        self.free.clear();
        self.slot_of.clear();
        self.base = 0;
        self.pending = ListHeads {
            head: NIL,
            tail: NIL,
            len: 0,
        };
        self.running = ListHeads {
            head: NIL,
            tail: NIL,
            len: 0,
        };
        self.peak_retained = 0;
    }

    /// The current per-slot column capacity, in records (how much memory a
    /// recycled arena would keep parked; see the engine's scratch pool).
    pub(crate) fn capacity(&self) -> usize {
        self.arrival.capacity()
    }

    /// Pre-sizes every per-slot column (and the id map) for `additional`
    /// more releases, so a hinted run never reallocates mid-flight.
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.arrival.reserve(additional);
        self.deadline.reserve(additional);
        self.length.reserve(additional);
        self.start.reserve(additional);
        self.ordered.reserve(additional);
        self.state.reserve(additional);
        self.gen.reserve(additional);
        self.id_of.reserve(additional);
        self.prev.reserve(additional);
        self.next.reserve(additional);
        self.slot_of.reserve(additional);
    }

    // ---- sizes --------------------------------------------------------

    /// Jobs released so far (the next release gets this id).
    pub(crate) fn num_jobs(&self) -> usize {
        self.base as usize + self.slot_of.len()
    }

    /// Records still materialized.
    pub(crate) fn num_retained(&self) -> usize {
        self.slot_of.len()
    }

    /// Leading records dropped by prefix compaction.
    pub(crate) fn compacted(&self) -> usize {
        self.base as usize
    }

    /// High-water mark of [`JobArena::num_retained`] over the run.
    pub(crate) fn peak_retained(&self) -> usize {
        self.peak_retained
    }

    /// Total slots ever allocated (columns footprint; recycled slots are
    /// counted once).
    pub(crate) fn slots_allocated(&self) -> usize {
        self.state.len()
    }

    pub(crate) fn num_pending(&self) -> usize {
        self.pending.len
    }

    pub(crate) fn num_running(&self) -> usize {
        self.running.len
    }

    // ---- id → slot ----------------------------------------------------

    /// The slot of a released, still-retained id.
    ///
    /// # Panics
    /// Panics if the id was compacted away, or was never released (deque
    /// bounds check).
    #[inline]
    #[track_caller]
    pub(crate) fn slot(&self, id: JobId) -> u32 {
        assert!(
            id.0 >= self.base,
            "job {id} was completed and compacted away"
        );
        self.slot_of[(id.0 - self.base) as usize]
    }

    /// The slot of `id`, or `None` when compacted away or not yet released.
    pub(crate) fn try_slot(&self, id: JobId) -> Option<u32> {
        if id.0 < self.base {
            return None;
        }
        self.slot_of.get((id.0 - self.base) as usize).copied()
    }

    /// The generation of a slot (bumped on each free; test/diagnostic).
    #[cfg(test)]
    pub(crate) fn generation(&self, slot: u32) -> u32 {
        self.gen[slot as usize]
    }

    // ---- per-job accessors (by slot, for hot paths) -------------------

    pub(crate) fn arrival(&self, slot: u32) -> Time {
        self.arrival[slot as usize]
    }

    pub(crate) fn deadline(&self, slot: u32) -> Time {
        self.deadline[slot as usize]
    }

    pub(crate) fn length(&self, slot: u32) -> Option<Dur> {
        let p = self.length[slot as usize];
        (!p.is_nan()).then(|| Dur::new(p))
    }

    pub(crate) fn start(&self, slot: u32) -> Option<Time> {
        let s = self.start[slot as usize];
        (!s.is_nan()).then(|| Time::new(s))
    }

    pub(crate) fn ordered_start(&self, slot: u32) -> Option<Time> {
        let s = self.ordered[slot as usize];
        (!s.is_nan()).then(|| Time::new(s))
    }

    pub(crate) fn state(&self, slot: u32) -> u8 {
        self.state[slot as usize]
    }

    // ---- lifecycle ----------------------------------------------------

    /// Allocates (or recycles) a slot for the next dense id and links it
    /// onto the pending tail. Returns the assigned id.
    pub(crate) fn release(&mut self, arrival: Time, deadline: Time, length: Option<Dur>) -> JobId {
        let id = JobId(self.base + self.slot_of.len() as u32);
        let len_raw = length.map_or(f64::NAN, |p| p.get());
        let slot = match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                debug_assert_eq!(self.state[i], STATE_FREE, "free-list slot not FREE");
                self.arrival[i] = arrival;
                self.deadline[i] = deadline;
                self.length[i] = len_raw;
                self.start[i] = f64::NAN;
                self.ordered[i] = f64::NAN;
                self.state[i] = STATE_PENDING;
                self.id_of[i] = id.0;
                slot
            }
            None => {
                let slot = self.state.len() as u32;
                self.arrival.push(arrival);
                self.deadline.push(deadline);
                self.length.push(len_raw);
                self.start.push(f64::NAN);
                self.ordered.push(f64::NAN);
                self.state.push(STATE_PENDING);
                self.gen.push(0);
                self.id_of.push(id.0);
                self.prev.push(NIL);
                self.next.push(NIL);
                slot
            }
        };
        self.slot_of.push(slot);
        self.peak_retained = self.peak_retained.max(self.slot_of.len());
        // Ids ascend at release and never re-enter pending, so appending at
        // the tail keeps the pending list id-sorted.
        self.link_tail(ListId::Pending, slot);
        id
    }

    pub(crate) fn mark_started(&mut self, slot: u32, start: Time) {
        let i = slot as usize;
        debug_assert_eq!(self.state[i], STATE_PENDING);
        self.unlink(ListId::Pending, slot);
        self.state[i] = STATE_RUNNING;
        self.start[i] = start.get();
        self.ordered[i] = f64::NAN;
        self.link_sorted_running(slot);
    }

    pub(crate) fn set_length(&mut self, slot: u32, length: Dur) {
        let i = slot as usize;
        debug_assert!(self.length[i].is_nan());
        self.length[i] = length.get();
    }

    pub(crate) fn set_ordered_start(&mut self, slot: u32, t: Time) {
        self.ordered[slot as usize] = t.get();
    }

    /// # Panics
    /// Panics (with the id for context) if the job is not running or has no
    /// ruled length — engine invariants, kept as hard checks because a
    /// miscounted completion corrupts the span.
    pub(crate) fn mark_completed(&mut self, slot: u32, id: JobId) {
        let i = slot as usize;
        if self.state[i] != STATE_RUNNING {
            panic!("completing a job that is not running: {id}");
        }
        if self.length[i].is_nan() {
            panic!("completed job {id} must have a ruled length");
        }
        self.unlink(ListId::Running, slot);
        self.state[i] = STATE_COMPLETED;
    }

    /// Drops the leading run of completed records when it is at least half
    /// of the retained records (so the amortized cost stays O(1) per job
    /// while memory stays within 2x of the live set), recycling their slots.
    /// Returns how many records were dropped.
    pub(crate) fn compact_completed_prefix(&mut self) -> usize {
        let drop = self
            .slot_of
            .iter()
            .take_while(|&&slot| self.state[slot as usize] == STATE_COMPLETED)
            .count();
        if drop == 0 || drop * 2 < self.slot_of.len() {
            return 0;
        }
        for slot in self.slot_of.drain(..drop) {
            let i = slot as usize;
            self.state[i] = STATE_FREE;
            self.gen[i] = self.gen[i].wrapping_add(1);
            self.prev[i] = NIL;
            self.next[i] = NIL;
            self.free.push(slot);
        }
        self.base += drop as u32;
        drop
    }

    // ---- intrusive lists ---------------------------------------------

    fn heads(&mut self, list: ListId) -> &mut ListHeads {
        match list {
            ListId::Pending => &mut self.pending,
            ListId::Running => &mut self.running,
        }
    }

    fn link_tail(&mut self, list: ListId, slot: u32) {
        let tail = self.heads(list).tail;
        self.prev[slot as usize] = tail;
        self.next[slot as usize] = NIL;
        if tail == NIL {
            self.heads(list).head = slot;
        } else {
            self.next[tail as usize] = slot;
        }
        let heads = self.heads(list);
        heads.tail = slot;
        heads.len += 1;
    }

    /// Inserts into the running list keeping it id-sorted, walking back
    /// from the tail (starts overwhelmingly arrive in ascending id order,
    /// making this an O(1) append).
    fn link_sorted_running(&mut self, slot: u32) {
        let id = self.id_of[slot as usize];
        let mut after = self.running.tail;
        while after != NIL && self.id_of[after as usize] > id {
            after = self.prev[after as usize];
        }
        let i = slot as usize;
        if after == NIL {
            // New head.
            let head = self.running.head;
            self.prev[i] = NIL;
            self.next[i] = head;
            if head == NIL {
                self.running.tail = slot;
            } else {
                self.prev[head as usize] = slot;
            }
            self.running.head = slot;
        } else {
            let nxt = self.next[after as usize];
            self.prev[i] = after;
            self.next[i] = nxt;
            self.next[after as usize] = slot;
            if nxt == NIL {
                self.running.tail = slot;
            } else {
                self.prev[nxt as usize] = slot;
            }
        }
        self.running.len += 1;
    }

    fn unlink(&mut self, list: ListId, slot: u32) {
        let i = slot as usize;
        let (p, n) = (self.prev[i], self.next[i]);
        if p == NIL {
            self.heads(list).head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.heads(list).tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[i] = NIL;
        self.next[i] = NIL;
        self.heads(list).len -= 1;
    }

    /// Ids on a list in id order (pending: release order; running: sorted
    /// by construction).
    pub(crate) fn list_ids(&self, list: ListId) -> ListIter<'_> {
        ListIter {
            arena: self,
            cursor: match list {
                ListId::Pending => self.pending.head,
                ListId::Running => self.running.head,
            },
        }
    }

    /// `(id, slot)` for every retained record, in id order.
    pub(crate) fn retained(&self) -> impl Iterator<Item = (JobId, u32)> + '_ {
        self.slot_of
            .iter()
            .enumerate()
            .map(|(i, &slot)| (JobId(self.base + i as u32), slot))
    }
}

/// Iterator over an intrusive list's ids.
pub(crate) struct ListIter<'a> {
    arena: &'a JobArena,
    cursor: u32,
}

impl Iterator for ListIter<'_> {
    type Item = JobId;

    fn next(&mut self) -> Option<JobId> {
        if self.cursor == NIL {
            return None;
        }
        let slot = self.cursor as usize;
        self.cursor = self.arena.next[slot];
        Some(JobId(self.arena.id_of[slot]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{dur, t};

    fn release_n(a: &mut JobArena, n: u32) -> Vec<JobId> {
        (0..n)
            .map(|i| a.release(t(i as f64), t(i as f64 + 5.0), Some(dur(1.0))))
            .collect()
    }

    #[test]
    fn no_aba_on_recycled_slots() {
        let mut a = JobArena::new();
        let ids = release_n(&mut a, 4);
        // Complete and compact the first three (majority prefix).
        for &id in &ids[..3] {
            let slot = a.slot(id);
            a.mark_started(slot, t(0.0));
            a.mark_completed(slot, id);
        }
        let freed: Vec<u32> = ids[..3].iter().map(|&id| a.slot(id)).collect();
        let gens_before: Vec<u32> = freed.iter().map(|&s| a.generation(s)).collect();
        assert_eq!(a.compact_completed_prefix(), 3);
        assert_eq!(a.compacted(), 3);

        // Recycled slots come back with a bumped generation, so a stale
        // handle from the previous occupant can never alias the new one.
        let new_ids = release_n(&mut a, 3);
        assert_eq!(new_ids, vec![JobId(4), JobId(5), JobId(6)]);
        let mut reused = 0;
        for &id in &new_ids {
            let slot = a.slot(id);
            if let Some(k) = freed.iter().position(|&s| s == slot) {
                reused += 1;
                assert_eq!(
                    a.generation(slot),
                    gens_before[k].wrapping_add(1),
                    "recycled slot must carry a fresh generation"
                );
                assert_ne!(
                    a.id_of[slot as usize], ids[k].0,
                    "recycled slot must not keep its previous id"
                );
            }
        }
        assert_eq!(reused, 3, "LIFO free list recycles all compacted slots");
        assert_eq!(a.slots_allocated(), 4, "no new columns were grown");

        // Old ids stay inaccessible; survivors and newcomers read correctly.
        assert!(a.try_slot(ids[0]).is_none());
        assert_eq!(a.arrival(a.slot(ids[3])), t(3.0));
        assert_eq!(a.deadline(a.slot(new_ids[0])), t(5.0));
        let pending: Vec<JobId> = a.list_ids(ListId::Pending).collect();
        assert_eq!(
            pending,
            vec![ids[3], new_ids[0], new_ids[1], new_ids[2]],
            "pending stays id-sorted across recycling"
        );
    }

    #[test]
    fn intrusive_lists_unlink_in_o1_from_any_position() {
        let mut a = JobArena::new();
        let ids = release_n(&mut a, 5);
        // Start from the middle, head, and tail of pending.
        for &id in &[ids[2], ids[0], ids[4]] {
            let slot = a.slot(id);
            a.mark_started(slot, t(4.0));
        }
        let pending: Vec<JobId> = a.list_ids(ListId::Pending).collect();
        assert_eq!(pending, vec![ids[1], ids[3]]);
        // Running inserts out of id order must still iterate sorted.
        let running: Vec<JobId> = a.list_ids(ListId::Running).collect();
        assert_eq!(running, vec![ids[0], ids[2], ids[4]]);
        assert_eq!(a.num_pending(), 2);
        assert_eq!(a.num_running(), 3);
        let slot = a.slot(ids[2]);
        a.mark_completed(slot, ids[2]);
        let running: Vec<JobId> = a.list_ids(ListId::Running).collect();
        assert_eq!(running, vec![ids[0], ids[4]]);
    }

    #[test]
    fn peak_retained_tracks_high_water() {
        let mut a = JobArena::new();
        let ids = release_n(&mut a, 4);
        assert_eq!(a.peak_retained(), 4);
        for &id in &ids {
            let slot = a.slot(id);
            a.mark_started(slot, t(3.0));
            a.mark_completed(slot, id);
        }
        a.compact_completed_prefix();
        assert_eq!(a.num_retained(), 0);
        assert_eq!(a.peak_retained(), 4, "high water survives compaction");
        release_n(&mut a, 2);
        assert_eq!(a.peak_retained(), 4);
    }

    #[test]
    fn nan_sentinels_round_trip_none() {
        let mut a = JobArena::new();
        let id = a.release(t(0.0), t(9.0), None);
        let slot = a.slot(id);
        assert_eq!(a.length(slot), None);
        assert_eq!(a.start(slot), None);
        assert_eq!(a.ordered_start(slot), None);
        a.set_ordered_start(slot, t(2.0));
        assert_eq!(a.ordered_start(slot), Some(t(2.0)));
        a.mark_started(slot, t(2.0));
        assert_eq!(a.ordered_start(slot), None, "cleared on start");
        a.set_length(slot, dur(1.5));
        assert_eq!(a.length(slot), Some(dur(1.5)));
        assert_eq!(a.start(slot), Some(t(2.0)));
    }
}
