//! Fault injection for the simulation engine.
//!
//! Two composable wrappers stress the engine's degradation paths from both
//! sides of the [`crate::sim::Environment`] / [`crate::sim::OnlineScheduler`]
//! boundary:
//!
//! * [`FaultyEnvironment`] wraps an environment and injects *legal but
//!   pathological* job streams — zero-laxity bursts, equal-timestamp storms,
//!   extreme `μ` ratios, adaptive rulings that defer repeatedly, releases
//!   packed one ulp apart, and timestamps large enough to lose `f64`
//!   precision. Because every injected stream honors the environment
//!   contract, a run against it must never end in
//!   [`crate::sim::Termination::EnvironmentFault`].
//! * [`ChaosScheduler`] wraps a scheduler and perturbs its actions — dropping
//!   starts, delaying them past deadlines, duplicating them, starting bogus
//!   jobs, ordering starts in the past, and flooding the queue with wakeups.
//!   The engine must absorb all of it: invalid actions are rejected and the
//!   deadline-alarm force-start still completes every job, so the run
//!   terminates [`crate::sim::Termination::Completed`] with violations and
//!   rejections *recorded*, never a panic.
//!
//! The `fjs chaos` CLI subcommand drives the full cross product of these
//! modes against every registered scheduler.

use crate::job::JobId;
use crate::sim::env::{Environment, JobSpec, LengthRuling};
use crate::sim::sched::{Action, Arrival, Ctx, OnlineScheduler};
use crate::sim::world::World;
use crate::time::{dur, Dur, Time};
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Environment faults
// ---------------------------------------------------------------------------

/// A pathological-but-legal job stream injected by [`FaultyEnvironment`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnvFaultMode {
    /// A burst of jobs whose deadlines equal their arrival (zero laxity):
    /// every one must start the instant it arrives.
    ZeroLaxityBurst,
    /// Many jobs sharing one arrival, one deadline and one length — every
    /// comparator in a scheduler ties simultaneously.
    EqualTimestampStorm,
    /// Lengths spanning eighteen orders of magnitude (`μ = 10¹⁸`), probing
    /// ratio arithmetic and class computations.
    ExtremeMu,
    /// Adaptive jobs whose length oracle defers repeatedly before ruling
    /// (only meaningful non-clairvoyantly; degrades to fixed lengths when
    /// the run reveals lengths or classes).
    DeferredRulings,
    /// Zero-laxity unit jobs released so each completion lands exactly on
    /// the next release instant — maximal same-timestamp event collisions.
    CompletionChained,
    /// Releases packed one `f64` ulp apart, with one-ulp laxities.
    DenseReleases,
    /// Timestamps near `10¹⁵` with lengths below the local ulp, so
    /// `start + length` rounds back to `start` (zero-width active
    /// intervals).
    PrecisionLoss,
}

impl EnvFaultMode {
    /// Every environment fault mode, for matrix drivers.
    pub const ALL: [EnvFaultMode; 7] = [
        EnvFaultMode::ZeroLaxityBurst,
        EnvFaultMode::EqualTimestampStorm,
        EnvFaultMode::ExtremeMu,
        EnvFaultMode::DeferredRulings,
        EnvFaultMode::CompletionChained,
        EnvFaultMode::DenseReleases,
        EnvFaultMode::PrecisionLoss,
    ];

    /// Short stable label (used in verdict tables).
    pub fn label(&self) -> &'static str {
        match self {
            EnvFaultMode::ZeroLaxityBurst => "zero-laxity-burst",
            EnvFaultMode::EqualTimestampStorm => "equal-timestamps",
            EnvFaultMode::ExtremeMu => "extreme-mu",
            EnvFaultMode::DeferredRulings => "deferred-rulings",
            EnvFaultMode::CompletionChained => "completion-chained",
            EnvFaultMode::DenseReleases => "dense-releases",
            EnvFaultMode::PrecisionLoss => "precision-loss",
        }
    }

    /// The injection wave instants for this mode, ascending.
    fn wave_times(&self) -> Vec<Time> {
        match self {
            EnvFaultMode::ZeroLaxityBurst => vec![Time::new(1.0)],
            EnvFaultMode::EqualTimestampStorm => vec![Time::new(2.0)],
            EnvFaultMode::ExtremeMu => vec![Time::new(1.0)],
            EnvFaultMode::DeferredRulings => vec![Time::new(1.0), Time::new(2.0)],
            EnvFaultMode::CompletionChained => (1..=4).map(|k| Time::new(k as f64)).collect(),
            EnvFaultMode::DenseReleases => {
                // 1.0 + k·ε are exactly representable (ulp(1.0) = ε).
                (0..8)
                    .map(|k| Time::new(1.0 + k as f64 * f64::EPSILON))
                    .collect()
            }
            EnvFaultMode::PrecisionLoss => vec![Time::new(1.0e15)],
        }
    }
}

impl fmt::Display for EnvFaultMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Wraps an environment and injects the pathological job stream selected by
/// an [`EnvFaultMode`], interleaved with the inner environment's own
/// releases. Adaptive-length rulings for injected jobs are answered by the
/// wrapper; everything else is forwarded to the inner environment.
#[derive(Debug)]
pub struct FaultyEnvironment<E> {
    inner: E,
    mode: EnvFaultMode,
    waves: Vec<Time>,
    next_wave: usize,
    /// Deferral count per injected adaptive job (DeferredRulings only).
    deferrals: BTreeMap<JobId, u32>,
}

/// How many times a `DeferredRulings` oracle stalls before assigning.
const MAX_DEFERRALS: u32 = 4;

impl<E: Environment> FaultyEnvironment<E> {
    /// Wraps `inner`, injecting the stream selected by `mode`.
    pub fn new(inner: E, mode: EnvFaultMode) -> Self {
        FaultyEnvironment {
            inner,
            mode,
            waves: mode.wave_times(),
            next_wave: 0,
            deferrals: BTreeMap::new(),
        }
    }

    fn own_next(&self) -> Option<Time> {
        self.waves.get(self.next_wave).copied()
    }

    /// The specs injected at wave `wave` firing at `now`. `next_id` is the
    /// id the first injected job will receive (used to route adaptive
    /// rulings back to this wrapper).
    fn inject(&mut self, wave: usize, now: Time, next_id: u32) -> Vec<JobSpec> {
        // Adaptive lengths are only legal when nothing is revealed at
        // arrival; degrade to fixed lengths otherwise.
        let adaptive_ok = !self.inner.clairvoyance().reveals_class();
        match self.mode {
            EnvFaultMode::ZeroLaxityBurst => {
                (0..8).map(|_| JobSpec::fixed(now, dur(1.0))).collect()
            }
            EnvFaultMode::EqualTimestampStorm => (0..16)
                .map(|_| JobSpec::fixed(now + dur(1.0), dur(1.0)))
                .collect(),
            EnvFaultMode::ExtremeMu => [1.0e-9, 1.0, 1.0e9]
                .into_iter()
                .map(|p| JobSpec::fixed(now + dur(0.5), dur(p)))
                .collect(),
            EnvFaultMode::DeferredRulings => (0..2)
                .map(|k| {
                    if adaptive_ok {
                        self.deferrals.insert(JobId(next_id + k), 0);
                        JobSpec::adaptive(now + dur(1.0))
                    } else {
                        JobSpec::fixed(now + dur(1.0), dur(0.5))
                    }
                })
                .collect(),
            EnvFaultMode::CompletionChained => {
                // Unit length + unit release cadence: the completion of wave
                // k's job lands exactly on wave k+1's release instant.
                let _ = wave;
                vec![JobSpec::fixed(now, dur(1.0))]
            }
            EnvFaultMode::DenseReleases => {
                vec![JobSpec::fixed(now + dur(f64::EPSILON), dur(1.0))]
            }
            EnvFaultMode::PrecisionLoss => {
                // At t = 10¹⁵ the ulp is 0.125, so adding 10⁻³ rounds back
                // to t: completions collapse onto their starts.
                (0..4).map(|_| JobSpec::fixed(now, dur(1.0e-3))).collect()
            }
        }
    }
}

impl<E: Environment> Environment for FaultyEnvironment<E> {
    fn clairvoyance(&self) -> crate::sim::env::Clairvoyance {
        self.inner.clairvoyance()
    }

    fn next_release_time(&mut self, world: &World) -> Option<Time> {
        match (self.own_next(), self.inner.next_release_time(world)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn release_at(&mut self, now: Time, world: &World) -> Vec<JobSpec> {
        let mut specs = Vec::new();
        if self.inner.next_release_time(world) == Some(now) {
            specs.extend(self.inner.release_at(now, world));
        }
        if self.own_next() == Some(now) {
            let wave = self.next_wave;
            self.next_wave += 1;
            let next_id = (world.num_jobs() + specs.len()) as u32;
            specs.extend(self.inject(wave, now, next_id));
        }
        specs
    }

    fn rule_length(
        &mut self,
        id: JobId,
        started_at: Time,
        now: Time,
        world: &World,
    ) -> LengthRuling {
        match self.deferrals.get_mut(&id) {
            Some(count) if *count < MAX_DEFERRALS => {
                *count += 1;
                LengthRuling::AskAgainAt(now + dur(0.125))
            }
            Some(_) => LengthRuling::Assign(dur(0.5)),
            None => self.inner.rule_length(id, started_at, now, world),
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler faults
// ---------------------------------------------------------------------------

/// An action perturbation applied by [`ChaosScheduler`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedFaultMode {
    /// Drop every start the inner scheduler requests (jobs only run via the
    /// engine's deadline force-start).
    DropStarts,
    /// Rewrite every start into an ordered start *past* the job's deadline
    /// (always rejected; force-start must still cover the job).
    DelayPastDeadline,
    /// Issue every start twice (the duplicate must be rejected, not
    /// double-started).
    DuplicateStarts,
    /// Request a start for a job id that was never released, every callback.
    StartNonPending,
    /// Rewrite every start into an ordered start one unit in the past
    /// (always rejected).
    TimeTravelStart,
    /// Flood the queue with same-instant wakeups carrying a sentinel token
    /// the wrapper swallows (bounded by an internal budget).
    WakeupStorm,
}

impl SchedFaultMode {
    /// Every scheduler fault mode, for matrix drivers.
    pub const ALL: [SchedFaultMode; 6] = [
        SchedFaultMode::DropStarts,
        SchedFaultMode::DelayPastDeadline,
        SchedFaultMode::DuplicateStarts,
        SchedFaultMode::StartNonPending,
        SchedFaultMode::TimeTravelStart,
        SchedFaultMode::WakeupStorm,
    ];

    /// Short stable label (used in verdict tables).
    pub fn label(&self) -> &'static str {
        match self {
            SchedFaultMode::DropStarts => "drop-starts",
            SchedFaultMode::DelayPastDeadline => "delay-past-deadline",
            SchedFaultMode::DuplicateStarts => "duplicate-starts",
            SchedFaultMode::StartNonPending => "start-non-pending",
            SchedFaultMode::TimeTravelStart => "time-travel-start",
            SchedFaultMode::WakeupStorm => "wakeup-storm",
        }
    }
}

impl fmt::Display for SchedFaultMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Wakeup token reserved for [`SchedFaultMode::WakeupStorm`]; swallowed by
/// the wrapper so the inner scheduler never sees a token it did not request.
const STORM_TOKEN: u64 = u64::MAX;

/// Total storm wakeups a single [`ChaosScheduler`] may inject.
const STORM_BUDGET: u32 = 64;

/// Wraps a scheduler and perturbs its actions according to a
/// [`SchedFaultMode`] before the engine sees them.
#[derive(Debug)]
pub struct ChaosScheduler<S> {
    inner: S,
    mode: SchedFaultMode,
    storm_budget: u32,
}

impl<S: OnlineScheduler> ChaosScheduler<S> {
    /// Wraps `inner`, perturbing its actions per `mode`.
    pub fn new(inner: S, mode: SchedFaultMode) -> Self {
        ChaosScheduler {
            inner,
            mode,
            storm_budget: STORM_BUDGET,
        }
    }

    /// Replays one unperturbed action into the sink.
    fn replay(ctx: &mut Ctx<'_>, action: Action) {
        match action {
            Action::StartNow(id) => ctx.start(id),
            Action::StartAt(id, at) => ctx.start_at(id, at),
            Action::WakeAt(at, token) => ctx.wake_at(at, token),
        }
    }

    /// Drains the inner scheduler's requested actions and re-emits them
    /// perturbed.
    fn perturb(&mut self, ctx: &mut Ctx<'_>) {
        let actions = ctx.take_actions();
        match self.mode {
            SchedFaultMode::DropStarts => {
                for action in actions {
                    if let Action::WakeAt(at, token) = action {
                        ctx.wake_at(at, token);
                    }
                }
            }
            SchedFaultMode::DelayPastDeadline => {
                for action in actions {
                    match action {
                        Action::StartNow(id) | Action::StartAt(id, _) => {
                            let late = ctx.deadline_of(id) + dur(1.0);
                            ctx.start_at(id, late);
                        }
                        other => Self::replay(ctx, other),
                    }
                }
            }
            SchedFaultMode::DuplicateStarts => {
                for action in actions {
                    Self::replay(ctx, action);
                    if !matches!(action, Action::WakeAt(..)) {
                        Self::replay(ctx, action);
                    }
                }
            }
            SchedFaultMode::StartNonPending => {
                for action in actions {
                    Self::replay(ctx, action);
                }
                ctx.start(JobId(u32::MAX));
            }
            SchedFaultMode::TimeTravelStart => {
                for action in actions {
                    match action {
                        Action::StartNow(id) | Action::StartAt(id, _) => {
                            let past = ctx.now() - dur(1.0);
                            ctx.start_at(id, past);
                        }
                        other => Self::replay(ctx, other),
                    }
                }
            }
            SchedFaultMode::WakeupStorm => {
                for action in actions {
                    Self::replay(ctx, action);
                }
                for _ in 0..4 {
                    if self.storm_budget == 0 {
                        break;
                    }
                    self.storm_budget -= 1;
                    ctx.wake_at(ctx.now(), STORM_TOKEN);
                }
            }
        }
    }
}

impl<S: OnlineScheduler> OnlineScheduler for ChaosScheduler<S> {
    fn name(&self) -> String {
        format!("chaos[{}]({})", self.mode, self.inner.name())
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        self.inner.on_arrival(job, ctx);
        self.perturb(ctx);
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        self.inner.on_deadline(id, ctx);
        self.perturb(ctx);
    }

    fn on_completion(&mut self, id: JobId, length: Dur, ctx: &mut Ctx<'_>) {
        self.inner.on_completion(id, length, ctx);
        self.perturb(ctx);
    }

    fn on_wakeup(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == STORM_TOKEN {
            // Swallow our own storm so the inner scheduler never observes a
            // token it did not request; keep storming while budget remains.
            self.perturb(ctx);
            return;
        }
        self.inner.on_wakeup(token, ctx);
        self.perturb(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Instance, Job};
    use crate::sim::env::StaticEnv;
    use crate::sim::{run, Clairvoyance, Termination};
    use crate::time::t;

    /// Starts every job the moment it arrives.
    struct EagerTest;
    impl OnlineScheduler for EagerTest {
        fn name(&self) -> String {
            "eager-test".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
            ctx.start(id);
        }
    }

    fn base() -> Instance {
        Instance::new(vec![Job::adp(0.0, 2.0, 1.0), Job::adp(0.5, 3.0, 2.0)])
    }

    fn faulty_env(mode: EnvFaultMode, clairvoyance: Clairvoyance) -> FaultyEnvironment<StaticEnv> {
        FaultyEnvironment::new(StaticEnv::new(&base(), clairvoyance), mode)
    }

    #[test]
    fn every_env_fault_mode_completes_without_env_fault() {
        for mode in EnvFaultMode::ALL {
            for cl in [
                Clairvoyance::Clairvoyant,
                Clairvoyance::NonClairvoyant,
                Clairvoyance::ClassOnly,
            ] {
                let out = run(faulty_env(mode, cl), EagerTest);
                assert_eq!(
                    out.termination,
                    Termination::Completed,
                    "{mode} under {cl:?}: {}",
                    out.termination
                );
                assert!(out.unresolved.is_empty(), "{mode} under {cl:?}");
                assert!(
                    out.schedule.validate(&out.instance).is_ok(),
                    "{mode} under {cl:?}"
                );
            }
        }
    }

    #[test]
    fn deferred_rulings_actually_defer() {
        let out = run(
            faulty_env(EnvFaultMode::DeferredRulings, Clairvoyance::NonClairvoyant),
            EagerTest,
        );
        assert_eq!(out.termination, Termination::Completed);
        // 2 base jobs + 2 waves × 2 adaptive jobs.
        assert_eq!(out.instance.len(), 6);
        // Each adaptive job burns MAX_DEFERRALS probe events on top of the
        // usual release/start/completion traffic.
        assert!(out.events_processed > 6 * 2);
    }

    #[test]
    fn precision_loss_yields_zero_width_intervals() {
        let out = run(
            faulty_env(EnvFaultMode::PrecisionLoss, Clairvoyance::Clairvoyant),
            EagerTest,
        );
        assert_eq!(out.termination, Termination::Completed);
        // The injected jobs start at 10¹⁵ where their 10⁻³ lengths vanish
        // below the ulp: completion == start, and the span contribution of
        // those jobs is exactly zero.
        let injected_start = t(1.0e15);
        assert!(out
            .instance
            .iter()
            .any(|(id, _)| out.schedule.start(id) == Some(injected_start)));
    }

    #[test]
    fn every_sched_fault_mode_is_absorbed() {
        for mode in SchedFaultMode::ALL {
            let out = run(
                StaticEnv::new(&base(), Clairvoyance::Clairvoyant),
                ChaosScheduler::new(EagerTest, mode),
            );
            assert_eq!(out.termination, Termination::Completed, "{mode}");
            assert!(out.schedule.is_complete(), "{mode}: every job still runs");
            assert!(out.schedule.validate(&out.instance).is_ok(), "{mode}");
            match mode {
                SchedFaultMode::DropStarts
                | SchedFaultMode::DelayPastDeadline
                | SchedFaultMode::TimeTravelStart => {
                    assert!(!out.violations.is_empty(), "{mode}: force-starts expected");
                }
                SchedFaultMode::DuplicateStarts | SchedFaultMode::StartNonPending => {
                    assert!(
                        !out.rejected_actions.is_empty(),
                        "{mode}: rejections expected"
                    );
                    assert!(out.violations.is_empty(), "{mode}: originals still honored");
                }
                SchedFaultMode::WakeupStorm => {
                    assert!(out.violations.is_empty(), "{mode}");
                }
            }
        }
    }

    #[test]
    fn wakeup_storm_is_budget_bounded() {
        let out = run(
            StaticEnv::new(&base(), Clairvoyance::Clairvoyant),
            ChaosScheduler::new(EagerTest, SchedFaultMode::WakeupStorm),
        );
        assert_eq!(out.termination, Termination::Completed);
        // Budget caps the storm: well under the default event cap.
        assert!(
            out.events_processed < 1_000,
            "storm not bounded: {}",
            out.events_processed
        );
    }

    #[test]
    fn chaos_on_faulty_env_cross_product_is_sound() {
        for env_mode in EnvFaultMode::ALL {
            for sched_mode in SchedFaultMode::ALL {
                let out = run(
                    faulty_env(env_mode, Clairvoyance::Clairvoyant),
                    ChaosScheduler::new(EagerTest, sched_mode),
                );
                assert!(
                    !matches!(out.termination, Termination::EnvironmentFault(_)),
                    "{env_mode} × {sched_mode}: legal env misreported: {}",
                    out.termination
                );
                assert_eq!(
                    out.termination,
                    Termination::Completed,
                    "{env_mode} × {sched_mode}"
                );
                assert!(
                    out.schedule.validate(&out.instance).is_ok(),
                    "{env_mode} × {sched_mode}"
                );
            }
        }
    }
}
