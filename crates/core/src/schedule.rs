//! Schedules: assignments of start times to jobs, span computation, and
//! independent feasibility validation.

use crate::interval::{Interval, IntervalSet};
use crate::job::{Instance, JobId};
use crate::time::{Dur, Time};
use std::fmt;

/// A (possibly partial) assignment of start times to the jobs of an
/// [`Instance`]. Produced by the simulation engine or constructed directly
/// (e.g. the paper's prescribed near-optimal schedules).
#[derive(Clone, Default, PartialEq, Debug)]
pub struct Schedule {
    starts: Vec<Option<Time>>,
}

impl Schedule {
    /// An empty schedule for `n` jobs.
    pub fn with_len(n: usize) -> Self {
        Schedule {
            starts: vec![None; n],
        }
    }

    /// Builds a schedule from explicit `(JobId, start)` pairs for an
    /// instance of `n` jobs.
    ///
    /// # Panics
    /// Panics on out-of-range ids or duplicate assignments.
    #[track_caller]
    pub fn from_starts(n: usize, pairs: impl IntoIterator<Item = (JobId, Time)>) -> Self {
        let mut s = Schedule::with_len(n);
        for (id, start) in pairs {
            s.set_start(id, start);
        }
        s
    }

    /// Number of job slots.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether there are no job slots.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Assigns a start time.
    ///
    /// # Panics
    /// Panics if the job already has a start time (starts are immutable:
    /// jobs run non-preemptively) or the id is out of range.
    #[track_caller]
    pub fn set_start(&mut self, id: JobId, start: Time) {
        let slot = &mut self.starts[id.index()];
        assert!(slot.is_none(), "job {id} started twice");
        *slot = Some(start);
    }

    /// The start time of a job, if assigned.
    pub fn start(&self, id: JobId) -> Option<Time> {
        self.starts[id.index()]
    }

    /// Number of jobs with an assigned start.
    pub fn num_started(&self) -> usize {
        self.starts.iter().filter(|s| s.is_some()).count()
    }

    /// Whether every job has a start time.
    pub fn is_complete(&self) -> bool {
        self.starts.iter().all(|s| s.is_some())
    }

    /// Active interval of a job under this schedule (requires the instance
    /// for the length), if started.
    pub fn active_interval(&self, inst: &Instance, id: JobId) -> Option<Interval> {
        self.start(id).map(|s| inst.job(id).active_interval_at(s))
    }

    /// The union of all active intervals.
    pub fn busy_set(&self, inst: &Instance) -> IntervalSet {
        assert_eq!(
            self.starts.len(),
            inst.len(),
            "schedule/instance size mismatch"
        );
        inst.iter()
            .filter_map(|(id, job)| self.start(id).map(|s| job.active_interval_at(s)))
            .collect()
    }

    /// The span: total measure of the union of active intervals.
    pub fn span(&self, inst: &Instance) -> Dur {
        self.busy_set(inst).measure()
    }

    /// Validates the schedule against the instance. A *valid* schedule
    /// starts every job within its `[a(J), d(J)]` window.
    pub fn validate(&self, inst: &Instance) -> Result<(), ScheduleError> {
        if self.starts.len() != inst.len() {
            return Err(ScheduleError::SizeMismatch {
                schedule: self.starts.len(),
                instance: inst.len(),
            });
        }
        for (id, job) in inst.iter() {
            match self.start(id) {
                None => return Err(ScheduleError::Unstarted(id)),
                Some(s) if s < job.arrival() => {
                    return Err(ScheduleError::StartedBeforeArrival { id, start: s })
                }
                Some(s) if s > job.deadline() => {
                    return Err(ScheduleError::MissedDeadline { id, start: s })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

/// Why a schedule is infeasible for an instance.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ScheduleError {
    /// Schedule and instance disagree on the number of jobs.
    SizeMismatch {
        /// Slots in the schedule.
        schedule: usize,
        /// Jobs in the instance.
        instance: usize,
    },
    /// A job was never started.
    Unstarted(JobId),
    /// A job was started before its arrival.
    StartedBeforeArrival {
        /// The offending job.
        id: JobId,
        /// Its assigned start.
        start: Time,
    },
    /// A job was started after its starting deadline.
    MissedDeadline {
        /// The offending job.
        id: JobId,
        /// Its assigned start.
        start: Time,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::SizeMismatch { schedule, instance } => {
                write!(
                    f,
                    "schedule has {schedule} slots but instance has {instance} jobs"
                )
            }
            ScheduleError::Unstarted(id) => write!(f, "job {id} was never started"),
            ScheduleError::StartedBeforeArrival { id, start } => {
                write!(f, "job {id} started at {start}, before its arrival")
            }
            ScheduleError::MissedDeadline { id, start } => {
                write!(
                    f,
                    "job {id} started at {start}, after its starting deadline"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::time::{dur, t};

    fn inst3() -> Instance {
        Instance::new(vec![
            Job::adp(0.0, 2.0, 1.0),
            Job::adp(0.0, 5.0, 2.0),
            Job::adp(4.0, 8.0, 1.0),
        ])
    }

    #[test]
    fn span_of_overlapping_schedule() {
        let inst = inst3();
        // Start J0 at 1, J1 at 1, J2 at 4: union = [1,3) ∪ [4,5) → span 3.
        let s = Schedule::from_starts(
            3,
            [(JobId(0), t(1.0)), (JobId(1), t(1.0)), (JobId(2), t(4.0))],
        );
        assert_eq!(s.span(&inst), dur(3.0));
        assert!(s.validate(&inst).is_ok());
        assert!(s.is_complete());
    }

    #[test]
    fn span_counts_gaps_correctly() {
        let inst = inst3();
        let s = Schedule::from_starts(
            3,
            [(JobId(0), t(0.0)), (JobId(1), t(2.0)), (JobId(2), t(8.0))],
        );
        // [0,1) ∪ [2,4) ∪ [8,9) → 4.
        assert_eq!(s.span(&inst), dur(4.0));
        assert_eq!(s.busy_set(&inst).num_segments(), 3);
    }

    #[test]
    fn partial_schedule_span_ignores_unstarted() {
        let inst = inst3();
        let mut s = Schedule::with_len(3);
        s.set_start(JobId(1), t(0.0));
        assert_eq!(s.span(&inst), dur(2.0));
        assert_eq!(s.num_started(), 1);
        assert!(!s.is_complete());
        assert_eq!(s.validate(&inst), Err(ScheduleError::Unstarted(JobId(0))));
    }

    #[test]
    fn validation_catches_early_start() {
        let inst = inst3();
        let s = Schedule::from_starts(
            3,
            [(JobId(0), t(0.0)), (JobId(1), t(0.0)), (JobId(2), t(3.0))],
        );
        assert_eq!(
            s.validate(&inst),
            Err(ScheduleError::StartedBeforeArrival {
                id: JobId(2),
                start: t(3.0)
            })
        );
    }

    #[test]
    fn validation_catches_missed_deadline() {
        let inst = inst3();
        let s = Schedule::from_starts(
            3,
            [(JobId(0), t(2.5)), (JobId(1), t(0.0)), (JobId(2), t(4.0))],
        );
        assert_eq!(
            s.validate(&inst),
            Err(ScheduleError::MissedDeadline {
                id: JobId(0),
                start: t(2.5)
            })
        );
    }

    #[test]
    fn validation_catches_size_mismatch() {
        let inst = inst3();
        let s = Schedule::with_len(2);
        assert_eq!(
            s.validate(&inst),
            Err(ScheduleError::SizeMismatch {
                schedule: 2,
                instance: 3
            })
        );
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_start_panics() {
        let mut s = Schedule::with_len(1);
        s.set_start(JobId(0), t(0.0));
        s.set_start(JobId(0), t(1.0));
    }

    #[test]
    fn active_interval_lookup() {
        let inst = inst3();
        let s = Schedule::from_starts(3, [(JobId(1), t(3.0))]);
        assert_eq!(
            s.active_interval(&inst, JobId(1)),
            Some(Interval::new(t(3.0), t(5.0)))
        );
        assert_eq!(s.active_interval(&inst, JobId(0)), None);
    }

    #[test]
    fn error_display_messages() {
        let e = ScheduleError::MissedDeadline {
            id: JobId(3),
            start: t(9.0),
        };
        assert!(e.to_string().contains("J3"));
        assert!(e.to_string().contains("starting deadline"));
    }
}
