//! Jobs and problem instances.
//!
//! Following the paper's notation, a job `J` has an arrival time `a(J)`, a
//! *starting deadline* `d(J)` (the latest allowed start, not a completion
//! deadline) and a processing length `p(J)`. `d(J) − a(J)` is the *laxity*.

use crate::interval::Interval;
use crate::time::{Dur, Time};
use std::fmt;

/// Why a job's parameters are invalid (the error side of [`Job::try_new`]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum JobError {
    /// A parameter is NaN or infinite.
    NonFinite {
        /// Which parameter (`"arrival"`, `"deadline"` or `"length"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The starting deadline precedes the arrival.
    DeadlineBeforeArrival {
        /// Arrival time.
        arrival: f64,
        /// Starting deadline.
        deadline: f64,
    },
    /// The processing length is zero or negative.
    NonPositiveLength {
        /// The offending length.
        length: f64,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::NonFinite { what, value } => {
                write!(f, "{what} must be finite, got {value}")
            }
            JobError::DeadlineBeforeArrival { arrival, deadline } => {
                write!(f, "starting deadline {deadline} precedes arrival {arrival}")
            }
            JobError::NonPositiveLength { length } => {
                write!(f, "processing length must be positive, got {length}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// A [`JobError`] located at a job index (the error side of
/// [`Instance::try_new`]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct InstanceError {
    /// Index of the offending job in the input sequence.
    pub index: usize,
    /// What was wrong with it.
    pub error: JobError,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {}: {}", self.index, self.error)
    }
}

impl std::error::Error for InstanceError {}

/// Dense job identifier: index into an [`Instance`] (or, during simulation,
/// release order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u32);

impl JobId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// A fully specified job (length known to the *instance*, though not
/// necessarily to the scheduler).
///
/// ```
/// use fjs_core::job::Job;
/// use fjs_core::time::{t, dur};
///
/// let j = Job::adp(1.0, 4.0, 2.0); // arrives at 1, must start by 4, runs 2
/// assert_eq!(j.laxity(), dur(3.0));
/// assert_eq!(j.latest_completion(), t(6.0));
/// assert!(j.can_start_at(t(4.0)) && !j.can_start_at(t(4.5)));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Job {
    arrival: Time,
    deadline: Time,
    length: Dur,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    /// Panics unless `arrival <= deadline` and `length > 0`.
    #[track_caller]
    pub fn new(arrival: Time, deadline: Time, length: Dur) -> Self {
        assert!(
            arrival <= deadline,
            "starting deadline {deadline} precedes arrival {arrival}"
        );
        assert!(
            length.is_positive(),
            "processing length must be positive, got {length}"
        );
        Job {
            arrival,
            deadline,
            length,
        }
    }

    /// Fallible constructor: like [`Job::new`] but returns a typed error
    /// instead of panicking, for jobs built from untrusted data (trace
    /// files, network input, fault injectors).
    pub fn try_new(arrival: Time, deadline: Time, length: Dur) -> Result<Self, JobError> {
        if deadline < arrival {
            return Err(JobError::DeadlineBeforeArrival {
                arrival: arrival.get(),
                deadline: deadline.get(),
            });
        }
        if !length.is_positive() {
            return Err(JobError::NonPositiveLength {
                length: length.get(),
            });
        }
        Ok(Job {
            arrival,
            deadline,
            length,
        })
    }

    /// Convenience constructor from raw `f64`s: `(a, d, p)`.
    #[track_caller]
    pub fn adp(arrival: f64, deadline: f64, length: f64) -> Self {
        Job::new(Time::new(arrival), Time::new(deadline), Dur::new(length))
    }

    /// Fallible twin of [`Job::adp`]: validates finiteness *before*
    /// constructing [`Time`]/[`Dur`] values, so NaN or infinite fields from
    /// untrusted sources surface as a [`JobError`] rather than a panic.
    pub fn try_adp(arrival: f64, deadline: f64, length: f64) -> Result<Self, JobError> {
        for (what, v) in [
            ("arrival", arrival),
            ("deadline", deadline),
            ("length", length),
        ] {
            if !v.is_finite() {
                return Err(JobError::NonFinite { what, value: v });
            }
        }
        Job::try_new(Time::new(arrival), Time::new(deadline), Dur::new(length))
    }

    /// A *rigid* job (zero laxity: must start at its arrival).
    #[track_caller]
    pub fn rigid(arrival: Time, length: Dur) -> Self {
        Job::new(arrival, arrival, length)
    }

    /// Builds a job from the *busy-time literature's* convention — a
    /// release time and a **completion deadline** `D` (the job must finish
    /// by `D`) — converting to this crate's starting-deadline convention
    /// via `d = D − p`. This is the equivalence the paper's concluding
    /// remarks use to relate Clairvoyant FJS to online busy-time
    /// scheduling with unbounded capacity (Koehler & Khuller).
    ///
    /// # Panics
    /// Panics unless the window admits the job (`D − p ≥ arrival`) and
    /// `p > 0`.
    #[track_caller]
    pub fn with_completion_deadline(arrival: Time, completion_deadline: Time, length: Dur) -> Self {
        Job::new(arrival, completion_deadline - length, length)
    }

    /// Arrival time `a(J)`.
    #[inline]
    pub fn arrival(&self) -> Time {
        self.arrival
    }

    /// Starting deadline `d(J)` (latest allowed start).
    #[inline]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Processing length `p(J)`.
    #[inline]
    pub fn length(&self) -> Dur {
        self.length
    }

    /// Laxity `d(J) − a(J)`.
    #[inline]
    pub fn laxity(&self) -> Dur {
        self.deadline - self.arrival
    }

    /// The window of feasible start times `[a(J), d(J)]`.
    #[inline]
    pub fn start_window(&self) -> (Time, Time) {
        (self.arrival, self.deadline)
    }

    /// Whether `s` is a feasible start time for this job.
    #[inline]
    pub fn can_start_at(&self, s: Time) -> bool {
        self.arrival <= s && s <= self.deadline
    }

    /// Latest possible completion time `d(J) + p(J)`.
    #[inline]
    pub fn latest_completion(&self) -> Time {
        self.deadline + self.length
    }

    /// The *mandatory part* of the job: the interval covered by every
    /// feasible placement, `[d(J), a(J)+p(J))` (empty when the laxity is at
    /// least `p(J)`).
    pub fn mandatory_part(&self) -> Option<Interval> {
        let lo = self.deadline;
        let hi = self.arrival + self.length;
        (lo < hi).then(|| Interval::new(lo, hi))
    }

    /// Active interval when started at `s`.
    #[track_caller]
    pub fn active_interval_at(&self, s: Time) -> Interval {
        Interval::active(s, self.length)
    }

    /// Whether the active intervals of `self` and `other` can never overlap
    /// under *any* scheduler: `other` arrives no earlier than the latest
    /// possible completion of `self`, or vice versa. This is the
    /// non-overlappability relation that powers every optimal-span lower
    /// bound in the paper.
    pub fn never_overlaps(&self, other: &Job) -> bool {
        other.arrival >= self.latest_completion() || self.arrival >= other.latest_completion()
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(a={}, d={}, p={})",
            self.arrival, self.deadline, self.length
        )
    }
}

/// A static problem instance: a finite set of jobs with known lengths.
///
/// Jobs need not be sorted; [`Instance::new`] keeps the given order so that
/// `JobId(i)` always refers to the `i`-th job, but iteration helpers provide
/// arrival order where needed.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct Instance {
    jobs: Vec<Job>,
}

impl Instance {
    /// Creates an instance from a list of jobs.
    pub fn new(jobs: Vec<Job>) -> Self {
        Instance { jobs }
    }

    /// The empty instance.
    pub fn empty() -> Self {
        Instance::default()
    }

    /// Fallible constructor from raw `(arrival, deadline, length)` triples,
    /// rejecting NaN/infinite fields, non-positive lengths and deadlines
    /// before arrivals with the index of the first offending job. This is
    /// the entry point for instances built from untrusted data.
    pub fn try_new<I>(triples: I) -> Result<Self, InstanceError>
    where
        I: IntoIterator<Item = (f64, f64, f64)>,
    {
        let mut jobs = Vec::new();
        for (index, (a, d, p)) in triples.into_iter().enumerate() {
            jobs.push(Job::try_adp(a, d, p).map_err(|error| InstanceError { index, error })?);
        }
        Ok(Instance { jobs })
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the instance has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The job with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[track_caller]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// All jobs, in id order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// `(id, job)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &Job)> {
        self.jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (JobId(i as u32), j))
    }

    /// Job ids sorted by `(arrival, id)`.
    pub fn ids_by_arrival(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = (0..self.jobs.len() as u32).map(JobId).collect();
        ids.sort_by_key(|id| (self.job(*id).arrival(), *id));
        ids
    }

    /// Appends a job and returns its id.
    pub fn push(&mut self, job: Job) -> JobId {
        let id = JobId(self.jobs.len() as u32);
        self.jobs.push(job);
        id
    }

    /// The max/min processing-length ratio `μ` of the instance.
    ///
    /// Returns `None` for an empty instance; `Some(1.0)` for uniform lengths.
    pub fn mu(&self) -> Option<f64> {
        let max = self.jobs.iter().map(|j| j.length()).max()?;
        let min = self.jobs.iter().map(|j| j.length()).min()?;
        // Lengths are strictly positive by construction, so the checked
        // ratio only falls back for degenerate float underflow.
        max.checked_ratio(min)
    }

    /// Total processing length `Σ p(J)`.
    pub fn total_work(&self) -> Dur {
        self.jobs.iter().map(|j| j.length()).sum()
    }

    /// Maximum processing length.
    pub fn max_length(&self) -> Option<Dur> {
        self.jobs.iter().map(|j| j.length()).max()
    }

    /// Minimum processing length.
    pub fn min_length(&self) -> Option<Dur> {
        self.jobs.iter().map(|j| j.length()).min()
    }

    /// The common processing length of a **uniform** instance (all jobs the
    /// same length), or `None` for an empty or mixed-length instance. This
    /// is the regime of the uniform-jobs successor paper (Liu, Khuller &
    /// Tang), where `μ = 1` and every length-dependent bound of the seed
    /// paper degenerates.
    pub fn uniform_length(&self) -> Option<Dur> {
        let first = self.jobs.first()?.length();
        self.jobs
            .iter()
            .all(|j| j.length() == first)
            .then_some(first)
    }

    /// Whether every job has the same processing length (nonempty).
    pub fn is_uniform(&self) -> bool {
        self.uniform_length().is_some()
    }

    /// Maximum laxity `max_J d(J) − a(J)` over the instance.
    pub fn max_laxity(&self) -> Option<Dur> {
        self.jobs.iter().map(|j| j.laxity()).max()
    }

    /// The **normalized laxity** `λ = max_J laxity(J) / p` of a uniform
    /// instance: how many job lengths the most flexible job may be delayed.
    /// `None` when the instance is empty or mixed-length. Scale-invariant
    /// (both numerator and denominator scale together), which is what makes
    /// the uniform family's `1 + λ` guarantees survive the scaling
    /// metamorphic oracle.
    pub fn uniform_laxity_ratio(&self) -> Option<f64> {
        let p = self.uniform_length()?;
        self.max_laxity()?.checked_ratio(p)
    }

    /// Earliest arrival.
    pub fn first_arrival(&self) -> Option<Time> {
        self.jobs.iter().map(|j| j.arrival()).min()
    }

    /// Latest possible completion over all jobs (`max d(J)+p(J)`), i.e. an
    /// upper bound on the time horizon any feasible schedule can touch.
    pub fn horizon(&self) -> Option<Time> {
        self.jobs.iter().map(|j| j.latest_completion()).max()
    }
}

impl FromIterator<Job> for Instance {
    fn from_iter<I: IntoIterator<Item = Job>>(iter: I) -> Self {
        Instance::new(iter.into_iter().collect())
    }
}

impl std::ops::Index<JobId> for Instance {
    type Output = Job;
    fn index(&self, id: JobId) -> &Job {
        self.job(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{dur, t};

    #[test]
    fn job_accessors() {
        let j = Job::adp(1.0, 4.0, 2.0);
        assert_eq!(j.arrival(), t(1.0));
        assert_eq!(j.deadline(), t(4.0));
        assert_eq!(j.length(), dur(2.0));
        assert_eq!(j.laxity(), dur(3.0));
        assert_eq!(j.latest_completion(), t(6.0));
        assert!(j.can_start_at(t(1.0)));
        assert!(j.can_start_at(t(4.0)));
        assert!(!j.can_start_at(t(4.5)));
        assert!(!j.can_start_at(t(0.5)));
    }

    #[test]
    fn completion_deadline_conversion() {
        // Busy-time convention: finish by 10, length 3 → may start until 7.
        let j = Job::with_completion_deadline(t(2.0), t(10.0), dur(3.0));
        assert_eq!(j.deadline(), t(7.0));
        assert_eq!(j.latest_completion(), t(10.0));
        // Tight window: must start immediately.
        let tight = Job::with_completion_deadline(t(2.0), t(5.0), dur(3.0));
        assert_eq!(tight.laxity(), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "precedes arrival")]
    fn completion_deadline_too_tight_rejected() {
        let _ = Job::with_completion_deadline(t(2.0), t(4.0), dur(3.0));
    }

    #[test]
    fn rigid_job_has_zero_laxity() {
        let j = Job::rigid(t(2.0), dur(5.0));
        assert_eq!(j.laxity(), Dur::ZERO);
        assert_eq!(j.deadline(), t(2.0));
    }

    #[test]
    #[should_panic(expected = "precedes arrival")]
    fn deadline_before_arrival_rejected() {
        let _ = Job::adp(2.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_length_rejected() {
        let _ = Job::adp(0.0, 1.0, 0.0);
    }

    #[test]
    fn try_constructors_reject_invalid_jobs() {
        assert!(Job::try_adp(1.0, 4.0, 2.0).is_ok());
        assert!(matches!(
            Job::try_adp(f64::NAN, 4.0, 2.0),
            Err(JobError::NonFinite {
                what: "arrival",
                ..
            })
        ));
        assert!(matches!(
            Job::try_adp(0.0, f64::INFINITY, 1.0),
            Err(JobError::NonFinite {
                what: "deadline",
                ..
            })
        ));
        assert_eq!(
            Job::try_adp(2.0, 1.0, 1.0),
            Err(JobError::DeadlineBeforeArrival {
                arrival: 2.0,
                deadline: 1.0
            })
        );
        assert_eq!(
            Job::try_adp(0.0, 1.0, 0.0),
            Err(JobError::NonPositiveLength { length: 0.0 })
        );
        assert_eq!(
            Job::try_new(t(0.0), t(1.0), dur(-3.0)),
            Err(JobError::NonPositiveLength { length: -3.0 })
        );
    }

    #[test]
    fn instance_try_new_locates_the_bad_job() {
        let ok = Instance::try_new([(0.0, 2.0, 1.0), (1.0, 5.0, 2.0)]).unwrap();
        assert_eq!(ok.len(), 2);
        let err = Instance::try_new([(0.0, 2.0, 1.0), (3.0, 1.0, 1.0)]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(err.error, JobError::DeadlineBeforeArrival { .. }));
        assert!(err.to_string().contains("job 1"));
    }

    #[test]
    fn mandatory_part() {
        // Laxity 1 < p = 3 → mandatory part [d, a+p) = [1, 3).
        let j = Job::adp(0.0, 1.0, 3.0);
        assert_eq!(j.mandatory_part(), Some(Interval::new(t(1.0), t(3.0))));
        // Laxity 5 >= p = 3 → no mandatory part.
        let j2 = Job::adp(0.0, 5.0, 3.0);
        assert_eq!(j2.mandatory_part(), None);
        // Laxity exactly p → empty mandatory part.
        let j3 = Job::adp(0.0, 3.0, 3.0);
        assert_eq!(j3.mandatory_part(), None);
    }

    #[test]
    fn never_overlaps_relation() {
        let early = Job::adp(0.0, 1.0, 2.0); // latest completion 3
        let late = Job::adp(3.0, 10.0, 1.0);
        assert!(early.never_overlaps(&late));
        assert!(late.never_overlaps(&early), "relation is symmetric");
        let mid = Job::adp(2.5, 10.0, 1.0);
        assert!(
            !early.never_overlaps(&mid),
            "arrives before latest completion"
        );
    }

    #[test]
    fn instance_stats() {
        let inst = Instance::new(vec![
            Job::adp(0.0, 0.0, 1.0),
            Job::adp(1.0, 5.0, 4.0),
            Job::adp(2.0, 3.0, 2.0),
        ]);
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.mu(), Some(4.0));
        assert_eq!(inst.total_work(), dur(7.0));
        assert_eq!(inst.max_length(), Some(dur(4.0)));
        assert_eq!(inst.min_length(), Some(dur(1.0)));
        assert_eq!(inst.first_arrival(), Some(t(0.0)));
        assert_eq!(inst.horizon(), Some(t(9.0)));
        assert_eq!(inst[JobId(1)].length(), dur(4.0));
    }

    #[test]
    fn uniform_helpers() {
        let uniform = Instance::new(vec![
            Job::adp(0.0, 0.0, 2.0),
            Job::adp(1.0, 7.0, 2.0),
            Job::adp(3.0, 5.0, 2.0),
        ]);
        assert!(uniform.is_uniform());
        assert_eq!(uniform.uniform_length(), Some(dur(2.0)));
        assert_eq!(uniform.max_laxity(), Some(dur(6.0)));
        // λ = 6 / 2.
        assert_eq!(uniform.uniform_laxity_ratio(), Some(3.0));

        let mixed = Instance::new(vec![Job::adp(0.0, 1.0, 1.0), Job::adp(0.0, 1.0, 2.0)]);
        assert!(!mixed.is_uniform());
        assert_eq!(mixed.uniform_length(), None);
        assert_eq!(mixed.uniform_laxity_ratio(), None);
        assert_eq!(mixed.max_laxity(), Some(dur(1.0)));

        assert_eq!(Instance::empty().uniform_length(), None);
        assert_eq!(Instance::empty().uniform_laxity_ratio(), None);
    }

    #[test]
    fn empty_instance_stats() {
        let inst = Instance::empty();
        assert!(inst.is_empty());
        assert_eq!(inst.mu(), None);
        assert_eq!(inst.horizon(), None);
        assert_eq!(inst.total_work(), Dur::ZERO);
    }

    #[test]
    fn ids_by_arrival_breaks_ties_by_id() {
        let inst = Instance::new(vec![
            Job::adp(5.0, 6.0, 1.0),
            Job::adp(0.0, 1.0, 1.0),
            Job::adp(0.0, 2.0, 1.0),
        ]);
        assert_eq!(inst.ids_by_arrival(), vec![JobId(1), JobId(2), JobId(0)]);
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut inst = Instance::empty();
        assert_eq!(inst.push(Job::adp(0.0, 1.0, 1.0)), JobId(0));
        assert_eq!(inst.push(Job::adp(1.0, 2.0, 1.0)), JobId(1));
        assert_eq!(inst.len(), 2);
    }
}
