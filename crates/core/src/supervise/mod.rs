//! Supervised runs: watchdog budgets, panic isolation, deterministic
//! retry with exponential backoff, and a crash-safe checkpoint journal.
//!
//! The simulation engine already degrades through typed errors instead of
//! aborting, but a long sweep needs more: a *poisoned* scheduler that spins
//! forever or panics outright must be contained so the sweep continues, a
//! transient environment fault should be retried rather than failing the
//! whole cell, and a killed process must be able to resume without redoing
//! finished work. [`supervise`] provides the first two, [`journal`] the
//! third.
//!
//! Everything here is deterministic: the retry backoff jitter is drawn from
//! a seeded [`fjs_prng::SmallRng`], the watchdog is an *event* budget (not
//! wall clock), and the journal serializes its sorted entry set — so a
//! supervised sweep is a pure function of its configuration, kills and all.
//!
//! A note on scope: the watchdog bounds *engine events*, which contains
//! every runaway loop expressible through the engine (wakeup storms,
//! re-probe loops). A scheduler that blocks the thread without returning —
//! `loop {}` inside a callback — cannot be preempted from safe Rust; that
//! failure mode needs process-level supervision, which is what the
//! journal's kill-and-resume discipline is for.

pub mod journal;

pub use journal::{Cell, CellResult, Journal, JournalError, JOURNAL_VERSION};

use crate::job::JobId;
use crate::sim::{
    run_with_config, Arrival, Ctx, EnvFault, Environment, OnlineScheduler, SimConfig, SimOutcome,
    Termination,
};
use fjs_prng::SmallRng;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default watchdog event budget: generous for real schedulers on sweep
/// instances, tight enough to cut off a wakeup storm in well under a second.
pub const DEFAULT_WATCHDOG_EVENTS: usize = 1_000_000;

/// Deterministic exponential-backoff retry policy for transient
/// environment faults (see [`EnvFault::is_transient`]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RetryPolicy {
    /// Maximum number of retries after the first attempt.
    pub max_retries: u32,
    /// Base delay; attempt `k` backs off `base_delay_ms · 2^k`, jittered.
    pub base_delay_ms: u64,
    /// Jitter half-width as a fraction of the delay: the realized delay is
    /// uniform in `[(1 − f)·d, (1 + f)·d]`.
    pub jitter_frac: f64,
    /// Seed for the jitter stream; same seed → same ledger.
    pub seed: u64,
    /// Whether to actually sleep the backoff delay. Off by default so
    /// simulated sweeps stay fast; the ledger records the delay either way.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay_ms: 25,
            jitter_frac: 0.5,
            seed: 0x5EED_BACC_0FF5_EED5,
            sleep: false,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff delay for retry number `attempt` (0-based),
    /// drawing jitter from `rng`.
    pub fn backoff_ms(&self, attempt: u32, rng: &mut SmallRng) -> u64 {
        let base = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let f = self.jitter_frac.clamp(0.0, 1.0);
        let factor = 1.0 + f * (2.0 * rng.f64_unit() - 1.0);
        ((base as f64) * factor).round().max(0.0) as u64
    }
}

/// Configuration for [`supervise`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SuperviseConfig {
    /// Watchdog: the run is cut off after this many engine events and
    /// reported as [`SuperviseVerdict::TimedOut`].
    pub watchdog_events: usize,
    /// Retry policy for transient environment faults.
    pub retry: RetryPolicy,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            watchdog_events: DEFAULT_WATCHDOG_EVENTS,
            retry: RetryPolicy::default(),
        }
    }
}

/// One retry the supervisor spent, recorded in the ledger.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RetryRecord {
    /// 0-based index of the attempt that faulted.
    pub attempt: u32,
    /// The transient fault that triggered the retry.
    pub fault: EnvFault,
    /// The (jittered) backoff delay charged before the next attempt.
    pub backoff_ms: u64,
}

/// How a supervised run ended.
#[derive(Clone, PartialEq, Debug)]
pub enum SuperviseVerdict {
    /// The run drained naturally.
    Completed,
    /// The watchdog event budget cut the run off (runaway scheduler or
    /// environment loop).
    TimedOut {
        /// Events processed when the budget ran out.
        events: usize,
    },
    /// The scheduler (or environment) panicked; the panic was contained.
    Panicked {
        /// The panic payload, rendered.
        message: String,
    },
    /// A non-transient environment fault, or a transient one that survived
    /// every retry.
    Faulted {
        /// The final fault.
        fault: EnvFault,
    },
}

impl SuperviseVerdict {
    /// Stable lowercase label (used in journals and reports).
    pub fn label(&self) -> &'static str {
        match self {
            SuperviseVerdict::Completed => "completed",
            SuperviseVerdict::TimedOut { .. } => "timed-out",
            SuperviseVerdict::Panicked { .. } => "panicked",
            SuperviseVerdict::Faulted { .. } => "faulted",
        }
    }

    /// Whether the run drained naturally.
    pub fn is_completed(&self) -> bool {
        matches!(self, SuperviseVerdict::Completed)
    }
}

impl fmt::Display for SuperviseVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperviseVerdict::Completed => write!(f, "completed"),
            SuperviseVerdict::TimedOut { events } => {
                write!(f, "timed out after {events} events")
            }
            SuperviseVerdict::Panicked { message } => write!(f, "panicked: {message}"),
            SuperviseVerdict::Faulted { fault } => write!(f, "faulted: {fault}"),
        }
    }
}

/// The outcome of a supervised run.
#[derive(Debug)]
pub struct Supervised {
    /// The typed verdict.
    pub verdict: SuperviseVerdict,
    /// The engine outcome of the final attempt. `None` only for
    /// [`SuperviseVerdict::Panicked`] (the unwound attempt's state is gone).
    pub outcome: Option<SimOutcome>,
    /// Attempts made (1 + retries taken).
    pub attempts: u32,
    /// The retry ledger, in order.
    pub retries: Vec<RetryRecord>,
}

/// Runs a scheduler under supervision.
///
/// `factory` builds a fresh `(environment, scheduler)` pair for attempt `k`
/// (0-based) — retries must not reuse consumed state. Each attempt runs
/// with the watchdog event budget under [`catch_unwind`], so a poisoned
/// subject is reported as a typed verdict instead of killing the caller:
///
/// * natural drain → [`SuperviseVerdict::Completed`];
/// * event budget exhausted → [`SuperviseVerdict::TimedOut`];
/// * panic → [`SuperviseVerdict::Panicked`] (payload rendered);
/// * environment fault → retried with exponential backoff while
///   [`EnvFault::is_transient`] and retries remain, else
///   [`SuperviseVerdict::Faulted`]; every retry lands in the ledger.
pub fn supervise<E, S>(
    mut factory: impl FnMut(u32) -> (E, S),
    config: &SuperviseConfig,
) -> Supervised
where
    E: Environment,
    S: OnlineScheduler,
{
    let mut rng = SmallRng::seed_from_u64(config.retry.seed);
    let mut retries: Vec<RetryRecord> = Vec::new();
    let mut attempt: u32 = 0;
    loop {
        let sim_config = SimConfig {
            max_events: config.watchdog_events,
            ..SimConfig::default()
        };
        let (env, sched) = factory(attempt);
        let run = catch_unwind(AssertUnwindSafe(|| run_with_config(env, sched, sim_config)));
        let attempts = attempt + 1;
        match run {
            Err(payload) => {
                return Supervised {
                    verdict: SuperviseVerdict::Panicked {
                        message: panic_message(payload.as_ref()),
                    },
                    outcome: None,
                    attempts,
                    retries,
                };
            }
            Ok(outcome) => match outcome.termination {
                Termination::Completed => {
                    return Supervised {
                        verdict: SuperviseVerdict::Completed,
                        outcome: Some(outcome),
                        attempts,
                        retries,
                    };
                }
                Termination::EventCapExhausted { events } => {
                    return Supervised {
                        verdict: SuperviseVerdict::TimedOut { events },
                        outcome: Some(outcome),
                        attempts,
                        retries,
                    };
                }
                Termination::EnvironmentFault(fault) => {
                    if fault.is_transient() && attempt < config.retry.max_retries {
                        let backoff_ms = config.retry.backoff_ms(attempt, &mut rng);
                        retries.push(RetryRecord {
                            attempt,
                            fault,
                            backoff_ms,
                        });
                        if config.retry.sleep && backoff_ms > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                        }
                        attempt += 1;
                        continue;
                    }
                    return Supervised {
                        verdict: SuperviseVerdict::Faulted { fault },
                        outcome: Some(outcome),
                        attempts,
                        retries,
                    };
                }
            },
        }
    }
}

/// Renders a panic payload: the `&str`/`String` message when there is one.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with the global panic hook silenced, restoring it afterwards.
///
/// Sweeps that *expect* contained panics (chaos matrices, poisoned-subject
/// soaks) use this so each caught panic doesn't spray a backtrace banner
/// over the report. The hook is global process state: don't wrap code that
/// runs concurrently with panics the user *does* want reported.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(previous);
    result
}

/// How a [`PoisonedScheduler`] misbehaves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PoisonMode {
    /// Panics on the first arrival.
    PanicOnArrival,
    /// Spins an unbounded same-instant wakeup loop — the engine-level
    /// analogue of a hang, contained by the watchdog event budget.
    HangWakeups,
}

impl PoisonMode {
    /// All poison modes.
    pub const ALL: [PoisonMode; 2] = [PoisonMode::PanicOnArrival, PoisonMode::HangWakeups];

    /// Stable label (`panic`, `hang`), the inverse of [`PoisonMode::from_label`].
    pub fn label(&self) -> &'static str {
        match self {
            PoisonMode::PanicOnArrival => "panic",
            PoisonMode::HangWakeups => "hang",
        }
    }

    /// Parses a label produced by [`PoisonMode::label`].
    pub fn from_label(label: &str) -> Option<PoisonMode> {
        PoisonMode::ALL.iter().copied().find(|m| m.label() == label)
    }
}

/// The wakeup token the hang poison spins on.
const POISON_TOKEN: u64 = u64::MAX - 0xB0;

/// A deliberately poisoned scheduler used to prove the watchdog contains
/// hung and panicking subjects (the supervision analogue of
/// [`crate::faults::ChaosScheduler`], which injects *contract* violations
/// rather than liveness failures).
pub struct PoisonedScheduler<S> {
    inner: S,
    mode: PoisonMode,
}

impl<S: OnlineScheduler> PoisonedScheduler<S> {
    /// Wraps `inner` with the given poison.
    pub fn new(inner: S, mode: PoisonMode) -> Self {
        PoisonedScheduler { inner, mode }
    }
}

impl<S: OnlineScheduler> OnlineScheduler for PoisonedScheduler<S> {
    fn name(&self) -> String {
        format!("Poisoned[{}]({})", self.mode.label(), self.inner.name())
    }

    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        match self.mode {
            PoisonMode::PanicOnArrival => {
                panic!(
                    "poisoned scheduler: injected panic on arrival of {}",
                    job.id
                )
            }
            PoisonMode::HangWakeups => {
                ctx.wake_at(ctx.now(), POISON_TOKEN);
                self.inner.on_arrival(job, ctx);
            }
        }
    }

    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        self.inner.on_deadline(id, ctx);
    }

    fn on_completion(&mut self, id: JobId, length: crate::time::Dur, ctx: &mut Ctx<'_>) {
        self.inner.on_completion(id, length, ctx);
    }

    fn on_wakeup(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == POISON_TOKEN {
            // Re-arm forever: the event budget, not this loop, ends the run.
            ctx.wake_at(ctx.now(), POISON_TOKEN);
        } else {
            self.inner.on_wakeup(token, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Instance, Job};
    use crate::sim::{Clairvoyance, StaticEnv, World};
    use crate::time::{t, Time};

    /// Starts every job the moment it arrives.
    struct Eager;
    impl OnlineScheduler for Eager {
        fn name(&self) -> String {
            "Eager".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
            ctx.start(id);
        }
    }

    fn small_instance() -> Instance {
        Instance::new(vec![Job::adp(0.0, 2.0, 1.0), Job::adp(1.0, 4.0, 2.0)])
    }

    /// A `StaticEnv` wrapper that reports a bogus past release time on the
    /// first `fail_for` attempts' first query — a transient
    /// `ReleaseInPast` fault.
    struct Flaky {
        inner: StaticEnv,
        poisoned: bool,
    }
    impl Environment for Flaky {
        fn clairvoyance(&self) -> Clairvoyance {
            self.inner.clairvoyance()
        }
        fn next_release_time(&mut self, world: &World) -> Option<Time> {
            if self.poisoned {
                return Some(t(-1.0));
            }
            self.inner.next_release_time(world)
        }
        fn release_at(&mut self, now: Time, world: &World) -> Vec<crate::sim::JobSpec> {
            self.inner.release_at(now, world)
        }
    }

    fn flaky_factory(fail_for: u32) -> impl FnMut(u32) -> (Flaky, Eager) {
        move |attempt| {
            let inner = StaticEnv::new(&small_instance(), Clairvoyance::Clairvoyant);
            (
                Flaky {
                    inner,
                    poisoned: attempt < fail_for,
                },
                Eager,
            )
        }
    }

    #[test]
    fn clean_run_completes_first_attempt() {
        let sup = supervise(flaky_factory(0), &SuperviseConfig::default());
        assert!(sup.verdict.is_completed(), "{}", sup.verdict);
        assert_eq!(sup.attempts, 1);
        assert!(sup.retries.is_empty());
        let outcome = sup.outcome.expect("completed runs carry an outcome");
        assert!(outcome.is_feasible());
    }

    #[test]
    fn transient_faults_are_retried_with_ledger() {
        let sup = supervise(flaky_factory(2), &SuperviseConfig::default());
        assert!(sup.verdict.is_completed(), "{}", sup.verdict);
        assert_eq!(sup.attempts, 3);
        assert_eq!(sup.retries.len(), 2);
        for (i, r) in sup.retries.iter().enumerate() {
            assert_eq!(r.attempt, i as u32);
            assert!(matches!(r.fault, EnvFault::ReleaseInPast { .. }));
            // Exponential envelope with ±50% jitter around 25·2^k.
            let nominal = 25u64 << r.attempt;
            assert!(
                r.backoff_ms >= nominal / 2 && r.backoff_ms <= nominal * 3 / 2,
                "backoff {} outside envelope of {nominal}",
                r.backoff_ms
            );
        }
    }

    #[test]
    fn retries_exhausted_is_faulted() {
        let config = SuperviseConfig {
            retry: RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
            ..SuperviseConfig::default()
        };
        let sup = supervise(flaky_factory(10), &config);
        assert!(matches!(
            sup.verdict,
            SuperviseVerdict::Faulted {
                fault: EnvFault::ReleaseInPast { .. }
            }
        ));
        assert_eq!(sup.attempts, 2);
        assert_eq!(sup.retries.len(), 1);
        assert_eq!(sup.verdict.label(), "faulted");
        assert!(
            sup.outcome.is_some(),
            "faulted runs keep the partial outcome"
        );
    }

    #[test]
    fn retry_ledger_is_deterministic() {
        let a = supervise(flaky_factory(3), &SuperviseConfig::default());
        let b = supervise(flaky_factory(3), &SuperviseConfig::default());
        assert_eq!(a.retries, b.retries);

        let other_seed = SuperviseConfig {
            retry: RetryPolicy {
                seed: 99,
                ..RetryPolicy::default()
            },
            ..SuperviseConfig::default()
        };
        let c = supervise(flaky_factory(3), &other_seed);
        assert_ne!(
            a.retries.iter().map(|r| r.backoff_ms).collect::<Vec<_>>(),
            c.retries.iter().map(|r| r.backoff_ms).collect::<Vec<_>>(),
            "different jitter seed must move the delays"
        );
    }

    #[test]
    fn panicking_scheduler_is_contained() {
        let sup = with_quiet_panics(|| {
            supervise(
                |_| {
                    let env = StaticEnv::new(&small_instance(), Clairvoyance::Clairvoyant);
                    (
                        env,
                        PoisonedScheduler::new(Eager, PoisonMode::PanicOnArrival),
                    )
                },
                &SuperviseConfig::default(),
            )
        });
        match &sup.verdict {
            SuperviseVerdict::Panicked { message } => {
                assert!(message.contains("injected panic"), "{message}");
            }
            other => panic!("expected Panicked, got {other}"),
        }
        assert_eq!(sup.verdict.label(), "panicked");
        assert_eq!(sup.attempts, 1, "panics are not retried");
    }

    #[test]
    fn hanging_scheduler_hits_watchdog() {
        let config = SuperviseConfig {
            watchdog_events: 5_000,
            ..SuperviseConfig::default()
        };
        let sup = supervise(
            |_| {
                let env = StaticEnv::new(&small_instance(), Clairvoyance::Clairvoyant);
                (env, PoisonedScheduler::new(Eager, PoisonMode::HangWakeups))
            },
            &config,
        );
        match sup.verdict {
            SuperviseVerdict::TimedOut { events } => assert_eq!(events, 5_000),
            ref other => panic!("expected TimedOut, got {other}"),
        }
        assert!(
            sup.outcome.is_some(),
            "timed-out runs keep the partial outcome"
        );
    }

    #[test]
    fn poison_mode_labels_round_trip() {
        for mode in PoisonMode::ALL {
            assert_eq!(PoisonMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(PoisonMode::from_label("nope"), None);
    }
}
