//! Crash-safe checkpoint journal for long sweeps (journal format v1).
//!
//! A [`Journal`] records one JSONL line per completed sweep **cell** — a
//! `(target, family, seed)` triple plus the cell's result. Writers follow
//! an atomic write-rename discipline: every [`Journal::record`] serializes
//! the full *sorted* entry set to `<path>.tmp` and renames it over
//! `<path>`, so a crash — even `SIGKILL` between syscalls — leaves either
//! the previous journal or the new one on disk, never a torn file.
//!
//! Loading is additionally tolerant of a torn *trailing* line (a journal
//! written by a plain appender, or a filesystem that lost the tail of the
//! final sector): the damaged tail is dropped and reported through
//! [`Journal::torn_tail`]. Garbage in the *interior* of the file is a hard
//! error — that is corruption, not a crash artifact.
//!
//! Because the serialized form is the sorted entry set, the journal bytes
//! are a pure function of the *set* of completed cells: a sweep killed and
//! resumed any number of times converges to a journal byte-identical to an
//! uninterrupted run's, which is what makes resumed reports bit-stable.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{ErrorKind, Write as _};
use std::path::{Path, PathBuf};

/// The journal format version stamped on every line.
pub const JOURNAL_VERSION: u32 = 1;

/// One unit of sweep work: a target run on one seeded family member.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Cell {
    /// Target name (e.g. a registry short name or `chaos:<mode>:<inner>`).
    pub target: String,
    /// Family label (e.g. `int[n=6,mu=2,tight,burst]`) or `trace:<file>`.
    pub family: String,
    /// The cell's case seed.
    pub seed: u64,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} / seed {:#x}",
            self.target, self.family, self.seed
        )
    }
}

/// The recorded outcome of one completed cell.
#[derive(Clone, PartialEq, Debug)]
pub struct CellResult {
    /// The cell this result belongs to.
    pub cell: Cell,
    /// Supervision verdict label (`completed`, `timed-out`, `panicked`,
    /// `faulted`, or a harness-defined label such as `clean`).
    pub verdict: String,
    /// Span achieved by the run (0 when not applicable).
    pub span: f64,
    /// Events the run processed (0 when not applicable).
    pub events: usize,
    /// Retries the supervisor spent on the cell.
    pub retries: u32,
}

/// Errors from journal IO and decoding.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem error.
    Io {
        /// The journal path involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A malformed line in the interior of the journal (not a torn tail).
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal {}: {source}", path.display())
            }
            JournalError::Corrupt { line, detail } => {
                write!(f, "journal line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// A checkpoint journal bound to a path on disk.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    entries: BTreeMap<Cell, CellResult>,
    torn_tail: bool,
}

impl Journal {
    /// Starts a fresh journal at `path`, discarding any existing file. The
    /// empty journal is persisted immediately so an early kill still leaves
    /// a well-formed (empty) file behind.
    pub fn create(path: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let journal = Journal {
            path: path.into(),
            entries: BTreeMap::new(),
            torn_tail: false,
        };
        journal.persist()?;
        Ok(journal)
    }

    /// Opens the journal at `path` for resumption. A missing file is an
    /// empty journal; a torn trailing line is dropped (see
    /// [`Journal::torn_tail`]); interior garbage is a [`JournalError::Corrupt`].
    pub fn resume(path: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let path = path.into();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == ErrorKind::NotFound => String::new(),
            Err(e) => return Err(JournalError::Io { path, source: e }),
        };
        let mut entries = BTreeMap::new();
        let mut torn_tail = false;
        let lines: Vec<&str> = text.split('\n').collect();
        for (idx, raw) in lines.iter().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            match parse_line(line) {
                Ok(result) => {
                    entries.insert(result.cell.clone(), result);
                }
                Err(detail) => {
                    // Only the final non-empty chunk may be torn; anything
                    // earlier is interior corruption.
                    let is_tail = lines[idx + 1..].iter().all(|l| l.trim().is_empty());
                    if is_tail {
                        torn_tail = true;
                        break;
                    }
                    return Err(JournalError::Corrupt {
                        line: idx + 1,
                        detail,
                    });
                }
            }
        }
        Ok(Journal {
            path,
            entries,
            torn_tail,
        })
    }

    /// The path this journal persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether loading dropped a torn trailing line.
    pub fn torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// Whether `cell` is already recorded as completed.
    pub fn contains(&self, cell: &Cell) -> bool {
        self.entries.contains_key(cell)
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no cell has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded results in sorted cell order.
    pub fn entries(&self) -> impl Iterator<Item = &CellResult> {
        self.entries.values()
    }

    /// Records a completed cell and persists the whole journal atomically.
    /// Re-recording a cell overwrites its previous result.
    pub fn record(&mut self, result: CellResult) -> Result<(), JournalError> {
        self.entries.insert(result.cell.clone(), result);
        self.persist()
    }

    /// Serializes the sorted entry set (the exact bytes [`Journal::persist`]
    /// writes). Exposed so reports and tests can compare journal content
    /// without re-reading the file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for result in self.entries.values() {
            out.push_str(&serialize_line(result));
            out.push('\n');
        }
        out
    }

    /// Writes the sorted entry set to `<path>.tmp`, then renames it over
    /// the journal path — the atomic write-rename discipline.
    pub fn persist(&self) -> Result<(), JournalError> {
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let io_err = |source| JournalError::Io {
            path: self.path.clone(),
            source,
        };
        let mut file = fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(self.render().as_bytes()).map_err(io_err)?;
        // Flush file content before the rename makes it visible under the
        // journal name; rename itself is atomic on POSIX filesystems.
        file.sync_all().map_err(io_err)?;
        drop(file);
        fs::rename(&tmp, &self.path).map_err(io_err)
    }
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return Err("truncated \\u escape".to_string());
                }
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape {hex}"))?;
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(format!("bad \\u escape {hex}")),
                }
            }
            other => {
                return Err(format!(
                    "bad escape \\{}",
                    other.map_or_else(String::new, String::from)
                ))
            }
        }
    }
    Ok(out)
}

fn serialize_line(r: &CellResult) -> String {
    format!(
        "{{\"v\":{},\"target\":\"{}\",\"family\":\"{}\",\"seed\":{},\"verdict\":\"{}\",\"span\":{},\"events\":{},\"retries\":{}}}",
        JOURNAL_VERSION,
        escape(&r.cell.target),
        escape(&r.cell.family),
        r.cell.seed,
        escape(&r.verdict),
        r.span,
        r.events,
        r.retries,
    )
}

/// A minimal flat-object JSON scanner for journal lines: one `{...}` object
/// of scalar fields. Strings may contain the escapes [`escape`] emits.
pub(crate) fn parse_fields(line: &str) -> Result<Vec<(String, String)>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let mut fields = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        rest = rest.trim_start_matches([',', ' ']);
        if rest.is_empty() {
            break;
        }
        // Key: a quoted string with no escapes (our keys are plain).
        let rest2 = rest
            .strip_prefix('"')
            .ok_or_else(|| "expected quoted key".to_string())?;
        let key_end = rest2
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = &rest2[..key_end];
        let rest3 = rest2[key_end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| "expected ':'".to_string())?;
        let rest3 = rest3.trim_start();
        if let Some(val_rest) = rest3.strip_prefix('"') {
            // String value: scan to the closing quote, honouring escapes.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in val_rest.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.ok_or_else(|| "unterminated string value".to_string())?;
            fields.push((key.to_string(), unescape(&val_rest[..end])?));
            rest = &val_rest[end + 1..];
        } else {
            // Scalar value: runs to the next comma or the end.
            let end = rest3.find(',').unwrap_or(rest3.len());
            fields.push((key.to_string(), rest3[..end].trim().to_string()));
            rest = &rest3[end..];
        }
    }
    Ok(fields)
}

fn parse_line(line: &str) -> Result<CellResult, String> {
    let fields = parse_fields(line)?;
    let get = |key: &str| -> Result<&str, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing field '{key}'"))
    };
    let version: u32 = get("v")?.parse().map_err(|_| "bad version".to_string())?;
    if version != JOURNAL_VERSION {
        return Err(format!("unsupported journal version {version}"));
    }
    let seed: u64 = get("seed")?.parse().map_err(|_| "bad seed".to_string())?;
    let span: f64 = get("span")?.parse().map_err(|_| "bad span".to_string())?;
    let events: usize = get("events")?
        .parse()
        .map_err(|_| "bad events".to_string())?;
    let retries: u32 = get("retries")?
        .parse()
        .map_err(|_| "bad retries".to_string())?;
    Ok(CellResult {
        cell: Cell {
            target: get("target")?.to_string(),
            family: get("family")?.to_string(),
            seed,
        },
        verdict: get("verdict")?.to_string(),
        span,
        events,
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_prng::check::forall;
    use fjs_prng::SmallRng;

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fjs-journal-{tag}-{}", std::process::id()));
        p
    }

    fn sample(i: u64) -> CellResult {
        CellResult {
            cell: Cell {
                target: format!("t{}", i % 3),
                family: format!("int[n=6,mu={},tight,burst]", i % 5),
                seed: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            },
            verdict: ["completed", "timed-out", "panicked", "faulted"][(i % 4) as usize]
                .to_string(),
            span: i as f64 * 0.5,
            events: (i * 7) as usize,
            retries: (i % 3) as u32,
        }
    }

    #[test]
    fn line_round_trip() {
        for i in 0..32 {
            let r = sample(i);
            let line = serialize_line(&r);
            assert_eq!(parse_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let r = CellResult {
            cell: Cell {
                target: "we\"ird\\name\nwith\tcontrol".to_string(),
                family: "fam{},=[]".to_string(),
                seed: 7,
            },
            verdict: "completed".to_string(),
            span: 1.25,
            events: 3,
            retries: 0,
        };
        let line = serialize_line(&r);
        assert_eq!(parse_line(&line).unwrap(), r, "{line}");
    }

    #[test]
    fn create_record_resume() {
        let path = tmp_path("crr");
        let mut j = Journal::create(&path).unwrap();
        for i in 0..10 {
            j.record(sample(i)).unwrap();
        }
        let back = Journal::resume(&path).unwrap();
        assert_eq!(back.len(), j.len());
        assert!(!back.torn_tail());
        for r in j.entries() {
            assert!(back.contains(&r.cell));
        }
        assert_eq!(back.render(), j.render());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_resumes_empty() {
        let j = Journal::resume(tmp_path("missing-nonexistent")).unwrap();
        assert!(j.is_empty());
        assert!(!j.torn_tail());
    }

    #[test]
    fn torn_tail_is_dropped_interior_garbage_rejected() {
        let path = tmp_path("torn");
        let mut j = Journal::create(&path).unwrap();
        for i in 0..5 {
            j.record(sample(i)).unwrap();
        }
        let full = fs::read_to_string(&path).unwrap();

        // Truncate mid-final-line: the tail is dropped, the rest loads.
        fs::write(&path, &full[..full.len() - 8]).unwrap();
        let back = Journal::resume(&path).unwrap();
        assert!(back.torn_tail());
        assert_eq!(back.len(), 4);

        // Garbage in the interior is corruption, not a torn tail.
        let mut lines: Vec<&str> = full.lines().collect();
        lines[1] = "{\"v\":1,garbage";
        fs::write(&path, lines.join("\n")).unwrap();
        assert!(matches!(
            Journal::resume(&path),
            Err(JournalError::Corrupt { line: 2, .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn journal_bytes_are_order_independent() {
        let a_path = tmp_path("order-a");
        let b_path = tmp_path("order-b");
        let mut a = Journal::create(&a_path).unwrap();
        let mut b = Journal::create(&b_path).unwrap();
        for i in 0..12 {
            a.record(sample(i)).unwrap();
        }
        for i in (0..12).rev() {
            b.record(sample(i)).unwrap();
        }
        assert_eq!(
            fs::read(&a_path).unwrap(),
            fs::read(&b_path).unwrap(),
            "sorted rewrite must make bytes a pure function of the entry set"
        );
        let _ = fs::remove_file(&a_path);
        let _ = fs::remove_file(&b_path);
    }

    /// The satellite proptest: write a journal, truncate it at a random
    /// byte (simulating a kill mid-write of an appender-style tail), resume,
    /// re-record whatever is missing, and require byte-identity with the
    /// uninterrupted journal.
    #[test]
    fn prop_truncate_resume_converges() {
        let path = tmp_path("prop");
        forall(40, |rng: &mut SmallRng| {
            let n = 1 + rng.u64_below(10);
            let results: Vec<CellResult> = (0..n).map(sample).collect();

            let mut uninterrupted = Journal::create(&path).unwrap();
            for r in &results {
                uninterrupted.record(r.clone()).unwrap();
            }
            let full_bytes = fs::read(&path).unwrap();

            // Kill: keep a random prefix of the file.
            let cut = rng.u64_below(full_bytes.len() as u64 + 1) as usize;
            fs::write(&path, &full_bytes[..cut]).unwrap();

            // Resume and replay exactly the cells the journal lost.
            let mut resumed = Journal::resume(&path).unwrap();
            let missing: Vec<&CellResult> = results
                .iter()
                .filter(|r| !resumed.contains(&r.cell))
                .collect();
            assert_eq!(
                missing.len() + resumed.len(),
                results.len(),
                "recovered + missing must partition the cells"
            );
            for r in missing {
                resumed.record(r.clone()).unwrap();
            }
            assert_eq!(fs::read(&path).unwrap(), full_bytes, "cut at byte {cut}");
        });
        let _ = fs::remove_file(&path);
    }
}
