//! # fjs-core
//!
//! Core model for the **Flexible Job Scheduling** (FJS) problem of
//! Ren & Tang, *Online Flexible Job Scheduling for Minimum Span*, SPAA 2017.
//!
//! A job `J` has an arrival `a(J)`, a starting deadline `d(J)` and a
//! processing length `p(J)`; a scheduler picks a start in `[a(J), d(J)]`,
//! after which the job runs non-preemptively for `p(J)`. The objective is to
//! minimize the **span**: the measure of the union of all active intervals
//! `[s(J), s(J)+p(J))`.
//!
//! This crate provides:
//!
//! * exact time/interval algebra ([`time`], [`interval`]);
//! * jobs, instances and schedules with independent feasibility validation
//!   ([`job`], [`schedule`]);
//! * a deterministic event-driven simulation engine for online schedulers,
//!   expressive enough for the paper's *adaptive adversaries* — job sources
//!   that react to the scheduler and length oracles that defer their
//!   decisions ([`sim`]);
//! * a supervision layer for long-running sweeps — watchdog event budgets
//!   with panic isolation, deterministic retry with exponential backoff,
//!   and a crash-safe checkpoint journal ([`supervise`]);
//! * a resident-service layer for `fjs serve` — isolated long-lived
//!   scheduling sessions with O(pending) memory, incremental span
//!   accounting and crash-safe checkpointing ([`service`]).
//!
//! Schedulers themselves live in the `fjs-schedulers` crate; adversarial
//! constructions in `fjs-adversary`; optimal baselines in `fjs-opt`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Shipped code degrades through typed errors, never through unwrap/expect;
// tests are free to assert with them.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod faults;
pub mod interval;
pub mod job;
pub mod metrics;
pub mod schedule;
pub mod service;
pub mod sim;
pub mod supervise;
pub mod time;

/// Convenience re-exports of the types used by virtually every consumer.
pub mod prelude {
    pub use crate::interval::{Interval, IntervalSet};
    pub use crate::job::{Instance, InstanceError, Job, JobError, JobId};
    pub use crate::metrics::{
        concurrency_at, concurrency_profile, schedule_metrics, ScheduleMetrics,
    };
    pub use crate::schedule::{Schedule, ScheduleError};
    pub use crate::sim::{
        geometric_class, run, run_static, ActionFault, Arrival, Clairvoyance, Ctx, EnvFault,
        Environment, JobSpec, LengthRuling, LengthSpec, OnlineScheduler, RejectedAction,
        SimOutcome, StaticEnv, Termination, World,
    };
    pub use crate::time::{dur, t, Dur, Time};
}
