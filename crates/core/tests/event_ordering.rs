//! Pins the engine's same-instant event-ordering contract (see
//! `sim::engine` module docs): completions → releases → ordered starts →
//! length probes → deadline alarms → wakeups. Every branch of the paper's
//! constructions leans on this order (e.g. the Theorem 3.3 adversary
//! releasing a new iteration exactly at the earmarked job's completion).

use fjs_core::prelude::*;
use fjs_core::sim::{run_with_config, SimConfig, StaticEnv, TraceKind, TraceMode};

/// Scheduler driving the torture instance: J0/J1 start at arrival, J2 waits
/// for its deadline alarm, J3 commits via `start_at`.
struct Torture;

impl OnlineScheduler for Torture {
    fn name(&self) -> String {
        "torture".into()
    }
    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        match job.id.0 {
            0 | 1 => ctx.start(job.id),
            3 => ctx.start_at(job.id, t(2.0)),
            _ => {} // J2 waits for its alarm
        }
    }
    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        if ctx.is_pending(id) {
            ctx.start(id);
        }
    }
}

#[test]
fn same_instant_events_follow_the_documented_order() {
    // Everything collides at t = 2:
    //  * J0 (rigid at 0, p=2) completes at 2;
    //  * J1 arrives at 2;
    //  * J3's ordered start falls due at 2;
    //  * J2's deadline alarm fires at 2.
    let inst = Instance::new(vec![
        Job::adp(0.0, 0.0, 2.0), // J0 — completes at 2
        Job::adp(2.0, 9.0, 1.0), // J1 — arrives at 2, started immediately
        Job::adp(0.0, 2.0, 1.0), // J2 — alarm at 2
        Job::adp(0.0, 5.0, 1.0), // J3 — ordered start at 2
    ]);
    // StaticEnv releases by arrival order: J0(a=0), J2(a=0), J3(a=0), J1(a=2)
    // → sim ids 0,1,2,3 map to source J0,J2,J3,J1.
    let env = StaticEnv::new(&inst, Clairvoyance::Clairvoyant);
    let source = env.source_indices();
    assert_eq!(source, vec![0, 2, 3, 1]);

    let out = run_with_config(
        env,
        TortureRemapped {
            inner: Torture,
            source: source.clone(),
        },
        SimConfig {
            trace: TraceMode::Full,
            ..Default::default()
        },
    );
    assert!(out.is_feasible());

    // Extract the t = 2 slice of the trace.
    let at_two: Vec<TraceKind> = out
        .trace
        .iter()
        .filter(|e| e.time == t(2.0))
        .map(|e| e.kind)
        .collect();
    // Sim ids: 0 = source J0 (completes), 1 = source J2 (alarm), 2 = source
    // J3 (ordered start), 3 = source J1 (arrival).
    assert_eq!(
        at_two,
        vec![
            TraceKind::Completed { id: JobId(0) },
            TraceKind::Released {
                id: JobId(3),
                deadline: t(9.0)
            },
            TraceKind::Started { id: JobId(3) }, // arrival-start during release
            TraceKind::Started { id: JobId(2) }, // ordered start (kind 2)
            TraceKind::Started { id: JobId(1) }, // deadline alarm (kind 4)
        ],
        "full t=2 trace: {:#?}",
        at_two
    );
}

/// Adapter translating sim ids (release order) to the torture scheduler's
/// source-id-based rules.
struct TortureRemapped {
    inner: Torture,
    source: Vec<usize>,
}

impl OnlineScheduler for TortureRemapped {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn on_arrival(&mut self, mut job: Arrival, ctx: &mut Ctx<'_>) {
        // Present the source id to the inner rules, but act on the sim id.
        let sim_id = job.id;
        job.id = JobId(self.source[sim_id.index()] as u32);
        match job.id.0 {
            0 | 1 => ctx.start(sim_id),
            3 => ctx.start_at(sim_id, t(2.0)),
            _ => {}
        }
    }
    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        self.inner.on_deadline(id, ctx);
    }
}

#[test]
fn completions_precede_releases_for_adversary_semantics() {
    // A job completing exactly when another arrives must be observed as
    // completed by the arrival callback — the property the Theorem 3.3
    // adversary's iteration chaining requires.
    struct Observer {
        running_at_arrival_of_j1: Option<usize>,
    }
    impl OnlineScheduler for Observer {
        fn name(&self) -> String {
            "observer".into()
        }
        fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
            if job.arrival == t(1.0) {
                self.running_at_arrival_of_j1 = Some(ctx.num_running());
            }
            ctx.start(job.id);
        }
        fn on_deadline(&mut self, _id: JobId, _ctx: &mut Ctx<'_>) {}
    }
    let inst = Instance::new(vec![
        Job::adp(0.0, 0.0, 1.0), // runs [0,1)
        Job::adp(1.0, 5.0, 1.0), // arrives exactly at the completion instant
    ]);
    let mut obs = Observer {
        running_at_arrival_of_j1: None,
    };
    let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut obs);
    assert!(out.is_feasible());
    assert_eq!(
        obs.running_at_arrival_of_j1,
        Some(0),
        "half-open intervals: the first job is done when the second arrives"
    );
}
