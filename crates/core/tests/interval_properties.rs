//! Property tests for the interval-set algebra, checked against a naive
//! discretized reference implementation.

use fjs_core::interval::{Interval, IntervalSet};
use fjs_core::time::{t, Dur};
use fjs_prng::{check, SmallRng};

/// Random interval with integer-quarter endpoints in [0, 100).
fn random_interval(rng: &mut SmallRng) -> Interval {
    let lo = rng.u64_below(400) as u32;
    let len = 1 + rng.u64_below(79) as u32;
    Interval::new(t(lo as f64 / 4.0), t((lo + len) as f64 / 4.0))
}

/// A vec of up to `max` random intervals (may be empty when `min` is 0).
fn random_intervals(rng: &mut SmallRng, min: usize, max: usize) -> Vec<Interval> {
    let n = rng.usize_range(min, max + 1);
    (0..n).map(|_| random_interval(rng)).collect()
}

/// Naive measure: scanline over quarter-unit cells.
fn naive_measure(ivs: &[Interval]) -> f64 {
    let mut covered = 0u32;
    for cell in 0..500u32 {
        let lo = cell as f64 / 4.0;
        let mid = lo + 0.125;
        if ivs.iter().any(|iv| iv.contains(t(mid))) {
            covered += 1;
        }
    }
    covered as f64 / 4.0
}

#[test]
fn measure_matches_naive_scanline() {
    check::forall(256, |rng| {
        let ivs = random_intervals(rng, 0, 29);
        let set: IntervalSet = ivs.iter().copied().collect();
        let expected = naive_measure(&ivs);
        assert!(
            (set.measure().get() - expected).abs() < 1e-9,
            "set {} measure {} vs naive {}",
            set,
            set.measure(),
            expected
        );
    });
}

#[test]
fn segments_are_sorted_disjoint_nonempty() {
    check::forall(256, |rng| {
        let ivs = random_intervals(rng, 0, 29);
        let set: IntervalSet = ivs.iter().copied().collect();
        let segs = set.segments();
        for s in segs {
            assert!(!s.is_empty());
        }
        for w in segs.windows(2) {
            // Strict gap between consecutive segments (touching merges).
            assert!(w[0].hi() < w[1].lo(), "{} then {}", w[0], w[1]);
        }
    });
}

#[test]
fn insertion_order_is_irrelevant() {
    check::forall(256, |rng| {
        let ivs = random_intervals(rng, 0, 19);
        let forward: IntervalSet = ivs.iter().copied().collect();
        let backward: IntervalSet = ivs.iter().rev().copied().collect();
        assert_eq!(forward, backward);
    });
}

#[test]
fn union_is_monotone_and_subadditive() {
    check::forall(256, |rng| {
        let a = random_intervals(rng, 0, 14);
        let b = random_intervals(rng, 0, 14);
        let sa: IntervalSet = a.iter().copied().collect();
        let sb: IntervalSet = b.iter().copied().collect();
        let mut su = sa.clone();
        su.union_with(&sb);
        assert!(su.measure() >= sa.measure());
        assert!(su.measure() >= sb.measure());
        assert!(su.measure() <= sa.measure() + sb.measure() + Dur::new(1e-12));
        // Idempotence.
        let mut twice = su.clone();
        twice.union_with(&sb);
        assert_eq!(twice, su);
    });
}

#[test]
fn contains_agrees_with_membership() {
    check::forall(256, |rng| {
        let ivs = random_intervals(rng, 0, 19);
        let probe = rng.u64_below(500) as u32;
        let set: IntervalSet = ivs.iter().copied().collect();
        let point = t(probe as f64 / 4.0 + 0.125);
        let direct = ivs.iter().any(|iv| iv.contains(point));
        assert_eq!(set.contains(point), direct);
        assert_eq!(set.segment_containing(point).is_some(), direct);
    });
}

/// Naive sort-and-merge oracle: sorts by `lo` and merges overlapping or
/// touching neighbours, yielding the canonical segment list.
fn naive_merge(ivs: &[Interval]) -> Vec<Interval> {
    let mut sorted: Vec<Interval> = ivs.iter().copied().filter(|iv| !iv.is_empty()).collect();
    sorted.sort_by_key(|a| a.lo());
    let mut merged: Vec<Interval> = Vec::new();
    for iv in sorted {
        match merged.last_mut() {
            Some(last) if iv.lo() <= last.hi() => {
                if iv.hi() > last.hi() {
                    *last = Interval::new(last.lo(), iv.hi());
                }
            }
            _ => merged.push(iv),
        }
    }
    merged
}

#[test]
fn insert_matches_sort_and_merge_oracle() {
    check::forall(512, |rng| {
        let ivs = random_intervals(rng, 0, 29);
        // Incremental inserts (exercising every splice path in `insert`)
        // must land on exactly the segments the oracle computes.
        let mut set = IntervalSet::new();
        for iv in &ivs {
            set.insert(*iv);
        }
        assert_eq!(
            set.segments(),
            naive_merge(&ivs).as_slice(),
            "inputs {ivs:?}"
        );
    });
}

#[test]
fn measure_within_matches_naive_scanline() {
    check::forall(256, |rng| {
        let ivs = random_intervals(rng, 0, 19);
        let probe = random_interval(rng);
        let set: IntervalSet = ivs.iter().copied().collect();
        // Quarter-cell scanline restricted to the probe window.
        let mut expected = 0.0;
        for cell in 0..500u32 {
            let mid = t(cell as f64 / 4.0 + 0.125);
            if probe.contains(mid) && ivs.iter().any(|iv| iv.contains(mid)) {
                expected += 0.25;
            }
        }
        let got = set.measure_within(&probe).get();
        assert!(
            (got - expected).abs() < 1e-9,
            "measure_within({probe}) = {got} vs naive {expected} on {set}"
        );
    });
}

#[test]
fn segment_containing_matches_oracle() {
    check::forall(256, |rng| {
        let ivs = random_intervals(rng, 0, 19);
        let set: IntervalSet = ivs.iter().copied().collect();
        let merged = naive_merge(&ivs);
        // Probe both cell midpoints and exact endpoints (boundary cases:
        // `hi` is exclusive, `lo` inclusive).
        let probe = if rng.u64_below(2) == 0 {
            t(rng.u64_below(500) as f64 / 4.0 + 0.125)
        } else {
            t(rng.u64_below(500) as f64 / 4.0)
        };
        let expected = merged.iter().find(|seg| seg.contains(probe)).copied();
        assert_eq!(
            set.segment_containing(probe),
            expected,
            "probe {probe} on {set}"
        );
    });
}

#[test]
fn measure_within_partitions() {
    check::forall(256, |rng| {
        let ivs = random_intervals(rng, 0, 19);
        let cut = 1 + rng.u64_below(498) as u32;
        // Splitting the axis at `cut` partitions the measure.
        let set: IntervalSet = ivs.iter().copied().collect();
        let left = Interval::new(t(0.0), t(cut as f64 / 4.0));
        let right = Interval::new(t(cut as f64 / 4.0), t(1000.0));
        let total = set.measure_within(&left) + set.measure_within(&right);
        assert!((total - set.measure()).get().abs() < 1e-9);
    });
}
