//! Property tests for the interval-set algebra, checked against a naive
//! discretized reference implementation.

use fjs_core::interval::{Interval, IntervalSet};
use fjs_core::time::{t, Dur};
use proptest::prelude::*;

/// Strategy: intervals with integer-quarter endpoints in [0, 100).
fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0u32..400, 1u32..80).prop_map(|(lo, len)| {
        Interval::new(t(lo as f64 / 4.0), t((lo + len) as f64 / 4.0))
    })
}

/// Naive measure: scanline over quarter-unit cells.
fn naive_measure(ivs: &[Interval]) -> f64 {
    let mut covered = 0u32;
    for cell in 0..500u32 {
        let lo = cell as f64 / 4.0;
        let mid = lo + 0.125;
        if ivs.iter().any(|iv| iv.contains(t(mid))) {
            covered += 1;
        }
    }
    covered as f64 / 4.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn measure_matches_naive_scanline(ivs in prop::collection::vec(interval_strategy(), 0..30)) {
        let set: IntervalSet = ivs.iter().copied().collect();
        let expected = naive_measure(&ivs);
        prop_assert!(
            (set.measure().get() - expected).abs() < 1e-9,
            "set {} measure {} vs naive {}", set, set.measure(), expected
        );
    }

    #[test]
    fn segments_are_sorted_disjoint_nonempty(ivs in prop::collection::vec(interval_strategy(), 0..30)) {
        let set: IntervalSet = ivs.iter().copied().collect();
        let segs = set.segments();
        for s in segs {
            prop_assert!(!s.is_empty());
        }
        for w in segs.windows(2) {
            // Strict gap between consecutive segments (touching merges).
            prop_assert!(w[0].hi() < w[1].lo(), "{} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn insertion_order_is_irrelevant(ivs in prop::collection::vec(interval_strategy(), 0..20)) {
        let forward: IntervalSet = ivs.iter().copied().collect();
        let backward: IntervalSet = ivs.iter().rev().copied().collect();
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn union_is_monotone_and_subadditive(
        a in prop::collection::vec(interval_strategy(), 0..15),
        b in prop::collection::vec(interval_strategy(), 0..15),
    ) {
        let sa: IntervalSet = a.iter().copied().collect();
        let sb: IntervalSet = b.iter().copied().collect();
        let mut su = sa.clone();
        su.union_with(&sb);
        prop_assert!(su.measure() >= sa.measure());
        prop_assert!(su.measure() >= sb.measure());
        prop_assert!(su.measure() <= sa.measure() + sb.measure() + Dur::new(1e-12));
        // Idempotence.
        let mut twice = su.clone();
        twice.union_with(&sb);
        prop_assert_eq!(twice, su);
    }

    #[test]
    fn contains_agrees_with_membership(
        ivs in prop::collection::vec(interval_strategy(), 0..20),
        probe in 0u32..500,
    ) {
        let set: IntervalSet = ivs.iter().copied().collect();
        let point = t(probe as f64 / 4.0 + 0.125);
        let direct = ivs.iter().any(|iv| iv.contains(point));
        prop_assert_eq!(set.contains(point), direct);
        prop_assert_eq!(set.segment_containing(point).is_some(), direct);
    }

    #[test]
    fn measure_within_partitions(
        ivs in prop::collection::vec(interval_strategy(), 0..20),
        cut in 1u32..499,
    ) {
        // Splitting the axis at `cut` partitions the measure.
        let set: IntervalSet = ivs.iter().copied().collect();
        let left = Interval::new(t(0.0), t(cut as f64 / 4.0));
        let right = Interval::new(t(cut as f64 / 4.0), t(1000.0));
        let total = set.measure_within(&left) + set.measure_within(&right);
        prop_assert!((total - set.measure()).get().abs() < 1e-9);
    }
}
