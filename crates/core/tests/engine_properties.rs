//! Property tests for the simulation engine: schedules it reports are
//! feasible and consistent for arbitrary (valid) static instances under
//! representative scheduler behaviors.

use fjs_core::prelude::*;
use proptest::prelude::*;

/// Strategy: a static instance with bounded integer-ish parameters.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    prop::collection::vec((0u32..50, 0u32..20, 1u32..10), 1..25).prop_map(|trips| {
        Instance::new(
            trips
                .into_iter()
                .map(|(a, lax, p)| {
                    Job::adp(a as f64 * 0.5, (a + lax) as f64 * 0.5, p as f64 * 0.5)
                })
                .collect(),
        )
    })
}

/// Starts each job at a deterministic fraction of its window (parameterized
/// test scheduler exercising start_at across the whole window).
struct FractionStarter(f64);

impl OnlineScheduler for FractionStarter {
    fn name(&self) -> String {
        format!("fraction({})", self.0)
    }
    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        let lax = job.deadline - job.arrival;
        let start = job.arrival + lax * self.0;
        if start <= job.arrival {
            ctx.start(job.id);
        } else {
            ctx.start_at(job.id, start);
        }
    }
    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        if ctx.is_pending(id) {
            ctx.start(id);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any window fraction yields a feasible schedule; the reported span
    /// equals the independently recomputed union measure.
    #[test]
    fn fraction_starters_are_feasible(inst in instance_strategy(), frac in 0.0f64..=1.0) {
        let out = run_static(&inst, Clairvoyance::Clairvoyant, FractionStarter(frac));
        prop_assert!(out.is_feasible());
        prop_assert!(out.schedule.validate(&out.instance).is_ok());
        prop_assert_eq!(out.span, out.schedule.span(&out.instance));
        // Start times respect the fraction (up to the window arithmetic).
        for (id, job) in out.instance.iter() {
            let s = out.schedule.start(id).unwrap();
            prop_assert!(s >= job.arrival() && s <= job.deadline());
        }
    }

    /// The engine's released instance is a permutation of the source
    /// instance (by arrival sort), preserving total work and μ.
    #[test]
    fn materialized_instance_is_a_permutation(inst in instance_strategy()) {
        let out = run_static(&inst, Clairvoyance::Clairvoyant, FractionStarter(0.0));
        prop_assert_eq!(out.instance.len(), inst.len());
        let tol = 1e-9 * (1.0 + inst.total_work().get());
        prop_assert!((out.instance.total_work() - inst.total_work()).get().abs() < tol);
        prop_assert_eq!(out.instance.mu(), inst.mu());
        // Arrivals sorted.
        let arrivals: Vec<_> = out.instance.jobs().iter().map(|j| j.arrival()).collect();
        prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Eager's span equals the measure of arrival-anchored intervals, and
    /// Lazy's the deadline-anchored ones — engine agrees with direct
    /// schedule construction.
    #[test]
    fn engine_matches_direct_schedule_construction(inst in instance_strategy()) {
        let eager = run_static(&inst, Clairvoyance::NonClairvoyant, FractionStarter(0.0));
        let direct_eager = Schedule::from_starts(
            inst.len(),
            inst.iter().map(|(id, j)| (id, j.arrival())),
        );
        prop_assert_eq!(eager.span, direct_eager.span(&inst));

        let lazy = run_static(&inst, Clairvoyance::NonClairvoyant, FractionStarter(1.0));
        let direct_lazy = Schedule::from_starts(
            inst.len(),
            inst.iter().map(|(id, j)| (id, j.deadline())),
        );
        prop_assert_eq!(lazy.span, direct_lazy.span(&inst));
    }
}
