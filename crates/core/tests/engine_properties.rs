//! Property tests for the simulation engine: schedules it reports are
//! feasible and consistent for arbitrary (valid) static instances under
//! representative scheduler behaviors.

use fjs_core::prelude::*;
use fjs_prng::{check, SmallRng};

/// Random static instance with bounded integer-ish parameters.
fn random_instance(rng: &mut SmallRng) -> Instance {
    let n = rng.usize_range(1, 25);
    Instance::new(
        (0..n)
            .map(|_| {
                let a = rng.u64_below(50) as f64;
                let lax = rng.u64_below(20) as f64;
                let p = 1.0 + rng.u64_below(9) as f64;
                Job::adp(a * 0.5, (a + lax) * 0.5, p * 0.5)
            })
            .collect(),
    )
}

/// Starts each job at a deterministic fraction of its window (parameterized
/// test scheduler exercising start_at across the whole window).
struct FractionStarter(f64);

impl OnlineScheduler for FractionStarter {
    fn name(&self) -> String {
        format!("fraction({})", self.0)
    }
    fn on_arrival(&mut self, job: Arrival, ctx: &mut Ctx<'_>) {
        let lax = job.deadline - job.arrival;
        let start = job.arrival + lax * self.0;
        if start <= job.arrival {
            ctx.start(job.id);
        } else {
            ctx.start_at(job.id, start);
        }
    }
    fn on_deadline(&mut self, id: JobId, ctx: &mut Ctx<'_>) {
        if ctx.is_pending(id) {
            ctx.start(id);
        }
    }
}

/// Any window fraction yields a feasible schedule; the reported span
/// equals the independently recomputed union measure.
#[test]
fn fraction_starters_are_feasible() {
    check::forall(128, |rng| {
        let inst = random_instance(rng);
        let frac = rng.f64_range_inclusive(0.0, 1.0);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, FractionStarter(frac));
        assert!(out.is_feasible());
        assert!(out.schedule.validate(&out.instance).is_ok());
        assert_eq!(out.span, out.schedule.span(&out.instance));
        // Start times respect the fraction (up to the window arithmetic).
        for (id, job) in out.instance.iter() {
            let s = out.schedule.start(id).unwrap();
            assert!(s >= job.arrival() && s <= job.deadline());
        }
    });
}

/// The engine's released instance is a permutation of the source
/// instance (by arrival sort), preserving total work and μ.
#[test]
fn materialized_instance_is_a_permutation() {
    check::forall(128, |rng| {
        let inst = random_instance(rng);
        let out = run_static(&inst, Clairvoyance::Clairvoyant, FractionStarter(0.0));
        assert_eq!(out.instance.len(), inst.len());
        let tol = 1e-9 * (1.0 + inst.total_work().get());
        assert!((out.instance.total_work() - inst.total_work()).get().abs() < tol);
        assert_eq!(out.instance.mu(), inst.mu());
        // Arrivals sorted.
        let arrivals: Vec<_> = out.instance.jobs().iter().map(|j| j.arrival()).collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    });
}

/// Eager's span equals the measure of arrival-anchored intervals, and
/// Lazy's the deadline-anchored ones — engine agrees with direct
/// schedule construction.
#[test]
fn engine_matches_direct_schedule_construction() {
    check::forall(128, |rng| {
        let inst = random_instance(rng);
        let eager = run_static(&inst, Clairvoyance::NonClairvoyant, FractionStarter(0.0));
        let direct_eager =
            Schedule::from_starts(inst.len(), inst.iter().map(|(id, j)| (id, j.arrival())));
        assert_eq!(eager.span, direct_eager.span(&inst));

        let lazy = run_static(&inst, Clairvoyance::NonClairvoyant, FractionStarter(1.0));
        let direct_lazy =
            Schedule::from_starts(inst.len(), inst.iter().map(|(id, j)| (id, j.deadline())));
        assert_eq!(lazy.span, direct_lazy.span(&inst));
    });
}
