//! The engine behind `fjs soak`: long-running supervised sweeps with a
//! crash-safe checkpoint journal.
//!
//! A soak run enumerates a deterministic grid of cells — conformance-deck
//! cases (or a single CSV trace) crossed with the selected targets — and
//! drives each cell through [`fjs_core::supervise::supervise`]: watchdog
//! event budget, panic containment, deterministic retry of transient
//! environment faults. Every finished cell is recorded in a [`Journal`]
//! before the next one starts, so a `SIGKILL` at any point loses at most
//! the cell in flight; `--resume` skips journalled cells and converges to
//! the same journal bytes — and therefore the same report — as an
//! uninterrupted run.
//!
//! The final report is rendered *purely* from the sorted journal entry set
//! (plus the trace ingest stats, themselves a pure function of the input
//! file), never from in-memory sweep state. That is what makes
//! "interrupted + resumed" and "uninterrupted" bit-identical on stdout —
//! and, because the journal bytes are a pure function of the completed
//! cell *set*, it also makes `--shards` a pure wall-clock knob: the cells
//! fan out through [`fjs_analysis::sharded_map`], and every shard count
//! converges to the same journal and report.

use fjs_analysis::{sharded_map, ShardPlan};
use fjs_core::faults::ChaosScheduler;
use fjs_core::job::Instance;
use fjs_core::sim::OnlineScheduler;
use fjs_core::sim::StaticEnv;
use fjs_core::supervise::{
    supervise, with_quiet_panics, Cell, CellResult, Journal, PoisonMode, PoisonedScheduler,
    RetryPolicy, SuperviseConfig, DEFAULT_WATCHDOG_EVENTS,
};
use fjs_prng::check::case_seed;
use fjs_testkit::Target;
use fjs_workloads::{conformance_deck, Family, IngestStats, Quarantine, TraceReader};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Set by the `SIGINT` handler (or [`request_stop`]); polled between cells.
static INTERRUPT_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Asks the running sweep to stop gracefully after the cell in flight.
/// This is exactly what the `SIGINT` handler does.
pub fn request_stop() {
    INTERRUPT_REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears a pending stop request (call before starting a fresh sweep).
pub fn clear_stop() {
    INTERRUPT_REQUESTED.store(false, Ordering::SeqCst);
}

/// Whether a graceful stop has been requested.
pub fn stop_requested() -> bool {
    INTERRUPT_REQUESTED.load(Ordering::SeqCst)
}

/// Installs a `SIGINT` handler that requests a graceful stop: the sweep
/// finishes the cell in flight, flushes the journal (already durable — every
/// cell is persisted as it completes) and exits 0 with a resume hint.
///
/// Uses the libc `signal(2)` symbol directly so the workspace stays free of
/// external crates; on non-Unix targets this is a no-op and `Ctrl-C` simply
/// kills the process — which the journal is designed to survive anyway.
#[cfg(unix)]
#[allow(clippy::fn_to_numeric_cast)] // signal(2) takes the handler as an address
pub fn install_sigint_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPT_REQUESTED.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

/// No-op on non-Unix targets (see the Unix version for why that is safe).
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

/// Configuration for one soak sweep.
#[derive(Clone, Debug)]
pub struct SoakOptions {
    /// The targets every case is crossed with.
    pub targets: Vec<Target>,
    /// Deck cases to enumerate; case `i` draws deck member `i % deck.len()`
    /// with seed `case_seed(base_seed, i)`. Ignored in trace mode.
    pub cells: usize,
    /// Base seed; the whole sweep is a pure function of the options.
    pub base_seed: u64,
    /// Watchdog event budget per supervised run.
    pub watchdog_events: usize,
    /// Wrap every subject in a deliberately faulty [`PoisonedScheduler`] —
    /// a self-test that the watchdog and panic containment actually fire.
    pub poison: Option<PoisonMode>,
    /// Stop gracefully once this much wall clock has elapsed.
    pub time_budget: Option<Duration>,
    /// Resume from an existing journal instead of starting a fresh one.
    pub resume: bool,
    /// Journal path (JSONL, atomically rewritten after every cell).
    pub journal: PathBuf,
    /// Soak a CSV trace instead of the conformance deck: the file is
    /// streamed through [`TraceReader`] under [`Quarantine::Skip`] and the
    /// surviving records form the single case.
    pub trace: Option<PathBuf>,
    /// Sleep inserted after every executed cell — keeps a smoke run alive
    /// long enough for an external `kill -INT` to land (CI uses this).
    pub throttle: Duration,
    /// Stop gracefully after this many cells have been *executed* (skipped
    /// cells don't count). A deterministic stand-in for a mid-sweep kill in
    /// tests.
    pub stop_after: Option<usize>,
    /// Worker shards for the cell sweep ([`fjs_analysis::ShardPlan`]): `1`
    /// (the default) keeps the classic serial loop, `0` spreads cells over
    /// one shard per core, any other value is an explicit count. The journal
    /// serializes its *sorted* entry set, so completed sweeps produce
    /// bit-identical journal bytes — and reports — at every shard count.
    pub shards: usize,
}

impl SoakOptions {
    /// Options with the given targets and journal path, defaults elsewhere.
    pub fn new(targets: Vec<Target>, journal: impl Into<PathBuf>) -> Self {
        SoakOptions {
            targets,
            cells: 64,
            base_seed: 1,
            watchdog_events: DEFAULT_WATCHDOG_EVENTS,
            poison: None,
            time_budget: None,
            resume: false,
            journal: journal.into(),
            trace: None,
            throttle: Duration::ZERO,
            stop_after: None,
            shards: 1,
        }
    }
}

/// What a soak sweep did and found.
#[derive(Clone, Debug)]
pub struct SoakSummary {
    /// The deterministic report (rendered from the journal alone).
    pub report: String,
    /// Cells executed by *this* invocation.
    pub ran: usize,
    /// Cells skipped because the resume journal already recorded them.
    pub skipped: usize,
    /// Cells now in the journal (executed this time or before).
    pub journal_cells: usize,
    /// Journalled cells whose verdict is not `completed`.
    pub degraded: usize,
    /// `true` when the sweep stopped early (signal, time budget or
    /// [`SoakOptions::stop_after`]) — rerun with `resume` to finish.
    pub interrupted: bool,
    /// Ingestion stats when a trace was soaked.
    pub ingest: Option<IngestStats>,
}

/// One enumerated case: a deck family or a fixed trace-derived instance.
struct CaseSpec {
    label: String,
    seed: u64,
    family: Option<Family>,
    fixed: Option<Instance>,
}

impl CaseSpec {
    fn materialize(&self) -> Instance {
        match (&self.family, &self.fixed) {
            (Some(f), _) => f.generate(self.seed),
            (None, Some(inst)) => inst.clone(),
            (None, None) => Instance::empty(),
        }
    }
}

fn enumerate_cases(opts: &SoakOptions) -> Result<(Vec<CaseSpec>, Option<IngestStats>), String> {
    if let Some(path) = &opts.trace {
        let (spec, stats) = load_trace_case(path, opts.base_seed)?;
        return Ok((vec![spec], Some(stats)));
    }
    let deck = conformance_deck();
    let specs = (0..opts.cells)
        .map(|i| {
            let family = deck[i % deck.len()];
            CaseSpec {
                label: family.label(),
                seed: case_seed(opts.base_seed, i),
                family: Some(family),
                fixed: None,
            }
        })
        .collect();
    Ok((specs, None))
}

fn load_trace_case(path: &Path, seed: u64) -> Result<(CaseSpec, IngestStats), String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut reader = TraceReader::new(std::io::BufReader::new(file)).with_policy(Quarantine::Skip);
    let mut jobs = Vec::new();
    for record in reader.by_ref() {
        let record = record.map_err(|e| format!("{}: {e}", path.display()))?;
        jobs.push(record.job);
    }
    let stats = reader.stats();
    if jobs.is_empty() {
        return Err(format!("{}: no valid records to soak", path.display()));
    }
    let spec = CaseSpec {
        label: format!("trace:{}", path.display()),
        seed,
        family: None,
        fixed: Some(Instance::new(jobs)),
    };
    Ok((spec, stats))
}

/// The subject a cell runs: the target's scheduler stack, optionally
/// wrapped in a poison layer.
fn build_subject(target: &Target, poison: Option<PoisonMode>) -> Box<dyn OnlineScheduler> {
    let inner: Box<dyn OnlineScheduler> = match *target {
        Target::Kind(kind) => kind.build(),
        Target::Chaos { inner, mode } => Box::new(ChaosScheduler::new(inner.build(), mode)),
    };
    match poison {
        Some(mode) => Box::new(PoisonedScheduler::new(inner, mode)),
        None => inner,
    }
}

fn run_cell(target: &Target, inst: &Instance, cell: Cell, opts: &SoakOptions) -> CellResult {
    let config = SuperviseConfig {
        watchdog_events: opts.watchdog_events,
        // Seed the retry jitter per cell so the ledger is a pure function
        // of the cell, not of sweep order.
        retry: RetryPolicy {
            seed: cell.seed,
            ..RetryPolicy::default()
        },
    };
    let model = target.information_model();
    let sup = supervise(
        |_attempt| {
            (
                StaticEnv::new(inst, model),
                build_subject(target, opts.poison),
            )
        },
        &config,
    );
    CellResult {
        cell,
        verdict: sup.verdict.label().to_string(),
        span: sup.outcome.as_ref().map(|o| o.span.get()).unwrap_or(0.0),
        events: sup
            .outcome
            .as_ref()
            .map(|o| o.events_processed)
            .unwrap_or(0),
        retries: sup.retries.len() as u32,
    }
}

/// Runs a soak sweep. Deterministic up to wall-clock stopping points: the
/// set of cells is fixed by the options, each cell's result is a pure
/// function of `(target, family, seed)`, and the report depends only on
/// the journal's entry set.
pub fn run_soak(opts: &SoakOptions) -> Result<SoakSummary, String> {
    let start = Instant::now();
    let journal = if opts.resume {
        Journal::resume(&opts.journal)
    } else {
        Journal::create(&opts.journal)
    }
    .map_err(|e| format!("journal: {e}"))?;

    let (specs, ingest) = enumerate_cases(opts)?;

    // Flat cell list in the classic specs × targets order; with `shards: 1`
    // the sharded executor runs it serially on this thread, exactly like
    // the historical nested loop.
    let cells: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|si| (0..opts.targets.len()).map(move |ti| (si, ti)))
        .collect();
    // Each deck instance is materialized at most once no matter how many
    // targets (or shards) consume it.
    let insts: Vec<OnceLock<Instance>> = specs.iter().map(|_| OnceLock::new()).collect();

    let journal = Mutex::new(journal);
    let ran = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let lock_journal = || journal.lock().unwrap_or_else(|e| e.into_inner());

    let run_one = |&(si, ti): &(usize, usize)| -> Result<(), String> {
        let spec = &specs[si];
        let target = &opts.targets[ti];
        let over_time = opts.time_budget.is_some_and(|b| start.elapsed() >= b);
        if stop_requested() || over_time || stopped.load(Ordering::SeqCst) {
            stopped.store(true, Ordering::SeqCst);
            return Ok(());
        }
        let cell = Cell {
            target: target.name(),
            family: spec.label.clone(),
            seed: spec.seed,
        };
        if lock_journal().contains(&cell) {
            skipped.fetch_add(1, Ordering::SeqCst);
            return Ok(());
        }
        // Reserve an execution slot *before* running so `stop_after` bounds
        // the number of executed cells exactly even when shards race.
        let reserved = match opts.stop_after {
            Some(n) => ran
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| {
                    (r < n).then_some(r + 1)
                })
                .is_ok(),
            None => {
                ran.fetch_add(1, Ordering::SeqCst);
                true
            }
        };
        if !reserved {
            stopped.store(true, Ordering::SeqCst);
            return Ok(());
        }
        let instance = insts[si].get_or_init(|| spec.materialize());
        let result = run_cell(target, instance, cell, opts);
        lock_journal()
            .record(result)
            .map_err(|e| format!("journal: {e}"))?;
        if !opts.throttle.is_zero() {
            std::thread::sleep(opts.throttle);
        }
        Ok(())
    };
    let sweep = || -> Result<(), String> {
        let plan = ShardPlan::with_shards(opts.shards).seeded(opts.base_seed);
        sharded_map(&cells, plan, run_one).into_iter().collect()
    };
    // Poison sweeps panic on purpose in every cell; silence the global
    // panic hook so the report is the only output.
    if opts.poison.is_some() {
        with_quiet_panics(sweep)?;
    } else {
        sweep()?;
    }

    let journal = journal.into_inner().unwrap_or_else(|e| e.into_inner());
    let degraded = journal
        .entries()
        .filter(|r| r.verdict != "completed")
        .count();
    let report = render_report(&journal, ingest.as_ref());
    Ok(SoakSummary {
        report,
        ran: ran.load(Ordering::SeqCst),
        skipped: skipped.load(Ordering::SeqCst),
        journal_cells: journal.len(),
        degraded,
        interrupted: stopped.load(Ordering::SeqCst),
        ingest,
    })
}

#[derive(Default)]
struct Tally {
    cells: usize,
    completed: usize,
    timed_out: usize,
    panicked: usize,
    faulted: usize,
    retries: u64,
    events: u64,
    span: f64,
}

/// Renders the soak report from the journal alone (sorted entry set plus
/// optional ingest stats) — the invariant behind resume bit-identity.
pub fn render_report(journal: &Journal, ingest: Option<&IngestStats>) -> String {
    let mut per_target: BTreeMap<&str, Tally> = BTreeMap::new();
    for r in journal.entries() {
        let t = per_target.entry(r.cell.target.as_str()).or_default();
        t.cells += 1;
        match r.verdict.as_str() {
            "completed" => t.completed += 1,
            "timed-out" => t.timed_out += 1,
            "panicked" => t.panicked += 1,
            "faulted" => t.faulted += 1,
            _ => {}
        }
        t.retries += u64::from(r.retries);
        t.events += r.events as u64;
        t.span += r.span;
    }

    let mut table = fjs_analysis::Table::new(
        format!("soak report ({} cell(s))", journal.len()),
        &[
            "target",
            "cells",
            "completed",
            "timed-out",
            "panicked",
            "faulted",
            "retries",
            "events",
            "total span",
        ],
    );
    for (target, t) in &per_target {
        table.push_row(vec![
            (*target).to_string(),
            format!("{}", t.cells),
            format!("{}", t.completed),
            format!("{}", t.timed_out),
            format!("{}", t.panicked),
            format!("{}", t.faulted),
            format!("{}", t.retries),
            format!("{}", t.events),
            format!("{:.3}", t.span),
        ]);
    }

    let total = journal.len();
    let completed: usize = per_target.values().map(|t| t.completed).sum();
    let mut out = table.render();
    out.push_str(&format!(
        "\n{total} cell(s): {completed} completed, {} degraded\n",
        total - completed
    ));
    if let Some(s) = ingest {
        out.push_str(&format!(
            "ingest: {} line(s), {} record(s), {} quarantined\n",
            s.lines, s.records, s.quarantined
        ));
    }
    out
}
