//! `fjs fuzz-serve` — a seeded protocol-fuzz chaos harness for a live
//! `fjs serve` daemon, plus the byte-level misbehaviour modes behind
//! `fjs loadgen --misbehave`.
//!
//! The harness drives three kinds of traffic at a daemon concurrently
//! over its real socket frontends (unix and/or TCP):
//!
//! * a **clean tenant** (`c*` sessions) sent well-formed on a single
//!   connection — its replies must all be `ok`, and because its decision
//!   -log lines are a deterministic subsequence of the daemon log,
//!   `grep '^c'` of that log must be byte-identical to a serial
//!   reference run of the same script (checked in CI);
//! * **fuzz tenants** (`x<i>.…` sessions), one thread per connection,
//!   each looping seeded [`Misbehave`] rounds: torn frames, garbage
//!   bytes, giant lines, partial writes, abrupt disconnects and
//!   slow-loris dribbles;
//! * a **hostile tenant** (`h.…` sessions) that opens
//!   `poison:panic:*` sessions in a tight loop so its closes are
//!   non-`completed` verdicts — deterministically tripping the tenant
//!   circuit breaker and exercising `busy … breaker-open` refusals.
//!
//! After the chaos drains, a `zprobe.*` session is driven end-to-end on
//! every target to prove the daemon still schedules. All randomness
//! comes from [`fjs_prng::SmallRng`]; a fixed `--seed` replays the same
//! byte streams (interleaving across connections is up to the kernel,
//! which is exactly the point of the chaos).

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fjs_prng::SmallRng;

use crate::loadgen::{emit_script, DriveTarget, LoadgenOptions};

/// How a connection abuses the wire, byte-level.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Misbehave {
    /// Valid bytes, torn across arbitrary write boundaries — frames
    /// split mid-line must reassemble to the same requests.
    Torn,
    /// Random garbage lines (arbitrary non-newline bytes, often invalid
    /// UTF-8) interleaved with valid requests.
    Garbage,
    /// A line far beyond `--max-frame-bytes`: the daemon must answer
    /// `err line-too-long` and drop only this connection.
    Giant,
    /// A valid prefix, then a partial line with no terminating newline,
    /// then EOF — the tail must be dropped, never dispatched.
    Partial,
    /// An abrupt disconnect after a random prefix of the script.
    Disconnect,
    /// The first request dribbled one byte at a time with pauses.
    Slowloris,
}

/// All modes, for seeded selection and CLI listings.
pub const MISBEHAVE_MODES: [Misbehave; 6] = [
    Misbehave::Torn,
    Misbehave::Garbage,
    Misbehave::Giant,
    Misbehave::Partial,
    Misbehave::Disconnect,
    Misbehave::Slowloris,
];

impl Misbehave {
    /// CLI name, stable.
    pub fn name(&self) -> &'static str {
        match self {
            Misbehave::Torn => "torn",
            Misbehave::Garbage => "garbage",
            Misbehave::Giant => "giant",
            Misbehave::Partial => "partial",
            Misbehave::Disconnect => "disconnect",
            Misbehave::Slowloris => "slowloris",
        }
    }

    /// Parses a CLI mode name.
    pub fn parse(s: &str) -> Option<Misbehave> {
        MISBEHAVE_MODES.iter().copied().find(|m| m.name() == s)
    }
}

/// One step of a misbehaving byte plan.
enum WireOp {
    /// Write these bytes (possibly a fraction of a line, possibly junk).
    Write(Vec<u8>),
    /// Sleep before the next write (slow-loris pacing).
    Pause(Duration),
    /// Stop writing and tear the connection down.
    Disconnect,
}

/// Compiles protocol `lines` into a byte plan for `mode`. Returns the
/// plan plus the number of frames (newline-terminated lines, junk
/// included) it will put on the wire.
fn misbehave_plan(lines: &[String], mode: Misbehave, rng: &mut SmallRng) -> (Vec<WireOp>, u64) {
    let mut ops = Vec::new();
    let mut frames = 0u64;
    match mode {
        Misbehave::Torn => {
            let mut bytes = Vec::new();
            for l in lines {
                bytes.extend_from_slice(l.as_bytes());
                bytes.push(b'\n');
                frames += 1;
            }
            let mut at = 0usize;
            while at < bytes.len() {
                let n = (1 + rng.u64_below(40) as usize).min(bytes.len() - at);
                ops.push(WireOp::Write(bytes[at..at + n].to_vec()));
                at += n;
            }
        }
        Misbehave::Garbage => {
            for l in lines {
                if rng.bool_with(0.3) {
                    let n = 1 + rng.u64_below(32) as usize;
                    let mut junk: Vec<u8> = (0..n)
                        .map(|_| {
                            // Any byte but newline, so the junk stays one
                            // frame; 0x80.. yields invalid UTF-8 often.
                            let b = 1 + rng.u64_below(255) as u8;
                            if b == b'\n' {
                                0xFF
                            } else {
                                b
                            }
                        })
                        .collect();
                    junk.push(b'\n');
                    ops.push(WireOp::Write(junk));
                    frames += 1;
                }
                ops.push(WireOp::Write(format!("{l}\n").into_bytes()));
                frames += 1;
            }
        }
        Misbehave::Giant => {
            let keep = rng.u64_below(lines.len() as u64 + 1) as usize;
            for l in &lines[..keep] {
                ops.push(WireOp::Write(format!("{l}\n").into_bytes()));
                frames += 1;
            }
            let n = 10_000 + rng.u64_below(90_000) as usize;
            let mut giant = vec![b'A'; n];
            giant.push(b'\n');
            ops.push(WireOp::Write(giant));
            frames += 1;
            ops.push(WireOp::Disconnect);
        }
        Misbehave::Partial => {
            let keep = rng.u64_below(lines.len() as u64) as usize;
            for l in &lines[..keep] {
                ops.push(WireOp::Write(format!("{l}\n").into_bytes()));
                frames += 1;
            }
            if let Some(tail) = lines.get(keep) {
                let cut = 1 + rng.u64_below(tail.len().max(1) as u64) as usize;
                ops.push(WireOp::Write(
                    tail.as_bytes()[..cut.min(tail.len())].to_vec(),
                ));
            }
            ops.push(WireOp::Disconnect);
        }
        Misbehave::Disconnect => {
            let keep = rng.u64_below(lines.len() as u64 + 1) as usize;
            for l in &lines[..keep] {
                ops.push(WireOp::Write(format!("{l}\n").into_bytes()));
                frames += 1;
            }
            ops.push(WireOp::Disconnect);
        }
        Misbehave::Slowloris => {
            if let Some((first, rest)) = lines.split_first() {
                for &b in format!("{first}\n").as_bytes() {
                    ops.push(WireOp::Write(vec![b]));
                    ops.push(WireOp::Pause(Duration::from_millis(1 + rng.u64_below(3))));
                }
                frames += 1;
                for l in rest {
                    ops.push(WireOp::Write(format!("{l}\n").into_bytes()));
                    frames += 1;
                }
            }
        }
    }
    (ops, frames)
}

/// Executes a byte plan against a freshly-connected stream, then drains
/// replies until the daemon closes the connection or goes quiet.
/// Returns `(replies, breaker_refusals, oversize_replies)`. Write
/// errors are expected (the daemon drops abusive connections mid-plan)
/// and never propagate.
fn run_plan(target: &DriveTarget, ops: &[WireOp]) -> Result<(u64, u64, u64), String> {
    let (reader, mut writer) = target.connect_timeout(Duration::from_millis(100))?;
    let mut disconnected = false;
    for op in ops {
        match op {
            WireOp::Write(bytes) => {
                if writer
                    .write_all(bytes)
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    // The daemon already cut us loose (oversize / slow):
                    // exactly the behaviour under test.
                    break;
                }
            }
            WireOp::Pause(d) => std::thread::sleep(*d),
            WireOp::Disconnect => {
                disconnected = true;
                break;
            }
        }
    }
    drop(writer);
    if disconnected {
        // Abrupt teardown: do not wait for replies.
        return Ok((0, 0, 0));
    }
    Ok(drain_replies(reader))
}

/// Reads reply bytes until EOF or ~600ms of silence, counting frames
/// and the two governor refusal markers.
fn drain_replies(mut reader: Box<dyn Read + Send>) -> (u64, u64, u64) {
    let mut buf = [0u8; 4096];
    let mut acc: Vec<u8> = Vec::new();
    let mut quiet = 0u32;
    loop {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                quiet = 0;
                acc.extend_from_slice(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                quiet += 1;
                if quiet >= 6 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&acc);
    let mut replies = 0u64;
    let mut breaker = 0u64;
    let mut oversize = 0u64;
    for line in text.lines() {
        replies += 1;
        if line.contains("breaker-open") {
            breaker += 1;
        }
        if line.contains("line-too-long") {
            oversize += 1;
        }
    }
    (replies, breaker, oversize)
}

/// `fjs fuzz-serve` configuration.
#[derive(Clone, Debug)]
pub struct FuzzServeOptions {
    /// Live daemon endpoints; fuzz connections round-robin across them.
    pub targets: Vec<DriveTarget>,
    /// Master seed; every thread derives its own stream from it.
    pub seed: u64,
    /// Concurrent fuzz connections (threads).
    pub connections: usize,
    /// Total frame budget across all fuzz connections.
    pub frames: u64,
    /// Scheduler spec for well-formed opens.
    pub scheduler: String,
    /// Write the clean tenant's script here (for a serial reference run).
    pub emit_clean: Option<std::path::PathBuf>,
}

impl Default for FuzzServeOptions {
    fn default() -> Self {
        FuzzServeOptions {
            targets: Vec::new(),
            seed: 0xC4A0_55ED,
            connections: 8,
            frames: 10_000,
            scheduler: "eager".into(),
            emit_clean: None,
        }
    }
}

/// What the chaos run observed. `healthy()` is the harness verdict.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Frames put on the wire by fuzz + hostile connections.
    pub frames_sent: u64,
    /// Fuzz connections opened (each round is a fresh connection).
    pub fuzz_connections: u64,
    /// Replies observed on fuzz/hostile connections.
    pub replies_seen: u64,
    /// `busy … breaker-open` refusals observed (hostile tenant).
    pub breaker_refusals: u64,
    /// `err line-too-long` replies observed (giant frames).
    pub oversize_replies: u64,
    /// Clean tenant: replies received / errors among them.
    pub clean_replies: usize,
    /// Clean tenant replies that were `err` (must be 0).
    pub clean_errs: usize,
    /// Clean tenant replies that were `busy` (must be 0).
    pub clean_busy: usize,
    /// Post-chaos liveness probe passed on every target.
    pub probe_ok: bool,
}

impl FuzzReport {
    /// True when the daemon survived: the clean tenant saw only `ok`
    /// replies and the post-chaos probe scheduled end-to-end.
    pub fn healthy(&self) -> bool {
        self.probe_ok && self.clean_errs == 0 && self.clean_busy == 0
    }
}

impl std::fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fuzz-serve: {} frames over {} fuzz connections, {} replies seen",
            self.frames_sent, self.fuzz_connections, self.replies_seen
        )?;
        writeln!(
            f,
            "fuzz-serve: {} breaker-open refusals, {} line-too-long replies",
            self.breaker_refusals, self.oversize_replies
        )?;
        writeln!(
            f,
            "fuzz-serve: clean tenant {} replies ({} busy, {} err)",
            self.clean_replies, self.clean_busy, self.clean_errs
        )?;
        write!(
            f,
            "fuzz-serve: probe {}",
            if self.probe_ok { "ok" } else { "FAILED" }
        )
    }
}

/// The clean tenant's deterministic script (sessions `c0…c3`).
fn clean_options(opts: &FuzzServeOptions) -> LoadgenOptions {
    LoadgenOptions {
        sessions: 4,
        jobs: 200,
        rate: 50_000.0,
        seed: opts.seed,
        scheduler: opts.scheduler.clone(),
        sid_prefix: "c".into(),
        ..LoadgenOptions::default()
    }
}

/// Drives one well-formed session triple (`open`/`job`/`close`) and
/// returns whether every reply started with `ok`.
fn probe_session(target: &DriveTarget, sid: &str, scheduler: &str) -> bool {
    let Ok((mut reader, mut writer)) = target.connect_timeout(Duration::from_millis(100)) else {
        return false;
    };
    let script = format!("open {sid} {scheduler}\njob {sid} 0,5,2\nclose {sid}\n");
    if writer
        .write_all(script.as_bytes())
        .and_then(|_| writer.flush())
        .is_err()
    {
        return false;
    }
    drop(writer);
    // Collect the three replies; the daemon keeps the connection open,
    // so stop on silence rather than waiting for EOF.
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 1024];
    let mut quiet = 0u32;
    while acc.iter().filter(|&&b| b == b'\n').count() < 3 {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                quiet = 0;
                acc.extend_from_slice(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                quiet += 1;
                if quiet >= 30 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&acc);
    let replies: Vec<&str> = text.lines().collect();
    replies.len() == 3 && replies.iter().all(|r| r.starts_with("ok "))
}

/// Runs the full chaos harness against a live daemon. Errors only for
/// harness-level failures (cannot connect at all, cannot write
/// `--emit-clean`); protocol abuse outcomes land in the report.
pub fn run_fuzz_serve(opts: &FuzzServeOptions) -> Result<FuzzReport, String> {
    if opts.targets.is_empty() {
        return Err("fuzz-serve needs at least one --socket or --tcp target".into());
    }
    let clean_opts = clean_options(opts);
    if let Some(path) = &opts.emit_clean {
        std::fs::write(path, emit_script(&clean_opts))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    let frames_sent = Arc::new(AtomicU64::new(0));
    let replies_seen = Arc::new(AtomicU64::new(0));
    let breaker_refusals = Arc::new(AtomicU64::new(0));
    let oversize_replies = Arc::new(AtomicU64::new(0));
    let fuzz_connections = Arc::new(AtomicU64::new(0));

    // Clean tenant: one well-formed connection, driven while the chaos
    // runs. Its sessions never share a tenant with fuzz traffic, so its
    // replies and log lines must be untouched by the abuse.
    let clean_target = opts.targets[0].clone();
    let clean_opts_thread = clean_opts.clone();
    let clean_handle =
        std::thread::spawn(move || crate::loadgen::drive(&clean_target, &clean_opts_thread, 1));

    // Hostile tenant: poisoned sessions whose closes are non-completed
    // verdicts, deterministically tripping tenant `h`'s breaker.
    let hostile_budget = (opts.frames / 20).clamp(30, 600);
    let hostile_target = opts.targets[0].clone();
    let hostile_frames = Arc::clone(&frames_sent);
    let hostile_replies = Arc::clone(&replies_seen);
    let hostile_refusals = Arc::clone(&breaker_refusals);
    let hostile_handle = std::thread::spawn(move || {
        let mut k = 0u64;
        let mut budget = hostile_budget;
        while budget > 0 {
            let sid = format!("h.p{k}");
            k += 1;
            let lines = [
                format!("open {sid} poison:panic:eager"),
                format!("job {sid} 0,1,1"),
                format!("close {sid}"),
            ];
            budget = budget.saturating_sub(lines.len() as u64);
            let ops: Vec<WireOp> = lines
                .iter()
                .map(|l| WireOp::Write(format!("{l}\n").into_bytes()))
                .collect();
            match run_plan(&hostile_target, &ops) {
                Ok((replies, refused, _)) => {
                    hostile_frames.fetch_add(lines.len() as u64, Ordering::Relaxed);
                    hostile_replies.fetch_add(replies, Ordering::Relaxed);
                    hostile_refusals.fetch_add(refused, Ordering::Relaxed);
                }
                Err(_) => break,
            }
        }
    });

    // Fuzz tenants: one thread per connection slot, each looping seeded
    // misbehaviour rounds on a fresh connection until its quota drains.
    let threads = opts.connections.max(1);
    let quota = (opts.frames / threads as u64).max(1);
    let mut handles = Vec::new();
    for t in 0..threads {
        let target = opts.targets[t % opts.targets.len()].clone();
        let scheduler = opts.scheduler.clone();
        let seed = opts.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
        let frames_sent = Arc::clone(&frames_sent);
        let replies_seen = Arc::clone(&replies_seen);
        let breaker_refusals = Arc::clone(&breaker_refusals);
        let oversize_replies = Arc::clone(&oversize_replies);
        let fuzz_connections = Arc::clone(&fuzz_connections);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sent = 0u64;
            let mut round = 0u64;
            let mut consecutive_failures = 0u32;
            while sent < quota {
                let script_opts = LoadgenOptions {
                    sessions: 2,
                    jobs: 24,
                    rate: 1000.0,
                    seed: rng.next_u64(),
                    scheduler: scheduler.clone(),
                    sid_prefix: format!("x{t}.r{round}s"),
                    ..LoadgenOptions::default()
                };
                round += 1;
                let lines: Vec<String> = emit_script(&script_opts)
                    .lines()
                    .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
                    .map(str::to_owned)
                    .collect();
                let mode = *rng.choose(&MISBEHAVE_MODES);
                let (ops, frames) = misbehave_plan(&lines, mode, &mut rng);
                match run_plan(&target, &ops) {
                    Ok((replies, refused, oversize)) => {
                        consecutive_failures = 0;
                        sent += frames;
                        fuzz_connections.fetch_add(1, Ordering::Relaxed);
                        frames_sent.fetch_add(frames, Ordering::Relaxed);
                        replies_seen.fetch_add(replies, Ordering::Relaxed);
                        breaker_refusals.fetch_add(refused, Ordering::Relaxed);
                        oversize_replies.fetch_add(oversize, Ordering::Relaxed);
                    }
                    // The daemon may briefly refuse connects under churn;
                    // retry the round rather than abort the harness — but
                    // a daemon that stays unreachable (crashed) must fail
                    // the run via the liveness probe, not hang it.
                    Err(_) => {
                        consecutive_failures += 1;
                        if consecutive_failures >= 250 {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        }));
    }

    for h in handles {
        h.join().map_err(|_| "fuzz thread panicked".to_string())?;
    }
    hostile_handle
        .join()
        .map_err(|_| "hostile thread panicked".to_string())?;
    let clean = clean_handle
        .join()
        .map_err(|_| "clean drive thread panicked".to_string())?
        .map_err(|e| format!("clean tenant drive: {e}"))?;

    // Post-chaos liveness probe on every target.
    let mut probe_ok = true;
    for (i, target) in opts.targets.iter().enumerate() {
        if !probe_session(target, &format!("zprobe.t{i}"), &opts.scheduler) {
            probe_ok = false;
        }
    }

    Ok(FuzzReport {
        frames_sent: frames_sent.load(Ordering::Relaxed),
        fuzz_connections: fuzz_connections.load(Ordering::Relaxed),
        replies_seen: replies_seen.load(Ordering::Relaxed),
        breaker_refusals: breaker_refusals.load(Ordering::Relaxed),
        oversize_replies: oversize_replies.load(Ordering::Relaxed),
        clean_replies: clean.replies,
        clean_errs: clean.errs,
        clean_busy: clean.busy,
        probe_ok,
    })
}

/// `fjs loadgen --misbehave <mode>`: sends the seeded script through one
/// misbehaving connection and reports what came back. Reuses the exact
/// mutators the chaos harness runs, so a failure found by `fuzz-serve`
/// can be replayed in isolation.
pub fn drive_misbehave(
    target: &DriveTarget,
    opts: &LoadgenOptions,
    mode: Misbehave,
) -> Result<String, String> {
    let lines: Vec<String> = emit_script(opts)
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(str::to_owned)
        .collect();
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let (ops, frames) = misbehave_plan(&lines, mode, &mut rng);
    let (replies, breaker, oversize) = run_plan(target, &ops)?;
    Ok(format!(
        "loadgen: misbehave={} sent {frames} frames, saw {replies} replies \
         ({breaker} breaker-open, {oversize} line-too-long)",
        mode.name()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines() -> Vec<String> {
        vec![
            "open a eager".into(),
            "job a 0,5,2".into(),
            "close a".into(),
        ]
    }

    #[test]
    fn plans_are_seed_deterministic() {
        for mode in MISBEHAVE_MODES {
            let mut a_rng = SmallRng::seed_from_u64(11);
            let mut b_rng = SmallRng::seed_from_u64(11);
            let (a, fa) = misbehave_plan(&lines(), mode, &mut a_rng);
            let (b, fb) = misbehave_plan(&lines(), mode, &mut b_rng);
            assert_eq!(fa, fb, "{mode:?} frame counts must match");
            assert_eq!(a.len(), b.len(), "{mode:?} op counts must match");
            for (x, y) in a.iter().zip(&b) {
                match (x, y) {
                    (WireOp::Write(p), WireOp::Write(q)) => assert_eq!(p, q),
                    (WireOp::Pause(p), WireOp::Pause(q)) => assert_eq!(p, q),
                    (WireOp::Disconnect, WireOp::Disconnect) => {}
                    _ => panic!("{mode:?} diverged in op kinds"),
                }
            }
        }
    }

    #[test]
    fn torn_plan_reassembles_to_the_original_bytes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let (ops, frames) = misbehave_plan(&lines(), Misbehave::Torn, &mut rng);
        assert_eq!(frames, 3);
        let mut joined = Vec::new();
        for op in &ops {
            match op {
                WireOp::Write(b) => joined.extend_from_slice(b),
                _ => panic!("torn plans only write"),
            }
        }
        assert_eq!(joined, b"open a eager\njob a 0,5,2\nclose a\n".to_vec());
    }

    #[test]
    fn giant_plan_carries_an_oversize_frame() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (ops, _) = misbehave_plan(&lines(), Misbehave::Giant, &mut rng);
        let giant = ops.iter().any(
            |op| matches!(op, WireOp::Write(b) if b.len() > crate::serve::DEFAULT_MAX_FRAME_BYTES),
        );
        assert!(giant, "giant mode must exceed the default frame cap");
        assert!(matches!(ops.last(), Some(WireOp::Disconnect)));
    }

    #[test]
    fn garbage_lines_never_contain_interior_newlines() {
        let mut rng = SmallRng::seed_from_u64(9);
        let (ops, _) = misbehave_plan(&lines(), Misbehave::Garbage, &mut rng);
        for op in &ops {
            if let WireOp::Write(b) = op {
                assert_eq!(
                    b.iter().filter(|&&c| c == b'\n').count(),
                    1,
                    "each garbage write is exactly one frame"
                );
                assert_eq!(b.last(), Some(&b'\n'));
            }
        }
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in MISBEHAVE_MODES {
            assert_eq!(Misbehave::parse(mode.name()), Some(mode));
        }
        assert_eq!(Misbehave::parse("frogs"), None);
    }
}
