//! **E4 — Theorem 4.1 / Figure 4.** Runs the adaptive golden-ratio
//! adversary against the clairvoyant schedulers (Profit, CDB, Doubler) and
//! the length-blind ones (Batch+, Eager, Lazy).
//!
//! Expected shape: *every* branch of the game yields a certified ratio
//! `≥ φ·(1 − O(1/n))`. Schedulers that keep starting the long jobs inside
//! the short windows (Profit, Eager) ride the full course and pay
//! `nφ / (φ+n−1) → φ`; schedulers that decline (CDB, Doubler, Lazy,
//! Batch+) stop the game early and pay `((i−1)φ + φ + 1)/(φ + i − 1) = φ`
//! exactly — the adversary wins either way, which is the theorem.

use super::Profile;
use fjs_adversary::{phi, CvAdversary};
use fjs_analysis::{convergence_limit, f3, parallel_map, Table};
use fjs_core::sim::run as simulate;
use fjs_schedulers::SchedulerKind;

/// One adversary duel.
pub struct CvDuelResult {
    /// Scheduler label.
    pub scheduler: String,
    /// Max rounds `n`.
    pub n: usize,
    /// Rounds the adversary actually released.
    pub released: usize,
    /// Whether the scheduler survived all rounds.
    pub full_course: bool,
    /// Online span.
    pub online_span: f64,
    /// Prescribed counter-schedule span (≥ OPT).
    pub prescribed_span: f64,
    /// Certified ratio lower bound.
    pub ratio: f64,
}

/// Runs one scheduler against the φ-adversary with `n` max rounds.
pub fn duel(kind: SchedulerKind, n: usize) -> CvDuelResult {
    let mut adv = CvAdversary::new(n);
    let out = simulate(&mut adv, kind.build());
    assert!(out.is_feasible(), "{} violated feasibility", kind.label());
    let prescribed = adv.prescribed_schedule(&out.instance);
    prescribed
        .validate(&out.instance)
        .expect("prescribed schedule feasible");
    let prescribed_span = prescribed.span(&out.instance).get();
    CvDuelResult {
        scheduler: kind.label(),
        n,
        released: adv.rounds_released(),
        full_course: adv.ran_full_course(),
        online_span: out.span.get(),
        prescribed_span,
        ratio: out.span.get() / prescribed_span,
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let ns: &[usize] = profile.pick(&[5, 20][..], &[1, 2, 5, 10, 20, 50, 100, 200][..]);
    let kinds = [
        SchedulerKind::profit_optimal(),
        SchedulerKind::cdb_optimal(),
        SchedulerKind::Doubler { c: 1.0 },
        SchedulerKind::BatchPlus,
        SchedulerKind::Eager,
        SchedulerKind::Lazy,
    ];

    let cells: Vec<(SchedulerKind, usize)> = kinds
        .iter()
        .flat_map(|&k| ns.iter().map(move |&n| (k, n)))
        .collect();
    let results = parallel_map(&cells, |&(k, n)| duel(k, n));

    let mut t = Table::new(
        "E4 (Thm 4.1 / Fig 4): golden-ratio adversary vs clairvoyant schedulers",
        &[
            "scheduler",
            "n (max rounds)",
            "rounds released",
            "full course",
            "online span",
            "prescribed span",
            "ratio (cert. LB)",
            "phi",
        ],
    );
    for r in &results {
        t.push_row(vec![
            r.scheduler.clone(),
            format!("{}", r.n),
            format!("{}", r.released),
            format!("{}", r.full_course),
            f3(r.online_span),
            f3(r.prescribed_span),
            f3(r.ratio),
            f3(phi()),
        ]);
    }

    // Extrapolate n → ∞ for schedulers that ride the full course; the
    // decline branch is exactly φ at every n already.
    let mut conv = Table::new(
        "E4 convergence: extrapolated n→∞ ratio vs φ (full-course schedulers)",
        &["scheduler", "estimated limit", "phi", "fit r²"],
    );
    for kind in &kinds {
        let label = kind.label();
        let (ns_f, ratios): (Vec<f64>, Vec<f64>) = results
            .iter()
            .filter(|r| r.scheduler == label && r.full_course && r.n >= 5)
            .map(|r| (r.n as f64, r.ratio))
            .unzip();
        if ns_f.len() >= 2 {
            let fit = convergence_limit(&ns_f, &ratios);
            conv.push_row(vec![label, f3(fit.a), f3(phi()), f3(fit.r2)]);
        }
    }
    vec![t, conv]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profit_rides_full_course() {
        let r = duel(SchedulerKind::profit_optimal(), 20);
        assert!(r.full_course, "Profit admits φ-length longs (φ ≤ k·1)");
        // nφ/(φ+n−1) for n=20 ≈ 1.5688.
        let expect = 20.0 * phi() / (phi() + 19.0);
        assert!((r.ratio - expect).abs() < 1e-9, "got {}", r.ratio);
    }

    #[test]
    fn cdb_declines_and_pays_phi_exactly() {
        let r = duel(SchedulerKind::cdb_optimal(), 20);
        assert!(
            !r.full_course,
            "CDB buffers the long job in its own category"
        );
        assert_eq!(r.released, 1);
        assert!(
            (r.ratio - phi()).abs() < 1e-9,
            "exact φ branch, got {}",
            r.ratio
        );
    }

    #[test]
    fn doubler_declines_and_pays_phi() {
        let r = duel(SchedulerKind::Doubler { c: 1.0 }, 10);
        assert!(
            !r.full_course,
            "Doubler waits φ > 1 before starting the long job"
        );
        assert!((r.ratio - phi()).abs() < 1e-9, "got {}", r.ratio);
    }

    #[test]
    fn every_scheduler_pays_at_least_phi_asymptotically() {
        for kind in [
            SchedulerKind::profit_optimal(),
            SchedulerKind::cdb_optimal(),
            SchedulerKind::Doubler { c: 1.0 },
            SchedulerKind::BatchPlus,
            SchedulerKind::Eager,
            SchedulerKind::Lazy,
        ] {
            let r = duel(kind, 100);
            assert!(
                r.ratio >= phi() * 0.985,
                "{}: ratio {} below φ(1−1.5%)",
                r.scheduler,
                r.ratio
            );
        }
    }
}
