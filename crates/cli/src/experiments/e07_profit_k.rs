//! **E7 — Theorem 4.11.** Sweeps Profit's profitability parameter `k` over
//! random workloads against the proved bound curve `2k + 2 + 1/(k−1)`.
//!
//! Expected shape: the bound curve attains its minimum `4 + 2√2 ≈ 6.828` at
//! `k* = 1 + √2/2 ≈ 1.7071`; measured ratios sit well below it and react to
//! `k` in the direction the analysis predicts — `k → 1⁺` admits almost
//! nothing into an iteration (little overlap harvested), very large `k`
//! admits jobs whose intervals barely overlap the flag's (span bloat).

use super::Profile;
use fjs_analysis::{evaluate, f3, parallel_map, Summary, Table};
use fjs_schedulers::{profit_bound, SchedulerKind, OPTIMAL_K};
use fjs_workloads::Scenario;

/// Ratio summary for one `k`.
pub struct KResult {
    /// The profitability parameter.
    pub k: f64,
    /// Measured ratio vs the certified OPT lower bound.
    pub ratio_vs_lb: Summary,
    /// Measured ratio vs the descent OPT upper bound.
    pub ratio_vs_ub: Summary,
    /// The proved worst-case bound at this `k`.
    pub bound: f64,
}

/// Evaluates Profit(k) over `seeds` replications of a scenario.
pub fn sweep_k(k: f64, scenario: Scenario, n: usize, seeds: &[u64]) -> KResult {
    let evals = parallel_map(seeds, |&seed| {
        let inst = scenario.generate(n, seed);
        evaluate(SchedulerKind::Profit { k }, &inst, 3)
    });
    let lb: Vec<f64> = evals.iter().map(|e| e.ratio_vs_lb()).collect();
    let ub: Vec<f64> = evals.iter().map(|e| e.ratio_vs_ub()).collect();
    KResult {
        k,
        ratio_vs_lb: Summary::of(&lb),
        ratio_vs_ub: Summary::of(&ub),
        bound: profit_bound(k),
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let ks: &[f64] = profile.pick(
        &[1.2, OPTIMAL_K, 3.0][..],
        &[
            1.05, 1.1, 1.2, 1.4, 1.6, OPTIMAL_K, 1.9, 2.2, 2.6, 3.0, 4.0, 6.0,
        ][..],
    );
    let n = profile.pick(120, 400);
    let seeds: Vec<u64> = (1..=profile.pick(4u64, 12u64)).collect();

    let mut tables = Vec::new();
    for scenario in [Scenario::CloudBatch, Scenario::SlackRich] {
        let mut t = Table::new(
            format!(
                "E7 (Thm 4.11): Profit ratio vs k on {} (n={n}, {} seeds); bound minimum {:.3} at k*={:.4}",
                scenario.name(),
                seeds.len(),
                4.0 + 2.0 * 2.0f64.sqrt(),
                OPTIMAL_K,
            ),
            &["k", "ratio vs OPT-LB (mean±std)", "ratio vs OPT-UB (mean±std)", "proved bound"],
        );
        for &k in ks {
            let r = sweep_k(k, scenario, n, &seeds);
            t.push_row(vec![
                format!("{k:.4}"),
                r.ratio_vs_lb.pm(),
                r.ratio_vs_ub.pm(),
                f3(r.bound),
            ]);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratio_stays_below_worst_case_bound() {
        for k in [1.3, OPTIMAL_K, 2.5] {
            let r = sweep_k(k, Scenario::CloudBatch, 150, &[1, 2, 3]);
            assert!(
                r.ratio_vs_lb.max <= r.bound,
                "k={k}: measured {} exceeds proved bound {}",
                r.ratio_vs_lb.max,
                r.bound
            );
        }
    }

    #[test]
    fn bound_minimum_at_optimal_k() {
        let at_opt = profit_bound(OPTIMAL_K);
        for k in [1.1, 1.4, 2.0, 3.0, 5.0] {
            assert!(profit_bound(k) >= at_opt - 1e-12);
        }
        assert!((at_opt - (4.0 + 2.0 * 2.0f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn profit_beats_its_own_extremes_on_slack_rich() {
        // On a stacking-friendly workload, a mid-range k should not be
        // worse than a barely-admitting k → 1⁺ configuration.
        let seeds = [11, 12, 13, 14];
        let strict = sweep_k(1.05, Scenario::SlackRich, 200, &seeds);
        let tuned = sweep_k(OPTIMAL_K, Scenario::SlackRich, 200, &seeds);
        assert!(
            tuned.ratio_vs_lb.mean <= strict.ratio_vs_lb.mean + 1e-9,
            "tuned {} vs strict {}",
            tuned.ratio_vs_lb.mean,
            strict.ratio_vs_lb.mean
        );
    }
}
