//! **E3 — Theorem 3.5 / Figure 3.** Runs Batch+ on the Figure 3 instance.
//! Expected shape: measured Batch+ span is exactly `m(μ+1−ε)`; the ratio
//! `m(μ+1−ε)/(m+μ)` approaches `μ+1` from below as `m` grows — the
//! theorem's tightness — while never exceeding the proved `μ+1` bound.
//! Batch (without the "+") is also run on the same instance to show the
//! instance does *not* fool it, motivating E11's ablation.

use super::Profile;
use fjs_adversary::fig3_batch_plus_tightness;
use fjs_analysis::{convergence_limit, f3, parallel_map, Table};
use fjs_core::sim::{run_static, Clairvoyance};
use fjs_schedulers::{Batch, BatchPlus};

/// One Figure 3 measurement.
pub struct Fig3Result {
    /// Round count `m`.
    pub m: usize,
    /// μ.
    pub mu: f64,
    /// Batch+'s span (theory: `m(μ+1−ε)`).
    pub batch_plus_span: f64,
    /// Plain Batch's span on the same instance.
    pub batch_span: f64,
    /// Prescribed schedule span (theory: `m+μ`).
    pub prescribed_span: f64,
    /// Measured Batch+ ratio.
    pub ratio: f64,
}

/// Runs Batch+ (and Batch) on one Figure 3 instance.
pub fn measure(m: usize, mu: f64, eps: f64) -> Fig3Result {
    let tight = fig3_batch_plus_tightness(m, mu, eps);
    let plus = run_static(
        &tight.instance,
        Clairvoyance::NonClairvoyant,
        BatchPlus::new(),
    );
    let plain = run_static(&tight.instance, Clairvoyance::NonClairvoyant, Batch::new());
    assert!(plus.is_feasible() && plain.is_feasible());
    Fig3Result {
        m,
        mu,
        batch_plus_span: plus.span.get(),
        batch_span: plain.span.get(),
        prescribed_span: tight.prescribed_span.get(),
        ratio: plus.span.get() / tight.prescribed_span.get(),
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let eps = 1e-3;
    let ms: &[usize] = profile.pick(
        &[1, 8, 64][..],
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512][..],
    );
    let mus: &[f64] = profile.pick(&[4.0][..], &[2.0, 4.0, 8.0][..]);

    let cells: Vec<(usize, f64)> = mus
        .iter()
        .flat_map(|&mu| ms.iter().map(move |&m| (m, mu)))
        .collect();
    let results = parallel_map(&cells, |&(m, mu)| measure(m, mu, eps));

    let mut t = Table::new(
        "E3 (Thm 3.5 / Fig 3): Batch+ on the μ+1 tightness instance",
        &[
            "mu",
            "m",
            "Batch+ span",
            "Batch span",
            "prescribed span",
            "ratio",
            "mu+1 bound",
        ],
    );
    for r in &results {
        t.push_row(vec![
            format!("{}", r.mu),
            format!("{}", r.m),
            f3(r.batch_plus_span),
            f3(r.batch_span),
            f3(r.prescribed_span),
            f3(r.ratio),
            f3(r.mu + 1.0),
        ]);
    }

    // Extrapolate the m → ∞ limit per μ by regressing ratio on 1/m.
    let mut conv = Table::new(
        "E3 convergence: extrapolated m→∞ ratio vs the μ+1 tight bound",
        &["mu", "estimated limit", "mu+1 bound", "fit r²"],
    );
    for &mu in mus {
        let (ms_f, ratios): (Vec<f64>, Vec<f64>) = results
            .iter()
            .filter(|r| r.mu == mu && r.m >= 4)
            .map(|r| (r.m as f64, r.ratio))
            .unzip();
        if ms_f.len() >= 2 {
            let fit = convergence_limit(&ms_f, &ratios);
            conv.push_row(vec![format!("{mu}"), f3(fit.a), f3(mu + 1.0), f3(fit.r2)]);
        }
    }
    vec![t, conv]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_plus_span_matches_theory() {
        for (m, mu) in [(1usize, 2.0f64), (8, 4.0), (32, 8.0)] {
            let r = measure(m, mu, 1e-3);
            let expect = m as f64 * (mu + 1.0 - 1e-3);
            assert!(
                (r.batch_plus_span - expect).abs() < 1e-6,
                "m={m} mu={mu}: {} vs {}",
                r.batch_plus_span,
                expect
            );
        }
    }

    #[test]
    fn ratio_approaches_mu_plus_one_never_exceeding() {
        let mu = 4.0;
        let mut prev = 0.0;
        for m in [1, 8, 64, 256] {
            let r = measure(m, mu, 1e-3);
            assert!(r.ratio > prev);
            assert!(r.ratio <= mu + 1.0 + 1e-9, "Theorem 3.5 upper bound");
            prev = r.ratio;
        }
        assert!(
            prev > (mu + 1.0) * 0.97,
            "m=256 within 3% of μ+1, got {prev}"
        );
    }

    #[test]
    fn prescribed_span_is_m_plus_mu() {
        let r = measure(16, 8.0, 1e-3);
        assert!((r.prescribed_span - (16.0 + 8.0)).abs() < 1e-9);
    }
}
