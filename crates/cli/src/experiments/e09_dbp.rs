//! **E9 — Section 5 extension.** Generalized MinUsageTime Dynamic Bin
//! Packing: a span scheduler chooses the active intervals, then First Fit
//! (or classify-by-duration First Fit) packs them into unit servers.
//!
//! Expected shape: against the rigid baseline (Eager = what prior DBP work
//! assumes), span-aware schedulers (Batch+, Profit, CDB) reduce **total
//! usage time** on laxity-rich workloads — the paper's §5 thesis that
//! combining an `O(μ)`/`O(1)`-competitive span scheduler with First Fit
//! extends the MinUsageTime DBP guarantees to flexible jobs.

use super::Profile;
use fjs_analysis::{f3, parallel_map, Summary, Table};
use fjs_dbp::{deterministic_sizes, outcome_items, pack, usage_lower_bound, Packer};
use fjs_schedulers::SchedulerKind;
use fjs_workloads::Scenario;

/// Usage-time summary for one `(scheduler, packer, scenario)` cell.
pub struct DbpCell {
    /// Scheduler label.
    pub scheduler: String,
    /// Packer label.
    pub packer: &'static str,
    /// Mean span of the schedule.
    pub span: Summary,
    /// Mean total usage time.
    pub usage: Summary,
    /// Mean number of bins opened.
    pub bins: Summary,
    /// Mean certified usage lower bound.
    pub usage_lb: Summary,
}

fn packer_label(p: Packer) -> &'static str {
    match p {
        Packer::FirstFit => "FirstFit",
        Packer::BestFit => "BestFit",
        Packer::NextFit => "NextFit",
        Packer::ClassifiedFirstFit { .. } => "CD-FirstFit",
    }
}

/// Runs one scheduler + packer over seeds of a scenario.
pub fn eval_cell(
    kind: SchedulerKind,
    packer: Packer,
    scenario: Scenario,
    n: usize,
    seeds: &[u64],
) -> DbpCell {
    let runs = parallel_map(seeds, |&seed| {
        let inst = scenario.generate(n, seed);
        let out = kind.run_on(&inst);
        assert!(out.is_feasible());
        let sizes = deterministic_sizes(out.instance.len(), 0.1, 0.6, seed ^ 0xD0B);
        let items = outcome_items(&out, &sizes);
        let packing = pack(&items, packer);
        debug_assert!(fjs_dbp::verify_capacity(&items, &packing).is_none());
        (
            out.span.get(),
            packing.total_usage.get(),
            packing.num_bins() as f64,
            usage_lower_bound(&items).get(),
        )
    });
    DbpCell {
        scheduler: kind.label(),
        packer: packer_label(packer),
        span: Summary::of(&runs.iter().map(|r| r.0).collect::<Vec<_>>()),
        usage: Summary::of(&runs.iter().map(|r| r.1).collect::<Vec<_>>()),
        bins: Summary::of(&runs.iter().map(|r| r.2).collect::<Vec<_>>()),
        usage_lb: Summary::of(&runs.iter().map(|r| r.3).collect::<Vec<_>>()),
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let n = profile.pick(150, 500);
    let seeds: Vec<u64> = (1..=profile.pick(3u64, 10u64)).collect();
    let kinds = [
        SchedulerKind::Eager, // the rigid baseline of prior DBP work
        SchedulerKind::BatchPlus,
        SchedulerKind::profit_optimal(),
        SchedulerKind::cdb_optimal(),
    ];
    let packers = [
        Packer::FirstFit,
        Packer::BestFit,
        Packer::NextFit,
        Packer::ClassifiedFirstFit {
            alpha: 2.0,
            base: 1.0,
        },
    ];

    let mut tables = Vec::new();
    for scenario in [
        Scenario::CloudBatch,
        Scenario::SlackRich,
        Scenario::BurstyAnalytics,
    ] {
        let mut t = Table::new(
            format!(
                "E9 (§5): generalized MinUsageTime DBP on {} (n={n}, {} seeds)",
                scenario.name(),
                seeds.len()
            ),
            &[
                "scheduler",
                "packer",
                "span (mean)",
                "total usage (mean)",
                "bins (mean)",
                "usage LB (mean)",
                "usage/LB",
            ],
        );
        for &kind in &kinds {
            for &packer in &packers {
                let c = eval_cell(kind, packer, scenario, n, &seeds);
                t.push_row(vec![
                    c.scheduler.clone(),
                    c.packer.to_string(),
                    f3(c.span.mean),
                    f3(c.usage.mean),
                    f3(c.bins.mean),
                    f3(c.usage_lb.mean),
                    f3(c.usage.mean / c.usage_lb.mean),
                ]);
            }
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_schedulers_cut_usage_on_slack_rich() {
        let seeds = [1, 2, 3];
        let eager = eval_cell(
            SchedulerKind::Eager,
            Packer::FirstFit,
            Scenario::SlackRich,
            150,
            &seeds,
        );
        let plus = eval_cell(
            SchedulerKind::BatchPlus,
            Packer::FirstFit,
            Scenario::SlackRich,
            150,
            &seeds,
        );
        assert!(
            plus.usage.mean < eager.usage.mean,
            "Batch+ usage {} should beat rigid Eager {}",
            plus.usage.mean,
            eager.usage.mean
        );
    }

    #[test]
    fn usage_always_at_least_lower_bound() {
        for &packer in &[
            Packer::FirstFit,
            Packer::ClassifiedFirstFit {
                alpha: 2.0,
                base: 1.0,
            },
        ] {
            let c = eval_cell(
                SchedulerKind::profit_optimal(),
                packer,
                Scenario::CloudBatch,
                120,
                &[4, 5],
            );
            assert!(c.usage.mean >= c.usage_lb.mean - 1e-9, "{}", c.packer);
            assert!(c.usage.mean >= c.span.mean - 1e-9, "usage dominates span");
        }
    }
}
