//! **E15 — the uniform-jobs frontier (unit lengths, μ = 1).** Sweeps the
//! uniform-family tightness constructions and the adaptive unit trap:
//!
//! * `uniform_aligned_tightness(m, ε)` — UnitAligned / Batch+ pay
//!   `m(2−ε)` against prescribed `m+1`, so the ratio approaches the
//!   uniform bound **2** from below as `m` grows;
//! * `uniform_greedy_tightness(groups, g)` — UnitGreedy / Eager realize
//!   **exactly** `g = 1+λ` while UnitEndfit is optimal on the instance;
//! * `uniform_endfit_tightness(n)` — UnitEndfit / Lazy realize exactly
//!   `n = 1+λ` while UnitGreedy is optimal — the two one-sided bounds
//!   are incomparable;
//! * [`UnitTrapAdversary`] — the adaptive lower bound: forces exactly 2
//!   against arrival-greedy play (Eager, UnitGreedy) and certifies an
//!   honest ratio 1 against deadline players, per its outcome-dependent
//!   [`UnitTrapAdversary::claimed_forced_ratio`].
//!
//! Expected shape: every measured ratio meets its claimed value exactly
//! (the constructions are integral, so the arithmetic is bit-stable up to
//! the ε accumulation in the aligned family) and never exceeds the proved
//! uniform upper bounds.

use super::Profile;
use fjs_adversary::{
    uniform_aligned_tightness, uniform_endfit_tightness, uniform_greedy_tightness,
    UnitTrapAdversary,
};
use fjs_analysis::{convergence_limit, f3, parallel_map, Table};
use fjs_core::sim::{run as simulate, run_static, Clairvoyance};
use fjs_schedulers::SchedulerKind;

/// One static tightness measurement: a construction played against the
/// scheduler it fools and a contrast scheduler it does not.
pub struct TightResult {
    /// Construction label.
    pub construction: &'static str,
    /// Size parameter (`m`, `groups·g`, or `n`).
    pub size: usize,
    /// Scheduler the construction targets.
    pub victim: String,
    /// Victim span.
    pub victim_span: f64,
    /// Contrast scheduler (should be near-optimal here).
    pub contrast: String,
    /// Contrast span.
    pub contrast_span: f64,
    /// Prescribed schedule span (≥ OPT).
    pub prescribed_span: f64,
    /// Victim ratio against the prescribed schedule.
    pub ratio: f64,
    /// The ratio the construction claims to force in the limit.
    pub claimed: f64,
}

fn tight_measure(
    construction: &'static str,
    size: usize,
    instance: fjs_core::job::Instance,
    prescribed_span: f64,
    victim: SchedulerKind,
    contrast: SchedulerKind,
    claimed: f64,
) -> TightResult {
    let v = run_static(&instance, Clairvoyance::NonClairvoyant, victim.build());
    let c = run_static(&instance, Clairvoyance::NonClairvoyant, contrast.build());
    assert!(v.is_feasible() && c.is_feasible());
    TightResult {
        construction,
        size,
        victim: victim.label(),
        victim_span: v.span.get(),
        contrast: contrast.label(),
        contrast_span: c.span.get(),
        prescribed_span,
        ratio: v.span.get() / prescribed_span,
        claimed,
    }
}

/// UnitAligned on the aligned tightness family (ratio → 2).
pub fn measure_aligned(m: usize, eps: f64) -> TightResult {
    let t = uniform_aligned_tightness(m, eps);
    tight_measure(
        "aligned(m)",
        m,
        t.instance,
        t.prescribed_span.get(),
        SchedulerKind::UnitAligned,
        SchedulerKind::UnitGreedy,
        2.0,
    )
}

/// UnitGreedy on the greedy tightness family (ratio exactly `g = 1+λ`).
pub fn measure_greedy(groups: usize, g: usize) -> TightResult {
    let t = uniform_greedy_tightness(groups, g);
    tight_measure(
        "greedy(g)",
        g,
        t.instance,
        t.prescribed_span.get(),
        SchedulerKind::UnitGreedy,
        SchedulerKind::UnitEndfit,
        g as f64,
    )
}

/// UnitEndfit on the endfit tightness family (ratio exactly `n = 1+λ`).
pub fn measure_endfit(n: usize) -> TightResult {
    let t = uniform_endfit_tightness(n);
    tight_measure(
        "endfit(n)",
        n,
        t.instance,
        t.prescribed_span.get(),
        SchedulerKind::UnitEndfit,
        SchedulerKind::UnitGreedy,
        n as f64,
    )
}

/// One adaptive trap duel.
pub struct TrapResult {
    /// Scheduler label.
    pub scheduler: String,
    /// Rounds requested.
    pub rounds: usize,
    /// Rounds on which the scheduler was trapped.
    pub trapped: usize,
    /// Rounds on which it escaped.
    pub escaped: usize,
    /// Online span.
    pub online_span: f64,
    /// Prescribed counter-schedule span (≥ OPT).
    pub prescribed_span: f64,
    /// Certified ratio lower bound.
    pub ratio: f64,
    /// The adversary's own outcome-dependent claim `(2t+e)/(t+e)`.
    pub claimed: f64,
}

/// Runs one non-clairvoyant scheduler against the unit trap.
pub fn trap_duel(kind: SchedulerKind, rounds: usize, laxity: f64) -> TrapResult {
    assert!(
        !kind.requires_clairvoyance(),
        "the unit trap rules lengths adaptively and only admits \
         non-clairvoyant schedulers"
    );
    let mut adv = UnitTrapAdversary::new(rounds, laxity);
    let out = simulate(&mut adv, kind.build());
    assert!(out.is_feasible(), "{} violated feasibility", kind.label());
    let prescribed = adv.prescribed_schedule(&out.instance);
    prescribed
        .validate(&out.instance)
        .expect("prescribed schedule feasible");
    let prescribed_span = prescribed.span(&out.instance).get();
    TrapResult {
        scheduler: kind.label(),
        rounds,
        trapped: adv.trapped(),
        escaped: adv.escaped(),
        online_span: out.span.get(),
        prescribed_span,
        ratio: out.span.get() / prescribed_span,
        claimed: adv.claimed_forced_ratio(),
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let eps = 1e-3;
    let ms: &[usize] = profile.pick(&[1, 8, 64][..], &[1, 2, 4, 8, 16, 32, 64, 128, 256][..]);
    let gs: &[usize] = profile.pick(&[2, 5][..], &[2, 3, 5, 8, 13][..]);
    let ns: &[usize] = profile.pick(&[2, 6][..], &[2, 4, 8, 16, 32][..]);

    let aligned = parallel_map(ms, |&m| measure_aligned(m, eps));
    let greedy = parallel_map(gs, |&g| measure_greedy(profile.pick(3, 8), g));
    let endfit = parallel_map(ns, |&n| measure_endfit(n));

    let mut t = Table::new(
        "E15 (uniform μ=1): tightness constructions vs their victims",
        &[
            "construction",
            "size",
            "victim",
            "victim span",
            "contrast",
            "contrast span",
            "prescribed span",
            "ratio",
            "claimed",
        ],
    );
    for r in aligned.iter().chain(&greedy).chain(&endfit) {
        t.push_row(vec![
            r.construction.to_string(),
            format!("{}", r.size),
            r.victim.clone(),
            f3(r.victim_span),
            r.contrast.clone(),
            f3(r.contrast_span),
            f3(r.prescribed_span),
            f3(r.ratio),
            f3(r.claimed),
        ]);
    }

    // Extrapolate the aligned family's m → ∞ limit (should hit 2).
    let mut conv = Table::new(
        "E15 convergence: aligned family's m→∞ ratio vs the uniform bound 2",
        &["estimated limit", "bound", "fit r²"],
    );
    let (ms_f, ratios): (Vec<f64>, Vec<f64>) = aligned
        .iter()
        .filter(|r| r.size >= 4)
        .map(|r| (r.size as f64, r.ratio))
        .unzip();
    if ms_f.len() >= 2 {
        let fit = convergence_limit(&ms_f, &ratios);
        conv.push_row(vec![f3(fit.a), f3(2.0), f3(fit.r2)]);
    }

    let rounds = profile.pick(8, 64);
    let kinds = [
        SchedulerKind::Eager,
        SchedulerKind::UnitGreedy,
        SchedulerKind::Lazy,
        SchedulerKind::UnitEndfit,
        SchedulerKind::BatchPlus,
        SchedulerKind::UnitAligned,
    ];
    let duels = parallel_map(&kinds, |&kind| trap_duel(kind, rounds, 1.0));

    let mut trap = Table::new(
        "E15 trap: adaptive unit adversary (traps arrival-greedy play at 2)",
        &[
            "scheduler",
            "rounds",
            "trapped",
            "escaped",
            "online span",
            "prescribed span",
            "ratio (cert. LB)",
            "claimed (2t+e)/(t+e)",
        ],
    );
    for r in &duels {
        trap.push_row(vec![
            r.scheduler.clone(),
            format!("{}", r.rounds),
            format!("{}", r.trapped),
            format!("{}", r.escaped),
            f3(r.online_span),
            f3(r.prescribed_span),
            f3(r.ratio),
            f3(r.claimed),
        ]);
    }

    vec![t, conv, trap]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_ratio_approaches_two_never_exceeding() {
        let mut prev = 0.0;
        for m in [1, 4, 16, 64] {
            let r = measure_aligned(m, 1e-3);
            assert!(r.ratio > prev);
            assert!(r.ratio <= 2.0 + 1e-9, "uniform upper bound");
            prev = r.ratio;
        }
        assert!(prev > 2.0 * 0.97, "m=64 within 3% of 2, got {prev}");
    }

    #[test]
    fn greedy_and_endfit_hit_one_plus_lambda_exactly() {
        let g = measure_greedy(3, 5);
        assert_eq!(g.ratio, 5.0);
        assert_eq!(g.contrast_span, g.prescribed_span, "endfit optimal here");
        let e = measure_endfit(6);
        assert_eq!(e.ratio, 6.0);
        assert_eq!(e.contrast_span, e.prescribed_span, "greedy optimal here");
    }

    #[test]
    fn trap_forces_two_on_greedy_and_certifies_one_on_endfit() {
        let g = trap_duel(SchedulerKind::UnitGreedy, 6, 1.0);
        assert_eq!(g.trapped, 6);
        assert_eq!(g.ratio, 2.0);
        assert_eq!(g.ratio, g.claimed);
        let e = trap_duel(SchedulerKind::UnitEndfit, 6, 1.0);
        assert_eq!(e.escaped, 6);
        assert_eq!(e.ratio, 1.0);
        assert_eq!(e.ratio, e.claimed);
    }

    #[test]
    fn quick_profile_renders() {
        let tables = run(Profile::Quick);
        assert_eq!(tables.len(), 3);
        assert!(tables[0].rows.len() >= 7);
        assert_eq!(tables[2].rows.len(), 6);
    }

    #[test]
    #[should_panic(expected = "non-clairvoyant")]
    fn clairvoyant_schedulers_rejected() {
        let _ = trap_duel(SchedulerKind::profit_optimal(), 2, 1.0);
    }
}
