//! **E5 — Theorem 4.4.** Sweeps the CDB class ratio `α` over random
//! workloads and reports the measured ratio bracket against the proved
//! bound curve `3α + 4 + 2/(α−1)`.
//!
//! Expected shape: measured ratios sit far below the worst-case curve (the
//! bound is adversarial), stay bounded across `α`, and the *bound* curve
//! itself attains its minimum `7 + 2√6 ≈ 11.899` at `α = 1+√(2/3) ≈ 1.8165`
//! — both facts surfaced in the table. Extreme `α` (≈1 or large) degrade
//! the measured ratio too: near 1 every job is its own category (no
//! batching), large α behaves like a single Batch+ over wildly mixed
//! lengths.

use super::Profile;
use fjs_analysis::{evaluate, f3, parallel_map, Summary, Table};
use fjs_schedulers::{cdb_bound, optimal_alpha, SchedulerKind};
use fjs_workloads::Scenario;

/// Ratio summary for one α.
pub struct AlphaResult {
    /// The class ratio.
    pub alpha: f64,
    /// Mean measured ratio vs the certified OPT lower bound (pessimistic).
    pub ratio_vs_lb: Summary,
    /// Mean measured ratio vs the descent OPT upper bound (optimistic).
    pub ratio_vs_ub: Summary,
    /// The proved worst-case bound at this α.
    pub bound: f64,
}

/// Evaluates CDB(α) over `seeds` replications of a scenario.
pub fn sweep_alpha(alpha: f64, scenario: Scenario, n: usize, seeds: &[u64]) -> AlphaResult {
    let evals = parallel_map(seeds, |&seed| {
        let inst = scenario.generate(n, seed);
        evaluate(SchedulerKind::Cdb { alpha, base: 1.0 }, &inst, 3)
    });
    let lb: Vec<f64> = evals.iter().map(|e| e.ratio_vs_lb()).collect();
    let ub: Vec<f64> = evals.iter().map(|e| e.ratio_vs_ub()).collect();
    AlphaResult {
        alpha,
        ratio_vs_lb: Summary::of(&lb),
        ratio_vs_ub: Summary::of(&ub),
        bound: cdb_bound(alpha),
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let alphas: &[f64] = profile.pick(
        &[1.3, 1.8165, 3.0][..],
        &[1.1, 1.2, 1.4, 1.6, 1.8165, 2.0, 2.4, 2.8, 3.2, 4.0, 6.0][..],
    );
    let n = profile.pick(120, 400);
    let seeds: Vec<u64> = (1..=profile.pick(4u64, 12u64)).collect();

    let mut tables = Vec::new();
    for scenario in [Scenario::CloudBatch, Scenario::BurstyAnalytics] {
        let mut t = Table::new(
            format!(
                "E5 (Thm 4.4): CDB ratio vs α on {} (n={n}, {} seeds); bound minimum {:.3} at α*={:.4}",
                scenario.name(),
                seeds.len(),
                7.0 + 2.0 * 6.0f64.sqrt(),
                optimal_alpha(),
            ),
            &["alpha", "ratio vs OPT-LB (mean±std)", "ratio vs OPT-UB (mean±std)", "proved bound"],
        );
        for &alpha in alphas {
            let r = sweep_alpha(alpha, scenario, n, &seeds);
            t.push_row(vec![
                format!("{alpha:.4}"),
                r.ratio_vs_lb.pm(),
                r.ratio_vs_ub.pm(),
                f3(r.bound),
            ]);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratio_stays_below_worst_case_bound() {
        let seeds = [1, 2, 3];
        for alpha in [1.5, 1.8165, 2.5] {
            let r = sweep_alpha(alpha, Scenario::CloudBatch, 150, &seeds);
            assert!(
                r.ratio_vs_lb.max <= r.bound,
                "α={alpha}: measured (pessimistic) {} exceeds proved bound {}",
                r.ratio_vs_lb.max,
                r.bound
            );
            assert!(r.ratio_vs_ub.min >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn bound_curve_minimum_location() {
        let at_opt = cdb_bound(optimal_alpha());
        assert!(cdb_bound(1.3) > at_opt);
        assert!(cdb_bound(3.0) > at_opt);
    }

    #[test]
    fn bracket_ordering() {
        let r = sweep_alpha(2.0, Scenario::BurstyAnalytics, 100, &[5, 6]);
        assert!(r.ratio_vs_ub.mean <= r.ratio_vs_lb.mean + 1e-12);
    }
}
