//! **E2 — Theorem 3.4 / Figure 2.** Runs Batch on the Figure 2 instance
//! and reports the ratio against the paper's prescribed schedule. Expected
//! shape: measured Batch span is exactly `2mμ`; the ratio
//! `2mμ / (m(1+ε)+μ)` approaches `2μ` from below as `m` grows, and never
//! exceeds the `2μ+1` upper bound of Theorem 3.4.

use super::Profile;
use fjs_adversary::fig2_batch_tightness;
use fjs_analysis::{convergence_limit, f3, parallel_map, Table};
use fjs_core::sim::{run_static, Clairvoyance};
use fjs_schedulers::Batch;

/// One Figure 2 measurement.
pub struct Fig2Result {
    /// Round count `m`.
    pub m: usize,
    /// μ.
    pub mu: f64,
    /// Batch's span (theory: `2mμ`).
    pub batch_span: f64,
    /// Prescribed schedule span (theory: `m(1+ε)+μ`).
    pub prescribed_span: f64,
    /// Measured ratio.
    pub ratio: f64,
}

/// Runs Batch on one Figure 2 instance.
pub fn measure(m: usize, mu: f64, eps: f64) -> Fig2Result {
    let tight = fig2_batch_tightness(m, mu, eps);
    let out = run_static(&tight.instance, Clairvoyance::NonClairvoyant, Batch::new());
    assert!(out.is_feasible());
    Fig2Result {
        m,
        mu,
        batch_span: out.span.get(),
        prescribed_span: tight.prescribed_span.get(),
        ratio: out.span.get() / tight.prescribed_span.get(),
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let eps = 1e-3;
    let ms: &[usize] = profile.pick(
        &[1, 8, 64][..],
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512][..],
    );
    let mus: &[f64] = profile.pick(&[4.0][..], &[2.0, 4.0, 8.0][..]);

    let cells: Vec<(usize, f64)> = mus
        .iter()
        .flat_map(|&mu| ms.iter().map(move |&m| (m, mu)))
        .collect();
    let results = parallel_map(&cells, |&(m, mu)| measure(m, mu, eps));

    let mut t = Table::new(
        "E2 (Thm 3.4 / Fig 2): Batch on the 2μ tightness instance",
        &[
            "mu",
            "m",
            "Batch span",
            "prescribed span",
            "ratio",
            "2mu target",
            "2mu+1 bound",
        ],
    );
    for r in &results {
        t.push_row(vec![
            format!("{}", r.mu),
            format!("{}", r.m),
            f3(r.batch_span),
            f3(r.prescribed_span),
            f3(r.ratio),
            f3(2.0 * r.mu),
            f3(2.0 * r.mu + 1.0),
        ]);
    }

    // Extrapolate the m → ∞ limit per μ by regressing ratio on 1/m.
    let mut conv = Table::new(
        "E2 convergence: extrapolated m→∞ ratio vs the 2μ target",
        &["mu", "estimated limit", "2mu target", "fit r²"],
    );
    for &mu in mus {
        let (ms_f, ratios): (Vec<f64>, Vec<f64>) = results
            .iter()
            .filter(|r| r.mu == mu && r.m >= 4)
            .map(|r| (r.m as f64, r.ratio))
            .unzip();
        if ms_f.len() >= 2 {
            let fit = convergence_limit(&ms_f, &ratios);
            conv.push_row(vec![format!("{mu}"), f3(fit.a), f3(2.0 * mu), f3(fit.r2)]);
        }
    }
    vec![t, conv]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_span_matches_theory_exactly() {
        for (m, mu) in [(1usize, 2.0f64), (4, 4.0), (16, 8.0)] {
            let r = measure(m, mu, 1e-3);
            assert!(
                (r.batch_span - 2.0 * m as f64 * mu).abs() < 1e-6,
                "m={m} mu={mu}: span {} != {}",
                r.batch_span,
                2.0 * m as f64 * mu
            );
        }
    }

    #[test]
    fn ratio_approaches_two_mu_from_below() {
        let mu = 4.0;
        let mut prev = 0.0;
        for m in [1, 4, 16, 64, 256] {
            let r = measure(m, mu, 1e-3);
            assert!(r.ratio > prev, "monotone in m");
            assert!(r.ratio < 2.0 * mu, "never exceeds 2μ on this instance");
            prev = r.ratio;
        }
        assert!(prev > 2.0 * mu * 0.95, "m=256 within 5% of 2μ, got {prev}");
    }

    #[test]
    fn ratio_within_theorem_bounds() {
        let r = measure(128, 8.0, 1e-3);
        assert!(r.ratio <= 2.0 * r.mu + 1.0 + 1e-9);
    }
}
