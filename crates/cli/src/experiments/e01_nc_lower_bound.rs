//! **E1 — Theorem 3.3 / Figure 1.** Runs the adaptive non-clairvoyant
//! adversary against Eager, Lazy, Batch and Batch+ and reports the
//! certified ratio `span_online / span_prescribed` (the prescribed
//! counter-schedule is feasible, so its span upper-bounds OPT and the ratio
//! lower-bounds the scheduler's competitive ratio on this instance).
//!
//! Expected shape: the ratio grows with the number of adversary iterations
//! `k` towards `(kμ+1)/(μ+k) → μ` for schedulers that chase concurrency
//! (Batch, Batch+, Eager), and is enormous for Lazy (which never exceeds
//! the concurrency threshold and eats the Lemma 3.1 `√n` span instead).

use super::Profile;
use fjs_adversary::{NcAdversary, NcAdversaryParams};
use fjs_analysis::{f3, parallel_map, Table};
use fjs_core::sim::run as simulate;
use fjs_schedulers::SchedulerKind;

/// One adversary duel.
pub struct DuelResult {
    /// Scheduler label.
    pub scheduler: String,
    /// μ parameter.
    pub mu: f64,
    /// Earmarking iterations `k`.
    pub k: usize,
    /// Iterations the adversary actually released.
    pub released: usize,
    /// Online span.
    pub online_span: f64,
    /// Prescribed counter-schedule span (≥ OPT).
    pub prescribed_span: f64,
    /// Certified ratio lower bound.
    pub ratio: f64,
    /// The asymptote `(kμ+1)/(μ+k)` of the full-course branch.
    pub full_course_ratio: f64,
}

/// Runs one scheduler against the scaled adversary.
pub fn duel(kind: SchedulerKind, mu: f64, k: usize, n_per_iter: usize) -> DuelResult {
    assert!(
        !kind.requires_clairvoyance(),
        "the Theorem 3.3 adversary assigns lengths adaptively and only \
         admits non-clairvoyant schedulers"
    );
    let params = NcAdversaryParams::uniform(mu, k, n_per_iter);
    let mut adv = NcAdversary::new(params);
    let sched = kind.build();
    let out = simulate(&mut adv, sched);
    assert!(out.is_feasible(), "{} violated feasibility", kind.label());
    let prescribed = adv
        .prescribed_schedule(&out.instance)
        .expect("Lemma 3.2 runtime check: earmarks startable at the final release");
    prescribed
        .validate(&out.instance)
        .expect("prescribed schedule feasible");
    let prescribed_span = prescribed.span(&out.instance).get();
    DuelResult {
        scheduler: kind.label(),
        mu,
        k,
        released: adv.iterations_released(),
        online_span: out.span.get(),
        prescribed_span,
        ratio: out.span.get() / prescribed_span,
        full_course_ratio: (k as f64 * mu + 1.0) / (mu + k as f64),
    }
}

/// Experiment runner.
pub fn run_experiment(profile: Profile) -> Vec<Table> {
    let mus: &[f64] = profile.pick(&[4.0][..], &[2.0, 4.0, 8.0][..]);
    let ks: &[usize] = profile.pick(&[1, 4][..], &[1, 2, 4, 8, 16, 32][..]);
    let n = profile.pick(64, 256);
    let kinds = [
        SchedulerKind::Batch,
        SchedulerKind::BatchPlus,
        SchedulerKind::Eager,
        SchedulerKind::Lazy,
    ];

    let cells: Vec<(SchedulerKind, f64, usize)> = kinds
        .iter()
        .flat_map(|&kind| {
            mus.iter()
                .flat_map(move |&mu| ks.iter().map(move |&k| (kind, mu, k)))
        })
        .collect();
    let results = parallel_map(&cells, |&(kind, mu, k)| duel(kind, mu, k, n));

    let mut t = Table::new(
        "E1 (Thm 3.3 / Fig 1): adaptive adversary vs non-clairvoyant schedulers",
        &[
            "scheduler",
            "mu",
            "k",
            "iters released",
            "online span",
            "prescribed span",
            "ratio (cert. LB)",
            "(kmu+1)/(mu+k)",
        ],
    );
    for r in &results {
        t.push_row(vec![
            r.scheduler.clone(),
            format!("{}", r.mu),
            format!("{}", r.k),
            format!("{}", r.released),
            f3(r.online_span),
            f3(r.prescribed_span),
            f3(r.ratio),
            f3(r.full_course_ratio),
        ]);
    }
    vec![t]
}

/// Registry entry point.
pub fn run(profile: Profile) -> Vec<Table> {
    run_experiment(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_ratio_tracks_full_course_asymptote() {
        let r = duel(SchedulerKind::Batch, 4.0, 4, 64);
        assert_eq!(r.released, 5, "Batch crosses every threshold");
        // The certified ratio should be at least the full-course value
        // (the online span also pays the last iteration's unit jobs).
        assert!(
            r.ratio >= r.full_course_ratio * 0.9,
            "ratio {} vs {}",
            r.ratio,
            r.full_course_ratio
        );
    }

    #[test]
    fn ratio_grows_with_k_towards_mu() {
        let r1 = duel(SchedulerKind::BatchPlus, 4.0, 1, 64);
        let r8 = duel(SchedulerKind::BatchPlus, 4.0, 8, 64);
        assert!(r8.ratio > r1.ratio, "{} vs {}", r8.ratio, r1.ratio);
        assert!(
            r8.ratio < 4.0 + 1.0 + 1e-9,
            "cannot exceed Batch+'s bound μ+1"
        );
    }

    #[test]
    fn lazy_is_punished_by_lemma_3_1() {
        let r = duel(SchedulerKind::Lazy, 4.0, 2, 64);
        assert_eq!(r.released, 1, "Lazy never crosses the threshold");
        // Span = n (sequential unit jobs) vs prescribed 1.
        assert!(r.ratio >= (64.0f64).sqrt(), "ratio {}", r.ratio);
    }

    #[test]
    fn quick_profile_renders() {
        let tables = run(Profile::Quick);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].rows.len() >= 8);
    }

    #[test]
    #[should_panic(expected = "non-clairvoyant")]
    fn clairvoyant_schedulers_rejected() {
        let _ = duel(SchedulerKind::profit_optimal(), 2.0, 1, 16);
    }
}
