//! **E11 — ablations.** Probes the design choices DESIGN.md calls out:
//!
//! * **The "+" in Batch+** — Batch vs Batch+ on both tightness instances
//!   and the random families. Expected: Batch+ dominates on Figure 2
//!   (where Batch pays `2μ`), Batch dominates on Figure 3 (built to fool
//!   the "+"), and they are close on benign random workloads — exactly why
//!   the paper needed both bounds.
//! * **CDB base offset** `b` — the classification boundary phase. The
//!   Theorem 4.4 bound is independent of `b`; measured sensitivity should
//!   be mild.
//! * **Doubler budget** `c` — the reconstruction's one knob.

use super::Profile;
use fjs_adversary::{fig2_batch_tightness, fig3_batch_plus_tightness};
use fjs_analysis::{evaluate, f3, parallel_map, Summary, Table};
use fjs_core::sim::{run_static, Clairvoyance};
use fjs_schedulers::{optimal_alpha, SchedulerKind};
use fjs_workloads::Scenario;

/// Batch vs Batch+ on a named instance.
pub struct PlusAblation {
    /// Instance label.
    pub instance: String,
    /// Batch span.
    pub batch: f64,
    /// Batch+ span.
    pub batch_plus: f64,
}

/// Runs both Batch variants on one static instance.
pub fn batch_vs_plus(label: &str, inst: &fjs_core::job::Instance) -> PlusAblation {
    let b = run_static(
        inst,
        Clairvoyance::NonClairvoyant,
        fjs_schedulers::Batch::new(),
    );
    let bp = run_static(
        inst,
        Clairvoyance::NonClairvoyant,
        fjs_schedulers::BatchPlus::new(),
    );
    assert!(b.is_feasible() && bp.is_feasible());
    PlusAblation {
        instance: label.to_string(),
        batch: b.span.get(),
        batch_plus: bp.span.get(),
    }
}

/// Mean pessimistic ratio of a parameterized scheduler over seeds.
pub fn mean_ratio(kind: SchedulerKind, scenario: Scenario, n: usize, seeds: &[u64]) -> Summary {
    let r = parallel_map(seeds, |&seed| {
        let inst = scenario.generate(n, seed);
        evaluate(kind, &inst, 2).ratio_vs_lb()
    });
    Summary::of(&r)
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let n = profile.pick(120, 400);
    let seeds: Vec<u64> = (1..=profile.pick(3u64, 10u64)).collect();
    let m = profile.pick(32, 256);
    let mu = 4.0;
    let mut tables = Vec::new();

    // Part 1: the "+".
    let mut t = Table::new(
        "E11a: the \"+\" ablation — Batch vs Batch+ spans",
        &["instance", "Batch span", "Batch+ span", "Batch+/Batch"],
    );
    let fig2 = fig2_batch_tightness(m, mu, 1e-3);
    let fig3 = fig3_batch_plus_tightness(m, mu, 1e-3);
    for (label, inst) in [
        (format!("Fig2(m={m}, μ={mu})"), &fig2.instance),
        (format!("Fig3(m={m}, μ={mu})"), &fig3.instance),
        (
            "cloud-batch(seed=1)".to_string(),
            &Scenario::CloudBatch.generate(n, 1),
        ),
        (
            "slack-rich(seed=1)".to_string(),
            &Scenario::SlackRich.generate(n, 1),
        ),
    ] {
        let r = batch_vs_plus(&label, inst);
        t.push_row(vec![
            r.instance.clone(),
            f3(r.batch),
            f3(r.batch_plus),
            f3(r.batch_plus / r.batch),
        ]);
    }
    tables.push(t);

    // Part 2: CDB base offset.
    let mut t = Table::new(
        format!(
            "E11b: CDB base-offset sensitivity (α*={:.4}, n={n})",
            optimal_alpha()
        ),
        &[
            "base b",
            "ratio vs LB (cloud-batch)",
            "ratio vs LB (bursty)",
        ],
    );
    for &base in profile.pick(&[0.5, 1.0, 2.0][..], &[0.25, 0.5, 1.0, 1.5, 2.0, 4.0][..]) {
        let kind = SchedulerKind::Cdb {
            alpha: optimal_alpha(),
            base,
        };
        let cb = mean_ratio(kind, Scenario::CloudBatch, n, &seeds);
        let ba = mean_ratio(kind, Scenario::BurstyAnalytics, n, &seeds);
        t.push_row(vec![format!("{base}"), cb.pm(), ba.pm()]);
    }
    tables.push(t);

    // Part 3: Doubler budget factor.
    let mut t = Table::new(
        format!("E11c: Doubler budget factor (n={n})"),
        &["c", "ratio vs LB (cloud-batch)", "ratio vs LB (slack-rich)"],
    );
    for &c in profile.pick(&[0.5, 1.0, 2.0][..], &[0.25, 0.5, 1.0, 1.5, 2.0, 4.0][..]) {
        let kind = SchedulerKind::Doubler { c };
        let cb = mean_ratio(kind, Scenario::CloudBatch, n, &seeds);
        let sr = mean_ratio(kind, Scenario::SlackRich, n, &seeds);
        t.push_row(vec![format!("{c}"), cb.pm(), sr.pm()]);
    }
    tables.push(t);

    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_tightness_instance_fools_its_target() {
        let fig2 = fig2_batch_tightness(64, 4.0, 1e-3);
        let r2 = batch_vs_plus("fig2", &fig2.instance);
        assert!(
            r2.batch_plus < r2.batch,
            "Fig2 is built against Batch: Batch+ {} vs Batch {}",
            r2.batch_plus,
            r2.batch
        );

        let fig3 = fig3_batch_plus_tightness(64, 4.0, 1e-3);
        let r3 = batch_vs_plus("fig3", &fig3.instance);
        assert!(
            r3.batch < r3.batch_plus,
            "Fig3 is built against Batch+: Batch {} vs Batch+ {}",
            r3.batch,
            r3.batch_plus
        );
    }

    #[test]
    fn cdb_base_sensitivity_is_mild() {
        let seeds = [1, 2, 3];
        let r1 = mean_ratio(
            SchedulerKind::Cdb {
                alpha: optimal_alpha(),
                base: 0.5,
            },
            Scenario::CloudBatch,
            120,
            &seeds,
        );
        let r2 = mean_ratio(
            SchedulerKind::Cdb {
                alpha: optimal_alpha(),
                base: 2.0,
            },
            Scenario::CloudBatch,
            120,
            &seeds,
        );
        // Both stay below the worst-case bound with a wide margin.
        let bound = fjs_schedulers::cdb_bound(optimal_alpha());
        assert!(r1.max < bound && r2.max < bound);
    }
}
