//! **E10 — small-instance validation against exact optimal.** Samples
//! hundreds of small integer instances, computes the exact optimal span
//! (`fjs-opt`), runs every scheduler and reports the **maximum observed
//! per-instance ratio** next to the paper's per-instance bound:
//!
//! * Batch: `2μ(I) + 1` (Theorem 3.4),
//! * Batch+: `μ(I) + 1` (Theorem 3.5),
//! * CDB: `3α + 4 + 2/(α−1)` (Theorem 4.4),
//! * Profit: `2k + 2 + 1/(k−1)` (Theorem 4.11),
//!
//! where `μ(I)` is the instance's own max/min length ratio. A single
//! violation would falsify the implementation (or the theorem); the table
//! shows the margin instead.

use super::Profile;
use fjs_analysis::{f3, parallel_map, Table};
use fjs_core::job::{Instance, Job};
use fjs_opt::cached_optimal_span_dp;
use fjs_schedulers::{cdb_bound, optimal_alpha, profit_bound, SchedulerKind, OPTIMAL_K};

/// Deterministic splitmix64 stream (keeps this crate free of `rand`).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Samples a random small integer instance: `2..=jobs_max` jobs, arrivals
/// in `0..8`, laxities in `0..=5`, lengths in `1..=4`.
pub fn sample_instance(seed: u64, jobs_max: usize) -> Instance {
    let mut mix = Mix(seed);
    let n = 2 + mix.below(jobs_max as u64 - 1) as usize;
    let jobs: Vec<Job> = (0..n)
        .map(|_| {
            let a = mix.below(8) as f64;
            let lax = mix.below(6) as f64;
            let p = 1.0 + mix.below(4) as f64;
            Job::adp(a, a + lax, p)
        })
        .collect();
    Instance::new(jobs)
}

/// Per-scheduler worst case over the sampled instances.
pub struct WorstCase {
    /// Scheduler label.
    pub scheduler: String,
    /// Max observed `span / OPT`.
    pub max_ratio: f64,
    /// Minimum margin `bound(I) − ratio(I)` over instances (≥ 0 required).
    pub min_margin: f64,
    /// Instances evaluated.
    pub instances: usize,
}

fn per_instance_bound(kind: SchedulerKind, mu: f64) -> f64 {
    match kind {
        SchedulerKind::Batch => 2.0 * mu + 1.0,
        SchedulerKind::BatchPlus => mu + 1.0,
        SchedulerKind::Cdb { alpha, .. } => cdb_bound(alpha),
        SchedulerKind::Profit { k } => profit_bound(k),
        // Eager/Lazy/Doubler carry no proved bound; report ∞ margin.
        _ => f64::INFINITY,
    }
}

/// Validates one scheduler over `count` sampled instances.
pub fn validate(kind: SchedulerKind, count: usize, jobs_max: usize) -> WorstCase {
    let seeds: Vec<u64> = (0..count as u64).collect();
    let per_instance = parallel_map(&seeds, |&seed| {
        let inst = sample_instance(seed, jobs_max);
        let opt = cached_optimal_span_dp(&inst)
            .expect("small integer instance")
            .get();
        let out = kind.run_on(&inst);
        assert!(out.is_feasible(), "{} violated feasibility", kind.label());
        let ratio = out.span.get() / opt;
        let mu = inst.mu().expect("non-empty");
        (ratio, per_instance_bound(kind, mu) - ratio)
    });
    let max_ratio = per_instance.iter().map(|r| r.0).fold(0.0, f64::max);
    let min_margin = per_instance
        .iter()
        .map(|r| r.1)
        .fold(f64::INFINITY, f64::min);
    WorstCase {
        scheduler: kind.label(),
        max_ratio,
        min_margin,
        instances: count,
    }
}

/// Enumerates **every** instance on a small grid: `n` jobs, arrivals in
/// `0..arrival_max`, laxities in `0..=lax_max`, lengths in `1..=p_max`
/// (ordered tuples; `(arrival_max·(lax_max+1)·p_max)^n` instances).
pub fn enumerate_instances(n: usize, arrival_max: u64, lax_max: u64, p_max: u64) -> Vec<Instance> {
    let per_job: Vec<(f64, f64, f64)> = (0..arrival_max)
        .flat_map(|a| {
            (0..=lax_max)
                .flat_map(move |lax| (1..=p_max).map(move |p| (a as f64, lax as f64, p as f64)))
        })
        .collect();
    let mut out = Vec::new();
    let mut idx = vec![0usize; n];
    loop {
        out.push(Instance::new(
            idx.iter()
                .map(|&i| {
                    let (a, lax, p) = per_job[i];
                    Job::adp(a, a + lax, p)
                })
                .collect(),
        ));
        // Odometer increment.
        let mut k = 0;
        loop {
            idx[k] += 1;
            if idx[k] < per_job.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
            if k == n {
                return out;
            }
        }
    }
}

/// Validates one scheduler over a list of instances (exact OPT each).
pub fn validate_on(kind: SchedulerKind, instances: &[Instance]) -> WorstCase {
    let per_instance = parallel_map(instances, |inst| {
        let opt = cached_optimal_span_dp(inst)
            .expect("small integer instance")
            .get();
        let out = kind.run_on(inst);
        assert!(out.is_feasible(), "{} violated feasibility", kind.label());
        let ratio = out.span.get() / opt;
        let mu = inst.mu().expect("non-empty");
        (ratio, per_instance_bound(kind, mu) - ratio)
    });
    let max_ratio = per_instance.iter().map(|r| r.0).fold(0.0, f64::max);
    let min_margin = per_instance
        .iter()
        .map(|r| r.1)
        .fold(f64::INFINITY, f64::min);
    WorstCase {
        scheduler: kind.label(),
        max_ratio,
        min_margin,
        instances: instances.len(),
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let count = profile.pick(60, 500);
    let jobs_max = 6;
    let kinds = [
        SchedulerKind::Batch,
        SchedulerKind::BatchPlus,
        SchedulerKind::Cdb {
            alpha: optimal_alpha(),
            base: 1.0,
        },
        SchedulerKind::Profit { k: OPTIMAL_K },
        SchedulerKind::Doubler { c: 1.0 },
        SchedulerKind::Eager,
        SchedulerKind::Lazy,
    ];

    let mut t = Table::new(
        format!(
            "E10a: max observed span/OPT over {count} random small integer instances (exact OPT)"
        ),
        &[
            "scheduler",
            "instances",
            "max ratio",
            "min bound margin",
            "bound violated?",
        ],
    );
    for &kind in &kinds {
        let w = validate(kind, count, jobs_max);
        t.push_row(vec![
            w.scheduler.clone(),
            format!("{}", w.instances),
            f3(w.max_ratio),
            if w.min_margin.is_finite() {
                f3(w.min_margin)
            } else {
                "n/a".into()
            },
            if w.min_margin < -1e-9 {
                "YES (bug!)".into()
            } else {
                "no".into()
            },
        ]);
    }

    // Part 2: truly exhaustive — EVERY ordered 2-job (quick) or 3-job
    // (full) instance on a small grid.
    let (n, amax, lmax, pmax) =
        profile.pick((2usize, 3u64, 2u64, 2u64), (3usize, 3u64, 2u64, 2u64));
    let grid = enumerate_instances(n, amax, lmax, pmax);
    let mut t2 = Table::new(
        format!(
            "E10b: exhaustive validation over ALL {} ordered {n}-job instances (arrivals 0..{amax}, laxities 0..={lmax}, lengths 1..={pmax})",
            grid.len()
        ),
        &["scheduler", "instances", "max ratio", "min bound margin", "bound violated?"],
    );
    for &kind in &kinds {
        let w = validate_on(kind, &grid);
        t2.push_row(vec![
            w.scheduler.clone(),
            format!("{}", w.instances),
            f3(w.max_ratio),
            if w.min_margin.is_finite() {
                f3(w.min_margin)
            } else {
                "n/a".into()
            },
            if w.min_margin < -1e-9 {
                "YES (bug!)".into()
            } else {
                "no".into()
            },
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_counts_match_the_grid() {
        // 2 jobs over 3·2·2 = 12 options each → 144 ordered instances.
        let grid = enumerate_instances(2, 3, 1, 2);
        assert_eq!(grid.len(), 144);
        assert!(grid.iter().all(|i| i.len() == 2));
    }

    #[test]
    fn exhaustive_grid_never_violates_batch_plus_bound() {
        let grid = enumerate_instances(2, 3, 2, 2);
        let w = validate_on(SchedulerKind::BatchPlus, &grid);
        assert!(w.min_margin >= -1e-9, "margin {}", w.min_margin);
    }

    #[test]
    fn sampled_instances_are_small_and_integral() {
        for seed in 0..50 {
            let inst = sample_instance(seed, 6);
            assert!(inst.len() >= 2 && inst.len() <= 6);
            assert!(cached_optimal_span_dp(&inst).is_ok());
        }
    }

    #[test]
    fn batch_plus_never_violates_mu_plus_one() {
        let w = validate(SchedulerKind::BatchPlus, 120, 5);
        assert!(
            w.min_margin >= -1e-9,
            "Batch+ violated μ+1 on some instance: margin {}",
            w.min_margin
        );
        assert!(w.max_ratio >= 1.0);
    }

    #[test]
    fn batch_never_violates_two_mu_plus_one() {
        let w = validate(SchedulerKind::Batch, 120, 5);
        assert!(w.min_margin >= -1e-9, "margin {}", w.min_margin);
    }

    #[test]
    fn clairvoyant_schedulers_respect_their_constants() {
        for kind in [
            SchedulerKind::Cdb {
                alpha: optimal_alpha(),
                base: 1.0,
            },
            SchedulerKind::Profit { k: OPTIMAL_K },
        ] {
            let w = validate(kind, 120, 5);
            assert!(
                w.min_margin >= -1e-9,
                "{}: margin {}",
                w.scheduler,
                w.min_margin
            );
        }
    }
}
