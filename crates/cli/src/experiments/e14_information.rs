//! **E14 — the value of information (extension).** The paper's two settings
//! are the endpoints of an information ladder:
//!
//! 1. **non-clairvoyant** — nothing about `p(J)` (Section 3; best possible
//!    ratio `μ`);
//! 2. **class-only** — `⌈log₂ p⌉` revealed (`O(log μ)` bits; enough to run
//!    CDB at `α = 2`, ratio `≤ 3·2+4+2 = 12`);
//! 3. **clairvoyant** — full `p(J)` (Section 4; Profit reaches `4+2√2`).
//!
//! This experiment runs the natural champion of each rung on the μ-sweep
//! workload. Expected shape: the non-clairvoyant champion (Batch+)
//! degrades with μ; the class-only champion (SemiCdb) and the clairvoyant
//! champions (CDB, Profit) stay flat — i.e. **`O(log μ)` bits already break
//! the `μ` barrier**, and full clairvoyance then buys only a constant
//! factor (Profit vs SemiCdb).

use super::Profile;
use fjs_analysis::{evaluate, parallel_map, Summary, Table};
use fjs_schedulers::SchedulerKind;
use fjs_workloads::{ArrivalProcess, LaxityModel, LengthLaw, WorkloadSpec};

/// The μ-sweep workload shared with E8b.
pub fn spec(n: usize, mu: f64) -> WorkloadSpec {
    WorkloadSpec {
        n,
        arrivals: ArrivalProcess::Poisson { rate: 1.0 },
        lengths: LengthLaw::Bimodal {
            short: 1.0,
            long: mu,
            p_long: 0.3,
        },
        laxity: LaxityModel::Proportional { factor: 2.0 },
    }
}

/// Mean pessimistic ratio for one scheduler at one μ.
pub fn ratio_at(kind: SchedulerKind, n: usize, mu: f64, seeds: &[u64]) -> Summary {
    let r = parallel_map(seeds, |&seed| {
        let inst = spec(n, mu).generate(seed);
        evaluate(kind, &inst, 2).ratio_vs_lb()
    });
    Summary::of(&r)
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let n = profile.pick(120, 400);
    let seeds: Vec<u64> = (1..=profile.pick(3u64, 10u64)).collect();
    let mus: &[f64] = profile.pick(&[2.0, 16.0][..], &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0][..]);

    let ladder = [
        ("none (Batch+)", SchedulerKind::BatchPlus),
        ("class only (SemiCDB)", SchedulerKind::SemiCdb),
        (
            "full (CDB α=2)",
            SchedulerKind::Cdb {
                alpha: 2.0,
                base: 1.0,
            },
        ),
        ("full (Profit k*)", SchedulerKind::profit_optimal()),
    ];

    let mut t = Table::new(
        format!(
            "E14 (extension): information ladder on the μ-sweep (n={n}, {} seeds); \
             ratio vs OPT-LB",
            seeds.len()
        ),
        &[
            "mu",
            "none (Batch+)",
            "class only (SemiCDB)",
            "full (CDB α=2)",
            "full (Profit k*)",
        ],
    );
    for &mu in mus {
        let cells: Vec<String> = ladder
            .iter()
            .map(|&(_, kind)| ratio_at(kind, n, mu, &seeds).pm())
            .collect();
        let mut row = vec![format!("{mu}")];
        row.extend(cells);
        t.push_row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semicdb_equals_full_cdb_alpha_two() {
        // The class-only rung must coincide with CDB(2,1) exactly.
        let seeds = [1, 2, 3];
        let semi = ratio_at(SchedulerKind::SemiCdb, 120, 8.0, &seeds);
        let full = ratio_at(
            SchedulerKind::Cdb {
                alpha: 2.0,
                base: 1.0,
            },
            120,
            8.0,
            &seeds,
        );
        assert!(
            (semi.mean - full.mean).abs() < 1e-12,
            "{} vs {}",
            semi.mean,
            full.mean
        );
    }

    #[test]
    fn class_bits_break_the_mu_barrier() {
        // At large μ, SemiCdb (class-only) must clearly beat Batch+
        // (no information).
        let seeds = [4, 5, 6];
        let blind = ratio_at(SchedulerKind::BatchPlus, 200, 32.0, &seeds);
        let classy = ratio_at(SchedulerKind::SemiCdb, 200, 32.0, &seeds);
        assert!(
            classy.mean < blind.mean,
            "SemiCdb {} should beat Batch+ {} at μ=32",
            classy.mean,
            blind.mean
        );
    }
}
