//! **E6 — Lemmas 4.6–4.10 / Figure 6.** Runs Profit over workload
//! families, extracts its flag jobs, builds the flag-job graph `G(F,E)` and
//! verifies the structural lemmas on real executions:
//!
//! * Lemma 4.6 — among flag jobs, earlier starting deadline ⟹ earlier
//!   completion;
//! * Lemma 4.7 — `G(F,E)` is a forest of rooted trees;
//! * Lemma 4.9 — flags in different trees can never overlap under any
//!   scheduler.
//!
//! The table reports flag counts, tree counts, heights and sizes — the
//! quantities the Theorem 4.11 induction runs over.

use super::Profile;
use fjs_analysis::{parallel_map, Table};
use fjs_core::sim::{run_static, Clairvoyance};
use fjs_schedulers::{FlagGraph, FlagRecorder, Profit, OPTIMAL_K};
use fjs_workloads::Scenario;

/// Flag-graph statistics for one run.
pub struct FlagGraphResult {
    /// Scenario name.
    pub scenario: &'static str,
    /// Seed.
    pub seed: u64,
    /// Jobs in the instance.
    pub jobs: usize,
    /// Flags designated by Profit.
    pub flags: usize,
    /// Trees in `G(F,E)`.
    pub trees: usize,
    /// Maximum tree height.
    pub max_height: usize,
    /// Maximum tree size.
    pub max_size: usize,
    /// All three lemma checks passed.
    pub lemmas_hold: bool,
}

/// Runs Profit on one workload and checks the flag-graph lemmas.
pub fn analyze(scenario: Scenario, n: usize, seed: u64) -> FlagGraphResult {
    let inst = scenario.generate(n, seed);
    let mut profit = Profit::new(OPTIMAL_K);
    let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut profit);
    assert!(out.is_feasible());
    let flags = profit.flag_jobs();
    let graph = FlagGraph::from_outcome(&out, &flags);
    let stats = graph.tree_stats();
    let lemmas_hold =
        graph.is_forest() && graph.check_lemma_4_6().is_ok() && graph.check_lemma_4_9().is_ok();
    FlagGraphResult {
        scenario: scenario.name(),
        seed,
        jobs: inst.len(),
        flags: graph.len(),
        trees: graph.num_trees(),
        max_height: stats.iter().map(|s| s.height).max().unwrap_or(0),
        max_size: stats.iter().map(|s| s.size).max().unwrap_or(0),
        lemmas_hold,
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let n = profile.pick(150, 600);
    let seeds: Vec<u64> = (1..=profile.pick(3u64, 10u64)).collect();

    let cells: Vec<(Scenario, u64)> = Scenario::all()
        .iter()
        .flat_map(|&sc| seeds.iter().map(move |&s| (sc, s)))
        .collect();
    let results = parallel_map(&cells, |&(sc, seed)| analyze(sc, n, seed));

    let mut t = Table::new(
        format!("E6 (Lemmas 4.6–4.10 / Fig 6): Profit flag-job graph structure (n={n})"),
        &[
            "scenario",
            "seed",
            "jobs",
            "flags",
            "trees",
            "max height",
            "max tree size",
            "lemmas 4.6/4.7/4.9",
        ],
    );
    for r in &results {
        t.push_row(vec![
            r.scenario.to_string(),
            format!("{}", r.seed),
            format!("{}", r.jobs),
            format!("{}", r.flags),
            format!("{}", r.trees),
            format!("{}", r.max_height),
            format!("{}", r.max_size),
            if r.lemmas_hold {
                "hold".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemmas_hold_on_every_scenario() {
        for sc in Scenario::all() {
            let r = analyze(sc, 200, 42);
            assert!(r.lemmas_hold, "lemma violated on {}", sc.name());
            assert!(r.flags >= 1);
            assert!(r.trees >= 1);
            assert!(r.trees <= r.flags);
        }
    }

    #[test]
    fn rigid_workload_flags_everything() {
        // With zero laxity every job hits its deadline at arrival; jobs
        // arriving during another flag's run may be admitted as profitable,
        // so flags ≤ jobs, but at least one iteration per busy period.
        let r = analyze(Scenario::RigidLegacy, 100, 7);
        assert!(r.flags >= 1);
        assert!(r.lemmas_hold);
    }
}
