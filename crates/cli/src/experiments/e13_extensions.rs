//! **E13 — extension schedulers.** Two questions the paper leaves open that
//! the codebase can answer empirically:
//!
//! * **Is delay without coordination enough?** `RandomStart` delays each
//!   job independently and uniformly in its window. It consistently loses
//!   to deadline-triggered batching (Batch+), showing the paper's
//!   schedulers win by *synchronizing* starts, not merely by waiting.
//! * **Is a count trigger as good as a deadline trigger?** `Threshold(m)`
//!   batches whenever `m` jobs pend. Its best `m` is workload-dependent and
//!   still loses to Batch+ on heterogeneous inputs — the deadline trigger
//!   is what ties the online schedule to OPT's structure (each flag pays
//!   for a disjoint piece of OPT).

use super::Profile;
use fjs_analysis::{evaluate, parallel_map, Summary, Table};
use fjs_schedulers::SchedulerKind;
use fjs_workloads::Scenario;

/// Mean pessimistic ratio of one scheduler over seeds.
pub fn mean_ratio(kind: SchedulerKind, scenario: Scenario, n: usize, seeds: &[u64]) -> Summary {
    let r = parallel_map(seeds, |&seed| {
        let inst = scenario.generate(n, seed);
        evaluate(kind, &inst, 2).ratio_vs_lb()
    });
    Summary::of(&r)
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let n = profile.pick(120, 400);
    let seeds: Vec<u64> = (1..=profile.pick(3u64, 10u64)).collect();
    let mut tables = Vec::new();

    // Part 1: RandomStart vs the coordinated schedulers.
    let mut t = Table::new(
        format!("E13a: is uncoordinated random delay enough? (ratio vs OPT-LB, n={n})"),
        &["scenario", "RandomStart", "Eager", "Batch+", "Profit"],
    );
    for scenario in [
        Scenario::CloudBatch,
        Scenario::SlackRich,
        Scenario::BurstyAnalytics,
    ] {
        let rs = mean_ratio(SchedulerKind::RandomStart { seed: 99 }, scenario, n, &seeds);
        let eager = mean_ratio(SchedulerKind::Eager, scenario, n, &seeds);
        let bp = mean_ratio(SchedulerKind::BatchPlus, scenario, n, &seeds);
        let pr = mean_ratio(SchedulerKind::profit_optimal(), scenario, n, &seeds);
        t.push_row(vec![
            scenario.name().into(),
            rs.pm(),
            eager.pm(),
            bp.pm(),
            pr.pm(),
        ]);
    }
    tables.push(t);

    // Part 2: Threshold sweep vs Batch+.
    let ms: &[usize] = profile.pick(&[1, 8, 64][..], &[1, 2, 4, 8, 16, 32, 64, 128][..]);
    let mut t = Table::new(
        format!("E13b: count-triggered batching Threshold(m) vs deadline-triggered Batch+ (ratio vs OPT-LB, n={n})"),
        &["m", "Threshold (cloud-batch)", "Threshold (slack-rich)", "Batch+ (cloud-batch)", "Batch+ (slack-rich)"],
    );
    let bp_cb = mean_ratio(SchedulerKind::BatchPlus, Scenario::CloudBatch, n, &seeds);
    let bp_sr = mean_ratio(SchedulerKind::BatchPlus, Scenario::SlackRich, n, &seeds);
    for &m in ms {
        let th_cb = mean_ratio(
            SchedulerKind::Threshold { m },
            Scenario::CloudBatch,
            n,
            &seeds,
        );
        let th_sr = mean_ratio(
            SchedulerKind::Threshold { m },
            Scenario::SlackRich,
            n,
            &seeds,
        );
        t.push_row(vec![
            format!("{m}"),
            th_cb.pm(),
            th_sr.pm(),
            bp_cb.pm(),
            bp_sr.pm(),
        ]);
    }
    tables.push(t);

    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_delay_does_not_beat_batching_on_slack_rich() {
        let seeds = [1, 2, 3, 4];
        let rs = mean_ratio(
            SchedulerKind::RandomStart { seed: 5 },
            Scenario::SlackRich,
            150,
            &seeds,
        );
        let bp = mean_ratio(SchedulerKind::BatchPlus, Scenario::SlackRich, 150, &seeds);
        assert!(
            bp.mean <= rs.mean + 1e-9,
            "Batch+ {} should not lose to RandomStart {}",
            bp.mean,
            rs.mean
        );
    }

    #[test]
    fn threshold_one_matches_eager() {
        let seeds = [7];
        let th = mean_ratio(
            SchedulerKind::Threshold { m: 1 },
            Scenario::CloudBatch,
            100,
            &seeds,
        );
        let eager = mean_ratio(SchedulerKind::Eager, Scenario::CloudBatch, 100, &seeds);
        assert!((th.mean - eager.mean).abs() < 1e-9);
    }
}
