//! **E8 — head-to-head.** All schedulers across the workload families plus
//! two targeted sweeps:
//!
//! * **μ-sweep** — bimodal lengths with growing long/short ratio. The
//!   paper's central qualitative claim: the non-clairvoyant schedulers'
//!   ratios grow with `μ` (Batch ~`2μ`, Batch+ ~`μ+1` in the worst case,
//!   and visibly increasing here), while the clairvoyant CDB/Profit stay
//!   `O(1)`.
//! * **laxity-sweep** — proportional laxity factor from rigid to generous.
//!   All schedulers converge at factor 0 (no scheduling freedom exists);
//!   span-savvy schedulers pull away as laxity grows.

use super::Profile;
use fjs_analysis::{evaluate, parallel_map, Summary, Table};
use fjs_schedulers::SchedulerKind;
use fjs_workloads::{ArrivalProcess, LaxityModel, LengthLaw, Scenario, WorkloadSpec};

/// Summary of one `(scheduler, workload)` cell.
pub struct Cell {
    /// Scheduler label.
    pub scheduler: String,
    /// Mean span.
    pub span: Summary,
    /// Mean ratio vs the certified OPT lower bound.
    pub ratio_vs_lb: Summary,
    /// Mean ratio vs the descent OPT upper bound.
    pub ratio_vs_ub: Summary,
}

/// Evaluates one scheduler over seeds of a workload spec.
pub fn eval_cell(kind: SchedulerKind, spec: &WorkloadSpec, seeds: &[u64]) -> Cell {
    let evals = parallel_map(seeds, |&seed| {
        let inst = spec.generate(seed);
        evaluate(kind, &inst, 2)
    });
    Cell {
        scheduler: kind.label(),
        span: Summary::of(&evals.iter().map(|e| e.span.get()).collect::<Vec<_>>()),
        ratio_vs_lb: Summary::of(&evals.iter().map(|e| e.ratio_vs_lb()).collect::<Vec<_>>()),
        ratio_vs_ub: Summary::of(&evals.iter().map(|e| e.ratio_vs_ub()).collect::<Vec<_>>()),
    }
}

/// The μ-sweep workload: bimodal lengths `1` vs `mu`, Poisson arrivals,
/// laxity proportional to length.
pub fn mu_sweep_spec(n: usize, mu: f64) -> WorkloadSpec {
    WorkloadSpec {
        n,
        arrivals: ArrivalProcess::Poisson { rate: 1.0 },
        lengths: LengthLaw::Bimodal {
            short: 1.0,
            long: mu,
            p_long: 0.3,
        },
        laxity: LaxityModel::Proportional { factor: 2.0 },
    }
}

/// The laxity-sweep workload: uniform lengths, proportional laxity factor.
pub fn laxity_sweep_spec(n: usize, factor: f64) -> WorkloadSpec {
    WorkloadSpec {
        n,
        arrivals: ArrivalProcess::Poisson { rate: 1.0 },
        lengths: LengthLaw::Uniform { min: 1.0, max: 8.0 },
        laxity: LaxityModel::Proportional { factor },
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let n = profile.pick(120, 400);
    let seeds: Vec<u64> = (1..=profile.pick(3u64, 10u64)).collect();
    let kinds = SchedulerKind::full_set();
    let mut tables = Vec::new();

    // Part 1: scenario grid.
    let mut t = Table::new(
        format!("E8a: scheduler × scenario (n={n}, {} seeds)", seeds.len()),
        &[
            "scenario",
            "scheduler",
            "span (mean±std)",
            "ratio vs LB",
            "ratio vs UB",
        ],
    );
    for scenario in Scenario::all() {
        let spec = scenario.spec(n);
        for &kind in &kinds {
            let c = eval_cell(kind, &spec, &seeds);
            t.push_row(vec![
                scenario.name().to_string(),
                c.scheduler,
                c.span.pm(),
                c.ratio_vs_lb.pm(),
                c.ratio_vs_ub.pm(),
            ]);
        }
    }
    tables.push(t);

    // Part 2: μ-sweep.
    let mus: &[f64] = profile.pick(&[2.0, 8.0][..], &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0][..]);
    let mut t = Table::new(
        format!("E8b: μ-sweep (bimodal lengths 1 vs μ; n={n}, {} seeds) — non-clairvoyant ratios grow with μ, clairvoyant stay O(1)", seeds.len()),
        &["mu", "scheduler", "ratio vs LB", "ratio vs UB"],
    );
    for &mu in mus {
        let spec = mu_sweep_spec(n, mu);
        for &kind in &kinds {
            let c = eval_cell(kind, &spec, &seeds);
            t.push_row(vec![
                format!("{mu}"),
                c.scheduler,
                c.ratio_vs_lb.pm(),
                c.ratio_vs_ub.pm(),
            ]);
        }
    }
    tables.push(t);

    // Part 3: laxity sweep.
    let factors: &[f64] = profile.pick(&[0.0, 2.0][..], &[0.0, 0.5, 1.0, 2.0, 5.0, 20.0][..]);
    let mut t = Table::new(
        format!(
            "E8c: laxity-sweep (proportional factor; n={n}, {} seeds)",
            seeds.len()
        ),
        &[
            "laxity factor",
            "scheduler",
            "span (mean±std)",
            "ratio vs LB",
        ],
    );
    for &f in factors {
        let spec = laxity_sweep_spec(n, f);
        for &kind in &kinds {
            let c = eval_cell(kind, &spec, &seeds);
            t.push_row(vec![
                format!("{f}"),
                c.scheduler,
                c.span.pm(),
                c.ratio_vs_lb.pm(),
            ]);
        }
    }
    tables.push(t);

    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_laxity_equalizes_all_schedulers() {
        // With rigid jobs there is exactly one feasible schedule; every
        // scheduler must produce the same span.
        let spec = laxity_sweep_spec(80, 0.0);
        let seeds = [3];
        let spans: Vec<f64> = SchedulerKind::full_set()
            .iter()
            .map(|&k| eval_cell(k, &spec, &seeds).span.mean)
            .collect();
        for s in &spans {
            assert!(
                (s - spans[0]).abs() < 1e-9,
                "spans differ on rigid jobs: {spans:?}"
            );
        }
    }

    #[test]
    fn batch_plus_beats_eager_on_slack_rich() {
        let spec = Scenario::SlackRich.spec(150);
        let seeds = [1, 2, 3];
        let eager = eval_cell(SchedulerKind::Eager, &spec, &seeds);
        let bp = eval_cell(SchedulerKind::BatchPlus, &spec, &seeds);
        assert!(
            bp.span.mean < eager.span.mean,
            "Batch+ {} should beat Eager {} when laxity is plentiful",
            bp.span.mean,
            eager.span.mean
        );
    }

    #[test]
    fn mu_sweep_separates_clairvoyant_from_blind() {
        // At μ=16, Batch's pessimistic ratio should exceed Profit's.
        let spec = mu_sweep_spec(200, 16.0);
        let seeds = [5, 6, 7];
        let batch = eval_cell(SchedulerKind::Batch, &spec, &seeds);
        let profit = eval_cell(SchedulerKind::profit_optimal(), &spec, &seeds);
        assert!(
            profit.ratio_vs_lb.mean <= batch.ratio_vs_lb.mean + 1e-9,
            "Profit {} vs Batch {}",
            profit.ratio_vs_lb.mean,
            batch.ratio_vs_lb.mean
        );
    }
}
