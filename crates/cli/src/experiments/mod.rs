//! The experiment suite E1–E11 (see DESIGN.md §6 for the index mapping each
//! experiment to a figure/theorem of the paper).
//!
//! Every experiment is a pure function from an effort [`Profile`] to a list
//! of [`Table`]s; the CLI renders them to stdout/Markdown/CSV and the bench
//! crate calls the same functions at `Quick` effort.

use fjs_analysis::Table;

pub mod e01_nc_lower_bound;
pub mod e02_batch_tightness;
pub mod e03_batchplus_tightness;
pub mod e04_cv_lower_bound;
pub mod e05_cdb_alpha;
pub mod e06_flag_graph;
pub mod e07_profit_k;
pub mod e08_head_to_head;
pub mod e09_dbp;
pub mod e10_exhaustive;
pub mod e11_ablations;
pub mod e12_busy_time;
pub mod e13_extensions;
pub mod e14_information;
pub mod e15_uniform;

/// Effort level of an experiment run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Seconds-scale smoke run (used by benches and CI).
    Quick,
    /// The full parameter grid used to regenerate EXPERIMENTS.md.
    Full,
}

impl Profile {
    /// Scales a `(quick, full)` pair.
    pub fn pick<T: Copy>(&self, quick: T, full: T) -> T {
        match self {
            Profile::Quick => quick,
            Profile::Full => full,
        }
    }
}

/// One experiment: id, description, and a runner.
pub struct Experiment {
    /// Short id, e.g. `"e3"`.
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// Runner.
    pub run: fn(Profile) -> Vec<Table>,
}

/// The registry of all experiments in id order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            title: "Theorem 3.3 / Figure 1: non-clairvoyant lower bound μ (adaptive adversary)",
            run: e01_nc_lower_bound::run,
        },
        Experiment {
            id: "e2",
            title: "Theorem 3.4 / Figure 2: Batch tightness (ratio → 2μ)",
            run: e02_batch_tightness::run,
        },
        Experiment {
            id: "e3",
            title: "Theorem 3.5 / Figure 3: Batch+ tightness (ratio → μ+1)",
            run: e03_batchplus_tightness::run,
        },
        Experiment {
            id: "e4",
            title: "Theorem 4.1 / Figure 4: clairvoyant lower bound φ (adaptive adversary)",
            run: e04_cv_lower_bound::run,
        },
        Experiment {
            id: "e5",
            title: "Theorem 4.4: CDB ratio vs class ratio α (bound 3α+4+2/(α−1))",
            run: e05_cdb_alpha::run,
        },
        Experiment {
            id: "e6",
            title: "Lemmas 4.6–4.10 / Figure 6: flag-job graph structure",
            run: e06_flag_graph::run,
        },
        Experiment {
            id: "e7",
            title: "Theorem 4.11: Profit ratio vs parameter k (bound 2k+2+1/(k−1))",
            run: e07_profit_k::run,
        },
        Experiment {
            id: "e8",
            title: "Head-to-head: all schedulers across workload families, μ- and laxity-sweeps",
            run: e08_head_to_head::run,
        },
        Experiment {
            id: "e9",
            title: "Section 5: generalized MinUsageTime DBP (scheduler × First Fit packing)",
            run: e09_dbp::run,
        },
        Experiment {
            id: "e10",
            title: "Exhaustive small-instance validation against exact optimal",
            run: e10_exhaustive::run,
        },
        Experiment {
            id: "e11",
            title: "Ablations: Batch vs Batch+, CDB α/base, Profit k, Doubler c",
            run: e11_ablations::run,
        },
        Experiment {
            id: "e12",
            title: "Extension: busy time on g-slot machines (g=1 → work, g=∞ → span)",
            run: e12_busy_time::run,
        },
        Experiment {
            id: "e13",
            title: "Extension: random-delay and count-triggered baselines vs deadline batching",
            run: e13_extensions::run,
        },
        Experiment {
            id: "e14",
            title: "Extension: the information ladder (none / class-only / full clairvoyance)",
            run: e14_information::run,
        },
        Experiment {
            id: "e15",
            title: "Uniform jobs (μ=1): tightness constructions and the adaptive unit trap",
            run: e15_uniform::run,
        },
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_fifteen_unique_ids() {
        let exps = all();
        assert_eq!(exps.len(), 15);
        let mut ids: Vec<_> = exps.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 15);
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("e4").is_some());
        assert!(by_id("e99").is_none());
    }
}
