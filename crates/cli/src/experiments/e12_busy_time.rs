//! **E12 — bounded-capacity busy time (extension).** The related busy-time
//! literature (refs \[22\], \[12\] of the paper) schedules jobs on machines that each run at most
//! `g` jobs concurrently; the paper's concluding remarks note that the
//! unbounded-capacity online case is equivalent to Clairvoyant FJS. This
//! experiment sweeps `g` to show the continuum:
//!
//! * `g = 1` — busy time equals total work for every scheduler (no sharing
//!   possible; scheduling is irrelevant);
//! * `g → ∞` — busy time equals the span (the paper's objective), so the
//!   scheduler ranking converges to the span ranking of E8.

use super::Profile;
use fjs_analysis::{f3, parallel_map, Summary, Table};
use fjs_dbp::assign_busy_time;
use fjs_schedulers::SchedulerKind;
use fjs_workloads::Scenario;

/// One `(scheduler, g)` cell.
pub struct BusyCell {
    /// Scheduler label.
    pub scheduler: String,
    /// Machine capacity.
    pub g: usize,
    /// Mean total busy time.
    pub busy: Summary,
    /// Mean machines used.
    pub machines: Summary,
    /// Mean lower bound `max(span, work/g)`.
    pub lb: Summary,
}

/// Evaluates one scheduler × capacity over seeds.
pub fn eval_cell(
    kind: SchedulerKind,
    g: usize,
    scenario: Scenario,
    n: usize,
    seeds: &[u64],
) -> BusyCell {
    let rows = parallel_map(seeds, |&seed| {
        let inst = scenario.generate(n, seed);
        let out = kind.run_on(&inst);
        assert!(out.is_feasible());
        let bt = assign_busy_time(&out.instance, &out.schedule, g);
        (
            bt.total_busy_time.get(),
            bt.machines as f64,
            bt.lower_bound.get(),
        )
    });
    BusyCell {
        scheduler: kind.label(),
        g,
        busy: Summary::of(&rows.iter().map(|r| r.0).collect::<Vec<_>>()),
        machines: Summary::of(&rows.iter().map(|r| r.1).collect::<Vec<_>>()),
        lb: Summary::of(&rows.iter().map(|r| r.2).collect::<Vec<_>>()),
    }
}

/// Experiment runner.
pub fn run(profile: Profile) -> Vec<Table> {
    let n = profile.pick(150, 400);
    let seeds: Vec<u64> = (1..=profile.pick(3u64, 10u64)).collect();
    let gs: &[usize] = profile.pick(&[1, 4, 1_000_000][..], &[1, 2, 4, 8, 16, 64, 1_000_000][..]);
    let kinds = [
        SchedulerKind::Eager,
        SchedulerKind::BatchPlus,
        SchedulerKind::profit_optimal(),
    ];

    let mut tables = Vec::new();
    for scenario in [Scenario::CloudBatch, Scenario::SlackRich] {
        let mut t = Table::new(
            format!(
                "E12 (extension): busy time on g-slot machines, {} (n={n}, {} seeds)",
                scenario.name(),
                seeds.len()
            ),
            &[
                "g",
                "scheduler",
                "busy time (mean)",
                "machines (mean)",
                "LB (mean)",
                "busy/LB",
            ],
        );
        for &g in gs {
            for &kind in &kinds {
                let c = eval_cell(kind, g, scenario, n, &seeds);
                t.push_row(vec![
                    if g >= 1_000_000 {
                        "inf".into()
                    } else {
                        format!("{g}")
                    },
                    c.scheduler.clone(),
                    f3(c.busy.mean),
                    f3(c.machines.mean),
                    f3(c.lb.mean),
                    f3(c.busy.mean / c.lb.mean),
                ]);
            }
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_one_equalizes_all_schedulers() {
        let seeds = [1, 2];
        let a = eval_cell(SchedulerKind::Eager, 1, Scenario::CloudBatch, 100, &seeds);
        let b = eval_cell(
            SchedulerKind::BatchPlus,
            1,
            Scenario::CloudBatch,
            100,
            &seeds,
        );
        // With unit capacity, busy time = total work regardless of starts.
        assert!(
            (a.busy.mean - b.busy.mean).abs() < 1e-6,
            "{} vs {}",
            a.busy.mean,
            b.busy.mean
        );
    }

    #[test]
    fn huge_g_reduces_to_span_ranking() {
        let seeds = [3, 4];
        let eager = eval_cell(
            SchedulerKind::Eager,
            1_000_000,
            Scenario::SlackRich,
            120,
            &seeds,
        );
        let plus = eval_cell(
            SchedulerKind::BatchPlus,
            1_000_000,
            Scenario::SlackRich,
            120,
            &seeds,
        );
        assert!(
            plus.busy.mean < eager.busy.mean,
            "span-minimizing scheduler must win at unbounded capacity"
        );
        assert!(
            (eager.machines.mean - 1.0).abs() < 1e-9,
            "one machine suffices"
        );
    }

    #[test]
    fn busy_time_never_below_lb() {
        for g in [1, 3, 10] {
            let c = eval_cell(
                SchedulerKind::profit_optimal(),
                g,
                Scenario::CloudBatch,
                100,
                &[5],
            );
            assert!(c.busy.mean >= c.lb.mean - 1e-9);
        }
    }
}
