//! The `fjs` experiment runner.
//!
//! ```text
//! fjs list                 # show the experiment registry
//! fjs e3                   # run one experiment (quick profile)
//! fjs e3 --full            # full parameter grid
//! fjs all --full           # everything (regenerates EXPERIMENTS.md data)
//! fjs e5 --csv out/        # additionally write each table as CSV
//! fjs gantt batch+         # visualize a scheduler on a demo workload
//! fjs trace jobs.csv       # run every scheduler on your own CSV trace
//! fjs audit profit         # run a scheduler and audit it against its rules
//! fjs chaos                # fault-injection matrix over every scheduler
//! fjs chaos batch+         # fault-injection matrix for one scheduler
//! fjs stats batch+         # engine RunStats counters for one scheduler
//! fjs stats all --log-jsonl runs.jsonl   # counters for all, logged as JSONL
//! fjs bench-diff old.json new.json       # compare two BENCH_results.json
//! fjs conform all          # property-based conformance: every scheduler × oracle
//! fjs conform uniform      # the uniform-jobs family on the unit-length deck
//! fjs conform batch+ --cases 256 --seed 7    # one scheduler, deeper run
//! fjs conform chaos        # harness self-test: must fail and shrink
//! fjs conform all --journal c.jsonl          # checkpoint every finished cell
//! fjs conform all --journal c.jsonl --resume # skip journalled cells after a kill
//! fjs soak all --cells 256 --journal s.jsonl # supervised long-running sweep
//! fjs soak batch --minutes 10 --journal s.jsonl --resume  # continue after Ctrl-C
//! fjs soak batch --poison hang --watchdog-events 20000 --journal p.jsonl
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure (failed audit, unsound chaos
//! cell, conformance oracle violation, bench regression past threshold,
//! unreadable/unparseable input, I/O error), 2 usage error.

use fjs_cli::experiments::{all, by_id, Experiment, Profile};
use std::io::Write as _;
use std::time::Instant;

/// The single error path: every subcommand reports failures as one of
/// these, and only `main` turns them into exit codes.
enum CliError {
    /// Bad invocation (unknown command, malformed flags): exit 2.
    Usage(Option<String>),
    /// The invocation was fine but the work failed: exit 1.
    Runtime(String),
}

impl CliError {
    fn usage() -> Self {
        CliError::Usage(None)
    }
}

const USAGE: &str = "usage: fjs <list | all | e1..e15> [--full] [--csv <dir>]\n\
 \u{20}      fjs gantt [scheduler] [seed]\n\
 \u{20}      fjs trace <file.csv>\n\
 \u{20}      fjs audit <batch|batch+|profit> [seed]\n\
 \u{20}      fjs chaos [scheduler] [--watchdog-events <n>]\n\
 \u{20}      fjs stats <scheduler|all> [--n <jobs>] [--seed <s>] [--log-jsonl <file>]\n\
 \u{20}      fjs bench [--json <file>] [--quick]\n\
 \u{20}      fjs bench-diff <old.json> <new.json> [--threshold <frac> | --max-regress <pct>]\n\
 \u{20}      fjs conform <scheduler|all|uniform|chaos> [--cases <n>] [--seed <s>] [--quick]\n\
 \u{20}                  [--deck main|uniform] [--corpus <dir>] [--journal <file>] [--resume]\n\
 \u{20}                  [--watchdog-events <n>] [--shards <n>]\n\
 \u{20}      fjs soak <scheduler|all|chaos> --journal <file> [--cells <n>] [--seed <s>]\n\
 \u{20}               [--seconds <s> | --minutes <m>] [--resume] [--watchdog-events <n>]\n\
 \u{20}               [--poison panic|hang] [--trace <file.csv>] [--throttle-ms <n>] [--shards <n>]\n\
 \u{20}      fjs serve [--input <file> | --socket <path> and/or --tcp <addr>] [--log <file>]\n\
 \u{20}                [--journal <file>] [--resume] [--workers <n>] [--max-sessions <n>]\n\
 \u{20}                [--max-pending <n>] [--watchdog-events <n>] [--quarantine halt|skip|dead-letter]\n\
 \u{20}                [--checkpoint-every <n>] [--throttle-ms <n>] [--stats-jsonl <file>]\n\
 \u{20}                [--tenant-max-sessions <n>] [--tenant-max-pending <n>] [--tenant-max-bytes <n>]\n\
 \u{20}                [--breaker-threshold <n>] [--breaker-cooldown <events>]\n\
 \u{20}                [--max-frame-bytes <n>] [--writer-queue <n>]\n\
 \u{20}      fjs loadgen (--emit <file|-> | --socket <path> | --tcp <addr>) [--sessions <n>]\n\
 \u{20}                [--jobs <n>] [--rate <r>] [--seed <s>] [--scheduler <spec>] [--mean-length <x>]\n\
 \u{20}                [--laxity <x>] [--concurrency <k>] [--json <file>] [--sid-prefix <p>]\n\
 \u{20}                [--misbehave torn|garbage|giant|partial|disconnect|slowloris]\n\
 \u{20}      fjs fuzz-serve (--socket <path> and/or --tcp <addr>) [--seed <s>] [--connections <n>]\n\
 \u{20}                [--frames <n>] [--scheduler <spec>] [--emit-clean <file>]\n\
 Reproduces the figures/theorems of Ren & Tang, SPAA 2017 (see DESIGN.md).\n\
 Exit codes: 0 ok, 1 runtime failure, 2 usage error.";

fn pick_scheduler(name: &str) -> Result<fjs_schedulers::SchedulerKind, CliError> {
    let lower = name.to_ascii_lowercase();
    let canonical = if lower == "semi-cdb" {
        "semicdb"
    } else {
        lower.as_str()
    };
    fjs_schedulers::SchedulerKind::from_short_name(canonical).ok_or_else(|| {
        CliError::Usage(Some(format!(
            "unknown scheduler '{name}' (try eager/lazy/batch/batch+/cdb/profit/doubler/\
             random/threshold/semicdb)"
        )))
    })
}

fn cmd_gantt(args: &[String]) -> Result<(), CliError> {
    let kind = pick_scheduler(args.first().map(String::as_str).unwrap_or("batch+"))?;
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let inst = fjs_workloads::Scenario::BurstyAnalytics.generate(24, seed);
    let out = kind.run_on(&inst);
    let metrics = fjs_core::metrics::schedule_metrics(&out.instance, &out.schedule);
    println!(
        "{} on bursty-analytics (24 jobs, seed {seed}):\n",
        kind.label()
    );
    println!(
        "{}",
        fjs_analysis::render_gantt(
            &out.instance,
            &out.schedule,
            fjs_analysis::GanttOptions::default()
        )
    );
    println!(
        "span = {:.2}  peak concurrency = {}  mean concurrency = {:.2}  laxity used = {:.0}%",
        metrics.span.get(),
        metrics.peak_concurrency,
        metrics.mean_concurrency,
        100.0 * metrics.laxity_utilization
    );
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), CliError> {
    use fjs_core::sim::{run_static, Clairvoyance};
    use fjs_schedulers::FlagRecorder;
    let which = args.first().map(String::as_str).unwrap_or("batch+");
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let inst = fjs_workloads::Scenario::CloudBatch.generate(300, seed);
    let verdict = match which {
        "batch" => {
            let mut s = fjs_schedulers::Batch::new();
            let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut s);
            fjs_schedulers::audit_batch(&out.instance, &out.schedule, &s.flag_jobs())
                .map(|()| (out.span, s.flag_jobs().len()))
        }
        "batch+" | "batchplus" => {
            let mut s = fjs_schedulers::BatchPlus::new();
            let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut s);
            fjs_schedulers::audit_batch_plus(&out.instance, &out.schedule, &s.flag_jobs())
                .map(|()| (out.span, s.flag_jobs().len()))
        }
        "profit" => {
            let mut s = fjs_schedulers::Profit::optimal();
            let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut s);
            fjs_schedulers::audit_profit(
                &out.instance,
                &out.schedule,
                &s.flag_jobs(),
                fjs_schedulers::OPTIMAL_K,
            )
            .map(|()| (out.span, s.flag_jobs().len()))
        }
        other => {
            return Err(CliError::Usage(Some(format!(
                "cannot audit '{other}' (try batch, batch+, profit)"
            ))));
        }
    };
    match verdict {
        Ok((span, flags)) => {
            println!(
                "audit PASSED: {which} on cloud-batch (300 jobs, seed {seed}) — \
                 span {span}, {flags} flag jobs, every start justified by the paper's rules"
            );
            Ok(())
        }
        Err(e) => Err(CliError::Runtime(format!("audit FAILED: {e}"))),
    }
}

fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    let Some(path) = args.first() else {
        return Err(CliError::usage());
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
    let trace = fjs_workloads::parse_trace(&text)
        .map_err(|e| CliError::Runtime(format!("cannot parse {path}: {e}")))?;
    let inst = trace.instance;
    let lb = fjs_opt::best_lower_bound(&inst).get();
    let stats = fjs_workloads::workload_stats(&inst);
    println!(
        "{path}: {} jobs, μ = {:.2}, mean laxity/length = {:.2}, {:.0}% rigid, \
         load = {:.2}, OPT span ≥ {lb:.3}\n",
        stats.n,
        stats.mu,
        stats.mean_laxity_ratio,
        100.0 * stats.rigid_fraction,
        stats.load,
    );
    let mut table = fjs_analysis::Table::new(
        "scheduler comparison",
        &["scheduler", "span", "span/OPT-LB", "peak concurrency"],
    );
    for kind in fjs_schedulers::SchedulerKind::full_set() {
        let out = kind.run_on(&inst);
        let m = fjs_core::metrics::schedule_metrics(&out.instance, &out.schedule);
        table.push_row(vec![
            kind.label(),
            format!("{:.3}", out.span.get()),
            format!("{:.3}", out.span.get() / lb),
            format!("{}", m.peak_concurrency),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_chaos(args: &[String]) -> Result<(), CliError> {
    use fjs_schedulers::chaos::{run_chaos_matrix_with, Verdict, CHAOS_MAX_EVENTS};
    use fjs_schedulers::SchedulerKind;

    let mut args = args.to_vec();
    let watchdog: usize = match take_flag_value(&mut args, "--watchdog-events")? {
        Some(v) => v.parse().map_err(|_| {
            CliError::Usage(Some(format!(
                "--watchdog-events: '{v}' is not an event count"
            )))
        })?,
        None => CHAOS_MAX_EVENTS,
    };
    let kinds = match args.first() {
        Some(name) => vec![pick_scheduler(name)?],
        None => SchedulerKind::registered_set(),
    };
    let report = run_chaos_matrix_with(&kinds, watchdog);

    let env_total = fjs_core::faults::EnvFaultMode::ALL.len();
    let sched_total = fjs_core::faults::SchedFaultMode::ALL.len();
    println!(
        "fault-injection matrix: {} scheduler(s) × ({env_total} environment + \
         {sched_total} scheduler action) fault modes = {} cells\n",
        kinds.len(),
        report.cells.len(),
    );

    let mut table = fjs_analysis::Table::new(
        "chaos verdicts",
        &["scheduler", "env faults", "action faults", "verdict"],
    );
    for sched in report.scheduler_labels() {
        let passed = |prefix: &str| {
            report
                .cells
                .iter()
                .filter(|c| {
                    c.scheduler == sched && c.fault.starts_with(prefix) && c.verdict.is_pass()
                })
                .count()
        };
        let clean = report
            .cells
            .iter()
            .filter(|c| c.scheduler == sched)
            .all(|c| c.verdict.is_pass());
        table.push_row(vec![
            sched.clone(),
            format!("{}/{env_total}", passed("env:")),
            format!("{}/{sched_total}", passed("sched:")),
            (if clean { "pass" } else { "FAIL" }).to_string(),
        ]);
    }
    println!("{}", table.render());

    // The ingestion side of the chaos matrix: every IO fault mode against
    // every TraceReader quarantine policy.
    let io_cells = fjs_workloads::run_io_chaos(1);
    let mut io_table = fjs_analysis::Table::new(
        "ingestion fault matrix (TraceReader quarantine)",
        &["io fault", "policy", "verdict", "detail"],
    );
    for c in &io_cells {
        io_table.push_row(vec![
            c.mode.label().to_string(),
            c.policy.label().to_string(),
            (if c.passed { "pass" } else { "FAIL" }).to_string(),
            c.detail.clone(),
        ]);
    }
    println!("{}", io_table.render());

    let failures = report.failures();
    let io_failures = io_cells.iter().filter(|c| !c.passed).count();
    if failures.is_empty() && io_failures == 0 {
        println!(
            "all cells pass: no panics, every run completed with a valid full schedule, \
             every malformed trace was quarantined per policy."
        );
        Ok(())
    } else {
        if !failures.is_empty() {
            let mut detail = fjs_analysis::Table::new(
                "failing cells",
                &["scheduler", "fault", "class", "detail"],
            );
            for c in &failures {
                let msg = match &c.verdict {
                    Verdict::Pass => continue,
                    Verdict::Unsound(m) | Verdict::Panicked(m) => m.clone(),
                };
                detail.push_row(vec![
                    c.scheduler.clone(),
                    c.fault.clone(),
                    c.verdict.label().to_string(),
                    msg,
                ]);
            }
            println!("{}", detail.render());
        }
        Err(CliError::Runtime(format!(
            "chaos found {} failing cell(s) out of {}",
            failures.len() + io_failures,
            report.cells.len() + io_cells.len()
        )))
    }
}

/// Removes a boolean `--flag` from `args`, returning whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Pulls the value of `--flag <value>` out of `args`, removing both tokens.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(CliError::Usage(Some(format!("{flag} needs a value"))));
            }
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    use fjs_core::sim::{run_with_config, SimConfig, StaticEnv};
    use fjs_schedulers::SchedulerKind;
    use fjs_workloads::Scenario;

    let mut args = args.to_vec();
    let n: usize = match take_flag_value(&mut args, "--n")? {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(Some(format!("--n: '{v}' is not a job count"))))?,
        None => 500,
    };
    let seed: u64 = match take_flag_value(&mut args, "--seed")? {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(Some(format!("--seed: '{v}' is not a seed"))))?,
        None => 42,
    };
    let jsonl_path = take_flag_value(&mut args, "--log-jsonl")?;

    let which = args.first().map(String::as_str).unwrap_or("all");
    let kinds = match which {
        "all" => SchedulerKind::full_set(),
        name => vec![pick_scheduler(name)?],
    };

    let mut table = fjs_analysis::Table::new(
        format!("engine run stats ({n} jobs, seed {seed})"),
        &[
            "scheduler",
            "scenario",
            "events",
            "peak queue",
            "applied",
            "rejected",
            "force-starts",
            "wakeups",
            "wall",
            "sched%",
            "env%",
        ],
    );
    let mut jsonl = String::new();
    for kind in &kinds {
        for sc in Scenario::all() {
            let inst = sc.generate(n, seed);
            let cache_before = fjs_opt::cache::stats();
            let out = run_with_config(
                StaticEnv::new(&inst, kind.information_model()),
                kind.build(),
                SimConfig {
                    time_phases: true,
                    ..SimConfig::default()
                },
            );
            let mut s = out.stats;
            // The engine never touches the exact-optimum memo itself; copy
            // the process-wide cache movement observed during this run in,
            // as `RunStats` documents harnesses should.
            let cache_after = fjs_opt::cache::stats();
            s.opt_cache_hits = cache_after.hits - cache_before.hits;
            s.opt_cache_misses = cache_after.misses - cache_before.misses;
            debug_assert!(s.is_consistent());
            let pct = |part: f64| {
                if s.wall_total_s > 0.0 {
                    100.0 * part / s.wall_total_s
                } else {
                    0.0
                }
            };
            table.push_row(vec![
                kind.label(),
                sc.name().to_string(),
                format!("{}", s.events_total),
                format!("{}", s.peak_queue),
                format!("{}", s.actions_applied),
                format!("{}", s.actions_rejected),
                format!("{}", s.force_starts),
                format!("{}", s.wakeups),
                format!("{:.2} ms", s.wall_total_s * 1e3),
                format!("{:.0}", pct(s.wall_scheduler_s)),
                format!("{:.0}", pct(s.wall_environment_s)),
            ]);
            if jsonl_path.is_some() {
                jsonl.push_str(&run_stats_jsonl_record(
                    &kind.label(),
                    sc.name(),
                    n,
                    seed,
                    out.span.get(),
                    &s,
                ));
            }
        }
    }
    println!("{}", table.render());
    if let Some(path) = jsonl_path {
        use std::fs::OpenOptions;
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?;
        f.write_all(jsonl.as_bytes())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        println!(
            "appended {} JSONL record(s) to {path}",
            kinds.len() * Scenario::all().len()
        );
    }
    Ok(())
}

/// One JSONL line per run: identifying fields plus every
/// [`fjs_core::sim::RunStats`] counter, for downstream sweep tooling.
fn run_stats_jsonl_record(
    scheduler: &str,
    scenario: &str,
    n: usize,
    seed: u64,
    span: f64,
    s: &fjs_core::sim::RunStats,
) -> String {
    use fjs_analysis::benchjson::{escape, fmt_f64};
    format!(
        "{{\"scheduler\": \"{}\", \"scenario\": \"{}\", \"n\": {n}, \"seed\": {seed}, \
         \"span\": {}, \"release_events\": {}, \"jobs_released\": {}, \"completions\": {}, \
         \"ordered_starts\": {}, \"length_probes\": {}, \"deadline_alarms\": {}, \
         \"wakeups\": {}, \"events_total\": {}, \"peak_queue\": {}, \"actions_applied\": {}, \
         \"actions_rejected\": {}, \"force_starts\": {}, \"jobs_completed\": {}, \
         \"peak_retained\": {}, \"arena_slots\": {}, \
         \"opt_cache_hits\": {}, \"opt_cache_misses\": {}, \
         \"wall_total_s\": {}, \"wall_scheduler_s\": {}, \"wall_environment_s\": {}}}\n",
        escape(scheduler),
        escape(scenario),
        fmt_f64(span),
        s.release_events,
        s.jobs_released,
        s.completions,
        s.ordered_starts,
        s.length_probes,
        s.deadline_alarms,
        s.wakeups,
        s.events_total,
        s.peak_queue,
        s.actions_applied,
        s.actions_rejected,
        s.force_starts,
        s.jobs_completed,
        s.peak_retained,
        s.arena_slots,
        s.opt_cache_hits,
        s.opt_cache_misses,
        fmt_f64(s.wall_total_s),
        fmt_f64(s.wall_scheduler_s),
        fmt_f64(s.wall_environment_s),
    )
}

/// Runs the in-process bench suite, prints the per-case report lines and
/// optionally writes the schema-v1 JSON (`--json <file>`, `-` for stdout).
/// `--quick` forces the harness's quick calibration (same as setting
/// `FJS_BENCH_QUICK=1`).
fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let mut args = args.to_vec();
    let json_path = take_flag_value(&mut args, "--json")?;
    if take_switch(&mut args, "--quick") {
        std::env::set_var("FJS_BENCH_QUICK", "1");
    }
    if let Some(extra) = args.first() {
        return Err(CliError::Usage(Some(format!(
            "bench: unexpected argument '{extra}'"
        ))));
    }
    fjs_opt::cache::reset();
    let report = fjs_cli::bench::run_bench_suite();
    let cache = fjs_opt::cache::stats();
    if cache.hits + cache.misses > 0 {
        eprintln!(
            "opt-cache: {}/{} lookups hit ({:.1}%), {} entries",
            cache.hits,
            cache.hits + cache.misses,
            100.0 * cache.hit_rate(),
            cache.entries,
        );
    }
    match json_path.as_deref() {
        None => {}
        Some("-") => print!("{}", report.to_json()),
        Some(path) => {
            std::fs::write(path, report.to_json())
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            println!("wrote {} case(s) to {path}", report.cases.len());
        }
    }
    Ok(())
}

fn cmd_bench_diff(args: &[String]) -> Result<(), CliError> {
    use fjs_analysis::benchjson::{diff_reports, BenchReport};

    let mut args = args.to_vec();
    let explicit_threshold = match take_flag_value(&mut args, "--threshold")? {
        Some(v) => {
            let t: f64 = v.parse().map_err(|_| {
                CliError::Usage(Some(format!("--threshold: '{v}' is not a number")))
            })?;
            if !(t.is_finite() && t >= 0.0) {
                return Err(CliError::Usage(Some(format!(
                    "--threshold must be a non-negative fraction, got {v}"
                ))));
            }
            Some(t)
        }
        None => None,
    };
    // `--max-regress <pct>` is the CI-facing spelling: a percentage rather
    // than a fraction (`--max-regress 15` ≡ `--threshold 0.15`).
    let max_regress = match take_flag_value(&mut args, "--max-regress")? {
        Some(v) => {
            let p: f64 = v.parse().map_err(|_| {
                CliError::Usage(Some(format!("--max-regress: '{v}' is not a number")))
            })?;
            if !(p.is_finite() && p >= 0.0) {
                return Err(CliError::Usage(Some(format!(
                    "--max-regress must be a non-negative percentage, got {v}"
                ))));
            }
            Some(p / 100.0)
        }
        None => None,
    };
    let threshold = match (explicit_threshold, max_regress) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(Some(
                "bench-diff takes --threshold or --max-regress, not both".into(),
            )));
        }
        (Some(t), None) => t,
        (None, Some(t)) => t,
        (None, None) => 0.2,
    };
    let [old_path, new_path] = args.as_slice() else {
        return Err(CliError::Usage(Some(
            "bench-diff needs exactly two files: <old.json> <new.json>".into(),
        )));
    };
    let load = |path: &str| -> Result<BenchReport, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
        BenchReport::parse(&text)
            .map_err(|e| CliError::Runtime(format!("cannot parse {path}: {e}")))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    println!(
        "old: {old_path} ({}, {} cases)\nnew: {new_path} ({}, {} cases)\n",
        old.git_describe,
        old.cases.len(),
        new.git_describe,
        new.cases.len(),
    );

    let diff = diff_reports(&old, &new);
    let mut table = fjs_analysis::Table::new(
        format!(
            "bench deltas (regression threshold +{:.0}%)",
            threshold * 100.0
        ),
        &["case", "old median", "new median", "ratio", "delta"],
    );
    for d in &diff.aligned {
        let flag = if d.relative_change() > threshold {
            "  <-- REGRESSION"
        } else {
            ""
        };
        table.push_row(vec![
            d.name.clone(),
            format!("{:.3e} s", d.old_median_s),
            format!("{:.3e} s", d.new_median_s),
            format!("{:.3}", d.ratio()),
            format!("{:+.1}%{flag}", d.relative_change() * 100.0),
        ]);
    }
    println!("{}", table.render());
    for name in &diff.only_old {
        println!("only in old: {name}");
    }
    for name in &diff.only_new {
        println!("only in new: {name}");
    }
    if diff.aligned.is_empty() {
        return Err(CliError::Runtime(
            "no cases align by name; nothing was compared".into(),
        ));
    }

    let regressions = diff.regressions(threshold);
    if regressions.is_empty() {
        println!(
            "\nok: no case regressed by more than {:.0}% ({} compared)",
            threshold * 100.0,
            diff.aligned.len()
        );
        Ok(())
    } else {
        Err(CliError::Runtime(format!(
            "{} case(s) regressed by more than {:.0}%",
            regressions.len(),
            threshold * 100.0
        )))
    }
}

fn cmd_conform(args: &[String]) -> Result<(), CliError> {
    use fjs_core::supervise::Journal;
    use fjs_testkit::{
        all_targets, row, run_conformance_with, save_entry, set_watchdog_events, uniform_targets,
        ConformConfig, ConformHooks, CorpusEntry, DeckKind, Expectation, Failure, Target,
    };
    use std::sync::Mutex;

    let mut args = args.to_vec();
    let cases: usize = match take_flag_value(&mut args, "--cases")? {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(Some(format!("--cases: '{v}' is not a count"))))?,
        None => ConformConfig::default().cases,
    };
    let base_seed: u64 = match take_flag_value(&mut args, "--seed")? {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(Some(format!("--seed: '{v}' is not a seed"))))?,
        None => ConformConfig::default().base_seed,
    };
    let quick = take_switch(&mut args, "--quick");
    let corpus_flag = take_flag_value(&mut args, "--corpus")?;
    let deck_flag = take_flag_value(&mut args, "--deck")?;
    if let Some(v) = take_flag_value(&mut args, "--watchdog-events")? {
        let n: usize = v.parse().map_err(|_| {
            CliError::Usage(Some(format!(
                "--watchdog-events: '{v}' is not an event count"
            )))
        })?;
        set_watchdog_events(n);
    }
    let shards: usize = match take_flag_value(&mut args, "--shards")? {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(Some(format!("--shards: '{v}' is not a count"))))?,
        None => 0,
    };
    let journal_path = take_flag_value(&mut args, "--journal")?;
    let resume = take_switch(&mut args, "--resume");
    if resume && journal_path.is_none() {
        return Err(CliError::Usage(Some(
            "--resume needs --journal <file>".into(),
        )));
    }

    let which = args.first().map(String::as_str).unwrap_or("all");
    let (targets, default_deck): (Vec<Target>, DeckKind) = match which {
        "all" => (all_targets(), DeckKind::Main),
        "uniform" => (uniform_targets(), DeckKind::Uniform),
        "chaos" => (vec![Target::default_chaos()], DeckKind::Main),
        name => (
            vec![Target::from_name(name).ok_or_else(|| {
                CliError::Usage(Some(format!(
                    "unknown conformance target '{name}' (a scheduler short name, 'all', \
                     'uniform', 'chaos', or 'chaos:<mode>:<scheduler>')"
                )))
            })?],
            DeckKind::Main,
        ),
    };
    let deck = match deck_flag.as_deref() {
        None => default_deck,
        Some("main") => DeckKind::Main,
        Some("uniform") => DeckKind::Uniform,
        Some(v) => {
            return Err(CliError::Usage(Some(format!(
                "--deck: '{v}' is not a deck ('main' or 'uniform')"
            ))))
        }
    };
    // Uniform-deck counterexamples live in their own corpus directory so
    // the replay suites stay per-family.
    let corpus_dir = corpus_flag.unwrap_or_else(|| match deck {
        DeckKind::Main => "tests/corpus".into(),
        DeckKind::Uniform => "tests/corpus/uniform".into(),
    });

    let config = ConformConfig {
        cases,
        deck,
        base_seed,
        quick,
        shards,
        ..ConformConfig::default()
    };
    let journal = match &journal_path {
        None => None,
        Some(p) => {
            let j = if resume {
                Journal::resume(p)
            } else {
                Journal::create(p)
            }
            .map_err(|e| CliError::Runtime(format!("journal: {e}")))?;
            Some(Mutex::new(j))
        }
    };
    // Flush each counterexample to the corpus the moment it is shrunk, so
    // a killed sweep keeps everything found up to that point.
    let dir = std::path::PathBuf::from(&corpus_dir);
    let mut on_failure = |f: &Failure| {
        let entry = CorpusEntry {
            target: f.target.name(),
            oracle: f.oracle,
            expect: Expectation::Violate,
            note: format!(
                "shrunk from {} seed {} in {} evaluation(s)",
                f.family, f.seed, f.shrink_stats.evaluations
            ),
            instance: f.shrunk.clone(),
        };
        match save_entry(&dir, &entry) {
            Ok(path) => println!("counterexample written: {}", path.display()),
            Err(e) => eprintln!("warning: could not save counterexample: {e}"),
        }
    };
    let hooks = ConformHooks {
        journal: journal.as_ref(),
        on_failure: Some(&mut on_failure),
    };
    let report = run_conformance_with(&targets, &config, hooks);
    println!(
        "conformance: {} case(s) × {} target(s) = {} oracle checks \
         ({} mode, {} deck, base seed {base_seed})\n",
        report.cases,
        targets.len(),
        report.checks,
        if quick { "quick" } else { "full" },
        deck.name(),
    );
    if report.skipped > 0 {
        println!(
            "resume: skipped {} already-journalled cell(s)\n",
            report.skipped
        );
    }

    let mut table = fjs_analysis::Table::new("guarantee table", &["target", "oracles", "verdict"]);
    for t in &targets {
        let oracle_ids: Vec<&str> = row(t).iter().map(|o| o.id()).collect();
        let fails = report.failures.iter().filter(|f| f.target == *t).count();
        table.push_row(vec![
            t.name(),
            oracle_ids.join(", "),
            if fails == 0 {
                "pass".into()
            } else {
                format!("FAIL ({fails} oracle(s))")
            },
        ]);
    }
    println!("{}", table.render());

    if report.is_clean() {
        println!(
            "all conformance oracles hold across {} check(s).",
            report.checks
        );
        return Ok(());
    }

    let mut detail = fjs_analysis::Table::new(
        "violations (minimized by the shrinker)",
        &[
            "target", "oracle", "family", "seed", "hits", "jobs", "shrunk", "detail",
        ],
    );
    for f in &report.failures {
        detail.push_row(vec![
            f.target.name(),
            f.oracle.id().to_string(),
            f.family.clone(),
            format!("{}", f.seed),
            format!("{}", f.occurrences),
            format!("{}", f.instance.len()),
            format!("{}", f.shrunk.len()),
            f.detail.clone(),
        ]);
    }
    println!("{}", detail.render());

    Err(CliError::Runtime(format!(
        "conform: {} distinct oracle violation(s) across {} check(s)",
        report.failures.len(),
        report.checks
    )))
}

fn cmd_soak(args: &[String]) -> Result<(), CliError> {
    use fjs_cli::soak::{install_sigint_handler, run_soak, SoakOptions};
    use fjs_core::supervise::{PoisonMode, DEFAULT_WATCHDOG_EVENTS};
    use fjs_testkit::{all_targets, Target};
    use std::time::Duration;

    let mut args = args.to_vec();
    let parse_num = |flag: &str, v: String| -> Result<u64, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(Some(format!("{flag}: '{v}' is not a number"))))
    };
    let cells: usize = match take_flag_value(&mut args, "--cells")? {
        Some(v) => parse_num("--cells", v)? as usize,
        None => 64,
    };
    let base_seed: u64 = match take_flag_value(&mut args, "--seed")? {
        Some(v) => parse_num("--seed", v)?,
        None => 1,
    };
    let watchdog_events: usize = match take_flag_value(&mut args, "--watchdog-events")? {
        Some(v) => parse_num("--watchdog-events", v)? as usize,
        None => DEFAULT_WATCHDOG_EVENTS,
    };
    let seconds = take_flag_value(&mut args, "--seconds")?
        .map(|v| parse_num("--seconds", v))
        .transpose()?;
    let minutes = take_flag_value(&mut args, "--minutes")?
        .map(|v| parse_num("--minutes", v))
        .transpose()?;
    let time_budget = match (seconds, minutes) {
        (None, None) => None,
        (s, m) => Some(Duration::from_secs(s.unwrap_or(0) + 60 * m.unwrap_or(0))),
    };
    let throttle = Duration::from_millis(match take_flag_value(&mut args, "--throttle-ms")? {
        Some(v) => parse_num("--throttle-ms", v)?,
        None => 0,
    });
    let stop_after = take_flag_value(&mut args, "--stop-after")?
        .map(|v| parse_num("--stop-after", v).map(|n| n as usize))
        .transpose()?;
    let shards: usize = match take_flag_value(&mut args, "--shards")? {
        Some(v) => parse_num("--shards", v)? as usize,
        None => 1,
    };
    let poison = match take_flag_value(&mut args, "--poison")? {
        None => None,
        Some(v) => Some(PoisonMode::from_label(&v).ok_or_else(|| {
            CliError::Usage(Some(format!("--poison: '{v}' is not a mode (panic, hang)")))
        })?),
    };
    let trace = take_flag_value(&mut args, "--trace")?.map(std::path::PathBuf::from);
    let resume = take_switch(&mut args, "--resume");
    let Some(journal) = take_flag_value(&mut args, "--journal")? else {
        return Err(CliError::Usage(Some("soak needs --journal <file>".into())));
    };
    if resume {
        // A --resume against a missing or empty journal would silently run
        // fresh; that is always an operator mistake (typo'd path, wrong
        // directory), so fail loudly as a usage error instead.
        let has_cells = std::fs::metadata(&journal)
            .map(|m| m.len() > 0)
            .unwrap_or(false);
        if !has_cells {
            return Err(CliError::Usage(Some(format!(
                "--resume: journal '{journal}' is missing or empty; nothing to resume \
                 (start without --resume to begin a fresh run)"
            ))));
        }
    }

    let which = args.first().map(String::as_str).unwrap_or("all");
    let targets: Vec<Target> = match which {
        "all" => all_targets(),
        "chaos" => vec![Target::default_chaos()],
        name => vec![Target::from_name(name).ok_or_else(|| {
            CliError::Usage(Some(format!(
                "unknown soak target '{name}' (a scheduler short name, 'all', 'chaos', \
                 or 'chaos:<mode>:<scheduler>')"
            )))
        })?],
    };

    install_sigint_handler();
    let opts = SoakOptions {
        cells,
        base_seed,
        watchdog_events,
        poison,
        time_budget,
        resume,
        trace,
        throttle,
        stop_after,
        shards,
        ..SoakOptions::new(targets, &journal)
    };
    let summary = run_soak(&opts).map_err(CliError::Runtime)?;
    print!("{}", summary.report);
    eprintln!(
        "soak: ran {} cell(s), skipped {} already-journalled, journal {} now holds {}",
        summary.ran, summary.skipped, journal, summary.journal_cells
    );
    if summary.interrupted {
        eprintln!("soak: interrupted — journal is flushed; rerun with --resume to finish");
        return Ok(());
    }
    if summary.degraded > 0 {
        return Err(CliError::Runtime(format!(
            "soak: {} of {} cell(s) did not complete cleanly",
            summary.degraded, summary.journal_cells
        )));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    use fjs_cli::serve::{install_drain_handlers, net, run_stream, Backend, ServeOptions, Sink};
    use fjs_core::service::ServeJournal;
    use std::io::BufWriter;

    let mut args = args.to_vec();
    let parse_num = |flag: &str, v: String| -> Result<u64, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(Some(format!("{flag}: '{v}' is not a number"))))
    };
    let input = take_flag_value(&mut args, "--input")?;
    let socket = take_flag_value(&mut args, "--socket")?.map(std::path::PathBuf::from);
    let tcp = take_flag_value(&mut args, "--tcp")?;
    let log_path = take_flag_value(&mut args, "--log")?;
    let journal_path = take_flag_value(&mut args, "--journal")?;
    let resume = take_switch(&mut args, "--resume");
    let mut opts = ServeOptions::default();
    if let Some(v) = take_flag_value(&mut args, "--workers")? {
        let n = parse_num("--workers", v)? as usize;
        // `--workers 0` means "one per core".
        opts.workers = if n == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            n
        };
    }
    if let Some(v) = take_flag_value(&mut args, "--max-sessions")? {
        opts.max_sessions = parse_num("--max-sessions", v)? as usize;
    }
    if let Some(v) = take_flag_value(&mut args, "--max-pending")? {
        opts.max_pending = parse_num("--max-pending", v)? as usize;
    }
    if let Some(v) = take_flag_value(&mut args, "--watchdog-events")? {
        opts.watchdog_events = parse_num("--watchdog-events", v)? as usize;
    }
    if let Some(v) = take_flag_value(&mut args, "--checkpoint-every")? {
        opts.checkpoint_every = parse_num("--checkpoint-every", v)? as usize;
    }
    if let Some(v) = take_flag_value(&mut args, "--throttle-ms")? {
        opts.throttle_ms = parse_num("--throttle-ms", v)?;
    }
    if let Some(v) = take_flag_value(&mut args, "--quarantine")? {
        opts.quarantine = fjs_workloads::Quarantine::ALL
            .iter()
            .copied()
            .find(|q| q.label() == v)
            .ok_or_else(|| {
                CliError::Usage(Some(format!(
                    "--quarantine: '{v}' is not a policy (halt, skip, dead-letter)"
                )))
            })?;
    }
    if let Some(v) = take_flag_value(&mut args, "--tenant-max-sessions")? {
        opts.tenant_max_sessions = parse_num("--tenant-max-sessions", v)? as usize;
    }
    if let Some(v) = take_flag_value(&mut args, "--tenant-max-pending")? {
        opts.tenant_quotas.max_pending = parse_num("--tenant-max-pending", v)? as usize;
    }
    if let Some(v) = take_flag_value(&mut args, "--tenant-max-bytes")? {
        opts.tenant_quotas.max_bytes = parse_num("--tenant-max-bytes", v)?;
    }
    if let Some(v) = take_flag_value(&mut args, "--breaker-threshold")? {
        opts.breaker.threshold = parse_num("--breaker-threshold", v)? as u32;
    }
    if let Some(v) = take_flag_value(&mut args, "--breaker-cooldown")? {
        opts.breaker.cooldown_events = parse_num("--breaker-cooldown", v)?;
    }
    if let Some(v) = take_flag_value(&mut args, "--max-frame-bytes")? {
        let n = parse_num("--max-frame-bytes", v)? as usize;
        if n == 0 {
            return Err(CliError::Usage(Some(
                "--max-frame-bytes must be at least 1".into(),
            )));
        }
        opts.max_frame_bytes = n;
    }
    if let Some(v) = take_flag_value(&mut args, "--writer-queue")? {
        let n = parse_num("--writer-queue", v)? as usize;
        if n == 0 {
            return Err(CliError::Usage(Some(
                "--writer-queue must be at least 1".into(),
            )));
        }
        opts.writer_queue = n;
    }
    let stats_jsonl = take_flag_value(&mut args, "--stats-jsonl")?;
    if let Some(extra) = args.first() {
        return Err(CliError::Usage(Some(format!(
            "serve: unexpected argument '{extra}'"
        ))));
    }
    if input.is_some() && (socket.is_some() || tcp.is_some()) {
        return Err(CliError::Usage(Some(
            "serve: --input and --socket/--tcp are mutually exclusive".into(),
        )));
    }
    if resume && journal_path.is_none() {
        return Err(CliError::Usage(Some(
            "serve: --resume needs --journal <file>".into(),
        )));
    }

    // Load journaled events before (re)opening the journal for append.
    let journaled = match (&journal_path, resume) {
        (Some(path), true) => {
            if !std::path::Path::new(path).exists() {
                return Err(CliError::Usage(Some(format!(
                    "--resume: journal '{path}' is missing; nothing to resume \
                     (start without --resume to begin a fresh run)"
                ))));
            }
            ServeJournal::load(path).map_err(|e| CliError::Runtime(format!("journal: {e}")))?
        }
        _ => Vec::new(),
    };

    let log = match &log_path {
        Some(p) => {
            // Truncated even on resume: the journal replay rewrites the
            // prefix so the final log matches an uninterrupted run byte
            // for byte.
            let f = std::fs::File::create(p)
                .map_err(|e| CliError::Runtime(format!("cannot create {p}: {e}")))?;
            Sink::File(BufWriter::new(f))
        }
        None => Sink::Stdout(std::io::stdout()),
    };
    let journal = match &journal_path {
        Some(p) => {
            let j = if resume {
                ServeJournal::open_append(p)
            } else {
                ServeJournal::create(p)
            }
            .map_err(|e| CliError::Runtime(format!("journal: {e}")))?;
            Some(j.with_sync_every(opts.checkpoint_every))
        }
        None => None,
    };

    let mut backend = Backend::new(opts, log, journal);
    if resume {
        backend.resume(&journaled).map_err(CliError::Runtime)?;
        eprintln!(
            "serve: resumed {} journaled event(s); input lines <= {} will be skipped",
            journaled.len(),
            backend.cursor()
        );
    }

    fjs_cli::soak::clear_stop();
    install_drain_handlers();

    if socket.is_some() || tcp.is_some() {
        let mut listeners = Vec::new();
        if let Some(sock) = &socket {
            #[cfg(unix)]
            match net::bind_unix(sock) {
                Ok(l) => listeners.push(l),
                Err(net::SocketClaimError::Live(msg)) => {
                    return Err(CliError::Usage(Some(format!("serve: {msg}"))));
                }
                Err(net::SocketClaimError::Io(msg)) => {
                    return Err(CliError::Runtime(format!("serve: {msg}")));
                }
            }
            #[cfg(not(unix))]
            {
                let _ = sock;
                return Err(CliError::Runtime(
                    "serve: --socket needs unix domain sockets".into(),
                ));
            }
        }
        if let Some(addr) = &tcp {
            listeners.push(net::bind_tcp(addr).map_err(CliError::Runtime)?);
        }
        net::run_connections(&mut backend, listeners).map_err(CliError::Runtime)?;
    } else if let Some(path) = input {
        let f = std::fs::File::open(&path)
            .map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?;
        let mut replies = std::io::stdout();
        run_stream(&mut backend, std::io::BufReader::new(f), Some(&mut replies))
            .map_err(CliError::Runtime)?;
    } else {
        fjs_cli::serve::run_stdin(&mut backend).map_err(CliError::Runtime)?;
    }

    let (summary, _log) = backend.finish().map_err(CliError::Runtime)?;
    eprint!("{summary}");
    if let Some(path) = &stats_jsonl {
        let mut line = summary.to_jsonl();
        line.push('\n');
        std::fs::write(path, line)
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        eprintln!("serve: wrote degradation counters to {path}");
    }
    if let Some(why) = summary.halted {
        return Err(CliError::Runtime(format!("serve: halted: {why}")));
    }
    Ok(())
}

fn cmd_fuzz_serve(args: &[String]) -> Result<(), CliError> {
    use fjs_cli::fuzz::{run_fuzz_serve, FuzzServeOptions};
    use fjs_cli::loadgen::DriveTarget;

    let mut args = args.to_vec();
    let parse_num = |flag: &str, v: String| -> Result<u64, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(Some(format!("{flag}: '{v}' is not a number"))))
    };
    let mut opts = FuzzServeOptions::default();
    if let Some(sock) = take_flag_value(&mut args, "--socket")? {
        #[cfg(unix)]
        opts.targets.push(DriveTarget::Unix(sock.into()));
        #[cfg(not(unix))]
        {
            let _ = sock;
            return Err(CliError::Runtime(
                "fuzz-serve: --socket needs unix domain sockets".into(),
            ));
        }
    }
    if let Some(addr) = take_flag_value(&mut args, "--tcp")? {
        opts.targets.push(DriveTarget::Tcp(addr));
    }
    if let Some(v) = take_flag_value(&mut args, "--seed")? {
        opts.seed = parse_num("--seed", v)?;
    }
    if let Some(v) = take_flag_value(&mut args, "--connections")? {
        let n = parse_num("--connections", v)? as usize;
        if n == 0 {
            return Err(CliError::Usage(Some(
                "--connections must be at least 1".into(),
            )));
        }
        opts.connections = n;
    }
    if let Some(v) = take_flag_value(&mut args, "--frames")? {
        opts.frames = parse_num("--frames", v)?;
    }
    if let Some(v) = take_flag_value(&mut args, "--scheduler")? {
        opts.scheduler = v;
    }
    if let Some(path) = take_flag_value(&mut args, "--emit-clean")? {
        opts.emit_clean = Some(path.into());
    }
    if let Some(extra) = args.first() {
        return Err(CliError::Usage(Some(format!(
            "fuzz-serve: unexpected argument '{extra}'"
        ))));
    }
    if opts.targets.is_empty() {
        return Err(CliError::Usage(Some(
            "fuzz-serve needs --socket <path> and/or --tcp <addr>".into(),
        )));
    }
    let report = run_fuzz_serve(&opts).map_err(CliError::Runtime)?;
    println!("{report}");
    if !report.healthy() {
        return Err(CliError::Runtime(
            "fuzz-serve: daemon unhealthy after chaos (see report above)".into(),
        ));
    }
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> Result<(), CliError> {
    use fjs_cli::loadgen::{emit_script, LoadgenOptions};

    let mut args = args.to_vec();
    let parse_num = |flag: &str, v: String| -> Result<u64, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(Some(format!("{flag}: '{v}' is not a number"))))
    };
    let parse_f64 = |flag: &str, v: String| -> Result<f64, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(Some(format!("{flag}: '{v}' is not a number"))))
    };
    let mut opts = LoadgenOptions::default();
    if let Some(v) = take_flag_value(&mut args, "--sessions")? {
        opts.sessions = parse_num("--sessions", v)? as usize;
    }
    if let Some(v) = take_flag_value(&mut args, "--jobs")? {
        opts.jobs = parse_num("--jobs", v)? as usize;
    }
    if let Some(v) = take_flag_value(&mut args, "--rate")? {
        opts.rate = parse_f64("--rate", v)?;
    }
    if let Some(v) = take_flag_value(&mut args, "--seed")? {
        opts.seed = parse_num("--seed", v)?;
    }
    if let Some(v) = take_flag_value(&mut args, "--scheduler")? {
        opts.scheduler = v;
    }
    if let Some(v) = take_flag_value(&mut args, "--mean-length")? {
        opts.mean_length = parse_f64("--mean-length", v)?;
    }
    if let Some(v) = take_flag_value(&mut args, "--laxity")? {
        opts.laxity = parse_f64("--laxity", v)?;
    }
    if let Some(v) = take_flag_value(&mut args, "--sid-prefix")? {
        opts.sid_prefix = v;
    }
    let misbehave = match take_flag_value(&mut args, "--misbehave")? {
        Some(v) => Some(fjs_cli::fuzz::Misbehave::parse(&v).ok_or_else(|| {
            CliError::Usage(Some(format!(
                "--misbehave: '{v}' is not a mode \
                 (torn, garbage, giant, partial, disconnect, slowloris)"
            )))
        })?),
        None => None,
    };
    let emit = take_flag_value(&mut args, "--emit")?;
    let socket = take_flag_value(&mut args, "--socket")?;
    let tcp = take_flag_value(&mut args, "--tcp")?;
    let json = take_flag_value(&mut args, "--json")?;
    let concurrency = match take_flag_value(&mut args, "--concurrency")? {
        Some(v) => {
            let k = parse_num("--concurrency", v)? as usize;
            if k == 0 {
                return Err(CliError::Usage(Some(
                    "--concurrency must be at least 1".into(),
                )));
            }
            k
        }
        None => 1,
    };
    if let Some(extra) = args.first() {
        return Err(CliError::Usage(Some(format!(
            "loadgen: unexpected argument '{extra}'"
        ))));
    }

    if let Some(path) = emit {
        let script = emit_script(&opts);
        if path == "-" {
            print!("{script}");
        } else {
            std::fs::write(&path, &script)
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            eprintln!(
                "loadgen: wrote {} line(s) to {path} (seed {})",
                script.lines().count(),
                opts.seed
            );
        }
        return Ok(());
    }

    let target = match (socket, tcp) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(Some(
                "loadgen: --socket and --tcp are mutually exclusive".into(),
            )));
        }
        (Some(sock), None) => {
            #[cfg(unix)]
            {
                Some(fjs_cli::loadgen::DriveTarget::Unix(sock.into()))
            }
            #[cfg(not(unix))]
            {
                let _ = sock;
                return Err(CliError::Runtime(
                    "loadgen: --socket needs unix domain sockets".into(),
                ));
            }
        }
        (None, Some(addr)) => Some(fjs_cli::loadgen::DriveTarget::Tcp(addr)),
        (None, None) => None,
    };

    if let Some(target) = target {
        if let Some(mode) = misbehave {
            let line =
                fjs_cli::fuzz::drive_misbehave(&target, &opts, mode).map_err(CliError::Runtime)?;
            println!("{line}");
            return Ok(());
        }
        let report =
            fjs_cli::loadgen::drive(&target, &opts, concurrency).map_err(CliError::Runtime)?;
        println!("{report}");
        if let Some(json_path) = json {
            let text = report.to_benchjson(&fjs_cli::bench::git_describe());
            std::fs::write(&json_path, text)
                .map_err(|e| CliError::Runtime(format!("cannot write {json_path}: {e}")))?;
            eprintln!("loadgen: wrote {json_path}");
        }
        return Ok(());
    }

    Err(CliError::Usage(Some(
        "loadgen needs --emit <file|->, --socket <path> or --tcp <addr>".into(),
    )))
}

fn real_main(args: &[String]) -> Result<(), CliError> {
    if args.is_empty() {
        return Err(CliError::usage());
    }
    let cmd = args[0].as_str();
    let full = args.iter().any(|a| a == "--full");
    let profile = if full { Profile::Full } else { Profile::Quick };
    let csv_dir = match args.iter().position(|a| a == "--csv") {
        Some(i) => match args.get(i + 1) {
            Some(dir) => Some(dir.clone()),
            None => return Err(CliError::Usage(Some("--csv needs a directory".into()))),
        },
        None => None,
    };

    match cmd {
        "gantt" => cmd_gantt(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "chaos" => cmd_chaos(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "bench-diff" => cmd_bench_diff(&args[1..]),
        "conform" => cmd_conform(&args[1..]),
        "soak" => cmd_soak(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "loadgen" => cmd_loadgen(&args[1..]),
        "fuzz-serve" => cmd_fuzz_serve(&args[1..]),
        "list" => {
            for e in all() {
                println!("{:4}  {}", e.id, e.title);
            }
            Ok(())
        }
        "all" => {
            for e in all() {
                run_one(&e, profile, csv_dir.as_deref())?;
            }
            Ok(())
        }
        id => match by_id(id) {
            Some(e) => run_one(&e, profile, csv_dir.as_deref()),
            None => Err(CliError::usage()),
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match real_main(&args) {
        Ok(()) => {}
        Err(CliError::Usage(msg)) => {
            if let Some(msg) = msg {
                eprintln!("{msg}");
            }
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}

fn run_one(e: &Experiment, profile: Profile, csv_dir: Option<&str>) -> Result<(), CliError> {
    eprintln!("==> {} — {} [{:?}]", e.id, e.title, profile);
    let start = Instant::now();
    let tables = (e.run)(profile);
    for (i, t) in tables.iter().enumerate() {
        println!("{}", t.render());
        if let Some(dir) = csv_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| CliError::Runtime(format!("cannot create {dir}: {e}")))?;
            let path = format!("{dir}/{}-{}.csv", e.id, i);
            let mut f = std::fs::File::create(&path)
                .map_err(|e| CliError::Runtime(format!("cannot create {path}: {e}")))?;
            f.write_all(t.to_csv().as_bytes())
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            eprintln!("    wrote {path}");
        }
    }
    eprintln!("<== {} done in {:.2}s", e.id, start.elapsed().as_secs_f64());
    Ok(())
}
