//! The `fjs` experiment runner.
//!
//! ```text
//! fjs list                 # show the experiment registry
//! fjs e3                   # run one experiment (quick profile)
//! fjs e3 --full            # full parameter grid
//! fjs all --full           # everything (regenerates EXPERIMENTS.md data)
//! fjs e5 --csv out/        # additionally write each table as CSV
//! fjs gantt batch+         # visualize a scheduler on a demo workload
//! fjs trace jobs.csv       # run every scheduler on your own CSV trace
//! fjs audit profit         # run a scheduler and audit it against its rules
//! ```

use fjs_cli::experiments::{all, by_id, Experiment, Profile};
use std::io::Write as _;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: fjs <list | all | e1..e13> [--full] [--csv <dir>]\n\
         \u{20}      fjs gantt [scheduler] [seed]\n\
         \u{20}      fjs trace <file.csv>\n\
         \u{20}      fjs audit <batch|batch+|profit> [seed]\n\
         Reproduces the figures/theorems of Ren & Tang, SPAA 2017 (see DESIGN.md)."
    );
    std::process::exit(2);
}

fn pick_scheduler(name: &str) -> fjs_schedulers::SchedulerKind {
    use fjs_schedulers::SchedulerKind as K;
    match name.to_ascii_lowercase().as_str() {
        "eager" => K::Eager,
        "lazy" => K::Lazy,
        "batch" => K::Batch,
        "batch+" | "batchplus" => K::BatchPlus,
        "cdb" => K::cdb_optimal(),
        "profit" => K::profit_optimal(),
        "doubler" => K::Doubler { c: 1.0 },
        "random" => K::RandomStart { seed: 1 },
        other => {
            eprintln!("unknown scheduler '{other}' (try eager/lazy/batch/batch+/cdb/profit/doubler/random)");
            std::process::exit(2);
        }
    }
}

fn cmd_gantt(args: &[String]) {
    let kind = pick_scheduler(args.first().map(String::as_str).unwrap_or("batch+"));
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let inst = fjs_workloads::Scenario::BurstyAnalytics.generate(24, seed);
    let out = kind.run_on(&inst);
    let metrics = fjs_core::metrics::schedule_metrics(&out.instance, &out.schedule);
    println!("{} on bursty-analytics (24 jobs, seed {seed}):\n", kind.label());
    println!(
        "{}",
        fjs_analysis::render_gantt(
            &out.instance,
            &out.schedule,
            fjs_analysis::GanttOptions::default()
        )
    );
    println!(
        "span = {:.2}  peak concurrency = {}  mean concurrency = {:.2}  laxity used = {:.0}%",
        metrics.span.get(),
        metrics.peak_concurrency,
        metrics.mean_concurrency,
        100.0 * metrics.laxity_utilization
    );
}

fn cmd_audit(args: &[String]) {
    use fjs_core::sim::{run_static, Clairvoyance};
    use fjs_schedulers::FlagRecorder;
    let which = args.first().map(String::as_str).unwrap_or("batch+");
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let inst = fjs_workloads::Scenario::CloudBatch.generate(300, seed);
    let verdict = match which {
        "batch" => {
            let mut s = fjs_schedulers::Batch::new();
            let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut s);
            fjs_schedulers::audit_batch(&out.instance, &out.schedule, &s.flag_jobs())
                .map(|()| (out.span, s.flag_jobs().len()))
        }
        "batch+" | "batchplus" => {
            let mut s = fjs_schedulers::BatchPlus::new();
            let out = run_static(&inst, Clairvoyance::NonClairvoyant, &mut s);
            fjs_schedulers::audit_batch_plus(&out.instance, &out.schedule, &s.flag_jobs())
                .map(|()| (out.span, s.flag_jobs().len()))
        }
        "profit" => {
            let mut s = fjs_schedulers::Profit::optimal();
            let out = run_static(&inst, Clairvoyance::Clairvoyant, &mut s);
            fjs_schedulers::audit_profit(
                &out.instance,
                &out.schedule,
                &s.flag_jobs(),
                fjs_schedulers::OPTIMAL_K,
            )
            .map(|()| (out.span, s.flag_jobs().len()))
        }
        other => {
            eprintln!("cannot audit '{other}' (try batch, batch+, profit)");
            std::process::exit(2);
        }
    };
    match verdict {
        Ok((span, flags)) => println!(
            "audit PASSED: {which} on cloud-batch (300 jobs, seed {seed}) — \
             span {span}, {flags} flag jobs, every start justified by the paper's rules"
        ),
        Err(e) => {
            eprintln!("audit FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_trace(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let trace = fjs_workloads::parse_trace(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    let inst = trace.instance;
    let lb = fjs_opt::best_lower_bound(&inst).get();
    let stats = fjs_workloads::workload_stats(&inst);
    println!(
        "{path}: {} jobs, μ = {:.2}, mean laxity/length = {:.2}, {:.0}% rigid, \
         load = {:.2}, OPT span ≥ {lb:.3}\n",
        stats.n,
        stats.mu,
        stats.mean_laxity_ratio,
        100.0 * stats.rigid_fraction,
        stats.load,
    );
    let mut table = fjs_analysis::Table::new(
        "scheduler comparison",
        &["scheduler", "span", "span/OPT-LB", "peak concurrency"],
    );
    for kind in fjs_schedulers::SchedulerKind::full_set() {
        let out = kind.run_on(&inst);
        let m = fjs_core::metrics::schedule_metrics(&out.instance, &out.schedule);
        table.push_row(vec![
            kind.label(),
            format!("{:.3}", out.span.get()),
            format!("{:.3}", out.span.get() / lb),
            format!("{}", m.peak_concurrency),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].as_str();
    let full = args.iter().any(|a| a == "--full");
    let profile = if full { Profile::Full } else { Profile::Quick };
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()));

    match cmd {
        "gantt" => {
            cmd_gantt(&args[1..]);
        }
        "trace" => {
            cmd_trace(&args[1..]);
        }
        "audit" => {
            cmd_audit(&args[1..]);
        }
        "list" => {
            for e in all() {
                println!("{:4}  {}", e.id, e.title);
            }
        }
        "all" => {
            for e in all() {
                run_one(&e, profile, csv_dir.as_deref());
            }
        }
        id => match by_id(id) {
            Some(e) => run_one(&e, profile, csv_dir.as_deref()),
            None => usage(),
        },
    }
}

fn run_one(e: &Experiment, profile: Profile, csv_dir: Option<&str>) {
    eprintln!("==> {} — {} [{:?}]", e.id, e.title, profile);
    let start = Instant::now();
    let tables = (e.run)(profile);
    for (i, t) in tables.iter().enumerate() {
        println!("{}", t.render());
        if let Some(dir) = csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}-{}.csv", e.id, i);
            let mut f = std::fs::File::create(&path).expect("create csv file");
            f.write_all(t.to_csv().as_bytes()).expect("write csv");
            eprintln!("    wrote {path}");
        }
    }
    eprintln!("<== {} done in {:.2}s", e.id, start.elapsed().as_secs_f64());
}
