//! `fjs serve` — a resident scheduling daemon.
//!
//! Multiplexes many concurrent scheduling sessions (one [`Session`] each,
//! built from the scheduler
//! registry) over a line protocol ([`protocol`]) read from a file, stdin
//! or a unix socket. Decisions stream out incrementally — `start`/`done`
//! deltas plus a running span — and full history is never materialized:
//! per-session state is O(pending jobs) thanks to the span accountant and
//! completed-prefix compaction inside the service layer.
//!
//! Robustness properties:
//!
//! - **Isolation** — a panicking or hung scheduler poisons only its own
//!   session (typed [`SessionVerdict`](fjs_core::service::SessionVerdict));
//!   every other session keeps its
//!   byte-identical decision stream.
//! - **Backpressure** — `--max-sessions` bounds resident sessions and
//!   `--max-pending` bounds per-session resident jobs; excess load is shed
//!   with a structured `busy` reply rather than absorbed.
//! - **Crash safety** — admitted requests are appended to a
//!   [`ServeJournal`]; after `SIGKILL`, `--resume` replays the journal and
//!   re-reads the input past the last journaled line, reproducing the
//!   decision log byte for byte.
//! - **Graceful drain** — `SIGINT`/`SIGTERM` stop admission, close every
//!   session, flush all deltas and exit 0.
//! - **Scale-out** — `--workers N` shards sessions across a resident
//!   worker pool ([`dispatch`]) with a sequence-numbered merge that keeps
//!   the decision log and journal byte-identical to a single-threaded
//!   run; the socket frontends ([`net`]) serve many connections
//!   concurrently (unix and TCP) and survive per-connection failures.

pub mod dispatch;
pub mod net;
pub mod protocol;

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

use fjs_core::service::{
    tenant_of, BreakerConfig, OpenDecision, ServeEvent, ServeJournal, Session, SessionError,
    TenantBreakers, TenantQuotas, TenantShedCause,
};
use fjs_core::supervise::{PoisonMode, PoisonedScheduler, DEFAULT_WATCHDOG_EVENTS};
use fjs_core::time::{dur, t};
use fjs_schedulers::SchedulerKind;
use fjs_workloads::{DeadLetter, Quarantine};

use crate::soak::stop_requested;
use protocol::{parse_request, Request};

/// Default cap on concurrently open sessions.
pub const DEFAULT_MAX_SESSIONS: usize = 64;

/// Default cap on resident (pending + running) jobs per session.
pub const DEFAULT_MAX_PENDING: usize = 4096;

/// Default hard cap on one protocol frame (bytes, including the newline).
/// A connection that exceeds it gets `err line-too-long` and is dropped —
/// the reader never accumulates more than this per line.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 8192;

/// Default bounded depth of each connection's reply (writer) queue. A
/// client that stops draining replies fills it and is disconnected as a
/// slow client instead of growing daemon memory.
pub const DEFAULT_WRITER_QUEUE: usize = 256;

/// Tunables for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Cap on concurrently open sessions; `open` beyond it is shed `busy`.
    pub max_sessions: usize,
    /// Cap on resident (pending + running) jobs per session; `job` beyond
    /// it is shed `busy`. With a worker pool this also bounds the global
    /// dispatch window (requests in flight across all workers).
    pub max_pending: usize,
    /// Watchdog event budget per session (contains hung schedulers).
    pub watchdog_events: usize,
    /// What to do with malformed protocol lines.
    pub quarantine: Quarantine,
    /// Journal fsync cadence (records between `fsync` calls).
    pub checkpoint_every: usize,
    /// Artificial per-request delay in milliseconds — a test hook so
    /// kill/resume tests can reliably interrupt a run mid-stream.
    pub throttle_ms: u64,
    /// Session worker threads. `1` keeps the single-threaded [`Server`];
    /// above that, sessions shard across a
    /// [`SessionPool`](fjs_core::service::SessionPool) by stable *tenant*
    /// hash (so the governor's tenant quotas stay exact).
    pub workers: usize,
    /// Cap on concurrently open sessions per tenant (sid prefix before
    /// the first `.`); `0` disables. Excess `open`s shed `busy`.
    pub tenant_max_sessions: usize,
    /// Per-tenant resident-job and admitted-byte quotas (`0` = off).
    pub tenant_quotas: TenantQuotas,
    /// Tenant circuit-breaker tuning (threshold `0` disables).
    pub breaker: BreakerConfig,
    /// Hard cap on one protocol frame in bytes (socket frontends).
    pub max_frame_bytes: usize,
    /// Bounded per-connection writer-queue depth (socket frontends).
    pub writer_queue: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_sessions: DEFAULT_MAX_SESSIONS,
            max_pending: DEFAULT_MAX_PENDING,
            watchdog_events: DEFAULT_WATCHDOG_EVENTS,
            quarantine: Quarantine::DeadLetter,
            checkpoint_every: fjs_core::service::DEFAULT_SYNC_EVERY,
            throttle_ms: 0,
            workers: 1,
            tenant_max_sessions: 0,
            tenant_quotas: TenantQuotas::off(),
            breaker: BreakerConfig::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            writer_queue: DEFAULT_WRITER_QUEUE,
        }
    }
}

/// Where decision-log lines go.
pub enum Sink {
    /// Discard.
    Null,
    /// Collect in memory (bench / in-process tests).
    Mem(Vec<u8>),
    /// Buffered file.
    File(io::BufWriter<std::fs::File>),
    /// Standard output.
    Stdout(io::Stdout),
}

impl Sink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        match self {
            Sink::Null => Ok(()),
            Sink::Mem(buf) => {
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
                Ok(())
            }
            Sink::File(w) => writeln!(w, "{line}"),
            Sink::Stdout(w) => writeln!(w, "{line}"),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Sink::Null | Sink::Mem(_) => Ok(()),
            Sink::File(w) => w.flush(),
            Sink::Stdout(w) => w.flush(),
        }
    }

    /// The collected bytes of a [`Sink::Mem`] sink.
    pub fn mem(&self) -> Option<&[u8]> {
        match self {
            Sink::Mem(buf) => Some(buf),
            _ => None,
        }
    }
}

/// One resident session plus its serve-side bookkeeping.
struct Slot {
    session: Session,
    jobs: u64,
}

/// End-of-run accounting: admission, shedding, quarantine and the
/// bounded-memory evidence (peak resident records / live span segments
/// across all sessions).
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Physical input lines consumed (including skipped resume prefix).
    pub lines: u64,
    /// Well-formed requests dispatched.
    pub requests: u64,
    /// Jobs admitted into sessions.
    pub jobs: u64,
    /// Requests shed with a `busy` reply (admission control).
    pub shed: u64,
    /// Requests shed by a per-tenant governor quota (session cap,
    /// resident-job quota or byte quota).
    pub tenant_shed: u64,
    /// `open`s refused because the tenant's circuit breaker was open.
    pub breaker_refused: u64,
    /// Times any tenant's circuit breaker tripped (closed → open).
    pub breaker_trips: u64,
    /// Sessions opened.
    pub opened: u64,
    /// Sessions closed (explicitly or by drain).
    pub closed: u64,
    /// Decision-log lines written.
    pub decision_lines: u64,
    /// Malformed lines quarantined (skipped or dead-lettered).
    pub quarantined: usize,
    /// Quarantined lines retained under [`Quarantine::DeadLetter`].
    pub dead: Vec<DeadLetter>,
    /// Peak concurrently open sessions.
    pub peak_sessions: usize,
    /// Peak resident job records in any single session — the O(pending)
    /// memory bound: this stays flat no matter how many jobs stream
    /// through.
    pub peak_retained: usize,
    /// Peak live (unretired) span segments in any single session.
    pub peak_live_segments: usize,
    /// Socket connections accepted over the run.
    pub connections: u64,
    /// Connections dropped by a read/write error (`ECONNRESET`, `EPIPE`,
    /// a client killed mid-line); the daemon keeps serving the rest.
    pub disconnects: u64,
    /// Connections dropped for sending a frame over the byte cap.
    pub oversize_disconnects: u64,
    /// Connections dropped for not draining replies (writer queue full).
    pub slow_disconnects: u64,
    /// Peak depth any connection's writer queue reached.
    pub peak_writer_queue: usize,
    /// Transient `accept()` failures retried instead of treated as fatal.
    pub accept_retries: u64,
    /// Set when a `halt`-policy quarantine or an I/O failure stopped the
    /// stream early.
    pub halted: Option<String>,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve: {} lines, {} requests, {} jobs admitted, {} shed, \
             {} sessions opened, {} closed, {} decision lines",
            self.lines,
            self.requests,
            self.jobs,
            self.shed,
            self.opened,
            self.closed,
            self.decision_lines
        )?;
        writeln!(
            f,
            "serve: peak {} sessions, {} resident records/session, \
             {} live span segments/session",
            self.peak_sessions, self.peak_retained, self.peak_live_segments
        )?;
        if self.connections > 0 || self.disconnects > 0 || self.accept_retries > 0 {
            writeln!(
                f,
                "serve: {} connections, {} dropped by I/O errors, {} accept retries",
                self.connections, self.disconnects, self.accept_retries
            )?;
        }
        if self.tenant_shed > 0 || self.breaker_refused > 0 || self.breaker_trips > 0 {
            writeln!(
                f,
                "serve: governor: {} tenant-quota sheds, {} breaker refusals, {} breaker trips",
                self.tenant_shed, self.breaker_refused, self.breaker_trips
            )?;
        }
        if self.oversize_disconnects > 0 || self.slow_disconnects > 0 {
            writeln!(
                f,
                "serve: net: {} oversize disconnects, {} slow clients dropped, \
                 peak writer queue {}",
                self.oversize_disconnects, self.slow_disconnects, self.peak_writer_queue
            )?;
        }
        if self.quarantined > 0 {
            writeln!(f, "serve: {} malformed lines quarantined", self.quarantined)?;
        }
        for d in &self.dead {
            writeln!(f, "serve: dead-letter {d}")?;
        }
        if let Some(why) = &self.halted {
            writeln!(f, "serve: halted: {why}")?;
        }
        Ok(())
    }
}

impl ServeSummary {
    /// One-line schema-v1 JSON rendering (the `--stats-jsonl` record),
    /// flat and append-friendly like the bench/journal line grammars.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"v\":1,\"kind\":\"serve-summary\",\"lines\":{},\"requests\":{},\
             \"jobs\":{},\"shed\":{},\"tenant_shed\":{},\"breaker_refused\":{},\
             \"breaker_trips\":{},\"opened\":{},\"closed\":{},\
             \"decision_lines\":{},\"quarantined\":{},\"peak_sessions\":{},\
             \"peak_retained\":{},\"peak_live_segments\":{},\"connections\":{},\
             \"disconnects\":{},\"oversize_disconnects\":{},\
             \"slow_disconnects\":{},\"peak_writer_queue\":{},\
             \"accept_retries\":{}}}",
            self.lines,
            self.requests,
            self.jobs,
            self.shed,
            self.tenant_shed,
            self.breaker_refused,
            self.breaker_trips,
            self.opened,
            self.closed,
            self.decision_lines,
            self.quarantined,
            self.peak_sessions,
            self.peak_retained,
            self.peak_live_segments,
            self.connections,
            self.disconnects,
            self.oversize_disconnects,
            self.slow_disconnects,
            self.peak_writer_queue,
            self.accept_retries,
        )
    }
}

/// Reply and decision-log line formats, shared verbatim by the serial
/// [`Server`] and the pooled [`dispatch::PooledServer`] so the two
/// backends are byte-identical by construction, not by convention.
pub(crate) mod wire {
    use fjs_core::job::JobId;
    use fjs_core::service::{Decision, SessionError, SessionVerdict, TenantShedCause};
    use fjs_core::time::Dur;

    pub fn open_ok(sid: &str, name: &str) -> String {
        format!("ok open {sid} scheduler={name}")
    }
    pub fn open_err(sid: &str, e: &str) -> String {
        format!("err open {sid}: {e}")
    }
    pub fn open_busy(sid: &str, sessions: usize, max_sessions: usize) -> String {
        format!("busy open {sid} sessions={sessions} max-sessions={max_sessions}")
    }
    pub fn open_tenant_busy(sid: &str, tenant: &str, sessions: usize, max: usize) -> String {
        format!(
            "busy open {sid} tenant={tenant} tenant-sessions={sessions} max-tenant-sessions={max}"
        )
    }
    pub fn open_breaker(sid: &str, tenant: &str, failures: u32, retry_after: u64) -> String {
        format!(
            "busy open {sid} breaker-open tenant={tenant} failures={failures} \
             retry-after-events={retry_after}"
        )
    }
    pub fn job_ok(sid: &str, id: JobId, span: Dur) -> String {
        format!("ok job {sid} id={id} span={span}")
    }
    pub fn job_busy(sid: &str, resident: usize, max_pending: usize) -> String {
        format!("busy job {sid} pending={resident} max-pending={max_pending}")
    }
    pub fn job_tenant_busy(
        sid: &str,
        tenant: &str,
        cause: TenantShedCause,
        used: u64,
        limit: u64,
    ) -> String {
        let label = cause.label();
        format!("busy job {sid} tenant={tenant} tenant-{label}={used} max-tenant-{label}={limit}")
    }
    pub fn line_too_long(max_frame_bytes: usize) -> String {
        format!("err line-too-long max-frame-bytes={max_frame_bytes}")
    }
    pub fn stats_daemon(s: &super::ServeSummary) -> String {
        format!(
            "ok stats daemon lines={} requests={} jobs={} shed={} tenant-shed={} \
             breaker-refused={} breaker-trips={} oversize={} slow-clients={} \
             peak-writer-queue={}",
            s.lines,
            s.requests,
            s.jobs,
            s.shed,
            s.tenant_shed,
            s.breaker_refused,
            s.breaker_trips,
            s.oversize_disconnects,
            s.slow_disconnects,
            s.peak_writer_queue,
        )
    }
    pub fn job_terminal(sid: &str, v: &SessionVerdict) -> String {
        format!("err job {sid} verdict={}: session is terminal", v.label())
    }
    pub fn job_poisoned(sid: &str, v: &SessionVerdict) -> String {
        format!("err job {sid} verdict={}: {v}", v.label())
    }
    pub fn job_rejected(sid: &str, line: u64, offset: u64, e: &SessionError) -> String {
        format!("err job {sid} line={line} offset={offset}: {e}")
    }
    pub fn no_session(verb: &str, sid: &str) -> String {
        format!("err {verb} {sid}: no such session")
    }
    pub fn close_ok(sid: &str, span: Dur, jobs: u64, verdict: &str) -> String {
        format!("ok close {sid} span={span} jobs={jobs} verdict={verdict}")
    }
    #[allow(clippy::too_many_arguments)]
    pub fn stats_ok(
        sid: &str,
        span: Dur,
        pending: usize,
        running: usize,
        retained: usize,
        peak_retained: usize,
        events: usize,
    ) -> String {
        format!(
            "ok stats {sid} span={span} pending={pending} running={running} \
             retained={retained} peak-retained={peak_retained} events={events}"
        )
    }
    pub fn decision_line(sid: &str, d: &Decision) -> String {
        format!("{sid} {d}")
    }
    pub fn close_line(sid: &str, span: Dur, verdict_label: &str) -> String {
        format!("{sid} close span={span} verdict={verdict_label}")
    }
}

/// The resident daemon core: protocol dispatch, session multiplexing,
/// admission control, journaling and decision-log emission. Frontends
/// ([`run_stream`], [`net::run_connections`]) feed it one line at a time.
pub struct Server {
    opts: ServeOptions,
    sessions: BTreeMap<String, Slot>,
    journal: Option<ServeJournal>,
    log: Sink,
    line_no: u64,
    /// Input lines `<= cursor` were already replayed from the journal and
    /// are skipped on re-read.
    cursor: u64,
    replaying: bool,
    summary: ServeSummary,
    breakers: TenantBreakers,
}

impl Server {
    /// Creates a server writing decisions to `log`, journaling admitted
    /// requests to `journal` (if any).
    pub fn new(opts: ServeOptions, log: Sink, journal: Option<ServeJournal>) -> Server {
        let breakers = TenantBreakers::new(opts.breaker);
        Server {
            opts,
            sessions: BTreeMap::new(),
            journal,
            log,
            line_no: 0,
            cursor: 0,
            replaying: false,
            summary: ServeSummary::default(),
            breakers,
        }
    }

    /// Replays journal events recorded by a previous (killed) run: rebuilds
    /// every session to its exact pre-crash state, re-emitting the same
    /// decision-log lines, then arranges for input lines at or before the
    /// last journaled line to be skipped.
    pub fn resume(&mut self, events: &[ServeEvent]) -> Result<(), String> {
        self.replaying = true;
        for ev in events {
            match ev {
                ServeEvent::Open {
                    session, scheduler, ..
                } => {
                    // Journaled opens were all admitted; re-running the
                    // breaker check replays its half-open probe marking
                    // (it admits again by determinism).
                    let _ = self.breakers.admit_open(session);
                    self.apply_open(session, scheduler)
                        .map_err(|e| format!("resume: replaying open {session}: {e}"))?;
                }
                ServeEvent::Job {
                    session,
                    arrival,
                    deadline,
                    length,
                    ..
                } => {
                    // The journal only holds admitted offers; the replayed
                    // result (including a poisoning panic) matches the
                    // original run by the determinism contract.
                    let _ = self.apply_job(session, *arrival, *deadline, *length);
                }
                ServeEvent::Close { session, .. } => {
                    let _ = self.apply_close(session);
                }
            }
            self.cursor = self.cursor.max(ev.line());
        }
        self.replaying = false;
        self.line_no = 0;
        Ok(())
    }

    /// The resume cursor: input lines `<= cursor` are skipped.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// `true` once the stream must stop (halt-policy quarantine or fatal
    /// I/O error); frontends poll this after every line.
    pub fn halted(&self) -> bool {
        self.summary.halted.is_some()
    }

    /// Number of currently open sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    fn journal_append(&mut self, ev: &ServeEvent) -> Result<(), String> {
        if self.replaying {
            return Ok(());
        }
        if let Some(j) = self.journal.as_mut() {
            j.append(ev).map_err(|e| format!("journal: {e}"))?;
        }
        Ok(())
    }

    fn log_line(&mut self, line: &str) -> Result<(), String> {
        self.log
            .write_line(line)
            .map_err(|e| format!("decision log: {e}"))?;
        self.summary.decision_lines += 1;
        Ok(())
    }

    fn note_peaks(&mut self, session: &Session) {
        let s = &mut self.summary;
        s.peak_retained = s.peak_retained.max(session.peak_retained_records());
        s.peak_live_segments = s.peak_live_segments.max(session.peak_live_segments());
    }

    /// Drains `sid`'s freshly produced decisions into the log.
    fn flush_decisions(&mut self, sid: &str) -> Result<(), String> {
        let Some(slot) = self.sessions.get_mut(sid) else {
            return Ok(());
        };
        let decisions = slot.session.take_decisions();
        let mut lines = Vec::with_capacity(decisions.len());
        for d in &decisions {
            lines.push(wire::decision_line(sid, d));
        }
        for line in &lines {
            self.log_line(line)?;
        }
        if let Some(slot) = self.sessions.get(sid) {
            let peak_retained = slot.session.peak_retained_records();
            let peak_live = slot.session.peak_live_segments();
            let s = &mut self.summary;
            s.peak_retained = s.peak_retained.max(peak_retained);
            s.peak_live_segments = s.peak_live_segments.max(peak_live);
        }
        Ok(())
    }

    fn apply_open(&mut self, sid: &str, spec: &str) -> Result<String, String> {
        if self.sessions.contains_key(sid) {
            return Err("session already open".into());
        }
        let session = build_session(spec, self.opts.watchdog_events)?;
        let name = session.scheduler_name();
        self.sessions
            .insert(sid.to_string(), Slot { session, jobs: 0 });
        self.summary.opened += 1;
        self.summary.peak_sessions = self.summary.peak_sessions.max(self.sessions.len());
        self.breakers.note_event();
        Ok(name)
    }

    fn apply_job(
        &mut self,
        sid: &str,
        arrival: f64,
        deadline: f64,
        length: f64,
    ) -> Result<Result<fjs_core::job::JobId, SessionError>, String> {
        let Some(slot) = self.sessions.get_mut(sid) else {
            return Err("no such session".into());
        };
        let offer = fjs_core::service::JobOffer {
            arrival: t(arrival),
            deadline: t(deadline),
            length: dur(length),
        };
        let outcome = slot.session.offer(offer);
        if outcome.is_ok() {
            slot.jobs += 1;
        }
        // Tick the breaker clock only for journal-equivalent outcomes
        // (admitted, or admitted-and-poisoned) so replay ticks match.
        if matches!(&outcome, Ok(_) | Err(SessionError::Terminal(_))) {
            self.breakers.note_event();
        }
        self.flush_decisions(sid)?;
        Ok(outcome)
    }

    fn apply_close(&mut self, sid: &str) -> Result<(String, fjs_core::time::Dur, u64), String> {
        let Some(mut slot) = self.sessions.remove(sid) else {
            return Err("no such session".into());
        };
        let verdict = slot.session.close();
        let span = slot.session.span();
        let decisions = slot.session.take_decisions();
        for d in &decisions {
            let line = wire::decision_line(sid, d);
            self.log_line(&line)?;
        }
        self.note_peaks(&slot.session);
        self.log_line(&wire::close_line(sid, span, verdict.label()))?;
        self.summary.closed += 1;
        self.breakers.note_close(sid, verdict.is_completed());
        self.summary.breaker_trips = self.breakers.trips();
        Ok((verdict.label().to_string(), span, slot.jobs))
    }

    /// Handles one raw input line starting at byte `offset` in its stream.
    ///
    /// Returns the reply to send back, or `None` for blank/comment lines
    /// and lines skipped by the resume cursor. `offset` and the internal
    /// line counter attribute quarantined lines exactly (same provenance
    /// contract as the batch trace reader's dead letters).
    pub fn handle_line(&mut self, offset: u64, raw: &str) -> Option<String> {
        self.line_no += 1;
        self.summary.lines += 1;
        if self.line_no <= self.cursor {
            return None;
        }
        if self.halted() {
            return Some("err halted".into());
        }
        let raw = raw.trim_end_matches('\n').trim_end_matches('\r');
        let req = match parse_request(raw) {
            Ok(None) => return None,
            Ok(Some(req)) => req,
            Err(reason) => return Some(self.quarantine_line(offset, raw, reason)),
        };
        self.summary.requests += 1;
        let reply = self.dispatch(offset, req);
        match reply {
            Ok(text) => Some(text),
            Err(fatal) => {
                self.summary.halted = Some(fatal.clone());
                Some(format!("err fatal: {fatal}"))
            }
        }
    }

    fn quarantine_line(&mut self, offset: u64, raw: &str, reason: String) -> String {
        let line = self.line_no;
        let reply = format!("err line={line} offset={offset}: {reason}");
        match self.opts.quarantine {
            Quarantine::Halt => {
                self.summary.halted = Some(format!("line {line} (byte {offset}): {reason}"));
            }
            Quarantine::Skip => self.summary.quarantined += 1,
            Quarantine::DeadLetter => {
                self.summary.quarantined += 1;
                self.summary.dead.push(DeadLetter {
                    line: self.line_no as usize,
                    offset,
                    raw: raw.to_string(),
                });
            }
        }
        reply
    }

    /// Dispatches a parsed request. `Ok` is the reply line; `Err` is a
    /// fatal server condition (journal or log I/O failure) that halts the
    /// stream.
    fn dispatch(&mut self, offset: u64, req: Request) -> Result<String, String> {
        let line = self.line_no;
        match req {
            Request::Open { sid, spec } => {
                // Admission order (mirrored exactly by the pooled
                // dispatcher): duplicate → global cap → tenant cap →
                // breaker → spec validation.
                let mut breaker_checked = false;
                if !self.sessions.contains_key(&sid) {
                    if self.sessions.len() >= self.opts.max_sessions {
                        self.summary.shed += 1;
                        return Ok(wire::open_busy(
                            &sid,
                            self.sessions.len(),
                            self.opts.max_sessions,
                        ));
                    }
                    let cap = self.opts.tenant_max_sessions;
                    if cap > 0 {
                        let tenant = tenant_of(&sid);
                        let open = self
                            .sessions
                            .keys()
                            .filter(|k| tenant_of(k) == tenant)
                            .count();
                        if open >= cap {
                            self.summary.tenant_shed += 1;
                            return Ok(wire::open_tenant_busy(&sid, tenant, open, cap));
                        }
                    }
                    breaker_checked = true;
                    if let OpenDecision::Refuse {
                        failures,
                        retry_after,
                    } = self.breakers.admit_open(&sid)
                    {
                        self.summary.breaker_refused += 1;
                        return Ok(wire::open_breaker(
                            &sid,
                            tenant_of(&sid),
                            failures,
                            retry_after,
                        ));
                    }
                }
                match self.apply_open(&sid, &spec) {
                    Ok(name) => {
                        self.journal_append(&ServeEvent::Open {
                            session: sid.clone(),
                            scheduler: spec,
                            line,
                        })?;
                        Ok(wire::open_ok(&sid, &name))
                    }
                    Err(e) => {
                        // A failed open is not journaled; undo the
                        // half-open probe reservation (if this sid took
                        // it) so the probe slot is not leaked.
                        if breaker_checked {
                            self.breakers.abort_open(&sid);
                        }
                        Ok(wire::open_err(&sid, &e))
                    }
                }
            }
            Request::Job {
                sid,
                arrival,
                deadline,
                length,
            } => {
                match self.sessions.get(&sid) {
                    None => return Ok(wire::no_session("job", &sid)),
                    Some(slot) => {
                        if let Some(v) = slot.session.verdict() {
                            return Ok(wire::job_terminal(&sid, v));
                        }
                        let resident = slot.session.num_pending() + slot.session.num_running();
                        if resident >= self.opts.max_pending {
                            self.summary.shed += 1;
                            return Ok(wire::job_busy(&sid, resident, self.opts.max_pending));
                        }
                    }
                }
                // Tenant quota checks, in the same order as the pool
                // worker's so serial and pooled replies match bytewise.
                let q = self.opts.tenant_quotas;
                if q.enabled() {
                    let tenant = tenant_of(&sid).to_string();
                    let mut t_resident = 0usize;
                    let mut t_bytes = 0u64;
                    for (k, slot) in &self.sessions {
                        if tenant_of(k) == tenant {
                            t_resident += slot.session.num_pending() + slot.session.num_running();
                            t_bytes += slot.session.admitted_payload_bytes();
                        }
                    }
                    if q.max_pending > 0 && t_resident >= q.max_pending {
                        self.summary.tenant_shed += 1;
                        return Ok(wire::job_tenant_busy(
                            &sid,
                            &tenant,
                            TenantShedCause::Pending,
                            t_resident as u64,
                            q.max_pending as u64,
                        ));
                    }
                    let offer = fjs_core::service::JobOffer {
                        arrival: t(arrival),
                        deadline: t(deadline),
                        length: dur(length),
                    };
                    if q.max_bytes > 0 && t_bytes + offer.canonical_bytes() > q.max_bytes {
                        self.summary.tenant_shed += 1;
                        return Ok(wire::job_tenant_busy(
                            &sid,
                            &tenant,
                            TenantShedCause::Bytes,
                            t_bytes,
                            q.max_bytes,
                        ));
                    }
                }
                match self.apply_job(&sid, arrival, deadline, length)? {
                    Ok(id) => {
                        self.journal_append(&ServeEvent::Job {
                            session: sid.clone(),
                            line,
                            arrival,
                            deadline,
                            length,
                        })?;
                        self.summary.jobs += 1;
                        let span = self
                            .sessions
                            .get(&sid)
                            .map(|s| s.session.span())
                            .unwrap_or(fjs_core::time::Dur::ZERO);
                        Ok(wire::job_ok(&sid, id, span))
                    }
                    Err(SessionError::Terminal(v)) => {
                        // This offer itself poisoned the session: the
                        // mutation happened, so it must be journaled for
                        // replay to reproduce the same terminal state.
                        self.journal_append(&ServeEvent::Job {
                            session: sid.clone(),
                            line,
                            arrival,
                            deadline,
                            length,
                        })?;
                        self.summary.jobs += 1;
                        Ok(wire::job_poisoned(&sid, &v))
                    }
                    Err(e) => Ok(wire::job_rejected(&sid, line, offset, &e)),
                }
            }
            Request::Close { sid } => match self.apply_close(&sid) {
                Ok((verdict, span, jobs)) => {
                    self.journal_append(&ServeEvent::Close {
                        session: sid.clone(),
                        line,
                    })?;
                    Ok(wire::close_ok(&sid, span, jobs, &verdict))
                }
                Err(e) => Ok(format!("err close {sid}: {e}")),
            },
            Request::Stats { sid } => match self.sessions.get(&sid) {
                None => Ok(wire::no_session("stats", &sid)),
                Some(slot) => {
                    let s = &slot.session;
                    Ok(wire::stats_ok(
                        &sid,
                        s.span(),
                        s.num_pending(),
                        s.num_running(),
                        s.retained_records(),
                        s.peak_retained_records(),
                        s.stats().events_total,
                    ))
                }
            },
            Request::StatsDaemon => Ok(wire::stats_daemon(&self.summary)),
        }
    }

    /// Graceful drain: closes every remaining session (alphabetical order,
    /// so drains are deterministic), flushes the decision log and syncs
    /// the journal. Called on end-of-input and on `SIGINT`/`SIGTERM`.
    pub fn drain(&mut self) -> Result<(), String> {
        let line = self.line_no;
        let sids: Vec<String> = self.sessions.keys().cloned().collect();
        for sid in sids {
            self.apply_close(&sid)?;
            self.journal_append(&ServeEvent::Close { session: sid, line })?;
        }
        self.log.flush().map_err(|e| format!("decision log: {e}"))?;
        if let Some(j) = self.journal.as_mut() {
            j.sync().map_err(|e| format!("journal: {e}"))?;
        }
        Ok(())
    }

    /// Drains and consumes the server, returning the final accounting and
    /// the decision-log sink (so in-memory logs can be inspected).
    pub fn finish(mut self) -> Result<(ServeSummary, Sink), String> {
        self.drain()?;
        Ok((self.summary, self.log))
    }
}

/// Unified driver over the two server backends, so frontends (file,
/// stdin, sockets) are written once. `Serial` replies synchronously;
/// `Pooled` replies arrive asynchronously through [`Backend::pump`],
/// tagged with the submitting connection and released in per-connection
/// order.
pub enum Backend {
    /// The single-threaded [`Server`] (`--workers 1`, the default).
    /// Both variants are boxed: each embeds its whole session/dispatch
    /// state inline, and the enum is moved around by the frontends.
    Serial(Box<Server>),
    /// The worker-pool dispatcher (`--workers N`).
    Pooled(Box<dispatch::PooledServer>),
}

impl Backend {
    /// Builds the backend selected by `opts.workers`.
    pub fn new(opts: ServeOptions, log: Sink, journal: Option<ServeJournal>) -> Backend {
        if opts.workers <= 1 {
            Backend::Serial(Box::new(Server::new(opts, log, journal)))
        } else {
            Backend::Pooled(Box::new(dispatch::PooledServer::new(opts, log, journal)))
        }
    }

    /// Submits one raw input line from `conn` starting at byte `offset`
    /// in that connection's stream; completed replies (possibly for other
    /// connections) are appended to `out` as `(conn, reply)` pairs.
    pub fn submit(
        &mut self,
        conn: u64,
        offset: u64,
        raw: &str,
        out: &mut Vec<(u64, String)>,
    ) -> Result<(), String> {
        match self {
            Backend::Serial(s) => {
                if let Some(reply) = s.handle_line(offset, raw) {
                    out.push((conn, reply));
                }
                Ok(())
            }
            Backend::Pooled(p) => p.submit(conn, offset, raw, out),
        }
    }

    /// Collects replies that completed since the last call (no-op for the
    /// serial backend, which replies inside [`Backend::submit`]).
    pub fn pump(&mut self, out: &mut Vec<(u64, String)>) -> Result<(), String> {
        match self {
            Backend::Serial(_) => Ok(()),
            Backend::Pooled(p) => p.pump(out),
        }
    }

    /// Blocks until every submitted request has completed and its reply
    /// was appended to `out`. Call before [`Backend::finish`] when the
    /// replies matter (file/stdin frontends).
    pub fn settle(&mut self, out: &mut Vec<(u64, String)>) -> Result<(), String> {
        match self {
            Backend::Serial(_) => Ok(()),
            Backend::Pooled(p) => p.settle(out),
        }
    }

    /// Drops per-connection reply state after a disconnect; undelivered
    /// replies for that connection are discarded.
    pub fn forget_conn(&mut self, conn: u64) {
        if let Backend::Pooled(p) = self {
            p.forget_conn(conn);
        }
    }

    /// See [`Server::resume`].
    pub fn resume(&mut self, events: &[ServeEvent]) -> Result<(), String> {
        match self {
            Backend::Serial(s) => s.resume(events),
            Backend::Pooled(p) => p.resume(events),
        }
    }

    /// See [`Server::cursor`].
    pub fn cursor(&self) -> u64 {
        match self {
            Backend::Serial(s) => s.cursor(),
            Backend::Pooled(p) => p.cursor(),
        }
    }

    /// See [`Server::halted`].
    pub fn halted(&self) -> bool {
        match self {
            Backend::Serial(s) => s.halted(),
            Backend::Pooled(p) => p.halted(),
        }
    }

    /// True while worker results are still outstanding. The serial
    /// backend answers every request synchronously, so it is never busy.
    pub fn busy(&self) -> bool {
        match self {
            Backend::Serial(_) => false,
            Backend::Pooled(p) => p.busy(),
        }
    }

    /// The configured per-request throttle (test hook).
    pub fn throttle_ms(&self) -> u64 {
        match self {
            Backend::Serial(s) => s.opts.throttle_ms,
            Backend::Pooled(p) => p.throttle_ms(),
        }
    }

    /// The frame-length cap the socket frontends enforce per line.
    pub fn max_frame_bytes(&self) -> usize {
        match self {
            Backend::Serial(s) => s.opts.max_frame_bytes,
            Backend::Pooled(p) => p.opts().max_frame_bytes,
        }
    }

    /// The bounded per-connection writer-queue depth.
    pub fn writer_queue(&self) -> usize {
        match self {
            Backend::Serial(s) => s.opts.writer_queue,
            Backend::Pooled(p) => p.opts().writer_queue,
        }
    }

    pub(crate) fn summary_mut(&mut self) -> &mut ServeSummary {
        match self {
            Backend::Serial(s) => &mut s.summary,
            Backend::Pooled(p) => p.summary_mut(),
        }
    }

    /// Drains every session and returns the final accounting and log sink.
    pub fn finish(self) -> Result<(ServeSummary, Sink), String> {
        match self {
            Backend::Serial(s) => s.finish(),
            Backend::Pooled(p) => p.finish(),
        }
    }
}

/// Builds a session from a scheduler spec: a registry short name
/// (`eager`, `batch+`, `cdb`, ...) optionally wrapped as
/// `poison:<panic|hang>:<name>` to inject a misbehaving subject (the
/// supervision test double).
pub(crate) fn build_session(spec: &str, watchdog: usize) -> Result<Session, String> {
    if let Some(rest) = spec.strip_prefix("poison:") {
        let (mode_label, inner) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad poison spec '{spec}' (want poison:<panic|hang>:<name>)"))?;
        let mode = PoisonMode::from_label(mode_label)
            .ok_or_else(|| format!("unknown poison mode '{mode_label}' (want panic|hang)"))?;
        let kind = lookup_kind(inner)?;
        let sched = Box::new(PoisonedScheduler::new(kind.build(), mode));
        return Ok(Session::new(sched, kind.information_model()).with_watchdog(watchdog));
    }
    let kind = lookup_kind(spec)?;
    Ok(Session::new(kind.build(), kind.information_model()).with_watchdog(watchdog))
}

fn lookup_kind(name: &str) -> Result<SchedulerKind, String> {
    let lower = name.to_ascii_lowercase();
    let canonical = if lower == "semi-cdb" {
        "semicdb"
    } else {
        lower.as_str()
    };
    SchedulerKind::from_short_name(canonical).ok_or_else(|| format!("unknown scheduler '{name}'"))
}

/// Installs `SIGINT` + `SIGTERM` handlers that request a graceful drain
/// (same stop flag as `fjs soak`, so either command can be supervised the
/// same way). Non-Unix targets get a no-op; the journal survives a hard
/// kill anyway.
#[cfg(unix)]
#[allow(clippy::fn_to_numeric_cast)] // signal(2) takes the handler as an address
pub fn install_drain_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_term(_signum: i32) {
        crate::soak::request_stop();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_term as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
    }
}

/// No-op on non-Unix targets (see the Unix version).
#[cfg(not(unix))]
pub fn install_drain_handlers() {}

/// Feeds a buffered reader to the backend line by line, writing replies
/// to `replies` (if given) and stopping on end-of-input, a requested stop
/// (signal) or a server halt. Byte offsets are tracked exactly as the
/// batch trace reader does, so quarantine attribution matches. All lines
/// belong to one logical connection, so pooled replies come back in
/// submission order.
pub fn run_stream<R: BufRead>(
    backend: &mut Backend,
    mut src: R,
    mut replies: Option<&mut dyn Write>,
) -> Result<(), String> {
    let mut offset = 0u64;
    let mut buf = String::new();
    let mut out: Vec<(u64, String)> = Vec::new();
    let throttle = backend.throttle_ms();
    loop {
        if stop_requested() || backend.halted() {
            break;
        }
        buf.clear();
        let n = src
            .read_line(&mut buf)
            .map_err(|e| format!("reading input: {e}"))?;
        if n == 0 {
            break;
        }
        let line_offset = offset;
        offset += n as u64;
        if throttle > 0 {
            std::thread::sleep(std::time::Duration::from_millis(throttle));
        }
        backend.submit(0, line_offset, &buf, &mut out)?;
        write_replies(&mut out, &mut replies)?;
    }
    backend.settle(&mut out)?;
    write_replies(&mut out, &mut replies)?;
    Ok(())
}

fn write_replies(
    out: &mut Vec<(u64, String)>,
    replies: &mut Option<&mut dyn Write>,
) -> Result<(), String> {
    if let Some(w) = replies.as_deref_mut() {
        for (_conn, reply) in out.iter() {
            writeln!(w, "{reply}").map_err(|e| format!("writing reply: {e}"))?;
        }
        if !out.is_empty() {
            w.flush().map_err(|e| format!("writing reply: {e}"))?;
        }
    }
    out.clear();
    Ok(())
}

/// Serves the process's stdin, replying on stdout. Reads happen on a
/// helper thread feeding a channel, so a `SIGINT`/`SIGTERM` drain request
/// is honoured within ~100ms even while blocked waiting for input (a
/// blocking `read_line` would swallow the signal until the next line).
pub fn run_stdin(backend: &mut Backend) -> Result<(), String> {
    use std::sync::mpsc;
    use std::time::Duration;

    let (tx, rx) = mpsc::channel::<(u64, String)>();
    std::thread::spawn(move || {
        let stdin = io::stdin();
        let mut src = stdin.lock();
        let mut offset = 0u64;
        let mut buf = String::new();
        loop {
            buf.clear();
            match src.read_line(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if tx.send((offset, buf.clone())).is_err() {
                        break;
                    }
                    offset += n as u64;
                }
            }
        }
    });

    let stdout = io::stdout();
    let mut stdout = stdout.lock();
    let mut replies: Option<&mut dyn Write> = Some(&mut stdout);
    let mut out: Vec<(u64, String)> = Vec::new();
    let throttle = backend.throttle_ms();
    loop {
        if stop_requested() || backend.halted() {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok((offset, line)) => {
                if throttle > 0 {
                    std::thread::sleep(Duration::from_millis(throttle));
                }
                backend.submit(0, offset, &line, &mut out)?;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                backend.pump(&mut out)?;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        write_replies(&mut out, &mut replies)?;
    }
    backend.settle(&mut out)?;
    write_replies(&mut out, &mut replies)?;
    Ok(())
}

/// Outcome of an in-process [`run_script`] call.
pub struct ScriptOutcome {
    /// One reply per non-blank request line, in order.
    pub replies: Vec<String>,
    /// The decision log, as written.
    pub log: String,
    /// Final accounting.
    pub summary: ServeSummary,
}

/// Runs a protocol script through an in-memory server — the entry point
/// used by benches and tests (no files, no sockets, no journal unless the
/// caller wires one in via [`Server`] directly).
pub fn run_script(script: &str, opts: ServeOptions) -> Result<ScriptOutcome, String> {
    let mut server = Server::new(opts, Sink::Mem(Vec::new()), None);
    let mut replies = Vec::new();
    let mut offset = 0u64;
    for line in script.split_inclusive('\n') {
        if let Some(reply) = server.handle_line(offset, line) {
            replies.push(reply);
        }
        offset += line.len() as u64;
        if server.halted() {
            break;
        }
    }
    let (summary, log) = server.finish()?;
    let log = String::from_utf8_lossy(log.mem().unwrap_or_default()).into_owned();
    Ok(ScriptOutcome {
        replies,
        log,
        summary,
    })
}

/// Like [`run_script`] but through whichever backend `opts.workers`
/// selects — the entry point for the pooled bench case and the
/// worker-count determinism tests (which assert the log is byte-identical
/// to [`run_script`]'s).
pub fn run_script_pooled(script: &str, opts: ServeOptions) -> Result<ScriptOutcome, String> {
    let mut backend = Backend::new(opts, Sink::Mem(Vec::new()), None);
    let mut out: Vec<(u64, String)> = Vec::new();
    let mut offset = 0u64;
    for line in script.split_inclusive('\n') {
        backend.submit(0, offset, line, &mut out)?;
        offset += line.len() as u64;
        if backend.halted() {
            break;
        }
    }
    backend.settle(&mut out)?;
    let replies = out.into_iter().map(|(_, reply)| reply).collect();
    let (summary, log) = backend.finish()?;
    let log = String::from_utf8_lossy(log.mem().unwrap_or_default()).into_owned();
    Ok(ScriptOutcome {
        replies,
        log,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fjs_core::supervise::with_quiet_panics;

    fn script_outcome(script: &str) -> ScriptOutcome {
        run_script(script, ServeOptions::default()).expect("script runs")
    }

    #[test]
    fn multiplexes_sessions_and_streams_decisions() {
        let out = script_outcome(
            "# demo\n\
             open a eager\n\
             open b lazy\n\
             job a 0,0,2\n\
             job b 0,5,1\n\
             job a 1,3,1\n\
             stats a\n\
             close a\n\
             close b\n",
        );
        assert!(out.replies[0].starts_with("ok open a scheduler="));
        assert!(out.replies[1].starts_with("ok open b scheduler="));
        assert!(out.replies[2].starts_with("ok job a "));
        assert!(out.replies[5].starts_with("ok stats a "));
        assert!(out.replies[6].starts_with("ok close a "));
        assert_eq!(out.summary.opened, 2);
        assert_eq!(out.summary.closed, 2);
        assert_eq!(out.summary.jobs, 3);
        // Every session's stream appears in the log, prefixed by its sid,
        // and ends with a close line carrying the final span.
        assert!(out.log.lines().any(|l| l.starts_with("a start ")));
        assert!(out.log.lines().any(|l| l.starts_with("b start ")));
        assert!(out.log.lines().any(|l| l.starts_with("a close span=")));
        assert!(out.log.lines().any(|l| l.starts_with("b close span=")));
    }

    #[test]
    fn session_cap_sheds_with_structured_busy() {
        let opts = ServeOptions {
            max_sessions: 1,
            ..ServeOptions::default()
        };
        let out = run_script("open a eager\nopen b eager\nclose a\n", opts).unwrap();
        assert_eq!(out.replies[1], "busy open b sessions=1 max-sessions=1");
        assert_eq!(out.summary.shed, 1);
        assert_eq!(out.summary.opened, 1);
    }

    #[test]
    fn pending_cap_sheds_jobs_but_keeps_session_alive() {
        let opts = ServeOptions {
            max_pending: 2,
            ..ServeOptions::default()
        };
        // The lazy scheduler keeps jobs pending until their deadline, so
        // same-instant offers accumulate residents.
        let out = run_script(
            "open a lazy\n\
             job a 0,100,1\n\
             job a 0,100,1\n\
             job a 0,100,1\n\
             close a\n",
            opts,
        )
        .unwrap();
        assert!(out.replies[1].starts_with("ok job a "));
        assert!(out.replies[2].starts_with("ok job a "));
        assert_eq!(out.replies[3], "busy job a pending=2 max-pending=2");
        assert_eq!(out.summary.shed, 1);
        assert_eq!(out.summary.jobs, 2);
        // The shed job is gone but the session still closes cleanly.
        assert!(out.replies[4].contains("verdict=completed"));
    }

    #[test]
    fn poisoned_session_is_contained_and_neighbours_unaffected() {
        let out = with_quiet_panics(|| {
            script_outcome(
                "open good eager\n\
                 open bad poison:panic:eager\n\
                 job good 0,0,1\n\
                 job bad 0,0,1\n\
                 job bad 1,1,1\n\
                 job good 1,1,1\n\
                 close bad\n\
                 close good\n",
            )
        });
        // The poisoning offer gets a typed verdict in a structured reply...
        assert!(
            out.replies[3].starts_with("err job bad verdict=panicked:"),
            "{}",
            out.replies[3]
        );
        // ...further offers are refused with the terminal verdict...
        assert!(
            out.replies[4].starts_with("err job bad verdict=panicked"),
            "{}",
            out.replies[4]
        );
        // ...and the close line reports it.
        assert!(
            out.replies[6].contains("verdict=panicked"),
            "{}",
            out.replies[6]
        );
        // The healthy neighbour is untouched: same decisions as running alone.
        let alone = script_outcome(
            "open good eager\n\
             job good 0,0,1\n\
             job good 1,1,1\n\
             close good\n",
        );
        let good_lines = |log: &str| {
            log.lines()
                .filter(|l| l.starts_with("good "))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(good_lines(&out.log), good_lines(&alone.log));
    }

    #[test]
    fn hung_scheduler_is_contained_by_the_watchdog() {
        let opts = ServeOptions {
            watchdog_events: 200,
            ..ServeOptions::default()
        };
        let out = run_script(
            "open spin poison:hang:eager\n\
             job spin 0,5,1\n\
             job spin 1,6,1\n\
             close spin\n",
            opts,
        )
        .unwrap();
        assert!(
            out.replies.iter().any(|r| r.contains("verdict=timed-out")),
            "{:?}",
            out.replies
        );
    }

    #[test]
    fn malformed_lines_are_dead_lettered_with_provenance() {
        let script = "open a eager\njob a bogus\njob a 0,5,1\nclose a\n";
        let out = script_outcome(script);
        assert_eq!(out.summary.quarantined, 1);
        assert_eq!(out.summary.dead.len(), 1);
        let d = &out.summary.dead[0];
        assert_eq!((d.line, d.offset), (2, 13));
        assert_eq!(d.raw, "job a bogus");
        assert_eq!(
            d.to_string(),
            "line 2 (byte 13): job a bogus",
            "dead-letter rendering is the golden trace-reader format"
        );
        assert!(out.replies[1].starts_with("err line=2 offset=13: "));
        // The well-formed remainder of the stream still ran.
        assert_eq!(out.summary.jobs, 1);
        assert_eq!(out.summary.closed, 1);
    }

    #[test]
    fn halt_policy_stops_the_stream() {
        let opts = ServeOptions {
            quarantine: Quarantine::Halt,
            ..ServeOptions::default()
        };
        let out = run_script("open a eager\nnonsense\njob a 0,5,1\n", opts).unwrap();
        assert!(out.summary.halted.is_some());
        // Nothing after the halt line was processed.
        assert_eq!(out.summary.jobs, 0);
    }

    #[test]
    fn validation_errors_carry_line_and_offset() {
        let out = script_outcome(
            "open a eager\n\
             job a 0,5,1\n\
             job a 5,9,1\n\
             job a 2,9,1\n\
             close a\n",
        );
        // Arrival regression is a session-level reject attributed to the
        // protocol stream position (line 4 starts at byte 37).
        assert!(
            out.replies[3].starts_with("err job a line=4 offset=37: "),
            "{}",
            out.replies[3]
        );
        assert!(out.replies[3].contains("arrival"), "{}", out.replies[3]);
        // The reject did not damage the session.
        assert!(out.replies[4].contains("verdict=completed"));
    }

    #[test]
    fn resume_replays_to_byte_identical_log() {
        let dir = std::env::temp_dir().join(format!(
            "fjs-serve-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("serve.journal");
        let script = "open a eager\n\
                      open b lazy\n\
                      job a 0,0,2\n\
                      job b 0,4,1\n\
                      job a 1,3,1\n\
                      job b 2,6,2\n\
                      close a\n\
                      close b\n";

        // Reference: one uninterrupted run, journaled.
        let journal = fjs_core::service::ServeJournal::create(&journal_path)
            .unwrap()
            .with_sync_every(1);
        let mut server = Server::new(
            ServeOptions::default(),
            Sink::Mem(Vec::new()),
            Some(journal),
        );
        let mut offset = 0u64;
        for line in script.split_inclusive('\n') {
            server.handle_line(offset, line);
            offset += line.len() as u64;
        }
        let (_, sink) = server.finish().unwrap();
        let reference = String::from_utf8(sink.mem().unwrap().to_vec()).unwrap();

        // Crash simulation: replay the journal as written after only the
        // first 5 protocol lines, then feed the rest of the input past the
        // cursor — the resumed log must equal the reference byte for byte.
        let journal2_path = dir.join("serve2.journal");
        let journal2 = fjs_core::service::ServeJournal::create(&journal2_path)
            .unwrap()
            .with_sync_every(1);
        let mut first = Server::new(ServeOptions::default(), Sink::Null, Some(journal2));
        let mut offset = 0u64;
        for line in script.split_inclusive('\n').take(5) {
            first.handle_line(offset, line);
            offset += line.len() as u64;
        }
        drop(first); // SIGKILL stand-in: no drain, no close events.

        let events = fjs_core::service::ServeJournal::load(&journal2_path).unwrap();
        let mut resumed = Server::new(ServeOptions::default(), Sink::Mem(Vec::new()), None);
        resumed.resume(&events).unwrap();
        assert_eq!(resumed.cursor(), 5);
        let mut offset = 0u64;
        for line in script.split_inclusive('\n') {
            resumed.handle_line(offset, line);
            offset += line.len() as u64;
        }
        let (_, sink) = resumed.finish().unwrap();
        let resumed_log = String::from_utf8(sink.mem().unwrap().to_vec()).unwrap();
        assert_eq!(resumed_log, reference, "resume must be byte-identical");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn build_session_understands_specs() {
        assert!(build_session("eager", 1000).is_ok());
        assert!(build_session("batch+", 1000).is_ok());
        assert!(build_session("poison:panic:eager", 1000).is_ok());
        assert!(build_session("poison:hang:lazy", 1000).is_ok());
        assert!(build_session("poison:frogs:eager", 1000).is_err());
        assert!(build_session("nonesuch", 1000).is_err());
    }

    #[test]
    fn tenant_session_cap_sheds_with_structured_busy() {
        let opts = ServeOptions {
            tenant_max_sessions: 1,
            ..ServeOptions::default()
        };
        let out = run_script(
            "open t.a eager\nopen t.b eager\nopen u.a eager\nclose t.a\nclose u.a\n",
            opts,
        )
        .unwrap();
        assert!(out.replies[0].starts_with("ok open t.a "));
        assert_eq!(
            out.replies[1],
            "busy open t.b tenant=t tenant-sessions=1 max-tenant-sessions=1"
        );
        // Another tenant is unaffected by t's cap.
        assert!(out.replies[2].starts_with("ok open u.a "));
        assert_eq!(out.summary.tenant_shed, 1);
        assert_eq!(out.summary.opened, 2);
    }

    #[test]
    fn tenant_pending_quota_spans_sibling_sessions() {
        let opts = ServeOptions {
            tenant_quotas: fjs_core::service::TenantQuotas {
                max_pending: 1,
                max_bytes: 0,
            },
            ..ServeOptions::default()
        };
        // Lazy keeps same-instant jobs resident, so t.a's admitted job
        // counts against the tenant when t.b offers its own.
        let out = run_script(
            "open t.a lazy\n\
             open t.b lazy\n\
             job t.a 0,100,1\n\
             job t.b 0,100,1\n\
             open u.a lazy\n\
             job u.a 0,100,1\n\
             close t.a\nclose t.b\nclose u.a\n",
            opts,
        )
        .unwrap();
        assert!(out.replies[2].starts_with("ok job t.a "));
        assert_eq!(
            out.replies[3],
            "busy job t.b tenant=t tenant-pending=1 max-tenant-pending=1"
        );
        // Tenant u is untouched by t's quota.
        assert!(out.replies[5].starts_with("ok job u.a "));
        assert_eq!(out.summary.tenant_shed, 1);
    }

    #[test]
    fn breaker_trips_refuses_and_recovers_end_to_end() {
        let opts = ServeOptions {
            breaker: fjs_core::service::BreakerConfig {
                threshold: 2,
                cooldown_events: 4,
            },
            ..ServeOptions::default()
        };
        let out = with_quiet_panics(|| {
            run_script(
                "open h.a poison:panic:eager\n\
                 job h.a 0,1,1\n\
                 close h.a\n\
                 open h.b poison:panic:eager\n\
                 job h.b 0,1,1\n\
                 close h.b\n\
                 open h.c eager\n\
                 open u.a eager\n\
                 job u.a 0,5,1\n\
                 job u.a 1,6,1\n\
                 close u.a\n\
                 open h.d eager\n\
                 job h.d 0,5,2\n\
                 close h.d\n\
                 open h.e eager\n\
                 close h.e\n",
                opts,
            )
            .unwrap()
        });
        // Two poisoned closes trip tenant h's breaker...
        assert_eq!(
            out.replies[6],
            "busy open h.c breaker-open tenant=h failures=2 retry-after-events=4"
        );
        // ...four healthy events later the cooldown elapses and h.d is
        // admitted as the half-open probe; its completed close re-closes
        // the breaker, so h.e is admitted without restriction.
        assert!(
            out.replies[11].starts_with("ok open h.d "),
            "{:?}",
            out.replies
        );
        assert!(out.replies[13].contains("verdict=completed"));
        assert!(out.replies[14].starts_with("ok open h.e "));
        assert_eq!(out.summary.breaker_trips, 1);
        assert_eq!(out.summary.breaker_refused, 1);
    }

    #[test]
    fn governor_output_is_byte_identical_across_worker_counts() {
        let script = "open t.a lazy\n\
                      open t.b lazy\n\
                      job t.a 0,100,1\n\
                      job t.b 0,100,1\n\
                      open h.a poison:panic:eager\n\
                      job h.a 0,1,1\n\
                      close h.a\n\
                      open h.b poison:panic:eager\n\
                      job h.b 0,1,1\n\
                      close h.b\n\
                      open h.c eager\n\
                      open u.a eager\n\
                      job u.a 0,5,1\n\
                      job u.a 1,6,1\n\
                      close u.a\n\
                      open h.d eager\n\
                      job h.d 0,5,2\n\
                      close h.d\n\
                      stats\n\
                      close t.a\n\
                      close t.b\n";
        let opts = |workers: usize| ServeOptions {
            workers,
            tenant_max_sessions: 3,
            tenant_quotas: fjs_core::service::TenantQuotas {
                max_pending: 1,
                max_bytes: 64,
            },
            breaker: fjs_core::service::BreakerConfig {
                threshold: 2,
                cooldown_events: 4,
            },
            ..ServeOptions::default()
        };
        let serial = with_quiet_panics(|| run_script(script, opts(1)).unwrap());
        assert!(
            serial.summary.breaker_trips > 0,
            "script must trip the breaker"
        );
        assert!(serial.summary.tenant_shed > 0, "script must shed on quota");
        for workers in [2usize, 8] {
            let pooled = with_quiet_panics(|| run_script_pooled(script, opts(workers)).unwrap());
            assert_eq!(
                pooled.replies, serial.replies,
                "replies must be byte-identical at workers={workers}"
            );
            assert_eq!(
                pooled.log, serial.log,
                "log must be byte-identical at workers={workers}"
            );
            assert_eq!(pooled.summary.breaker_trips, serial.summary.breaker_trips);
            assert_eq!(
                pooled.summary.breaker_refused,
                serial.summary.breaker_refused
            );
            assert_eq!(pooled.summary.tenant_shed, serial.summary.tenant_shed);
        }
    }

    #[test]
    fn breaker_state_survives_resume_identically() {
        let dir = std::env::temp_dir().join(format!(
            "fjs-breaker-resume-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("serve.journal");
        let opts = || ServeOptions {
            breaker: fjs_core::service::BreakerConfig {
                threshold: 2,
                cooldown_events: 100,
            },
            ..ServeOptions::default()
        };
        // Two poisoned sessions trip tenant h live; everything they did
        // is journaled (opens, the poisoning offers, the closes).
        let script = "open h.a poison:panic:eager\n\
                      job h.a 0,1,1\n\
                      close h.a\n\
                      open h.b poison:panic:eager\n\
                      job h.b 0,1,1\n\
                      close h.b\n";
        let journal = fjs_core::service::ServeJournal::create(&journal_path)
            .unwrap()
            .with_sync_every(1);
        let mut live = Server::new(opts(), Sink::Null, Some(journal));
        let mut offset = 0u64;
        with_quiet_panics(|| {
            for line in script.split_inclusive('\n') {
                live.handle_line(offset, line);
                offset += line.len() as u64;
            }
        });
        let live_reply = live.handle_line(offset, "open h.z eager\n").unwrap();
        drop(live); // SIGKILL stand-in.

        // A resumed daemon must refuse the same open with the same bytes.
        // Re-feed the original input first: the resume cursor skips those
        // lines, then the probe lands at the same position as live.
        let events = fjs_core::service::ServeJournal::load(&journal_path).unwrap();
        let mut resumed = Server::new(opts(), Sink::Null, None);
        with_quiet_panics(|| resumed.resume(&events).unwrap());
        let mut offset = 0u64;
        for line in script.split_inclusive('\n') {
            assert!(resumed.handle_line(offset, line).is_none());
            offset += line.len() as u64;
        }
        let resumed_reply = resumed.handle_line(offset, "open h.z eager\n").unwrap();
        assert_eq!(
            resumed_reply, live_reply,
            "breaker state must replay bit-identically from the journal"
        );
        assert_eq!(
            resumed_reply,
            "busy open h.z breaker-open tenant=h failures=2 retry-after-events=100"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_jsonl_is_flat_schema_v1() {
        let out = script_outcome("open a eager\njob a 0,5,2\nclose a\n");
        let line = out.summary.to_jsonl();
        assert!(
            line.starts_with("{\"v\":1,\"kind\":\"serve-summary\""),
            "{line}"
        );
        for key in [
            "\"tenant_shed\":0",
            "\"breaker_refused\":0",
            "\"breaker_trips\":0",
            "\"oversize_disconnects\":0",
            "\"slow_disconnects\":0",
            "\"peak_writer_queue\":0",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert!(!line.contains('\n'), "one flat line for JSONL appends");
    }
}
