//! Line protocol for the resident scheduling daemon.
//!
//! One request per line, space-delimited verb first:
//!
//! ```text
//! open <sid> <scheduler-spec>     # create a session
//! job <sid> <arrival>,<deadline>,<length>
//! close <sid>                     # finish the session, flush its deltas
//! stats <sid>                     # read-only probe
//! stats                           # daemon-wide degradation counters
//! ```
//!
//! Blank lines and `#` comments are ignored (no reply). Every other line
//! gets exactly one reply line: `ok ...`, `busy ...` (admission shed) or
//! `err ...` (malformed or rejected). The job payload is the same
//! 3-column CSV the batch trace reader ingests, and is parsed through the
//! same hardened [`TraceReader`] so serve inherits its numeric and window
//! validation verbatim.

use fjs_workloads::TraceReader;

/// A parsed protocol request.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// `open <sid> <spec>` — create a session running the given scheduler.
    Open {
        /// Session name.
        sid: String,
        /// Scheduler spec (registry short name, optionally `poison:`-wrapped).
        spec: String,
    },
    /// `job <sid> <a>,<d>,<p>` — offer one job to a session.
    Job {
        /// Session name.
        sid: String,
        /// Arrival time `a(J)`.
        arrival: f64,
        /// Starting deadline `d(J)`.
        deadline: f64,
        /// Processing length `p(J)`.
        length: f64,
    },
    /// `close <sid>` — finish the session and emit its final span.
    Close {
        /// Session name.
        sid: String,
    },
    /// `stats <sid>` — read-only session probe.
    Stats {
        /// Session name.
        sid: String,
    },
    /// Bare `stats` — daemon-wide degradation counters (sheds, breaker
    /// trips, disconnect causes). Addresses no session.
    StatsDaemon,
}

impl Request {
    /// The session the request addresses (`None` for daemon-wide
    /// requests).
    pub fn sid(&self) -> Option<&str> {
        match self {
            Request::Open { sid, .. }
            | Request::Job { sid, .. }
            | Request::Close { sid }
            | Request::Stats { sid } => Some(sid),
            Request::StatsDaemon => None,
        }
    }
}

/// `true` for names safe to echo in space-delimited replies and logs.
fn valid_sid(sid: &str) -> bool {
    !sid.is_empty()
        && sid.len() <= 64
        && sid
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Parses one protocol line.
///
/// Returns `Ok(None)` for blank lines and `#` comments, `Ok(Some(_))` for a
/// well-formed request, and `Err(reason)` for anything else. The reason is
/// a short human-readable phrase without positional information — the
/// server attributes it to a line number and byte offset.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.splitn(3, char::is_whitespace);
    let verb = parts.next().unwrap_or_default();
    let sid = parts.next().map(str::trim).unwrap_or_default();
    let rest = parts.next().map(str::trim).unwrap_or_default();
    if verb != "open" && verb != "job" && verb != "close" && verb != "stats" {
        return Err(format!(
            "unknown verb '{verb}' (expected open/job/close/stats)"
        ));
    }
    if verb == "stats" && sid.is_empty() {
        return Ok(Some(Request::StatsDaemon));
    }
    if !valid_sid(sid) {
        return Err(format!(
            "bad session name '{sid}' (want 1-64 chars of [A-Za-z0-9._-])"
        ));
    }
    match verb {
        "open" => {
            if rest.is_empty() {
                return Err("open needs a scheduler spec".into());
            }
            Ok(Some(Request::Open {
                sid: sid.into(),
                spec: rest.into(),
            }))
        }
        "job" => {
            if rest.is_empty() {
                return Err("job needs an <arrival>,<deadline>,<length> payload".into());
            }
            let (arrival, deadline, length) = parse_job_payload(rest)?;
            Ok(Some(Request::Job {
                sid: sid.into(),
                arrival,
                deadline,
                length,
            }))
        }
        "close" | "stats" => {
            if !rest.is_empty() {
                return Err(format!("{verb} takes no payload (got '{rest}')"));
            }
            if verb == "close" {
                Ok(Some(Request::Close { sid: sid.into() }))
            } else {
                Ok(Some(Request::Stats { sid: sid.into() }))
            }
        }
        _ => unreachable!(),
    }
}

/// Parses a job payload through the hardened batch-trace reader, so the
/// daemon enforces exactly the file-ingestion validation (finite numbers,
/// `arrival <= deadline`, positive length).
fn parse_job_payload(payload: &str) -> Result<(f64, f64, f64), String> {
    let mut reader = TraceReader::new(payload.as_bytes());
    match reader.next() {
        Some(Ok(rec)) => {
            let job = rec.job;
            Ok((
                job.arrival().get(),
                job.deadline().get(),
                job.length().get(),
            ))
        }
        Some(Err(e)) => {
            // The payload is a synthetic one-line stream; strip the
            // reader's "line 1: " prefix — the server re-attributes the
            // error to the protocol stream position.
            let text = e.to_string();
            Err(text
                .strip_prefix("line 1: ")
                .map(str::to_string)
                .unwrap_or(text))
        }
        None => Err("job payload is empty".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request("open alpha eager").unwrap(),
            Some(Request::Open {
                sid: "alpha".into(),
                spec: "eager".into()
            })
        );
        assert_eq!(
            parse_request("  job alpha 0,5,2  ").unwrap(),
            Some(Request::Job {
                sid: "alpha".into(),
                arrival: 0.0,
                deadline: 5.0,
                length: 2.0
            })
        );
        assert_eq!(
            parse_request("close alpha").unwrap(),
            Some(Request::Close {
                sid: "alpha".into()
            })
        );
        assert_eq!(
            parse_request("stats alpha").unwrap(),
            Some(Request::Stats {
                sid: "alpha".into()
            })
        );
        assert_eq!(
            parse_request("stats").unwrap(),
            Some(Request::StatsDaemon),
            "bare stats is the daemon-wide probe"
        );
        assert_eq!(
            parse_request("  stats  ").unwrap(),
            Some(Request::StatsDaemon)
        );
    }

    #[test]
    fn blank_and_comment_lines_are_silent() {
        assert_eq!(parse_request("").unwrap(), None);
        assert_eq!(parse_request("   ").unwrap(), None);
        assert_eq!(parse_request("# a comment").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        assert!(parse_request("launch alpha").unwrap_err().contains("verb"));
        assert!(parse_request("open").unwrap_err().contains("session name"));
        assert!(parse_request("open bad!name eager")
            .unwrap_err()
            .contains("bad session name"));
        assert!(parse_request("job alpha").unwrap_err().contains("payload"));
        assert!(parse_request("close alpha extra")
            .unwrap_err()
            .contains("no payload"));
    }

    #[test]
    fn job_payload_inherits_trace_reader_validation() {
        // Non-finite number.
        let e = parse_request("job a 0,inf,2").unwrap_err();
        assert!(e.contains("not a finite number"), "{e}");
        // Window inverted.
        let e = parse_request("job a 5,1,2").unwrap_err();
        assert!(e.contains("deadline"), "{e}");
        // Non-positive length.
        let e = parse_request("job a 0,5,0").unwrap_err();
        assert!(e.contains("length"), "{e}");
        // Wrong arity.
        let e = parse_request("job a 0,5").unwrap_err();
        assert!(e.contains("columns"), "{e}");
        // No stale "line 1:" prefix leaks through.
        assert!(!parse_request("job a 0,5").unwrap_err().starts_with("line"));
    }
}
