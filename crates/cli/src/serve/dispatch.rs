//! The worker-pool dispatcher behind `fjs serve --workers N`.
//!
//! [`PooledServer`] is the multi-core counterpart of the single-threaded
//! [`Server`](super::Server). It keeps the protocol-facing state machine
//! (line numbering, resume cursor, quarantine, admission control) on the
//! dispatching thread — where requests are still seen in input order —
//! and ships session work to a [`SessionPool`] sharded by stable
//! session-id hash. Three ordering domains make this deterministic
//! without serializing the actual scheduling work:
//!
//! 1. **Per-session order** — all requests of one session go to one
//!    worker over a FIFO channel, so each session evolves exactly as it
//!    would under a single thread (simulation time advances with offers,
//!    never with wall clock).
//! 2. **Global sequence order** — every dispatched request gets a
//!    sequence number; completed results are parked until contiguous and
//!    then emitted, so decision-log and journal lines appear in input
//!    order: byte-identical to `--workers 1` (the same index-ordered
//!    merge discipline as the sharded sweep executor).
//! 3. **Per-connection order** — replies are released as soon as all of
//!    the *same connection's* earlier requests have completed. One
//!    tenant's slow offer (a hung scheduler burning its watchdog budget)
//!    delays only its own connection's replies; siblings keep flowing
//!    even while the global log emission waits for the straggler.
//!
//! Admission control that needs the *global* open-session set
//! (`--max-sessions`, duplicate opens, unknown sids) runs on the
//! dispatcher against a session→worker directory maintained
//! synchronously in input order; spec validation also happens here (via
//! the same constructor the workers use) so directory membership never
//! depends on an asynchronous worker outcome. Per-session checks
//! (`--max-pending`, terminal verdicts) run on the owning worker, which
//! sees the session's exact state after all prior requests — the same
//! answer a single-threaded server would give. The dispatch window
//! (requests in flight across all workers) is capped at `--max-pending`
//! globally; hitting it blocks the frontend instead of shedding, because
//! shedding on a timing-dependent condition would break determinism.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use fjs_core::service::{
    stable_shard, tenant_of, OpenDecision, PoolReply, PoolRequest, ServeEvent, ServeJournal,
    SessionPool, TenantBreakers,
};
use fjs_core::time::{dur, t};
use fjs_workloads::{DeadLetter, Quarantine};

use super::protocol::{parse_request, Request};
use super::{build_session, wire, ServeOptions, ServeSummary, Sink};

/// How long one blocking wait on the results channel lasts before the
/// pool is re-checked (requests always finish — watchdogs bound even
/// hung schedulers — so this only shapes shutdown latency).
const PUMP_TICK: Duration = Duration::from_millis(100);

/// What was asked of the pool, kept dispatcher-side until the worker's
/// reply comes back and the request can be rendered.
enum InKind {
    Open {
        /// The scheduler spec, echoed into the journal record.
        spec: String,
    },
    Job {
        arrival: f64,
        deadline: f64,
        length: f64,
    },
    Close,
    Stats,
    /// A drain-initiated close: journaled and logged, but no reply.
    DrainClose,
}

struct Inflight {
    sid: String,
    line: u64,
    offset: u64,
    /// `(conn, conn_seq)` to route the reply, `None` for replay/drain.
    reply_to: Option<(u64, u64)>,
    kind: InKind,
    replay: bool,
}

/// A journal-equivalent breaker transition, carried inside a [`Block`] so
/// it is applied in **global sequence order** by [`PooledServer::flush_blocks`].
/// Applying it at render time instead would capture the cooldown clock in
/// worker-completion order, which varies run to run — this is what keeps
/// breaker state byte-identical across `--workers N`.
enum BreakerNote {
    /// An admitted open or an admitted/poisoned job offer (clock tick).
    Event,
    /// A close verdict.
    Close { sid: String, completed: bool },
}

/// A completed request, parked until the global sequence reaches it.
#[derive(Default)]
struct Block {
    log_lines: Vec<String>,
    journal: Option<ServeEvent>,
    breaker: Option<BreakerNote>,
}

/// The pooled server: see the module docs for the ordering contract.
pub struct PooledServer {
    opts: ServeOptions,
    pool: SessionPool,
    /// sid → owning worker, maintained synchronously in input order.
    directory: BTreeMap<String, usize>,
    journal: Option<ServeJournal>,
    log: Sink,
    summary: ServeSummary,
    line_no: u64,
    cursor: u64,
    replaying: bool,
    /// Next global sequence number to assign / to emit.
    next_seq: u64,
    next_emit: u64,
    inflight: HashMap<u64, Inflight>,
    done: BTreeMap<u64, Block>,
    /// Per-connection reply ordering: next conn_seq to assign, next to
    /// release, and the parked out-of-order replies.
    conn_next: HashMap<u64, u64>,
    conn_emit: HashMap<u64, u64>,
    conn_parked: HashMap<u64, BTreeMap<u64, String>>,
    breakers: TenantBreakers,
}

impl PooledServer {
    /// Builds the dispatcher and spawns `opts.workers` session workers.
    pub fn new(opts: ServeOptions, log: Sink, journal: Option<ServeJournal>) -> PooledServer {
        let watchdog = opts.watchdog_events;
        let factory = Arc::new(move |spec: &str| build_session(spec, watchdog));
        let pool = SessionPool::new(opts.workers, opts.max_pending, opts.tenant_quotas, factory);
        let breakers = TenantBreakers::new(opts.breaker);
        PooledServer {
            opts,
            pool,
            directory: BTreeMap::new(),
            journal,
            log,
            summary: ServeSummary::default(),
            line_no: 0,
            cursor: 0,
            replaying: false,
            next_seq: 0,
            next_emit: 0,
            inflight: HashMap::new(),
            done: BTreeMap::new(),
            conn_next: HashMap::new(),
            conn_emit: HashMap::new(),
            conn_parked: HashMap::new(),
            breakers,
        }
    }

    /// The dispatcher's options (frontends read the net-layer caps).
    pub(crate) fn opts(&self) -> &ServeOptions {
        &self.opts
    }

    /// See [`super::Server::halted`].
    pub fn halted(&self) -> bool {
        self.summary.halted.is_some()
    }

    /// See [`super::Server::cursor`].
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The configured per-request throttle (test hook).
    pub fn throttle_ms(&self) -> u64 {
        self.opts.throttle_ms
    }

    pub(crate) fn summary_mut(&mut self) -> &mut ServeSummary {
        &mut self.summary
    }

    fn inflight_len(&self) -> u64 {
        self.next_seq - self.next_emit
    }

    /// True while any dispatched request has not yet been emitted — the
    /// frontend should poll the pool eagerly instead of idling.
    pub fn busy(&self) -> bool {
        self.inflight_len() > 0
    }

    fn halt(&mut self, why: String) {
        if self.summary.halted.is_none() {
            self.summary.halted = Some(why);
        }
    }

    fn log_line(&mut self, line: &str) {
        if let Err(e) = self.log.write_line(line) {
            self.halt(format!("decision log: {e}"));
            return;
        }
        self.summary.decision_lines += 1;
    }

    fn journal_append(&mut self, ev: &ServeEvent) {
        if let Some(j) = self.journal.as_mut() {
            if let Err(e) = j.append(ev) {
                self.halt(format!("journal: {e}"));
            }
        }
    }

    /// Parks a completed reply for per-connection ordered release.
    fn park_reply(&mut self, conn: u64, conn_seq: u64, reply: String) {
        // A forgotten (disconnected) connection has no conn_next entry;
        // its undeliverable replies are dropped.
        if self.conn_next.contains_key(&conn) {
            self.conn_parked
                .entry(conn)
                .or_default()
                .insert(conn_seq, reply);
        }
    }

    /// Releases contiguous per-connection replies into `out`.
    fn flush_replies(&mut self, out: &mut Vec<(u64, String)>) {
        let conns: Vec<u64> = self.conn_parked.keys().copied().collect();
        for conn in conns {
            let mut emit = *self.conn_emit.entry(conn).or_insert(0);
            let mut exhausted = false;
            if let Some(parked) = self.conn_parked.get_mut(&conn) {
                while let Some(reply) = parked.remove(&emit) {
                    out.push((conn, reply));
                    emit += 1;
                }
                exhausted = parked.is_empty();
            }
            if exhausted {
                self.conn_parked.remove(&conn);
            }
            self.conn_emit.insert(conn, emit);
        }
    }

    /// Emits globally contiguous completed blocks: decision-log lines
    /// first, then the journal record — the same within-request order as
    /// the serial server.
    fn flush_blocks(&mut self) {
        while let Some(block) = self.done.remove(&self.next_emit) {
            self.next_emit += 1;
            for line in &block.log_lines {
                self.log_line(line);
            }
            if let Some(ev) = &block.journal {
                self.journal_append(ev);
            }
            match block.breaker {
                Some(BreakerNote::Event) => self.breakers.note_event(),
                Some(BreakerNote::Close { ref sid, completed }) => {
                    self.breakers.note_close(sid, completed);
                    self.summary.breaker_trips = self.breakers.trips();
                }
                None => {}
            }
        }
    }

    /// Blocks until every inflight request has rendered and its block —
    /// including any breaker note — has been applied, without releasing
    /// per-connection replies (those stay parked for the next `pump`).
    /// After this returns, breaker state reflects all prior input in
    /// order, exactly like the serial server's at the same line.
    fn settle_blocks(&mut self) -> Result<(), String> {
        while !self.inflight.is_empty() {
            self.pump_one_blocking()?;
        }
        self.flush_blocks();
        Ok(())
    }

    /// Records a completed request at `seq` (no reply routing).
    fn complete(&mut self, seq: u64, block: Block) {
        self.done.insert(seq, block);
    }

    /// Assigns the next global sequence number and, when `reply_to` a
    /// live connection, the connection's next reply slot.
    fn assign_seq(&mut self, conn: Option<u64>) -> (u64, Option<(u64, u64)>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let reply_to = conn.map(|c| {
            let n = self.conn_next.entry(c).or_insert(0);
            let slot = *n;
            *n += 1;
            (c, slot)
        });
        (seq, reply_to)
    }

    /// An immediately-answerable request (admission shed, unknown sid,
    /// parse error): completes at its sequence slot without pool work.
    fn complete_immediate(&mut self, conn: u64, reply: String) {
        let (seq, reply_to) = self.assign_seq(Some(conn));
        self.complete(seq, Block::default());
        if let Some((c, cs)) = reply_to {
            self.park_reply(c, cs, reply);
        }
    }

    /// Waits for one worker result and processes it. `Err` only for an
    /// unrecoverable pool failure (a worker thread died).
    fn pump_one_blocking(&mut self) -> Result<(), String> {
        loop {
            if let Some((seq, reply)) = self.pool.recv_timeout(PUMP_TICK) {
                self.render(seq, reply);
                return Ok(());
            }
            if self.inflight.is_empty() {
                return Ok(());
            }
        }
    }

    /// Drains ready worker results and releases ordered output into
    /// `out` as `(conn, reply)` pairs.
    pub fn pump(&mut self, out: &mut Vec<(u64, String)>) -> Result<(), String> {
        while let Some((seq, reply)) = self.pool.try_recv() {
            self.render(seq, reply);
        }
        self.flush_blocks();
        self.flush_replies(out);
        Ok(())
    }

    /// Blocks until every submitted request has completed, then releases
    /// all ordered output.
    pub fn settle(&mut self, out: &mut Vec<(u64, String)>) -> Result<(), String> {
        while !self.inflight.is_empty() {
            self.pump_one_blocking()?;
            self.flush_blocks();
            self.flush_replies(out);
        }
        self.flush_blocks();
        self.flush_replies(out);
        Ok(())
    }

    /// Drops a disconnected connection's reply state; replies already
    /// inflight for it will be discarded on arrival.
    pub fn forget_conn(&mut self, conn: u64) {
        self.conn_next.remove(&conn);
        self.conn_emit.remove(&conn);
        self.conn_parked.remove(&conn);
    }

    /// Renders a worker reply into its parked block + routed reply,
    /// using the dispatcher-side metadata captured at submission.
    fn render(&mut self, seq: u64, reply: PoolReply) {
        let Some(meta) = self.inflight.remove(&seq) else {
            return;
        };
        let sid = meta.sid.as_str();
        let mut block = Block::default();
        let mut reply_text: Option<String> = None;
        match (&meta.kind, reply) {
            (InKind::Open { spec }, PoolReply::Opened { name }) => {
                self.summary.opened += 1;
                block.breaker = Some(BreakerNote::Event);
                if !meta.replay {
                    block.journal = Some(ServeEvent::Open {
                        session: meta.sid.clone(),
                        scheduler: spec.clone(),
                        line: meta.line,
                    });
                }
                reply_text = Some(wire::open_ok(sid, &name));
            }
            (InKind::Open { .. }, PoolReply::OpenFailed { error }) => {
                // Can't happen post-validation; keep the directory honest.
                self.directory.remove(sid);
                reply_text = Some(wire::open_err(sid, &error));
            }
            (
                InKind::Job {
                    arrival,
                    deadline,
                    length,
                },
                PoolReply::OfferAdmitted {
                    id,
                    span,
                    decisions,
                },
            ) => {
                for d in &decisions {
                    block.log_lines.push(wire::decision_line(sid, d));
                }
                block.breaker = Some(BreakerNote::Event);
                if !meta.replay {
                    block.journal = Some(ServeEvent::Job {
                        session: meta.sid.clone(),
                        line: meta.line,
                        arrival: *arrival,
                        deadline: *deadline,
                        length: *length,
                    });
                    self.summary.jobs += 1;
                }
                reply_text = Some(wire::job_ok(sid, id, span));
            }
            (
                InKind::Job {
                    arrival,
                    deadline,
                    length,
                },
                PoolReply::OfferPoisoned { verdict, decisions },
            ) => {
                // The offer mutated the session before poisoning it, so
                // it is journaled exactly like an admitted job.
                for d in &decisions {
                    block.log_lines.push(wire::decision_line(sid, d));
                }
                block.breaker = Some(BreakerNote::Event);
                if !meta.replay {
                    block.journal = Some(ServeEvent::Job {
                        session: meta.sid.clone(),
                        line: meta.line,
                        arrival: *arrival,
                        deadline: *deadline,
                        length: *length,
                    });
                    self.summary.jobs += 1;
                }
                reply_text = Some(wire::job_poisoned(sid, &verdict));
            }
            (InKind::Job { .. }, PoolReply::OfferTerminal { verdict }) => {
                reply_text = Some(wire::job_terminal(sid, &verdict));
            }
            (InKind::Job { .. }, PoolReply::OfferShed { resident }) => {
                self.summary.shed += 1;
                reply_text = Some(wire::job_busy(sid, resident, self.opts.max_pending));
            }
            (
                InKind::Job { .. },
                PoolReply::OfferTenantShed {
                    tenant,
                    cause,
                    used,
                    limit,
                },
            ) => {
                self.summary.tenant_shed += 1;
                reply_text = Some(wire::job_tenant_busy(sid, &tenant, cause, used, limit));
            }
            (InKind::Job { .. }, PoolReply::OfferRejected { error, decisions }) => {
                for d in &decisions {
                    block.log_lines.push(wire::decision_line(sid, d));
                }
                reply_text = Some(wire::job_rejected(sid, meta.line, meta.offset, &error));
            }
            (InKind::Job { .. }, PoolReply::NoSession) => {
                reply_text = Some(wire::no_session("job", sid));
            }
            (
                InKind::Close | InKind::DrainClose,
                PoolReply::Closed {
                    verdict,
                    span,
                    jobs,
                    decisions,
                },
            ) => {
                for d in &decisions {
                    block.log_lines.push(wire::decision_line(sid, d));
                }
                block
                    .log_lines
                    .push(wire::close_line(sid, span, verdict.label()));
                block.breaker = Some(BreakerNote::Close {
                    sid: meta.sid.clone(),
                    completed: verdict.is_completed(),
                });
                if !meta.replay {
                    block.journal = Some(ServeEvent::Close {
                        session: meta.sid.clone(),
                        line: meta.line,
                    });
                }
                self.summary.closed += 1;
                if matches!(meta.kind, InKind::Close) {
                    reply_text = Some(wire::close_ok(sid, span, jobs, verdict.label()));
                }
            }
            (InKind::Close | InKind::DrainClose, PoolReply::NoSession) => {
                reply_text = Some(format!("err close {sid}: no such session"));
            }
            (InKind::Stats, PoolReply::Stats(s)) => {
                reply_text = Some(wire::stats_ok(
                    sid,
                    s.span,
                    s.pending,
                    s.running,
                    s.retained,
                    s.peak_retained,
                    s.events_total,
                ));
            }
            (InKind::Stats, PoolReply::NoSession) => {
                reply_text = Some(wire::no_session("stats", sid));
            }
            (_, other) => {
                // A worker answered out of protocol — unrecoverable.
                self.halt(format!("worker protocol violation for {sid}: {other:?}"));
            }
        }
        self.complete(seq, block);
        if let (Some((conn, conn_seq)), Some(text)) = (meta.reply_to, reply_text) {
            self.park_reply(conn, conn_seq, text);
        }
    }

    /// Enforces the global dispatch window before admitting more work.
    fn ensure_window(&mut self) -> Result<(), String> {
        let window = self.opts.max_pending.max(1) as u64;
        while self.inflight_len() >= window && !self.inflight.is_empty() {
            self.pump_one_blocking()?;
            self.flush_blocks();
        }
        Ok(())
    }

    /// Submits a request to the pool under an assigned sequence slot.
    fn submit_pool(
        &mut self,
        worker: usize,
        req: PoolRequest,
        meta: Inflight,
    ) -> Result<(), String> {
        self.ensure_window()?;
        let (seq, reply_to) = match meta.reply_to {
            // Replay/drain submissions have no connection.
            None => (self.assign_seq(None).0, None),
            Some((conn, _)) => {
                let (seq, rt) = self.assign_seq(Some(conn));
                (seq, rt)
            }
        };
        self.inflight.insert(seq, Inflight { reply_to, ..meta });
        self.pool
            .submit(worker, seq, req)
            .map_err(|e| format!("worker pool: {e}"))
    }

    /// Handles one raw input line from `conn` — the pooled counterpart of
    /// [`super::Server::handle_line`]. Completed replies are appended to
    /// `out` (possibly for other connections).
    pub fn submit(
        &mut self,
        conn: u64,
        offset: u64,
        raw: &str,
        out: &mut Vec<(u64, String)>,
    ) -> Result<(), String> {
        self.line_no += 1;
        self.summary.lines += 1;
        if self.line_no <= self.cursor {
            return self.pump(out);
        }
        if self.halted() {
            self.complete_immediate(conn, "err halted".into());
            return self.pump(out);
        }
        let raw = raw.trim_end_matches('\n').trim_end_matches('\r');
        match parse_request(raw) {
            Ok(None) => return self.pump(out),
            Ok(Some(req)) => {
                self.summary.requests += 1;
                self.dispatch(conn, offset, req)?;
            }
            Err(reason) => {
                let reply = self.quarantine_line(offset, raw, reason);
                self.complete_immediate(conn, reply);
            }
        }
        self.pump(out)
    }

    fn quarantine_line(&mut self, offset: u64, raw: &str, reason: String) -> String {
        let line = self.line_no;
        let reply = format!("err line={line} offset={offset}: {reason}");
        match self.opts.quarantine {
            Quarantine::Halt => {
                self.summary.halted = Some(format!("line {line} (byte {offset}): {reason}"));
            }
            Quarantine::Skip => self.summary.quarantined += 1,
            Quarantine::DeadLetter => {
                self.summary.quarantined += 1;
                self.summary.dead.push(DeadLetter {
                    line: self.line_no as usize,
                    offset,
                    raw: raw.to_string(),
                });
            }
        }
        reply
    }

    fn dispatch(&mut self, conn: u64, offset: u64, req: Request) -> Result<(), String> {
        let line = self.line_no;
        match req {
            Request::Open { sid, spec } => {
                if self.directory.contains_key(&sid) {
                    self.complete_immediate(conn, wire::open_err(&sid, "session already open"));
                    return Ok(());
                }
                if self.directory.len() >= self.opts.max_sessions {
                    self.summary.shed += 1;
                    self.complete_immediate(
                        conn,
                        wire::open_busy(&sid, self.directory.len(), self.opts.max_sessions),
                    );
                    return Ok(());
                }
                // Admission order mirrors the serial server exactly:
                // duplicate → global cap → tenant cap → breaker → spec
                // validation.
                let tenant = tenant_of(&sid).to_string();
                if self.opts.tenant_max_sessions > 0 {
                    let open = self
                        .directory
                        .keys()
                        .filter(|k| tenant_of(k) == tenant)
                        .count();
                    if open >= self.opts.tenant_max_sessions {
                        self.summary.tenant_shed += 1;
                        self.complete_immediate(
                            conn,
                            wire::open_tenant_busy(
                                &sid,
                                &tenant,
                                open,
                                self.opts.tenant_max_sessions,
                            ),
                        );
                        return Ok(());
                    }
                }
                let mut breaker_checked = false;
                if self.opts.breaker.threshold > 0 {
                    // Opens are rare, so a pipeline barrier here is cheap;
                    // in exchange the breaker sees every prior event in
                    // input order and decides exactly as the serial server.
                    self.settle_blocks()?;
                    breaker_checked = true;
                    if let OpenDecision::Refuse {
                        failures,
                        retry_after,
                    } = self.breakers.admit_open(&sid)
                    {
                        self.summary.breaker_refused += 1;
                        self.complete_immediate(
                            conn,
                            wire::open_breaker(&sid, &tenant, failures, retry_after),
                        );
                        return Ok(());
                    }
                }
                // Validate here (same constructor the worker uses) so the
                // directory never holds a sid whose open will fail.
                if let Err(e) = build_session(&spec, self.opts.watchdog_events) {
                    if breaker_checked {
                        self.breakers.abort_open(&sid);
                    }
                    self.complete_immediate(conn, wire::open_err(&sid, &e));
                    return Ok(());
                }
                let worker = stable_shard(tenant_of(&sid), self.pool.workers());
                self.directory.insert(sid.clone(), worker);
                self.summary.peak_sessions = self.summary.peak_sessions.max(self.directory.len());
                self.submit_pool(
                    worker,
                    PoolRequest::Open {
                        sid: sid.clone(),
                        spec: spec.clone(),
                    },
                    Inflight {
                        sid,
                        line,
                        offset,
                        reply_to: Some((conn, 0)),
                        kind: InKind::Open { spec },
                        replay: false,
                    },
                )
            }
            Request::Job {
                sid,
                arrival,
                deadline,
                length,
            } => {
                let Some(&worker) = self.directory.get(&sid) else {
                    self.complete_immediate(conn, wire::no_session("job", &sid));
                    return Ok(());
                };
                self.submit_pool(
                    worker,
                    PoolRequest::Offer {
                        sid: sid.clone(),
                        offer: fjs_core::service::JobOffer {
                            arrival: t(arrival),
                            deadline: t(deadline),
                            length: dur(length),
                        },
                    },
                    Inflight {
                        sid,
                        line,
                        offset,
                        reply_to: Some((conn, 0)),
                        kind: InKind::Job {
                            arrival,
                            deadline,
                            length,
                        },
                        replay: false,
                    },
                )
            }
            Request::Close { sid } => {
                let Some(worker) = self.directory.remove(&sid) else {
                    self.complete_immediate(conn, format!("err close {sid}: no such session"));
                    return Ok(());
                };
                self.submit_pool(
                    worker,
                    PoolRequest::Close { sid: sid.clone() },
                    Inflight {
                        sid,
                        line,
                        offset,
                        reply_to: Some((conn, 0)),
                        kind: InKind::Close,
                        replay: false,
                    },
                )
            }
            Request::Stats { sid } => {
                let Some(&worker) = self.directory.get(&sid) else {
                    self.complete_immediate(conn, wire::no_session("stats", &sid));
                    return Ok(());
                };
                self.submit_pool(
                    worker,
                    PoolRequest::Stats { sid: sid.clone() },
                    Inflight {
                        sid,
                        line,
                        offset,
                        reply_to: Some((conn, 0)),
                        kind: InKind::Stats,
                        replay: false,
                    },
                )
            }
            Request::StatsDaemon => {
                // Daemon-wide counters must reflect every prior request in
                // input order, exactly like the serial server's reply.
                self.settle_blocks()?;
                self.complete_immediate(conn, wire::stats_daemon(&self.summary));
                Ok(())
            }
        }
    }

    /// See [`super::Server::resume`]: replays journal events through the
    /// pool in order (decision lines re-emitted, journal appends and
    /// replies suppressed), then arranges for input lines at or before
    /// the last journaled line to be skipped.
    pub fn resume(&mut self, events: &[ServeEvent]) -> Result<(), String> {
        self.replaying = true;
        for ev in events {
            match ev {
                ServeEvent::Open {
                    session, scheduler, ..
                } => {
                    // Mirror live admission: journaled opens were admitted,
                    // so advance the breaker (half-open probe reservation)
                    // with state current through all earlier events.
                    if self.opts.breaker.threshold > 0 {
                        self.settle_blocks()
                            .map_err(|e| format!("resume: replaying open {session}: {e}"))?;
                        let _ = self.breakers.admit_open(session);
                    }
                    let worker = stable_shard(tenant_of(session), self.pool.workers());
                    self.directory.insert(session.clone(), worker);
                    self.summary.peak_sessions =
                        self.summary.peak_sessions.max(self.directory.len());
                    self.submit_pool(
                        worker,
                        PoolRequest::Open {
                            sid: session.clone(),
                            spec: scheduler.clone(),
                        },
                        Inflight {
                            sid: session.clone(),
                            line: ev.line(),
                            offset: 0,
                            reply_to: None,
                            kind: InKind::Open {
                                spec: scheduler.clone(),
                            },
                            replay: true,
                        },
                    )
                    .map_err(|e| format!("resume: replaying open {session}: {e}"))?;
                }
                ServeEvent::Job {
                    session,
                    arrival,
                    deadline,
                    length,
                    ..
                } => {
                    if let Some(&worker) = self.directory.get(session) {
                        self.submit_pool(
                            worker,
                            PoolRequest::Offer {
                                sid: session.clone(),
                                offer: fjs_core::service::JobOffer {
                                    arrival: t(*arrival),
                                    deadline: t(*deadline),
                                    length: dur(*length),
                                },
                            },
                            Inflight {
                                sid: session.clone(),
                                line: ev.line(),
                                offset: 0,
                                reply_to: None,
                                kind: InKind::Job {
                                    arrival: *arrival,
                                    deadline: *deadline,
                                    length: *length,
                                },
                                replay: true,
                            },
                        )?;
                    }
                }
                ServeEvent::Close { session, .. } => {
                    if let Some(worker) = self.directory.remove(session) {
                        self.submit_pool(
                            worker,
                            PoolRequest::Close {
                                sid: session.clone(),
                            },
                            Inflight {
                                sid: session.clone(),
                                line: ev.line(),
                                offset: 0,
                                reply_to: None,
                                kind: InKind::DrainClose,
                                replay: true,
                            },
                        )?;
                    }
                }
            }
            self.cursor = self.cursor.max(ev.line());
        }
        let mut scratch = Vec::new();
        self.settle(&mut scratch)?;
        self.replaying = false;
        self.line_no = 0;
        Ok(())
    }

    /// Graceful drain: closes every remaining session in alphabetical
    /// order (byte-identical to the serial drain), waits for all workers,
    /// flushes the log and syncs the journal.
    pub fn drain(&mut self) -> Result<(), String> {
        let line = self.line_no;
        let sids: Vec<(String, usize)> = self
            .directory
            .iter()
            .map(|(s, &w)| (s.clone(), w))
            .collect();
        for (sid, worker) in sids {
            self.directory.remove(&sid);
            self.submit_pool(
                worker,
                PoolRequest::Close { sid: sid.clone() },
                Inflight {
                    sid,
                    line,
                    offset: 0,
                    reply_to: None,
                    kind: InKind::DrainClose,
                    replay: false,
                },
            )?;
        }
        let mut scratch = Vec::new();
        self.settle(&mut scratch)?;
        self.log.flush().map_err(|e| format!("decision log: {e}"))?;
        if let Some(j) = self.journal.as_mut() {
            j.sync().map_err(|e| format!("journal: {e}"))?;
        }
        Ok(())
    }

    /// Drains, shuts the pool down (folding worker peak reports into the
    /// summary), and returns the final accounting and the log sink.
    pub fn finish(mut self) -> Result<(ServeSummary, Sink), String> {
        self.drain()?;
        let report = self.pool.shutdown();
        self.summary.peak_retained = self.summary.peak_retained.max(report.peak_retained);
        self.summary.peak_live_segments = self
            .summary
            .peak_live_segments
            .max(report.peak_live_segments);
        Ok((self.summary, self.log))
    }
}
