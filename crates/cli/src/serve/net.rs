//! Socket frontends for `fjs serve`: concurrent connections over unix
//! sockets and TCP, speaking the same line protocol.
//!
//! Topology: one accept thread per listener, one reader thread and one
//! writer thread per connection. Readers split the byte stream into
//! lines and feed a **bounded** event channel (so a flood of clients
//! exerts backpressure instead of growing an unbounded queue); the
//! dispatching thread submits each line to the [`Backend`] and routes
//! completed replies to the owning connection's writer. Each connection
//! has its own byte-offset space; the protocol line counter is global,
//! so journal resume cursors only apply to file/stdin frontends (socket
//! input is not re-readable).
//!
//! Failure containment (the PR's bugfix contract):
//!
//! * a connection's read/write error (`ECONNRESET`, `EPIPE`, a client
//!   killed mid-line) drops **that connection only** — counted in
//!   [`ServeSummary::disconnects`](super::ServeSummary) — and the daemon
//!   keeps serving everyone else;
//! * a client that streams bytes without ever sending a newline can no
//!   longer grow the reader's accumulator without bound: once a frame
//!   exceeds `--max-frame-bytes` the connection gets one
//!   `err line-too-long` reply and is dropped (counted in
//!   `oversize_disconnects`), leaving every other session untouched;
//! * a client that stops draining its replies fills its **bounded**
//!   writer queue (`--writer-queue`); rather than let one stalled reader
//!   wedge the dispatcher, the connection is shut down and counted in
//!   `slow_disconnects`;
//! * transient `accept()` failures (`EINTR`, `ECONNABORTED`,
//!   `ECONNRESET`, `EMFILE`/`ENFILE` exhaustion) are retried with a
//!   short backoff and counted, never fatal;
//! * binding a unix socket first **probes** an existing path with a
//!   connect attempt: if another daemon answers, binding fails with
//!   [`SocketClaimError::Live`] (the CLI exits 2) instead of silently
//!   clobbering the live daemon's socket; only stale files are removed.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use super::Backend;
use crate::soak::stop_requested;

/// Bounded capacity of the line/event channel feeding the dispatcher.
const EVENT_QUEUE: usize = 1024;

/// Poll cadence for nonblocking accepts and idle dispatch ticks.
const IDLE_TICK: Duration = Duration::from_millis(20);

/// Backoff after a transient `accept()` failure.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Why a unix socket path could not be claimed.
#[derive(Debug)]
pub enum SocketClaimError {
    /// Another daemon is alive behind the path (a connect succeeded);
    /// refusing to clobber it. The CLI maps this to a usage error
    /// (exit 2).
    Live(String),
    /// A real I/O failure while probing or binding.
    Io(String),
}

impl std::fmt::Display for SocketClaimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketClaimError::Live(m) | SocketClaimError::Io(m) => write!(f, "{m}"),
        }
    }
}

/// A listener of either family.
pub enum AnyListener {
    /// TCP (`--tcp <addr>`).
    Tcp(TcpListener),
    /// Unix domain socket (`--socket <path>`); the path is removed when
    /// the accept loop exits.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, PathBuf),
}

impl AnyListener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            AnyListener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            AnyListener::Unix(l, _) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| {
                // Replies are single lines a client is actively waiting
                // for; leaving Nagle on would serialize closed-loop
                // clients on delayed ACKs.
                let _ = s.set_nodelay(true);
                AnyStream::Tcp(s)
            }),
            #[cfg(unix)]
            AnyListener::Unix(l, _) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
        }
    }

    fn describe(&self) -> String {
        match self {
            AnyListener::Tcp(l) => l
                .local_addr()
                .map(|a| format!("tcp {a}"))
                .unwrap_or_else(|_| "tcp".into()),
            #[cfg(unix)]
            AnyListener::Unix(_, p) => format!("unix {}", p.display()),
        }
    }

    fn cleanup(&self) {
        #[cfg(unix)]
        if let AnyListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected stream of either family.
enum AnyStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl AnyStream {
    fn try_clone(&self) -> io::Result<AnyStream> {
        match self {
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
        }
    }

    fn set_read_timeout(&self, d: Duration) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(Some(d)),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_read_timeout(Some(d)),
        }
    }

    /// Tears the connection down from outside its reader/writer threads.
    /// The writer may be blocked in `write` against a client that stopped
    /// reading — dropping its channel would never wake it, but shutting
    /// the socket down makes the syscall return an error immediately.
    fn shutdown(&self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

/// Claims a unix socket path: probes an existing file with a connect
/// attempt, refuses if a daemon answers, removes only stale leftovers,
/// then binds.
#[cfg(unix)]
pub fn bind_unix(path: &std::path::Path) -> Result<AnyListener, SocketClaimError> {
    use std::os::unix::net::{UnixListener, UnixStream};

    if path.exists() {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(SocketClaimError::Live(format!(
                    "socket {} is in use by a live daemon; \
                     refusing to clobber it (pick another path or stop that daemon)",
                    path.display()
                )));
            }
            Err(_) => {
                // Nothing answered: a stale socket from a killed daemon
                // (or a non-socket file); safe to reclaim.
                std::fs::remove_file(path).map_err(|e| {
                    SocketClaimError::Io(format!("removing stale {}: {e}", path.display()))
                })?;
            }
        }
    }
    let listener = UnixListener::bind(path)
        .map_err(|e| SocketClaimError::Io(format!("binding {}: {e}", path.display())))?;
    Ok(AnyListener::Unix(listener, path.to_path_buf()))
}

/// Binds a TCP listener for `--tcp <addr>`.
pub fn bind_tcp(addr: &str) -> Result<AnyListener, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("binding tcp {addr}: {e}"))?;
    Ok(AnyListener::Tcp(listener))
}

/// `accept()` failures worth retrying: interrupted syscalls, connections
/// that died in the backlog, and descriptor/buffer exhaustion (which
/// recovers as clients disconnect). Checked by error kind plus the raw
/// errnos std does not map (`ENFILE` 23, `EMFILE` 24, `ENOBUFS` 105).
fn transient_accept(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::TimedOut
    ) || matches!(e.raw_os_error(), Some(23) | Some(24) | Some(105))
}

enum NetEvent {
    Accepted {
        conn: u64,
        outbox: SyncSender<String>,
        kill: AnyStream,
        depth: Arc<AtomicUsize>,
    },
    Line {
        conn: u64,
        offset: u64,
        line: String,
    },
    /// The connection exceeded the frame-length cap; the dispatcher
    /// answers `err line-too-long` and drops only this connection.
    Oversize {
        conn: u64,
    },
    Closed {
        conn: u64,
        errored: bool,
    },
    AcceptFatal {
        what: String,
    },
}

/// Splits a byte stream into newline-terminated frames with a hard cap
/// on frame length, tracking each frame's byte offset within the
/// stream. Pure (no I/O) so the oversize contract is unit-testable:
/// the accumulator can never hold more than `max_frame` bytes of an
/// unterminated line, which is what makes a newline-less flood bounded.
pub(crate) struct LineFramer {
    acc: Vec<u8>,
    consumed: u64,
    max_frame: usize,
}

impl LineFramer {
    pub(crate) fn new(max_frame: usize) -> Self {
        LineFramer {
            acc: Vec::new(),
            consumed: 0,
            max_frame: max_frame.max(1),
        }
    }

    /// Feeds one chunk; returns the completed `(offset, line)` frames
    /// (newline included, like the previous reader) and whether the
    /// stream just went oversize — either a completed line longer than
    /// the cap, or an unterminated residual exceeding it. Frames
    /// completed *before* the violation are still returned so the
    /// well-formed prefix is served.
    pub(crate) fn push(&mut self, chunk: &[u8]) -> (Vec<(u64, String)>, bool) {
        self.acc.extend_from_slice(chunk);
        let mut lines = Vec::new();
        while let Some(pos) = self.acc.iter().position(|&b| b == b'\n') {
            if pos > self.max_frame {
                return (lines, true);
            }
            let line_bytes: Vec<u8> = self.acc.drain(..=pos).collect();
            let offset = self.consumed;
            self.consumed += line_bytes.len() as u64;
            lines.push((offset, String::from_utf8_lossy(&line_bytes).into_owned()));
        }
        let oversize = self.acc.len() > self.max_frame;
        (lines, oversize)
    }

    /// True when an unterminated partial line is buffered.
    pub(crate) fn partial(&self) -> bool {
        !self.acc.is_empty()
    }
}

/// The per-connection reader: splits the stream into capped frames (each
/// frame's byte offset tracked within this connection) and feeds the
/// shared event channel. A read error or EOF reports `Closed`, an
/// oversize frame reports `Oversize`; either ends the thread — never
/// the daemon.
fn reader_loop(
    mut stream: AnyStream,
    conn: u64,
    max_frame: usize,
    tx: SyncSender<NetEvent>,
    shutdown: Arc<AtomicBool>,
) {
    let mut framer = LineFramer::new(max_frame);
    let mut chunk = [0u8; 4096];
    let errored = loop {
        if shutdown.load(Ordering::Relaxed) {
            break false;
        }
        let n = match stream.read(&mut chunk) {
            // EOF at a line boundary is a clean close; EOF with a
            // partial request buffered means the client died mid-line —
            // data was lost, so it counts as a dropped connection.
            Ok(0) => break framer.partial(),
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break true,
        };
        let (lines, oversize) = framer.push(&chunk[..n]);
        for (offset, line) in lines {
            if tx.send(NetEvent::Line { conn, offset, line }).is_err() {
                return; // dispatcher is gone; we are shutting down
            }
        }
        if oversize {
            // The dispatcher replies `err line-too-long` and drops the
            // connection's outbox; no Closed event follows from here.
            let _ = tx.send(NetEvent::Oversize { conn });
            return;
        }
    };
    // A partial trailing line (client died mid-line) is dropped, never
    // dispatched: the protocol is strictly line-framed.
    let _ = tx.send(NetEvent::Closed { conn, errored });
}

/// The per-connection writer: relays routed replies; a write error
/// (`EPIPE` to a dead client) reports `Closed` and ends the thread.
fn writer_loop(
    mut stream: AnyStream,
    conn: u64,
    replies: mpsc::Receiver<String>,
    depth: Arc<AtomicUsize>,
    tx: SyncSender<NetEvent>,
) {
    while let Ok(reply) = replies.recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        if writeln!(stream, "{reply}")
            .and_then(|_| stream.flush())
            .is_err()
        {
            let _ = tx.send(NetEvent::Closed {
                conn,
                errored: true,
            });
            return;
        }
    }
}

fn accept_loop(
    listener: AnyListener,
    caps: ConnCaps,
    tx: SyncSender<NetEvent>,
    shutdown: Arc<AtomicBool>,
    ids: Arc<AtomicU64>,
    retries: Arc<AtomicU64>,
) {
    if let Err(e) = listener.set_nonblocking() {
        let _ = tx.send(NetEvent::AcceptFatal {
            what: format!("{}: {e}", listener.describe()),
        });
        listener.cleanup();
        return;
    }
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                let conn = ids.fetch_add(1, Ordering::Relaxed);
                if let Err(e) = spawn_connection(stream, conn, caps, &tx, &shutdown) {
                    // Setting up this one connection failed; it alone is
                    // dropped.
                    let _ = tx.send(NetEvent::Closed {
                        conn,
                        errored: true,
                    });
                    let _ = e;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_TICK);
            }
            Err(e) if transient_accept(&e) => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(ACCEPT_BACKOFF);
            }
            Err(e) => {
                let _ = tx.send(NetEvent::AcceptFatal {
                    what: format!("accept on {}: {e}", listener.describe()),
                });
                break;
            }
        }
    }
    listener.cleanup();
}

/// Per-connection resource caps, read once from the backend's options.
#[derive(Clone, Copy)]
struct ConnCaps {
    max_frame: usize,
    writer_queue: usize,
}

fn spawn_connection(
    stream: AnyStream,
    conn: u64,
    caps: ConnCaps,
    tx: &SyncSender<NetEvent>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_read_timeout(Duration::from_millis(100))?;
    let writer_stream = stream.try_clone()?;
    let kill = stream.try_clone()?;
    let (outbox, replies) = mpsc::sync_channel::<String>(caps.writer_queue.max(1));
    let depth = Arc::new(AtomicUsize::new(0));
    if tx
        .send(NetEvent::Accepted {
            conn,
            outbox,
            kill,
            depth: Arc::clone(&depth),
        })
        .is_err()
    {
        return Ok(()); // dispatcher is gone; we are shutting down
    }
    {
        let tx = tx.clone();
        let shutdown = Arc::clone(shutdown);
        std::thread::spawn(move || reader_loop(stream, conn, caps.max_frame, tx, shutdown));
    }
    {
        let tx = tx.clone();
        std::thread::spawn(move || writer_loop(writer_stream, conn, replies, depth, tx));
    }
    Ok(())
}

/// Serves all `listeners` concurrently against `backend` until a stop is
/// requested (`SIGINT`/`SIGTERM`), the backend halts, or a listener
/// fails unrecoverably. Per-connection failures never propagate.
pub fn run_connections(backend: &mut Backend, listeners: Vec<AnyListener>) -> Result<(), String> {
    let (tx, rx) = mpsc::sync_channel::<NetEvent>(EVENT_QUEUE);
    let shutdown = Arc::new(AtomicBool::new(false));
    let ids = Arc::new(AtomicU64::new(1));
    let retries = Arc::new(AtomicU64::new(0));
    let caps = ConnCaps {
        max_frame: backend.max_frame_bytes(),
        writer_queue: backend.writer_queue(),
    };
    let mut accept_threads = Vec::new();
    for listener in listeners {
        let tx = tx.clone();
        let shutdown = Arc::clone(&shutdown);
        let ids = Arc::clone(&ids);
        let retries = Arc::clone(&retries);
        accept_threads.push(std::thread::spawn(move || {
            accept_loop(listener, caps, tx, shutdown, ids, retries)
        }));
    }
    drop(tx);

    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut out: Vec<(u64, String)> = Vec::new();
    let throttle = backend.throttle_ms();
    let mut fatal: Option<String> = None;
    loop {
        if stop_requested() || backend.halted() {
            break;
        }
        // With results outstanding, poll the pool at ~1ms so closed-loop
        // clients (blocked on their reply, generating no net events) are
        // answered as soon as the worker finishes; idle, back off to a
        // cheap 100ms signal-check heartbeat.
        let tick = if backend.busy() {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(100)
        };
        match rx.recv_timeout(tick) {
            Ok(NetEvent::Accepted {
                conn,
                outbox,
                kill,
                depth,
            }) => {
                conns.insert(
                    conn,
                    ConnState {
                        outbox,
                        kill,
                        depth,
                    },
                );
                backend.summary_mut().connections += 1;
            }
            Ok(NetEvent::Line { conn, offset, line }) => {
                if throttle > 0 {
                    std::thread::sleep(Duration::from_millis(throttle));
                }
                backend.submit(conn, offset, &line, &mut out)?;
            }
            Ok(NetEvent::Oversize { conn }) => {
                if let Some(state) = conns.remove(&conn) {
                    // One diagnostic reply, then the writer drains and
                    // exits as its channel closes. Only this connection
                    // is affected. The gauge increment keeps the writer's
                    // per-recv decrement balanced.
                    state.depth.fetch_add(1, Ordering::Relaxed);
                    if state
                        .outbox
                        .try_send(super::wire::line_too_long(caps.max_frame))
                        .is_err()
                    {
                        state.depth.fetch_sub(1, Ordering::Relaxed);
                    }
                    backend.forget_conn(conn);
                    backend.summary_mut().oversize_disconnects += 1;
                }
            }
            Ok(NetEvent::Closed { conn, errored }) => {
                if conns.remove(&conn).is_some() {
                    backend.forget_conn(conn);
                    if errored {
                        backend.summary_mut().disconnects += 1;
                    }
                }
            }
            Ok(NetEvent::AcceptFatal { what }) => {
                fatal = Some(what);
                break;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                backend.pump(&mut out)?;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        route_replies(backend, &mut out, &mut conns);
    }

    // Drain: deliver every completed reply we still can, then close the
    // writers (clients see EOF) and stop the accept loops.
    shutdown.store(true, Ordering::Relaxed);
    backend.settle(&mut out)?;
    route_replies(backend, &mut out, &mut conns);
    drop(conns);
    for t in accept_threads {
        let _ = t.join();
    }
    backend.summary_mut().accept_retries += retries.load(Ordering::Relaxed);
    match fatal {
        Some(what) => Err(what),
        None => Ok(()),
    }
}

/// A live connection's dispatcher-side handles: the bounded reply queue,
/// a kill handle for tearing down stalled clients, and the queue-depth
/// gauge shared with the writer thread.
struct ConnState {
    outbox: SyncSender<String>,
    kill: AnyStream,
    depth: Arc<AtomicUsize>,
}

fn route_replies(
    backend: &mut Backend,
    out: &mut Vec<(u64, String)>,
    conns: &mut HashMap<u64, ConnState>,
) {
    for (conn, reply) in out.drain(..) {
        let Some(state) = conns.get(&conn) else {
            continue;
        };
        // Increment BEFORE sending: the writer thread decrements as it
        // receives, so an increment after a successful `try_send` could
        // lose the race and watch the gauge underflow.
        let depth = state
            .depth
            .fetch_add(1, Ordering::Relaxed)
            .saturating_add(1);
        match state.outbox.try_send(reply) {
            Ok(()) => {
                let summary = backend.summary_mut();
                summary.peak_writer_queue = summary.peak_writer_queue.max(depth);
            }
            Err(mpsc::TrySendError::Full(_)) => {
                state.depth.fetch_sub(1, Ordering::Relaxed);
                // The client stopped draining replies. Never block the
                // dispatcher on one stalled reader: shut the socket down
                // (waking a writer blocked mid-`write`) and drop the
                // connection.
                let state = conns.remove(&conn).expect("connection state present");
                let _ = state.kill.shutdown();
                backend.forget_conn(conn);
                backend.summary_mut().slow_disconnects += 1;
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                // Writer already died; the Closed event does the
                // bookkeeping.
                state.depth.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::LineFramer;

    #[test]
    fn framer_splits_lines_and_tracks_offsets() {
        let mut f = LineFramer::new(64);
        let (lines, oversize) = f.push(b"open a eager\njob a 0,5,2\npartial");
        assert!(!oversize);
        assert_eq!(
            lines,
            vec![
                (0, "open a eager\n".to_string()),
                (13, "job a 0,5,2\n".to_string()),
            ]
        );
        assert!(f.partial());
        let (lines, oversize) = f.push(b" tail\n");
        assert!(!oversize);
        assert_eq!(lines, vec![(25, "partial tail\n".to_string())]);
        assert!(!f.partial());
    }

    #[test]
    fn framer_caps_unterminated_floods() {
        // A newline-less flood trips the cap as soon as the residual
        // exceeds it — the accumulator cannot grow without bound.
        let mut f = LineFramer::new(8);
        let (lines, oversize) = f.push(b"12345678");
        assert!(lines.is_empty() && !oversize, "exactly at cap is fine");
        let (lines, oversize) = f.push(b"9");
        assert!(lines.is_empty() && oversize);
    }

    #[test]
    fn framer_rejects_oversize_completed_lines_but_keeps_the_prefix() {
        let mut f = LineFramer::new(8);
        let (lines, oversize) = f.push(b"ok\n0123456789ABCDEF\nok2\n");
        assert!(oversize, "completed line above the cap trips");
        assert_eq!(lines, vec![(0, "ok\n".to_string())], "prefix still served");
    }

    #[test]
    fn framer_boundary_line_passes() {
        // Content of exactly max_frame bytes (newline excluded) passes.
        let mut f = LineFramer::new(8);
        let (lines, oversize) = f.push(b"12345678\n");
        assert!(!oversize);
        assert_eq!(lines.len(), 1);
    }
}
