//! `fjs loadgen` — a seeded load generator for the `fjs serve` daemon.
//!
//! Two modes share one deterministic workload model (open-loop
//! Poisson-ish arrivals from [`fjs_prng::SmallRng`]):
//!
//! - **emit** — write the protocol script to a file, so serve runs,
//!   kill/resume comparisons and benches all consume byte-identical
//!   input for a given seed.
//! - **drive** — connect to a running daemon (unix socket or TCP), send
//!   the same script, and report reply-latency percentiles plus a
//!   log-bucketed latency histogram in the benchjson schema (`fjs
//!   bench-diff` can gate the percentiles).
//!
//! Drive mode paces requests one of two ways. **Open loop** (the
//! default) sends against the wall clock at `--rate` requests per second
//! regardless of replies, measuring the latency the daemon imposes under
//! a fixed offered load. **Closed loop** (`--concurrency K`) spawns `K`
//! client threads, each with its own connection driving the sessions
//! `s % K == c`; every thread sends one request and blocks for its reply
//! before sending the next, so the offered load adapts to service speed
//! and per-request latency is measured without coordinated-omission
//! artifacts from a lagging send schedule.

use std::io::{BufRead, BufReader, Read, Write};
use std::time::{Duration, Instant};

use fjs_analysis::benchjson::{BenchReport, BenchSample};
use fjs_prng::SmallRng;

/// Workload shape shared by both modes.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Concurrent sessions (jobs are dealt round-robin).
    pub sessions: usize,
    /// Total jobs across all sessions.
    pub jobs: usize,
    /// Target arrival rate in jobs per unit of simulated time (emit) and
    /// requests per wall-clock second (drive).
    pub rate: f64,
    /// PRNG seed; same seed ⇒ byte-identical script.
    pub seed: u64,
    /// Scheduler spec for every `open` line.
    pub scheduler: String,
    /// Mean job length (lengths are uniform in `(0, 2·mean]`).
    pub mean_length: f64,
    /// Laxity factor: slack is uniform in `[0, laxity · length]`.
    pub laxity: f64,
    /// Session-id prefix: sessions are named `<prefix>0`, `<prefix>1`, …
    /// The default `"s"` keeps scripts byte-identical to older releases;
    /// the fuzz harness uses dotted prefixes (`x3.r0s`) to pin its
    /// traffic to a tenant.
    pub sid_prefix: String,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            sessions: 4,
            jobs: 1000,
            rate: 100.0,
            seed: 0x5eed_10ad,
            scheduler: "eager".into(),
            mean_length: 1.0,
            laxity: 2.0,
            sid_prefix: "s".into(),
        }
    }
}

/// Renders the deterministic protocol script: `open` lines for every
/// session, `job` lines with exponential inter-arrival gaps dealt
/// round-robin, then `close` lines. Arrivals are globally non-decreasing,
/// so every session accepts its stream.
pub fn emit_script(opts: &LoadgenOptions) -> String {
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let sessions = opts.sessions.max(1);
    let rate = if opts.rate > 0.0 { opts.rate } else { 100.0 };
    let mut out = String::new();
    out.push_str("# fjs loadgen script\n");
    let p = opts.sid_prefix.as_str();
    for s in 0..sessions {
        out.push_str(&format!("open {p}{s} {}\n", opts.scheduler));
    }
    let mut now = 0.0f64;
    for i in 0..opts.jobs {
        // Exponential gap with mean 1/rate; 1 - u is in (0, 1] so the log
        // is finite.
        let u = rng.f64_unit();
        now += -(1.0 - u).ln() / rate;
        let length = (opts.mean_length * 2.0 * rng.f64_unit()).max(opts.mean_length * 1e-3);
        let slack = opts.laxity * length * rng.f64_unit();
        let arrival = round6(now);
        let length = round6(length).max(1e-6);
        let deadline = round6(now + slack).max(arrival);
        out.push_str(&format!(
            "job {p}{} {arrival},{deadline},{length}\n",
            i % sessions
        ));
    }
    for s in 0..sessions {
        out.push_str(&format!("close {p}{s}\n"));
    }
    out
}

/// Rounds to 6 decimals so script lines stay short; the rounding is part
/// of the deterministic contract (same seed ⇒ same bytes).
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

/// Number of power-of-two latency buckets. Bucket `i` covers latencies
/// in `(2^(i-1)µs, 2^i µs]` (bucket 0 is everything ≤ 1µs); 40 buckets
/// reach past 6 days, so the top bucket never saturates in practice.
const HIST_BUCKETS: usize = 40;

/// Log-bucketed reply-latency histogram with power-of-two bounds
/// starting at 1µs.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
}

impl LatencyHistogram {
    /// Builds the histogram from raw latencies (order irrelevant).
    pub fn from_latencies(latencies: &[f64]) -> Self {
        let mut counts = vec![0u64; HIST_BUCKETS];
        for &lat in latencies {
            counts[Self::bucket(lat)] += 1;
        }
        LatencyHistogram { counts }
    }

    /// Bucket index for a latency in seconds. Non-finite or sub-µs
    /// values land in bucket 0.
    fn bucket(lat_s: f64) -> usize {
        let ratio = lat_s / 1e-6;
        if ratio.is_nan() || ratio <= 1.0 {
            return 0;
        }
        (ratio.log2().ceil() as usize).min(HIST_BUCKETS - 1)
    }

    /// Upper bound of bucket `i` in seconds.
    fn upper_bound_s(i: usize) -> f64 {
        1e-6 * (1u64 << i) as f64
    }

    /// Non-empty buckets as `(upper_bound_seconds, count)` pairs in
    /// ascending bound order.
    pub fn nonzero(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::upper_bound_s(i), c))
    }
}

impl std::fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (bound, count) in self.nonzero() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "le{}:{count}", human_bound(bound))?;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// Renders a bucket bound compactly (`2us`, `512us`, `4ms`, `2s`, …).
fn human_bound(bound_s: f64) -> String {
    if bound_s < 1e-3 {
        format!("{:.0}us", bound_s * 1e6)
    } else if bound_s < 1.0 {
        format!("{:.0}ms", bound_s * 1e3)
    } else {
        format!("{:.0}s", bound_s)
    }
}

/// Reply-latency report from a drive run.
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// Request lines sent.
    pub sent: usize,
    /// Replies received.
    pub replies: usize,
    /// Replies that were `busy` sheds.
    pub busy: usize,
    /// Replies that were `err`.
    pub errs: usize,
    /// Wall-clock seconds for the whole run (closed loop: the slowest
    /// client thread).
    pub elapsed_s: f64,
    /// Achieved request rate (sent / elapsed).
    pub achieved_rate: f64,
    /// Latency percentiles in seconds (p50, p90, p99).
    pub p50_s: f64,
    /// 90th percentile reply latency in seconds.
    pub p90_s: f64,
    /// 99th percentile reply latency in seconds.
    pub p99_s: f64,
    /// Log-bucketed latency histogram across all replies.
    pub hist: LatencyHistogram,
}

impl DriveReport {
    /// Renders the report as benchjson: one case per percentile (which
    /// `fjs bench-diff` can gate) plus one `serve-latency/hist/le_*`
    /// case per non-empty histogram bucket, carrying the bucket count in
    /// `samples` and the bound in the value fields. Empty buckets are
    /// omitted — the schema requires positive sample counts, and padding
    /// with zeros would bloat every report with ~40 dead cases.
    pub fn to_benchjson(&self, git: &str) -> String {
        let mut report = BenchReport::new(git);
        for (name, v) in [
            ("serve-latency/p50", self.p50_s),
            ("serve-latency/p90", self.p90_s),
            ("serve-latency/p99", self.p99_s),
        ] {
            report.upsert(BenchSample {
                name: name.into(),
                median_s: v,
                min_s: v,
                mean_s: v,
                iters: 1,
                samples: self.replies.max(1),
            });
        }
        for (bound, count) in self.hist.nonzero() {
            report.upsert(BenchSample {
                name: format!("serve-latency/hist/le_{}", human_bound(bound)),
                median_s: bound,
                min_s: bound,
                mean_s: bound,
                iters: 1,
                samples: count as usize,
            });
        }
        report.to_json()
    }
}

impl std::fmt::Display for DriveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "loadgen: sent {} requests in {:.3}s ({:.1} req/s), {} replies \
             ({} busy, {} err)",
            self.sent, self.elapsed_s, self.achieved_rate, self.replies, self.busy, self.errs
        )?;
        writeln!(
            f,
            "loadgen: reply latency p50={:.6}s p90={:.6}s p99={:.6}s",
            self.p50_s, self.p90_s, self.p99_s
        )?;
        write!(f, "loadgen: latency histogram {}", self.hist)
    }
}

/// Nearest-rank percentile: the smallest element with at least `p` of
/// the sample at or below it (`idx = ⌈p·n⌉`, 1-based). `sorted` must be
/// ascending; use [`f64::total_cmp`] to sort so NaNs (which a broken
/// clock could in principle produce) order deterministically instead of
/// making the comparator panic or scrambling the order.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = (p * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Where a drive run connects.
#[derive(Clone, Debug)]
pub enum DriveTarget {
    /// A unix-domain socket path (`fjs serve --socket`).
    #[cfg(unix)]
    Unix(std::path::PathBuf),
    /// A TCP address like `127.0.0.1:7070` (`fjs serve --tcp`).
    Tcp(String),
}

/// One direction of a connected drive stream.
pub(crate) type HalfStream = (Box<dyn Read + Send>, Box<dyn Write + Send>);

impl DriveTarget {
    /// Opens one connection and splits it into a reader/writer pair.
    pub(crate) fn connect(&self) -> Result<HalfStream, String> {
        self.connect_inner(None)
    }

    /// Connects with a read timeout on the reader half. The fuzz harness
    /// drains replies until the daemon goes quiet; without a timeout a
    /// daemon that (correctly) keeps the connection open would block the
    /// drain forever.
    pub(crate) fn connect_timeout(&self, read_timeout: Duration) -> Result<HalfStream, String> {
        self.connect_inner(Some(read_timeout))
    }

    fn connect_inner(&self, read_timeout: Option<Duration>) -> Result<HalfStream, String> {
        match self {
            #[cfg(unix)]
            DriveTarget::Unix(path) => {
                let s = std::os::unix::net::UnixStream::connect(path)
                    .map_err(|e| format!("connecting {}: {e}", path.display()))?;
                s.set_read_timeout(read_timeout)
                    .map_err(|e| format!("socket: {e}"))?;
                let r = s.try_clone().map_err(|e| format!("socket: {e}"))?;
                Ok((Box::new(r), Box::new(s)))
            }
            DriveTarget::Tcp(addr) => {
                let s = std::net::TcpStream::connect(addr)
                    .map_err(|e| format!("connecting {addr}: {e}"))?;
                // Closed-loop clients alternate tiny writes and reads;
                // Nagle + delayed ACK would serialize them at ~25ms each.
                let _ = s.set_nodelay(true);
                s.set_read_timeout(read_timeout)
                    .map_err(|e| format!("socket: {e}"))?;
                let r = s.try_clone().map_err(|e| format!("socket: {e}"))?;
                Ok((Box::new(r), Box::new(s)))
            }
        }
    }
}

impl std::fmt::Display for DriveTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            DriveTarget::Unix(path) => write!(f, "{}", path.display()),
            DriveTarget::Tcp(addr) => write!(f, "tcp {addr}"),
        }
    }
}

/// What a reply line was, classified by its first word.
enum ReplyClass {
    Ok,
    Busy,
    Err,
}

fn classify(line: &str) -> ReplyClass {
    if line.starts_with("busy") {
        ReplyClass::Busy
    } else if line.starts_with("err") {
        ReplyClass::Err
    } else {
        ReplyClass::Ok
    }
}

/// Non-comment, non-blank request lines of the script for `opts`.
fn request_lines(opts: &LoadgenOptions) -> Vec<String> {
    emit_script(opts)
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(str::to_owned)
        .collect()
}

fn build_report(sent: usize, outcomes: &[(f64, ReplyClass)], elapsed_s: f64) -> DriveReport {
    let busy = outcomes
        .iter()
        .filter(|(_, c)| matches!(c, ReplyClass::Busy))
        .count();
    let errs = outcomes
        .iter()
        .filter(|(_, c)| matches!(c, ReplyClass::Err))
        .count();
    let mut latencies: Vec<f64> = outcomes.iter().map(|(l, _)| *l).collect();
    latencies.sort_by(f64::total_cmp);
    DriveReport {
        sent,
        replies: outcomes.len(),
        busy,
        errs,
        elapsed_s,
        achieved_rate: if elapsed_s > 0.0 {
            sent as f64 / elapsed_s
        } else {
            0.0
        },
        p50_s: percentile(&latencies, 0.50),
        p90_s: percentile(&latencies, 0.90),
        p99_s: percentile(&latencies, 0.99),
        hist: LatencyHistogram::from_latencies(&latencies),
    }
}

/// Drives a running daemon. `concurrency <= 1` runs the open loop on one
/// connection; `concurrency >= 2` runs the closed loop with that many
/// client threads (see the module docs for the difference).
pub fn drive(
    target: &DriveTarget,
    opts: &LoadgenOptions,
    concurrency: usize,
) -> Result<DriveReport, String> {
    if concurrency <= 1 {
        drive_open_loop(target, opts)
    } else {
        drive_closed_loop(target, opts, concurrency)
    }
}

/// Backwards-compatible alias: open-loop drive over a unix socket.
#[cfg(unix)]
pub fn drive_socket(path: &std::path::Path, opts: &LoadgenOptions) -> Result<DriveReport, String> {
    drive_open_loop(&DriveTarget::Unix(path.to_path_buf()), opts)
}

/// Sends the script's request lines open-loop at `opts.rate` requests
/// per wall-clock second (comment lines are skipped) and measures
/// per-reply latency.
///
/// The protocol replies exactly once per request line in connection
/// order, so the k-th reply is matched with the k-th send time.
fn drive_open_loop(target: &DriveTarget, opts: &LoadgenOptions) -> Result<DriveReport, String> {
    use std::time::Duration;

    let requests = request_lines(opts);
    let (reader, mut writer) = target.connect()?;

    let total = requests.len();
    let reader_handle =
        std::thread::spawn(move || -> Result<Vec<(Instant, ReplyClass)>, String> {
            let mut replies = Vec::with_capacity(total);
            let mut lines = BufReader::new(reader).lines();
            while replies.len() < total {
                match lines.next() {
                    Some(Ok(line)) => replies.push((Instant::now(), classify(&line))),
                    Some(Err(e)) => return Err(format!("socket read: {e}")),
                    None => break,
                }
            }
            Ok(replies)
        });

    let gap_s = if opts.rate > 0.0 {
        1.0 / opts.rate
    } else {
        0.0
    };
    let start = Instant::now();
    let mut send_times = Vec::with_capacity(total);
    for (i, line) in requests.iter().enumerate() {
        // Open loop: pace against the schedule, not the replies.
        let due = start + Duration::from_secs_f64(gap_s * i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        send_times.push(Instant::now());
        writeln!(writer, "{line}").map_err(|e| format!("socket write: {e}"))?;
    }
    writer.flush().map_err(|e| format!("socket write: {e}"))?;

    let replies = reader_handle
        .join()
        .map_err(|_| "reader thread panicked".to_string())??;
    let elapsed_s = start.elapsed().as_secs_f64();

    let outcomes: Vec<(f64, ReplyClass)> = replies
        .into_iter()
        .zip(send_times.iter())
        .map(|((r, c), s)| (r.duration_since(*s).as_secs_f64(), c))
        .collect();
    Ok(build_report(send_times.len(), &outcomes, elapsed_s))
}

/// Closed-loop drive: `concurrency` client threads, each with its own
/// connection, each owning the sessions `s % concurrency == c` and
/// sending that subset of the script strictly send→await-reply. Latency
/// samples from all threads are merged; elapsed time is the slowest
/// thread's, since the run is not over until every client drains.
fn drive_closed_loop(
    target: &DriveTarget,
    opts: &LoadgenOptions,
    concurrency: usize,
) -> Result<DriveReport, String> {
    let requests = request_lines(opts);
    let sessions = opts.sessions.max(1);
    let k = concurrency.min(sessions).max(1);

    // Deal each line to the thread owning its session. Lines keep their
    // script-relative order within a thread, so opens precede jobs and
    // per-session arrival monotonicity is preserved.
    let mut decks: Vec<Vec<String>> = vec![Vec::new(); k];
    for line in requests {
        let sid = line
            .split_whitespace()
            .nth(1)
            .ok_or_else(|| format!("loadgen: malformed script line '{line}'"))?;
        // Session ids are "<prefix><N>"; recover N to deal by `N % k`.
        let n: usize = sid
            .strip_prefix(opts.sid_prefix.as_str())
            .and_then(|d| d.parse().ok())
            .ok_or_else(|| format!("loadgen: unexpected session id '{sid}'"))?;
        decks[n % k].push(line);
    }

    struct ThreadOut {
        sent: usize,
        outcomes: Vec<(f64, ReplyClass)>,
        elapsed_s: f64,
    }

    let mut handles = Vec::with_capacity(k);
    for deck in decks {
        let target = target.clone();
        handles.push(std::thread::spawn(move || -> Result<ThreadOut, String> {
            let (reader, mut writer) = target.connect()?;
            let mut lines = BufReader::new(reader).lines();
            let mut outcomes = Vec::with_capacity(deck.len());
            let start = Instant::now();
            let mut sent = 0usize;
            for line in &deck {
                let sent_at = Instant::now();
                writeln!(writer, "{line}").map_err(|e| format!("socket write: {e}"))?;
                writer.flush().map_err(|e| format!("socket write: {e}"))?;
                sent += 1;
                match lines.next() {
                    Some(Ok(reply)) => {
                        outcomes.push((sent_at.elapsed().as_secs_f64(), classify(&reply)))
                    }
                    Some(Err(e)) => return Err(format!("socket read: {e}")),
                    None => break,
                }
            }
            Ok(ThreadOut {
                sent,
                outcomes,
                elapsed_s: start.elapsed().as_secs_f64(),
            })
        }));
    }

    let mut sent = 0usize;
    let mut outcomes = Vec::new();
    let mut elapsed_s = 0.0f64;
    for h in handles {
        let out = h
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        sent += out.sent;
        outcomes.extend(out.outcomes);
        elapsed_s = elapsed_s.max(out.elapsed_s);
    }
    Ok(build_report(sent, &outcomes, elapsed_s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_is_deterministic_and_well_formed() {
        let opts = LoadgenOptions {
            sessions: 3,
            jobs: 50,
            ..LoadgenOptions::default()
        };
        let a = emit_script(&opts);
        let b = emit_script(&opts);
        assert_eq!(a, b, "same seed must emit byte-identical scripts");

        let mut opens = 0;
        let mut jobs = 0;
        let mut closes = 0;
        let mut last_arrival = f64::NEG_INFINITY;
        for line in a.lines() {
            if line.starts_with('#') {
                continue;
            }
            let req = crate::serve::protocol::parse_request(line)
                .unwrap_or_else(|e| panic!("bad emitted line '{line}': {e}"))
                .unwrap_or_else(|| panic!("emitted blank request '{line}'"));
            match req {
                crate::serve::protocol::Request::Open { .. } => opens += 1,
                crate::serve::protocol::Request::Job { arrival, .. } => {
                    jobs += 1;
                    assert!(arrival >= last_arrival, "arrivals must be non-decreasing");
                    last_arrival = arrival;
                }
                crate::serve::protocol::Request::Close { .. } => closes += 1,
                crate::serve::protocol::Request::Stats { .. }
                | crate::serve::protocol::Request::StatsDaemon => panic!("unexpected stats"),
            }
        }
        assert_eq!((opens, jobs, closes), (3, 50, 3));
    }

    #[test]
    fn different_seeds_differ() {
        let a = emit_script(&LoadgenOptions::default());
        let b = emit_script(&LoadgenOptions {
            seed: 7,
            ..LoadgenOptions::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let xs = [0.1, 0.2, 0.3, 0.4, 1.0];
        assert_eq!(percentile(&xs, 0.5), 0.3);
        assert_eq!(percentile(&xs, 0.99), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentiles_use_nearest_rank_not_rounded_index() {
        // Nearest rank: p50 of 4 samples is the 2nd order statistic
        // (⌈0.5·4⌉ = 2). The old round((n-1)·p) indexing picked the 3rd.
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.25), 1.0);
        assert_eq!(percentile(&xs, 0.75), 3.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        // p→0 clamps to the minimum, never index -1.
        assert_eq!(percentile(&xs, 0.0), 1.0);
        // 200 samples: p99 is the 198th order statistic (⌈0.99·200⌉).
        let many: Vec<f64> = (1..=200).map(f64::from).collect();
        assert_eq!(percentile(&many, 0.99), 198.0);
        assert_eq!(percentile(&many, 0.5), 100.0);
    }

    #[test]
    fn latency_sort_is_nan_safe() {
        // total_cmp orders NaN after +inf instead of panicking or
        // leaving the slice scrambled like partial_cmp fallbacks do.
        let mut xs = [0.3, f64::NAN, 0.1, 0.2];
        xs.sort_by(f64::total_cmp);
        assert_eq!(&xs[..3], &[0.1, 0.2, 0.3]);
        assert!(xs[3].is_nan());
        assert_eq!(percentile(&xs, 0.5), 0.2);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let hist = LatencyHistogram::from_latencies(&[0.5e-6, 1e-6, 1.5e-6, 3e-6, 3.5e-6, 0.01]);
        let buckets: Vec<(f64, u64)> = hist.nonzero().collect();
        // ≤1µs: 0.5µs and 1µs; ≤2µs: 1.5µs; ≤4µs: 3µs and 3.5µs;
        // 0.01s = 10000µs → ≤2^14µs = 16384µs.
        assert_eq!(
            buckets,
            vec![(1e-6, 2), (2e-6, 1), (4e-6, 2), (16384e-6, 1)]
        );
        let rendered = hist.to_string();
        assert_eq!(rendered, "le1us:2 le2us:1 le4us:2 le16ms:1");
    }

    #[test]
    fn drive_report_renders_benchjson() {
        let report = DriveReport {
            sent: 10,
            replies: 10,
            busy: 0,
            errs: 0,
            elapsed_s: 1.0,
            achieved_rate: 10.0,
            p50_s: 0.001,
            p90_s: 0.002,
            p99_s: 0.003,
            hist: LatencyHistogram::from_latencies(&[0.001; 10]),
        };
        let json = report.to_benchjson("test");
        let parsed = BenchReport::parse(&json).expect("benchjson roundtrip");
        assert!(parsed.case("serve-latency/p50").is_some());
        assert!(parsed.case("serve-latency/p99").is_some());
        // 0.001s = 1000µs buckets into ≤1024µs; empty buckets are absent.
        assert!(parsed.case("serve-latency/hist/le_1ms").is_some());
        assert!(parsed.case("serve-latency/hist/le_1us").is_none());
    }
}
