//! `fjs loadgen` — a seeded load generator for the `fjs serve` daemon.
//!
//! Two modes share one deterministic workload model (open-loop
//! Poisson-ish arrivals from [`fjs_prng::SmallRng`]):
//!
//! - **emit** — write the protocol script to a file, so serve runs,
//!   kill/resume comparisons and benches all consume byte-identical
//!   input for a given seed.
//! - **drive** — connect to a running daemon's unix socket, send the
//!   same script paced in real time at a target request rate, and report
//!   reply-latency percentiles in the benchjson schema (`fjs bench-diff`
//!   can gate them).

use std::io::{BufRead, BufReader, Write};

use fjs_analysis::benchjson::{BenchReport, BenchSample};
use fjs_prng::SmallRng;

/// Workload shape shared by both modes.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Concurrent sessions (jobs are dealt round-robin).
    pub sessions: usize,
    /// Total jobs across all sessions.
    pub jobs: usize,
    /// Target arrival rate in jobs per unit of simulated time (emit) and
    /// requests per wall-clock second (drive).
    pub rate: f64,
    /// PRNG seed; same seed ⇒ byte-identical script.
    pub seed: u64,
    /// Scheduler spec for every `open` line.
    pub scheduler: String,
    /// Mean job length (lengths are uniform in `(0, 2·mean]`).
    pub mean_length: f64,
    /// Laxity factor: slack is uniform in `[0, laxity · length]`.
    pub laxity: f64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            sessions: 4,
            jobs: 1000,
            rate: 100.0,
            seed: 0x5eed_10ad,
            scheduler: "eager".into(),
            mean_length: 1.0,
            laxity: 2.0,
        }
    }
}

/// Renders the deterministic protocol script: `open` lines for every
/// session, `job` lines with exponential inter-arrival gaps dealt
/// round-robin, then `close` lines. Arrivals are globally non-decreasing,
/// so every session accepts its stream.
pub fn emit_script(opts: &LoadgenOptions) -> String {
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let sessions = opts.sessions.max(1);
    let rate = if opts.rate > 0.0 { opts.rate } else { 100.0 };
    let mut out = String::new();
    out.push_str("# fjs loadgen script\n");
    for s in 0..sessions {
        out.push_str(&format!("open s{s} {}\n", opts.scheduler));
    }
    let mut now = 0.0f64;
    for i in 0..opts.jobs {
        // Exponential gap with mean 1/rate; 1 - u is in (0, 1] so the log
        // is finite.
        let u = rng.f64_unit();
        now += -(1.0 - u).ln() / rate;
        let length = (opts.mean_length * 2.0 * rng.f64_unit()).max(opts.mean_length * 1e-3);
        let slack = opts.laxity * length * rng.f64_unit();
        let arrival = round6(now);
        let length = round6(length).max(1e-6);
        let deadline = round6(now + slack).max(arrival);
        out.push_str(&format!(
            "job s{} {arrival},{deadline},{length}\n",
            i % sessions
        ));
    }
    for s in 0..sessions {
        out.push_str(&format!("close s{s}\n"));
    }
    out
}

/// Rounds to 6 decimals so script lines stay short; the rounding is part
/// of the deterministic contract (same seed ⇒ same bytes).
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

/// Reply-latency report from a drive run.
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// Request lines sent.
    pub sent: usize,
    /// Replies received.
    pub replies: usize,
    /// Replies that were `busy` sheds.
    pub busy: usize,
    /// Replies that were `err`.
    pub errs: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Achieved request rate (sent / elapsed).
    pub achieved_rate: f64,
    /// Latency percentiles in seconds (p50, p90, p99).
    pub p50_s: f64,
    /// 90th percentile reply latency in seconds.
    pub p90_s: f64,
    /// 99th percentile reply latency in seconds.
    pub p99_s: f64,
}

impl DriveReport {
    /// Renders the report as benchjson, one case per percentile, so
    /// `fjs bench-diff` can compare drive runs.
    pub fn to_benchjson(&self, git: &str) -> String {
        let mut report = BenchReport::new(git);
        for (name, v) in [
            ("serve-latency/p50", self.p50_s),
            ("serve-latency/p90", self.p90_s),
            ("serve-latency/p99", self.p99_s),
        ] {
            report.upsert(BenchSample {
                name: name.into(),
                median_s: v,
                min_s: v,
                mean_s: v,
                iters: 1,
                samples: self.replies.max(1),
            });
        }
        report.to_json()
    }
}

impl std::fmt::Display for DriveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "loadgen: sent {} requests in {:.3}s ({:.1} req/s), {} replies \
             ({} busy, {} err)",
            self.sent, self.elapsed_s, self.achieved_rate, self.replies, self.busy, self.errs
        )?;
        write!(
            f,
            "loadgen: reply latency p50={:.6}s p90={:.6}s p99={:.6}s",
            self.p50_s, self.p90_s, self.p99_s
        )
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives a running daemon over its unix socket: sends the script's
/// request lines open-loop at `opts.rate` requests per wall-clock second
/// (comment lines are skipped) and measures per-reply latency.
///
/// The protocol replies exactly once per request line in order, so the
/// k-th reply is matched with the k-th send time.
#[cfg(unix)]
pub fn drive_socket(path: &std::path::Path, opts: &LoadgenOptions) -> Result<DriveReport, String> {
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    let script = emit_script(opts);
    let requests: Vec<&str> = script
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .collect();

    let stream =
        UnixStream::connect(path).map_err(|e| format!("connecting {}: {e}", path.display()))?;
    let reader = stream
        .try_clone()
        .map_err(|e| format!("socket: {e}"))?;
    let mut writer = stream;

    /// What a reply line was, classified by its first word.
    enum ReplyClass {
        Ok,
        Busy,
        Err,
    }
    let total = requests.len();
    let reader_handle =
        std::thread::spawn(move || -> Result<Vec<(Instant, ReplyClass)>, String> {
            let mut replies = Vec::with_capacity(total);
            let mut lines = BufReader::new(reader).lines();
            while replies.len() < total {
                match lines.next() {
                    Some(Ok(line)) => {
                        let class = if line.starts_with("busy") {
                            ReplyClass::Busy
                        } else if line.starts_with("err") {
                            ReplyClass::Err
                        } else {
                            ReplyClass::Ok
                        };
                        replies.push((Instant::now(), class));
                    }
                    Some(Err(e)) => return Err(format!("socket read: {e}")),
                    None => break,
                }
            }
            Ok(replies)
        });

    let gap_s = if opts.rate > 0.0 { 1.0 / opts.rate } else { 0.0 };
    let start = Instant::now();
    let mut send_times = Vec::with_capacity(total);
    for (i, line) in requests.iter().enumerate() {
        // Open loop: pace against the schedule, not the replies.
        let due = start + Duration::from_secs_f64(gap_s * i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        send_times.push(Instant::now());
        writeln!(writer, "{line}").map_err(|e| format!("socket write: {e}"))?;
    }
    writer.flush().map_err(|e| format!("socket write: {e}"))?;

    let replies = reader_handle
        .join()
        .map_err(|_| "reader thread panicked".to_string())??;
    let elapsed_s = start.elapsed().as_secs_f64();

    let busy = replies
        .iter()
        .filter(|(_, c)| matches!(c, ReplyClass::Busy))
        .count();
    let errs = replies
        .iter()
        .filter(|(_, c)| matches!(c, ReplyClass::Err))
        .count();
    let mut latencies: Vec<f64> = replies
        .iter()
        .zip(send_times.iter())
        .map(|((r, _), s)| r.duration_since(*s).as_secs_f64())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    Ok(DriveReport {
        sent: send_times.len(),
        replies: replies.len(),
        busy,
        errs,
        elapsed_s,
        achieved_rate: if elapsed_s > 0.0 {
            send_times.len() as f64 / elapsed_s
        } else {
            0.0
        },
        p50_s: percentile(&latencies, 0.50),
        p90_s: percentile(&latencies, 0.90),
        p99_s: percentile(&latencies, 0.99),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_is_deterministic_and_well_formed() {
        let opts = LoadgenOptions {
            sessions: 3,
            jobs: 50,
            ..LoadgenOptions::default()
        };
        let a = emit_script(&opts);
        let b = emit_script(&opts);
        assert_eq!(a, b, "same seed must emit byte-identical scripts");

        let mut opens = 0;
        let mut jobs = 0;
        let mut closes = 0;
        let mut last_arrival = f64::NEG_INFINITY;
        for line in a.lines() {
            if line.starts_with('#') {
                continue;
            }
            let req = crate::serve::protocol::parse_request(line)
                .unwrap_or_else(|e| panic!("bad emitted line '{line}': {e}"))
                .unwrap_or_else(|| panic!("emitted blank request '{line}'"));
            match req {
                crate::serve::protocol::Request::Open { .. } => opens += 1,
                crate::serve::protocol::Request::Job { arrival, .. } => {
                    jobs += 1;
                    assert!(arrival >= last_arrival, "arrivals must be non-decreasing");
                    last_arrival = arrival;
                }
                crate::serve::protocol::Request::Close { .. } => closes += 1,
                crate::serve::protocol::Request::Stats { .. } => panic!("unexpected stats"),
            }
        }
        assert_eq!((opens, jobs, closes), (3, 50, 3));
    }

    #[test]
    fn different_seeds_differ() {
        let a = emit_script(&LoadgenOptions::default());
        let b = emit_script(&LoadgenOptions {
            seed: 7,
            ..LoadgenOptions::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let xs = [0.1, 0.2, 0.3, 0.4, 1.0];
        assert_eq!(percentile(&xs, 0.5), 0.3);
        assert_eq!(percentile(&xs, 0.99), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn drive_report_renders_benchjson() {
        let report = DriveReport {
            sent: 10,
            replies: 10,
            busy: 0,
            errs: 0,
            elapsed_s: 1.0,
            achieved_rate: 10.0,
            p50_s: 0.001,
            p90_s: 0.002,
            p99_s: 0.003,
        };
        let json = report.to_benchjson("test");
        let parsed = BenchReport::parse(&json).expect("benchjson roundtrip");
        assert!(parsed.case("serve-latency/p50").is_some());
        assert!(parsed.case("serve-latency/p99").is_some());
    }
}
