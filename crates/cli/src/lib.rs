//! # fjs-cli
//!
//! Experiment implementations (E1–E11) and the `fjs` binary that runs them.
//! Each experiment regenerates one figure/theorem of Ren & Tang (SPAA 2017)
//! as a table; `fjs all --full > EXPERIMENTS-raw.md` reproduces the data
//! behind EXPERIMENTS.md. The `fjs-bench` crate calls the same experiment
//! functions at `Profile::Quick`. The [`soak`] module is the engine behind
//! `fjs soak`: supervised long-running sweeps with a crash-safe checkpoint
//! journal and `SIGINT`-graceful shutdown.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod experiments;
pub mod fuzz;
pub mod loadgen;
pub mod serve;
pub mod soak;

pub use experiments::{all, by_id, Experiment, Profile};
pub use loadgen::{drive, emit_script, DriveReport, DriveTarget, LatencyHistogram, LoadgenOptions};
pub use serve::{run_script, ScriptOutcome, ServeOptions, ServeSummary, Server};
pub use soak::{run_soak, SoakOptions, SoakSummary};
